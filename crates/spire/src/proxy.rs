//! The PLC/RTU proxy (§II, §III-B).
//!
//! "To connect existing PLCs and RTUs to the network, we use a proxy that
//! limits their network attack surface. Their typical, insecure industrial
//! communication protocols ... are used only on the direct connection
//! between the PLC or RTU and its proxy, which, ideally, can simply be a
//! wire. The proxy communicates with the rest of the system over the
//! secure and intrusion-tolerant Spines network."
//!
//! Interface 0 faces the external Spines network; interface 1 is the
//! direct cable to the device. Inbound actuation requires `f+1` matching
//! commands from distinct replicas.

use bytes::Bytes;
use itcrypto::keys::KeyPair;
use modbus::{Request, Response, TcpFrame};
use plc::emulator::PLC_MODBUS_PORT;
use plc::topology::Scenario;
use prime::types::{SignedUpdate, Update};
use scada::updates::ScadaUpdate;
use simnet::packet::Packet;
use simnet::process::{Context, Process};
use simnet::time::{SimDuration, SimTime};
use simnet::types::{IpAddr, Port};
use simnet::wire::Wire;
use spines::daemon::SpinesDaemon;

use crate::config::{SpireConfig, EXTERNAL_SPINES_PORT};
use crate::messages::ExternalMsg;

const POLL_TIMER: u64 = 1;
/// The proxy's Modbus client port on the cable.
pub const PROXY_MODBUS_PORT: Port = Port(8150);

/// Outstanding Modbus request kind.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Outstanding {
    Positions,
    Currents,
}

/// Counters for experiments.
#[derive(Clone, Copy, Debug, Default)]
pub struct ProxyStats {
    /// Poll round-trips completed.
    pub polls_completed: u64,
    /// RTU status updates sent to the masters.
    pub updates_sent: u64,
    /// Breaker commands actuated after `f+1` votes.
    pub commands_actuated: u64,
    /// Commands received that are still below the vote threshold.
    pub commands_pending: u64,
    /// Status updates suppressed by an active rate limit.
    pub updates_throttled: u64,
}

/// The PLC proxy process.
pub struct PlcProxy {
    cfg: SpireConfig,
    index: u32,
    scenario: Scenario,
    breaker_count: u16,
    plc_addr: IpAddr,
    /// The external Spines daemon.
    pub external: SpinesDaemon,
    key: KeyPair,
    client: u32,
    client_seq: u64,
    poll_seq: u64,
    transaction: u16,
    poll_interval: SimDuration,
    /// Send a status update every poll (true) or only on change/heartbeat.
    pub verbose_updates: bool,
    /// Response-controller throttle: minimum spacing between status
    /// updates. `None` (default) disables the limit entirely.
    update_min_interval: Option<SimDuration>,
    /// When the last status update went out (for throttle spacing).
    last_update_at: SimTime,
    outstanding: Option<Outstanding>,
    positions: Vec<bool>,
    currents: Vec<u16>,
    last_sent_positions: Vec<bool>,
    polls_since_update: u32,
    votes: crate::vote::VoteCollector<(String, u16, bool, u64)>,
    /// Counters.
    pub stats: ProxyStats,
    c_updates_sent: obs::Counter,
    c_commands_actuated: obs::Counter,
    obs: obs::ObsHub,
    /// Simulation node id used to label trace spans (derived from the
    /// deterministic node-creation order in `deploy::build`).
    trace_node: u32,
}

fn proxy_counters(hub: &obs::ObsHub, index: u32) -> [obs::Counter; 2] {
    [
        hub.counter(&format!("proxy.{index}.updates_sent")),
        hub.counter(&format!("proxy.{index}.commands_actuated")),
    ]
}

impl PlcProxy {
    /// Creates proxy `index` for its configured scenario.
    pub fn new(cfg: SpireConfig, index: u32) -> Self {
        let assignment = cfg
            .proxies
            .iter()
            .find(|p| p.index == index)
            .expect("proxy in config");
        let scenario = assignment.scenario;
        let breaker_count = scenario.topology().breaker_count() as u16;
        let mut external = SpinesDaemon::new(cfg.ext_daemon_of_proxy(index), cfg.external_spines());
        external.subscribe(cfg.proxy_group(index));
        let key = cfg.proxy_keypair(index);
        let client = cfg.client_of_proxy(index);
        let plc_addr = cfg.plc_cable_ip(index);
        let f = cfg.prime.f;
        let hub = obs::ObsHub::new();
        let [updates_sent, commands_actuated] = proxy_counters(&hub, index);
        let trace_node = cfg.n() + 2 * index;
        PlcProxy {
            cfg,
            index,
            scenario,
            breaker_count,
            plc_addr,
            external,
            key,
            client,
            client_seq: 0,
            poll_seq: 0,
            transaction: 0,
            poll_interval: SimDuration::from_millis(100),
            verbose_updates: false,
            update_min_interval: None,
            last_update_at: SimTime::ZERO,
            outstanding: None,
            positions: Vec::new(),
            currents: Vec::new(),
            last_sent_positions: Vec::new(),
            polls_since_update: 0,
            votes: crate::vote::VoteCollector::new(f + 1),
            stats: ProxyStats::default(),
            c_updates_sent: updates_sent,
            c_commands_actuated: commands_actuated,
            obs: hub,
            trace_node,
        }
    }

    /// Joins the shared deployment hub, carrying over any counts
    /// accumulated while detached.
    pub fn attach_obs(&mut self, hub: &obs::ObsHub) {
        let [updates_sent, commands_actuated] = proxy_counters(hub, self.index);
        updates_sent.add(self.c_updates_sent.get());
        commands_actuated.add(self.c_commands_actuated.get());
        self.external
            .attach_obs(hub, &format!("spines.ext.proxy{}", self.index));
        self.c_updates_sent = updates_sent;
        self.c_commands_actuated = commands_actuated;
        self.obs = hub.clone();
    }

    /// The proxied scenario.
    pub fn scenario(&self) -> Scenario {
        self.scenario
    }

    /// Proxy index.
    pub fn index(&self) -> u32 {
        self.index
    }

    /// The deployment configuration this proxy was built from.
    pub fn config(&self) -> &SpireConfig {
        &self.cfg
    }

    /// Sets the poll cadence.
    pub fn set_poll_interval(&mut self, interval: SimDuration) {
        self.poll_interval = interval;
    }

    /// Applies (or with `None` lifts) a status-update rate limit: while
    /// set, at most one update is multicast per `min_interval`, and
    /// suppressed updates count in `stats.updates_throttled`. This is the
    /// response controller's flooding actuator — polling of the field
    /// device continues untouched, only the overlay-facing update rate is
    /// capped, so a flooding (or flooded) proxy cannot saturate the
    /// replication path.
    pub fn set_update_rate_limit(&mut self, min_interval: Option<SimDuration>) {
        self.update_min_interval = min_interval;
    }

    /// The active update rate limit, if any.
    pub fn update_rate_limit(&self) -> Option<SimDuration> {
        self.update_min_interval
    }

    fn send_modbus(&mut self, ctx: &mut Context<'_>, req: Request) {
        self.transaction = self.transaction.wrapping_add(1);
        let frame = TcpFrame::new(self.transaction, 1, req.encode());
        let pkt = Packet::udp(
            ctx.ip(1),
            self.plc_addr,
            PROXY_MODBUS_PORT,
            PLC_MODBUS_PORT,
            Bytes::from(frame.encode()),
        );
        ctx.send(1, pkt);
    }

    fn flush_sends(ctx: &mut Context<'_>, sends: Vec<(IpAddr, Bytes)>) {
        for (addr, bytes) in sends {
            let pkt = Packet::udp(
                ctx.ip(0),
                addr,
                EXTERNAL_SPINES_PORT,
                EXTERNAL_SPINES_PORT,
                bytes,
            );
            ctx.send(0, pkt);
        }
    }

    fn publish_status(&mut self, ctx: &mut Context<'_>) {
        self.poll_seq += 1;
        self.stats.polls_completed += 1;
        obs::prof::charge_msg("proxy;io", 1, 0);
        self.polls_since_update += 1;
        let changed = self.positions != self.last_sent_positions;
        // Steady heartbeat every 10 polls keeps MANA's baseline regular
        // and lets the masters detect a dead proxy.
        if !self.verbose_updates && !changed && self.polls_since_update < 10 {
            return;
        }
        if let Some(min) = self.update_min_interval {
            if ctx.now().since(self.last_update_at) < min {
                self.stats.updates_throttled += 1;
                return;
            }
        }
        self.last_update_at = ctx.now();
        self.polls_since_update = 0;
        self.last_sent_positions = self.positions.clone();
        // The proxy turns field state into a signed client update here;
        // the span covers signing plus the first overlay transmission.
        let publish = self
            .obs
            .start_span(ctx.trace(), obs::Stage::Publish, self.trace_node);
        if publish.is_some() {
            ctx.set_trace(publish);
        }
        let scada_update = ScadaUpdate::RtuStatus {
            scenario: self.scenario.tag(),
            poll_seq: self.poll_seq,
            positions: self.positions.clone(),
            currents: self.currents.clone(),
        };
        self.client_seq += 1;
        let update = Update::new(self.client, self.client_seq, scada_update.to_wire());
        let sig = self.key.sign(&update.to_wire());
        let msg = ExternalMsg::ClientUpdate(SignedUpdate { update, sig });
        let sends = self
            .external
            .multicast(crate::config::GROUP_MASTERS, 1, msg.to_wire());
        Self::flush_sends(ctx, sends);
        self.obs.end_span(publish);
        self.stats.updates_sent += 1;
        self.c_updates_sent.inc();
    }

    fn drain_deliveries(&mut self, ctx: &mut Context<'_>) {
        for delivery in self.external.take_deliveries() {
            let Ok(msg) = ExternalMsg::from_wire(&delivery.payload) else {
                continue;
            };
            let ExternalMsg::PlcCommand {
                replica,
                scenario,
                breaker,
                close,
                exec_seq,
            } = msg
            else {
                continue;
            };
            if scenario != self.scenario.tag() || breaker >= self.breaker_count {
                continue;
            }
            let key = (scenario, breaker, close, exec_seq);
            if self.votes.vote(key, replica) {
                self.stats.commands_actuated += 1;
                self.c_commands_actuated.inc();
                // The f+1-th matching replica command releases the
                // actuation; the winning vote's context parents it.
                let deliver =
                    self.obs
                        .instant_span(ctx.trace(), obs::Stage::Deliver, self.trace_node);
                if deliver.is_some() {
                    ctx.set_trace(deliver);
                }
                self.send_modbus(
                    ctx,
                    Request::WriteSingleCoil {
                        address: breaker,
                        value: close,
                    },
                );
            } else {
                self.stats.commands_pending += 1;
            }
        }
    }
}

impl Process for PlcProxy {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.listen(EXTERNAL_SPINES_PORT);
        ctx.listen(PROXY_MODBUS_PORT);
        ctx.set_timer(self.poll_interval, POLL_TIMER);
        ctx.log(format!(
            "plc-proxy {} online ({})",
            self.index,
            self.scenario.tag()
        ));
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: u64) {
        if timer != POLL_TIMER {
            return;
        }
        // Start a poll round: positions first, currents on reply.
        self.outstanding = Some(Outstanding::Positions);
        self.send_modbus(
            ctx,
            Request::ReadDiscreteInputs {
                address: 0,
                count: self.breaker_count,
            },
        );
        ctx.set_timer(self.poll_interval, POLL_TIMER);
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        if pkt.dst_port == EXTERNAL_SPINES_PORT {
            if let Some(hop) = self.external.trace_hop(ctx.trace(), self.trace_node) {
                ctx.set_trace(Some(hop));
            }
            let sends = self.external.on_wire(pkt.src_ip, &pkt.payload);
            Self::flush_sends(ctx, sends);
            self.drain_deliveries(ctx);
            return;
        }
        if pkt.dst_port != PROXY_MODBUS_PORT || pkt.src_ip != self.plc_addr {
            return;
        }
        let Some(frame) = TcpFrame::decode(&pkt.payload) else {
            return;
        };
        match self.outstanding {
            Some(Outstanding::Positions) => {
                let req = Request::ReadDiscreteInputs {
                    address: 0,
                    count: self.breaker_count,
                };
                if let Some(Response::Bits { values, .. }) = Response::decode(&frame.pdu, &req) {
                    self.positions = values;
                    self.outstanding = Some(Outstanding::Currents);
                    self.send_modbus(
                        ctx,
                        Request::ReadInputRegisters {
                            address: 0,
                            count: self.breaker_count,
                        },
                    );
                }
            }
            Some(Outstanding::Currents) => {
                let req = Request::ReadInputRegisters {
                    address: 0,
                    count: self.breaker_count,
                };
                if let Some(Response::Registers { values, .. }) = Response::decode(&frame.pdu, &req)
                {
                    self.currents = values;
                    self.outstanding = None;
                    self.publish_status(ctx);
                }
            }
            None => {} // write acknowledgements and stray replies
        }
    }
}

impl std::fmt::Debug for PlcProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlcProxy")
            .field("index", &self.index)
            .field("scenario", &self.scenario.tag())
            .field("stats", &self.stats)
            .finish()
    }
}
