//! Umbrella crate for the Spire reproduction workspace.
//!
//! Re-exports the public crates so root-level examples and integration tests
//! can use a single dependency. See the individual crates for documentation:
//! [`spire`], [`prime`], [`spines`], [`scada`], [`mana`], [`redteam`].

pub use diversity;
pub use itcrypto;
pub use mana;
pub use modbus;
pub use plc;
pub use prime;
pub use redteam;
pub use scada;
pub use simnet;
pub use spines;
pub use spire;
