//! The attacker-race model behind the diversity ablation (experiment E9).
//!
//! A dedicated attacker crafts exploits at some rate; the defender may run
//! identical or diversified replicas, with or without proactive recovery.
//! The question the paper's design answers: how long until **more than
//! `f`** replicas are simultaneously compromised (the moment BFT
//! guarantees evaporate)?
//!
//! * Identical replicas: the first exploit compromises everything.
//! * Diversity without recovery: the attacker needs `f+1` distinct
//!   exploits; compromise accumulates and is inevitable.
//! * Diversity + proactive recovery: each recovery wipes a compromise and
//!   changes the variant, so the attacker must keep **more than `f`**
//!   simultaneously compromised within a recovery cycle — impossible once
//!   crafting time exceeds the per-replica rejuvenation headroom.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use simnet::time::{SimDuration, SimTime};

use crate::recovery::RecoveryScheduler;
use crate::variant::{BinaryHardening, MultiCompiler, Variant};

/// Parameters of one attacker-defender race.
#[derive(Clone, Copy, Debug)]
pub struct RaceConfig {
    /// Total replicas.
    pub n: u32,
    /// Intrusion budget (breach = more than `f` compromised at once).
    pub f: u32,
    /// Whether replicas are diversified (distinct variants).
    pub diversity: bool,
    /// Proactive recovery: `Some((interval, downtime, k))` or `None`.
    pub recovery: Option<(SimDuration, SimDuration, u32)>,
    /// Mean attacker hours to craft one exploit against one variant.
    pub exploit_hours_mean: f64,
    /// Binary hardening in force.
    pub hardening: BinaryHardening,
    /// Simulation horizon.
    pub horizon: SimDuration,
}

/// Result of one race.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RaceOutcome {
    /// When the intrusion budget was exceeded, if ever within the horizon.
    pub breach_at: Option<SimTime>,
    /// Exploits the attacker finished crafting.
    pub exploits_crafted: u32,
    /// Maximum simultaneous compromises observed.
    pub max_simultaneous: u32,
}

/// Runs one race deterministically from a seed.
pub fn race(config: RaceConfig, seed: u64) -> RaceOutcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let step = SimDuration::from_secs(60); // 1-minute resolution
    let mut variants: Vec<Variant> = (0..config.n)
        .map(|i| {
            if config.diversity {
                MultiCompiler::compile(1 + i as u64)
            } else {
                MultiCompiler::identical()
            }
        })
        .collect();
    let mut compromised: Vec<bool> = vec![false; config.n as usize];
    let mut scheduler = config
        .recovery
        .map(|(interval, downtime, k)| RecoveryScheduler::new(config.n, k, interval, downtime));
    // The attacker targets replicas round-robin, always attacking a
    // not-yet-compromised replica whose current variant it observed when
    // crafting *started* — recovery invalidates work in progress.
    let mut crafting_left_hours = sample_effort(&mut rng, &config);
    let mut target: usize = 0;
    let mut target_layout = variants[0].layout;
    let mut exploits_crafted = 0;
    let mut max_simultaneous = 0;
    let mut now = SimTime::ZERO;
    while now.0 < config.horizon.0 {
        now += step;
        // Proactive recovery wipes compromises and re-diversifies.
        if let Some(s) = scheduler.as_mut() {
            for event in s.poll(now) {
                compromised[event.replica as usize] = false;
                variants[event.replica as usize] = if config.diversity {
                    event.new_variant
                } else {
                    MultiCompiler::identical()
                };
                if target == event.replica as usize && config.diversity {
                    // The work-in-progress exploit no longer matches the
                    // rejuvenated target: start over against the new layout.
                    crafting_left_hours = sample_effort(&mut rng, &config);
                    target_layout = variants[target].layout;
                }
            }
        }
        // Attacker progress.
        crafting_left_hours -= step.as_secs_f64() / 3600.0;
        if crafting_left_hours <= 0.0 {
            exploits_crafted += 1;
            // The exploit binds to the layout observed at crafting start
            // and lands on every replica still running that layout.
            for (i, v) in variants.iter().enumerate() {
                if v.layout == target_layout {
                    compromised[i] = true;
                }
            }
            // Next target: the lowest-index uncompromised replica.
            target = compromised.iter().position(|&c| !c).unwrap_or(0);
            target_layout = variants[target].layout;
            crafting_left_hours = sample_effort(&mut rng, &config);
        }
        let simultaneous = compromised.iter().filter(|&&c| c).count() as u32;
        max_simultaneous = max_simultaneous.max(simultaneous);
        if simultaneous > config.f {
            return RaceOutcome {
                breach_at: Some(now),
                exploits_crafted,
                max_simultaneous,
            };
        }
    }
    RaceOutcome {
        breach_at: None,
        exploits_crafted,
        max_simultaneous,
    }
}

fn sample_effort(rng: &mut StdRng, config: &RaceConfig) -> f64 {
    // Exponential-tail effort with a floor of half the mean: even a lucky
    // attacker cannot reverse-engineer a fresh layout instantly. This floor
    // is what makes the recovery guarantee crisp: once the full recovery
    // cycle is shorter than the minimum crafting time, no exploit can land
    // before its target layout is rotated away.
    let u: f64 = rng.gen_range(0.05..1.0);
    let tail = (-u.ln()).max(0.5);
    tail * config.exploit_hours_mean * config.hardening.effort_multiplier()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> RaceConfig {
        RaceConfig {
            n: 6,
            f: 1,
            diversity: true,
            recovery: None,
            exploit_hours_mean: 8.0,
            hardening: BinaryHardening::deployed_2017(),
            horizon: SimDuration::from_secs(14 * 24 * 3600), // two weeks
        }
    }

    #[test]
    fn identical_replicas_breach_immediately_after_first_exploit() {
        let cfg = RaceConfig {
            diversity: false,
            ..base()
        };
        let out = race(cfg, 1);
        let breach = out.breach_at.expect("identical replicas must fall");
        assert_eq!(out.max_simultaneous, 6, "one exploit took everything");
        // Breach happens as soon as the first exploit lands.
        assert!(breach.as_secs_f64() < 3.0 * 24.0 * 3600.0);
        assert!(out.exploits_crafted >= 1);
    }

    #[test]
    fn diversity_without_recovery_breaches_eventually() {
        let out = race(base(), 2);
        assert!(
            out.breach_at.is_some(),
            "accumulation is inevitable without recovery"
        );
        assert!(
            out.exploits_crafted >= 2,
            "needed multiple distinct exploits"
        );
    }

    #[test]
    fn diversity_beats_identical_on_time_to_breach() {
        let ident = race(
            RaceConfig {
                diversity: false,
                ..base()
            },
            3,
        )
        .breach_at
        .expect("breach");
        let divers = race(base(), 3).breach_at.expect("breach");
        assert!(
            divers > ident,
            "diversity bought time: {divers:?} vs {ident:?}"
        );
    }

    #[test]
    fn recovery_plus_diversity_survives_the_horizon() {
        // Recover one replica per half hour (full cycle 3h) against an
        // 8h-mean attacker whose minimum crafting time is 4h: every
        // in-progress exploit is invalidated before it can complete.
        let cfg = RaceConfig {
            recovery: Some((SimDuration::from_secs(1800), SimDuration::from_secs(300), 1)),
            ..base()
        };
        let out = race(cfg, 4);
        assert!(out.breach_at.is_none(), "recovery held the line: {out:?}");
        assert!(out.max_simultaneous <= 1);
        // Stronger: with the cycle under the crafting floor, no exploit
        // ever completes against a live layout.
        assert_eq!(out.exploits_crafted, 0);
    }

    #[test]
    fn fast_attacker_beats_slow_recovery() {
        // A 30-minute attacker against a 24h recovery cycle still wins.
        let cfg = RaceConfig {
            exploit_hours_mean: 0.5,
            recovery: Some((
                SimDuration::from_secs(4 * 3600),
                SimDuration::from_secs(300),
                1,
            )),
            ..base()
        };
        let out = race(cfg, 5);
        assert!(
            out.breach_at.is_some(),
            "recovery too slow for this attacker"
        );
    }

    #[test]
    fn hardening_delays_breach() {
        let soft = race(base(), 6).breach_at.expect("breach");
        let hard_cfg = RaceConfig {
            hardening: BinaryHardening::recommended(),
            ..base()
        };
        let hard = race(hard_cfg, 6).breach_at.expect("breach");
        assert!(
            hard > soft,
            "hardening multiplied attacker work: {hard:?} vs {soft:?}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(race(base(), 9), race(base(), 9));
    }
}
