//! Golden-digest pin: every experiment's observable behavior at
//! [`GOLDEN_SEED`], folded into one digest per experiment (journal
//! digests + simulator event counts + rendered result tables — see
//! `bench::harness::experiment_fingerprint`).
//!
//! These digests are the contract that performance work is
//! observationally invisible: serialize-once broadcast, verification
//! memoization, and any future hot-path change must leave every byte of
//! observable behavior — message bytes, event order, verdicts — exactly
//! as it was. Any drift fails here.
//!
//! To regenerate after an *intentional* behavior change:
//!
//! ```text
//! cargo test --release --test golden_digests -- --ignored --nocapture
//! ```
//!
//! and paste the printed table over `GOLDEN`.

use bench::harness::{experiment_fingerprint, FINGERPRINTED, GOLDEN_SEED};

/// The pinned fingerprints at `GOLDEN_SEED`.
const GOLDEN: &[(&str, &str)] = &[
    (
        "e1",
        "8fa05857cd519de834ec54688c4e5a41a4d85ef510edbd2d4572f7ecc0c6c9fb",
    ),
    (
        "e2",
        "3baae5b52e6ee4a3974866943cb87f690797383403e952aa3263504082f84549",
    ),
    // e3 re-pinned for the catch-up retransmit backoff: the excursion's
    // recovery stage now re-requests state transfer on an exponential
    // backoff instead of a fixed cadence, which shifts its catch-up
    // timeline. Verified to be the only cause: with the backoff
    // neutralized the previous digest reproduces exactly.
    (
        "e3",
        "a37f64af394a4328f414fa5f42b2870309b66413a9cf7cedd0ea16b1d9e12fd5",
    ),
    (
        "e4",
        "30245b3f3ec8608370abff900ab7baca296722f6f5cf1f44cb4018617e6e8433",
    ),
    (
        "e5",
        "8bcf2effa7a70d7f00e2b1359a193e6d6106ecadcc38481fbe8d92e5d6994ff2",
    ),
    (
        "e6",
        "f0795e0fac8bacba9973edd66a9fa1a13ec70869f64c6df805cc514e1bfc2885",
    ),
    (
        "e7",
        "aeedfec5a99b583d5ca913b0fc2ff9c681088779dc7cb9ab4ac5a2138ec17df7",
    ),
    (
        "e7b",
        "ee471a4bacc790ec8622ef244914da8cf94a1cf677b3ebe18d5f202bb828cbf6",
    ),
    (
        "e8",
        "1aeff346864cbb39620d55194546ed671c2be32dd3f52c301996d86008fb74b3",
    ),
    (
        "e9",
        "fdec6f6dbb10540a68d9199cca95a773385bd0365ad24dec60ad6583a201dda3",
    ),
    (
        "e10",
        "7bdb380856e1e63d9521254e9822b89e15df2bdc4952d9bb1691db54c1b9db81",
    ),
    (
        "e11b",
        "ddf735f710a6484fcee7f9f74d5dc49b080c077eaa4cf83eea7f07bcc6ebfbf7",
    ),
    (
        "e12",
        "7b22a3c488ecd5a7d6370c375ec26f3fdf17e69a51b938aac4c01ef0a204c451",
    ),
    (
        "e13a",
        "c25bbd190891ba6ea5e8157b0b7a3c42fe8f7f6fee38bcd5161d5b0f0e7aed0e",
    ),
    (
        "e13b",
        "f4d4dcb88d24db9e2fcd79d303454b1f01351899fbbfd6b83fcd92913c9b3f42",
    ),
    (
        "e13c",
        "ce51ee7f56a8290713d0577ea7cbd16b29bb545f9a2fcba5070e41815fef51f3",
    ),
    (
        "e16a",
        "67d011a9442ad6c287760d2fa80d2c2966eef64af0dc9eee8fbdb3b243d8e124",
    ),
    (
        "e16b",
        "060a83049ad91c9e561333c91843ab2c31500c6023eda7273bdc3247883ce794",
    ),
];

fn pinned(id: &str) -> &'static str {
    GOLDEN
        .iter()
        .find(|(g, _)| *g == id)
        .map(|(_, d)| *d)
        .expect("experiment is pinned")
}

fn check(id: &str) {
    let actual = experiment_fingerprint(id, GOLDEN_SEED);
    assert_eq!(
        actual,
        pinned(id),
        "{id} fingerprint drifted at seed {GOLDEN_SEED}: observable behavior changed \
         (if intentional, regenerate with `cargo test --release --test golden_digests \
         -- --ignored --nocapture`)"
    );
}

#[test]
fn golden_covers_every_fingerprinted_experiment() {
    let pinned: Vec<&str> = GOLDEN.iter().map(|(id, _)| *id).collect();
    assert_eq!(pinned, FINGERPRINTED);
}

#[test]
fn e1_digest_pinned() {
    check("e1");
}

#[test]
fn e2_digest_pinned() {
    check("e2");
}

#[test]
fn e3_digest_pinned() {
    check("e3");
}

#[test]
fn e4_digest_pinned() {
    check("e4");
}

#[test]
fn e5_digest_pinned() {
    check("e5");
}

#[test]
fn e6_digest_pinned() {
    check("e6");
}

#[test]
fn e7_digest_pinned() {
    check("e7");
}

#[test]
fn e7b_digest_pinned() {
    check("e7b");
}

#[test]
fn e8_digest_pinned() {
    check("e8");
}

#[test]
fn e9_digest_pinned() {
    check("e9");
}

#[test]
fn e10_digest_pinned() {
    check("e10");
}

#[test]
fn e11b_digest_pinned() {
    check("e11b");
}

/// The batched-E11 fingerprint is additionally pinned at a second seed:
/// batching touches the wire format and the ordering pipeline, so one
/// seed's stability is not enough evidence that the batch close / flush
/// timing is deterministic. Release-only — a second debug-build batched
/// ramp would blow the `cargo test -q` budget.
#[cfg(not(debug_assertions))]
#[test]
fn e11b_digest_pinned_at_second_seed() {
    assert_eq!(
        experiment_fingerprint("e11b", 1111),
        "b6809b988ed44f78793e272acaba82d3289c03a902c6180455e106dc8579f224",
        "e11b fingerprint drifted at seed 1111"
    );
}

#[test]
fn e12_digest_pinned() {
    check("e12");
}

#[test]
fn e13a_digest_pinned() {
    check("e13a");
}

#[test]
fn e13b_digest_pinned() {
    check("e13b");
}

#[test]
fn e13c_digest_pinned() {
    check("e13c");
}

#[test]
fn e16a_digest_pinned() {
    check("e16a");
}

#[test]
fn e16b_digest_pinned() {
    check("e16b");
}

/// The E16 campaigns are additionally pinned at a second seed: the
/// closed loop feeds detector scores back into node up/downs, so one
/// seed's stability is weak evidence that the controller's actuation
/// timeline is deterministic. Release-only — a second debug-build
/// campaign pair would blow the `cargo test -q` budget.
#[cfg(not(debug_assertions))]
#[test]
fn e16_digests_pinned_at_second_seed() {
    assert_eq!(
        experiment_fingerprint("e16a", 1111),
        "b016d7d679cf6ee928e1a37c4a8e7b9e321b75b29553fbb2b0130900c84384f7",
        "e16a fingerprint drifted at seed 1111"
    );
    assert_eq!(
        experiment_fingerprint("e16b", 1111),
        "f695a8e05549b69e6e875428032f17221ce77b9e526c8077977c32613ab11fbb",
        "e16b fingerprint drifted at seed 1111"
    );
}

/// The issue's acceptance bar: the e13 fingerprints must be stable
/// across two runs in the same process at the golden seed.
#[test]
fn e13_fingerprints_stable_across_two_runs() {
    for id in ["e13a", "e13b", "e13c"] {
        let first = experiment_fingerprint(id, GOLDEN_SEED);
        let second = experiment_fingerprint(id, GOLDEN_SEED);
        assert_eq!(
            first, second,
            "{id} fingerprint unstable at seed {GOLDEN_SEED}"
        );
    }
}

/// Prints the current fingerprint table for pasting into `GOLDEN`.
#[test]
#[ignore = "regeneration helper, not a check"]
fn print_current_fingerprints() {
    for id in FINGERPRINTED {
        println!("    (\n        \"{id}\",\n        \"{}\",\n    ),", {
            experiment_fingerprint(id, GOLDEN_SEED)
        });
    }
}
