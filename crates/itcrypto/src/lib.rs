//! Cryptographic substrate for the Spire reproduction.
//!
//! The original Spire deployment used OpenSSL (RSA signatures, SHA digests,
//! and symmetric encryption on Spines links). This crate provides
//! from-scratch implementations with the same *protocol roles*:
//!
//! * [`mod@sha256`] — a complete SHA-256 implementation used for all digests.
//! * [`hmac`] — HMAC-SHA-256 for link authentication and as a PRF.
//! * [`schnorr`] — transferable digital signatures (Schnorr over a ~62-bit
//!   safe-prime group). **Simulation-grade, not secure**: the group is small
//!   enough that discrete logs are practical for a real attacker. The
//!   algebra is real, so in-protocol behaviour (valid signatures verify,
//!   forgeries without the key are rejected) is faithful.
//! * [`merkle`] — Merkle trees for state-transfer digests and checkpoints.
//! * [`keys`] — key pairs, a PKI-style registry, and session keys.
//! * [`stream`] — an HMAC-counter-mode stream cipher for link encryption.
//! * [`verify_cache`] — bounded memoization of signature-verification
//!   verdicts (digest-keyed, observationally invisible).
//!
//! # Examples
//!
//! ```
//! use itcrypto::keys::KeyPair;
//!
//! let mut kp = KeyPair::generate(42);
//! let sig = kp.sign(b"open breaker B57");
//! assert!(kp.public_key().verify(b"open breaker B57", &sig));
//! assert!(!kp.public_key().verify(b"open breaker B56", &sig));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hmac;
pub mod keys;
pub mod merkle;
pub mod schnorr;
pub mod sha256;
pub mod stream;
pub mod verify_cache;

pub use hmac::hmac_sha256;
pub use keys::{KeyPair, KeyRegistry, PublicKey};
pub use merkle::MerkleTree;
pub use schnorr::Signature;
pub use sha256::{sha256, Digest};
pub use verify_cache::VerifyCache;
