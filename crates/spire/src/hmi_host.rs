//! The HMI host process: vote-gated display plus the red-team exercise's
//! breaker-cycle update generator.
//!
//! §IV-A: "we were also required to develop an automatic update generation
//! tool for Spire that would cycle through the breakers, flipping each
//! periodically in a predetermined cycle that the red team would attempt
//! to disrupt." [`CycleConfig`] is that tool.

use bytes::Bytes;
use itcrypto::keys::KeyPair;
use plc::topology::Scenario;
use prime::types::{SignedUpdate, Update};
use scada::hmi::{Hmi, HmiUpdate};
use scada::updates::ScadaUpdate;
use simnet::packet::Packet;
use simnet::process::{Context, Process};
use simnet::time::SimDuration;
use simnet::types::IpAddr;
use simnet::wire::Wire;
use spines::daemon::SpinesDaemon;

use crate::config::{SpireConfig, EXTERNAL_SPINES_PORT, GROUP_MASTERS};
use crate::messages::ExternalMsg;

const CYCLE_TIMER: u64 = 1;

/// The predetermined breaker-flip cycle.
#[derive(Clone, Debug)]
pub struct CycleConfig {
    /// Scenario whose breakers are cycled.
    pub scenario: Scenario,
    /// Time between flips.
    pub period: SimDuration,
    /// Stop after this many flips (0 = run forever).
    pub max_flips: u64,
}

/// Counters for experiments.
#[derive(Clone, Copy, Debug, Default)]
pub struct HmiStats {
    /// Supervisory commands issued.
    pub commands_sent: u64,
    /// Display frames applied after `f+1` votes.
    pub frames_applied: u64,
    /// Frames received but still below the vote threshold.
    pub frames_pending: u64,
}

/// One HMI location.
pub struct HmiHost {
    cfg: SpireConfig,
    index: u32,
    /// The external Spines daemon.
    pub external: SpinesDaemon,
    key: KeyPair,
    client: u32,
    client_seq: u64,
    /// The display state (rendering, reaction-time log, sensor box).
    pub hmi: Hmi,
    votes: crate::vote::VoteCollector<(String, Vec<bool>, Vec<u16>, u64)>,
    cycle: Option<CycleConfig>,
    cycle_breaker: u16,
    cycle_state: Vec<bool>,
    /// Counters.
    pub stats: HmiStats,
    /// Observability hub (detached until [`HmiHost::attach_obs`]).
    obs: obs::ObsHub,
    c_frames_applied: obs::Counter,
    c_frames_pending: obs::Counter,
    c_commands_sent: obs::Counter,
    /// Simulation node id used to label trace spans (derived from the
    /// deterministic node-creation order in `deploy::build`).
    trace_node: u32,
}

fn hmi_counters(hub: &obs::ObsHub, index: u32) -> [obs::Counter; 3] {
    [
        hub.counter(&format!("hmi.{index}.frames_applied")),
        hub.counter(&format!("hmi.{index}.frames_pending")),
        hub.counter(&format!("hmi.{index}.commands_sent")),
    ]
}

impl HmiHost {
    /// Creates HMI host `index`.
    pub fn new(cfg: SpireConfig, index: u32) -> Self {
        let mut external = SpinesDaemon::new(cfg.ext_daemon_of_hmi(index), cfg.external_spines());
        external.subscribe(cfg.hmi_group(index));
        let key = cfg.hmi_keypair(index);
        let client = cfg.client_of_hmi(index);
        let f = cfg.prime.f;
        let hub = obs::ObsHub::new();
        let [frames_applied, frames_pending, commands_sent] = hmi_counters(&hub, index);
        let trace_node = cfg.n() + 2 * cfg.proxies.len() as u32 + index;
        let mut host = HmiHost {
            cfg,
            index,
            external,
            key,
            client,
            client_seq: 0,
            hmi: Hmi::new(),
            votes: crate::vote::VoteCollector::new(f + 1),
            cycle: None,
            cycle_breaker: 0,
            cycle_state: Vec::new(),
            stats: HmiStats::default(),
            obs: hub,
            c_frames_applied: frames_applied,
            c_frames_pending: frames_pending,
            c_commands_sent: commands_sent,
            trace_node,
        };
        if index == 0 {
            if let Some((scenario, period, max_flips)) = host.cfg.cycle {
                host.set_cycle(CycleConfig {
                    scenario,
                    period,
                    max_flips,
                });
            }
        }
        host
    }

    /// HMI index.
    pub fn index(&self) -> u32 {
        self.index
    }

    /// Joins the shared deployment hub, carrying over any counts
    /// accumulated while detached.
    pub fn attach_obs(&mut self, hub: &obs::ObsHub) {
        let [frames_applied, frames_pending, commands_sent] = hmi_counters(hub, self.index);
        frames_applied.add(self.c_frames_applied.get());
        frames_pending.add(self.c_frames_pending.get());
        commands_sent.add(self.c_commands_sent.get());
        self.external
            .attach_obs(hub, &format!("spines.ext.hmi{}", self.index));
        self.obs = hub.clone();
        self.c_frames_applied = frames_applied;
        self.c_frames_pending = frames_pending;
        self.c_commands_sent = commands_sent;
    }

    /// Arms the breaker-cycle generator.
    pub fn set_cycle(&mut self, cycle: CycleConfig) {
        self.cycle_state = vec![true; cycle.scenario.topology().breaker_count()];
        self.cycle = Some(cycle);
    }

    fn flush_sends(ctx: &mut Context<'_>, sends: Vec<(IpAddr, Bytes)>) {
        for (addr, bytes) in sends {
            let pkt = Packet::udp(
                ctx.ip(0),
                addr,
                EXTERNAL_SPINES_PORT,
                EXTERNAL_SPINES_PORT,
                bytes,
            );
            ctx.send(0, pkt);
        }
    }

    /// Issues one supervisory command (operator action or cycle step).
    pub fn issue_command(
        &mut self,
        ctx: &mut Context<'_>,
        scenario: &str,
        breaker: u16,
        close: bool,
    ) {
        // A supervisory command roots a fresh trace: everything from
        // here to the breaker's mechanical actuation hangs off it.
        let root = self.obs.start_root(obs::Stage::Command, self.trace_node);
        if root.is_some() {
            ctx.set_trace(root);
        }
        let scada_update = ScadaUpdate::HmiCommand {
            scenario: scenario.to_string(),
            breaker,
            close,
        };
        self.client_seq += 1;
        let update = Update::new(self.client, self.client_seq, scada_update.to_wire());
        let sig = self.key.sign(&update.to_wire());
        let msg = ExternalMsg::ClientUpdate(SignedUpdate { update, sig });
        let sends = self.external.multicast(GROUP_MASTERS, 1, msg.to_wire());
        Self::flush_sends(ctx, sends);
        self.obs.end_span(root);
        self.stats.commands_sent += 1;
        self.c_commands_sent.inc();
    }

    fn cycle_step(&mut self, ctx: &mut Context<'_>) {
        let Some(cycle) = self.cycle.clone() else {
            return;
        };
        if cycle.max_flips > 0 && self.stats.commands_sent >= cycle.max_flips {
            return;
        }
        let breaker = self.cycle_breaker;
        let next_state = !self.cycle_state[breaker as usize];
        self.cycle_state[breaker as usize] = next_state;
        let tag = cycle.scenario.tag();
        self.issue_command(ctx, &tag, breaker, next_state);
        self.cycle_breaker = (self.cycle_breaker + 1) % self.cycle_state.len() as u16;
        ctx.set_timer(cycle.period, CYCLE_TIMER);
    }

    fn drain_deliveries(&mut self, ctx: &mut Context<'_>) {
        for delivery in self.external.take_deliveries() {
            let Ok(msg) = ExternalMsg::from_wire(&delivery.payload) else {
                continue;
            };
            let ExternalMsg::HmiFrame {
                replica,
                scenario,
                positions,
                currents,
                exec_seq,
            } = msg
            else {
                continue;
            };
            let key = (
                scenario.clone(),
                positions.clone(),
                currents.clone(),
                exec_seq,
            );
            if self.votes.vote(key, replica) {
                self.stats.frames_applied += 1;
                self.c_frames_applied.inc();
                self.obs.journal(obs::Event::FrameEmit {
                    hmi: self.index,
                    seq: exec_seq,
                });
                // The f+1-th matching frame releases the display update;
                // the winning vote's context parents the delivery.
                let deliver =
                    self.obs
                        .instant_span(ctx.trace(), obs::Stage::Deliver, self.trace_node);
                let changed = self.hmi.apply(
                    HmiUpdate {
                        scenario,
                        positions,
                        currents,
                    },
                    ctx.now(),
                );
                if changed {
                    self.obs
                        .instant_span(deliver, obs::Stage::Render, self.trace_node);
                }
            } else {
                self.stats.frames_pending += 1;
                self.c_frames_pending.inc();
            }
        }
    }
}

impl Process for HmiHost {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.listen(EXTERNAL_SPINES_PORT);
        if let Some(cycle) = &self.cycle {
            ctx.set_timer(cycle.period, CYCLE_TIMER);
        }
        ctx.log(format!("hmi {} online", self.index));
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: u64) {
        if timer == CYCLE_TIMER {
            self.cycle_step(ctx);
        }
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        if pkt.dst_port != EXTERNAL_SPINES_PORT {
            return;
        }
        if let Some(hop) = self.external.trace_hop(ctx.trace(), self.trace_node) {
            ctx.set_trace(Some(hop));
        }
        let sends = self.external.on_wire(pkt.src_ip, &pkt.payload);
        Self::flush_sends(ctx, sends);
        self.drain_deliveries(ctx);
    }
}

impl std::fmt::Debug for HmiHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HmiHost")
            .field("index", &self.index)
            .field("stats", &self.stats)
            .finish()
    }
}

// cfg is read by deploy/latency helpers; silence the "never read" lint on
// the field until those land.
impl HmiHost {
    /// The deployment configuration this host was built from.
    pub fn config(&self) -> &SpireConfig {
        &self.cfg
    }
}
