//! HMAC-SHA-256 (RFC 2104), used for Spines link authentication and as the
//! PRF behind [`crate::stream`] and key derivation.

use crate::sha256::{Digest, Sha256};

const BLOCK: usize = 64;

/// Computes `HMAC-SHA-256(key, msg)`.
///
/// # Examples
///
/// ```
/// use itcrypto::hmac::hmac_sha256;
///
/// let tag = hmac_sha256(b"key", b"The quick brown fox jumps over the lazy dog");
/// assert_eq!(
///     tag.to_hex(),
///     "f7bc83f430538424b13298e6aa6fb143ef4d59a14946175997479dbc2d1a3cd8"
/// );
/// ```
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> Digest {
    HmacKey::new(key).mac(msg)
}

/// Computes an HMAC over the concatenation of several parts.
pub fn hmac_sha256_concat(key: &[u8], parts: &[&[u8]]) -> Digest {
    HmacKey::new(key).mac_concat(parts)
}

/// A precomputed HMAC key: the ipad/opad blocks are absorbed into SHA-256
/// midstates once at construction, so each [`HmacKey::mac`] costs two
/// compressions for a short message instead of four plus the key-block
/// setup. The Spines link layer MACs every keystream block and every
/// frame, so this is the hottest constructor in the workload — callers
/// that reuse a key (link crypto, stream cipher) keep one `HmacKey` and
/// amortize the setup away. Produces bit-identical tags to the one-shot
/// [`hmac_sha256`] (which is now a thin wrapper).
#[derive(Clone)]
pub struct HmacKey {
    /// SHA-256 state after absorbing `key ^ ipad`.
    inner: Sha256,
    /// SHA-256 state after absorbing `key ^ opad`.
    outer: Sha256,
}

impl HmacKey {
    /// Prepares the midstates for `key` (hashed first if longer than the
    /// 64-byte block, per RFC 2104).
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; BLOCK];
        if key.len() > BLOCK {
            let d = crate::sha256::sha256(key);
            k[..32].copy_from_slice(d.as_bytes());
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0x36u8; BLOCK];
        let mut opad = [0x5cu8; BLOCK];
        for i in 0..BLOCK {
            ipad[i] ^= k[i];
            opad[i] ^= k[i];
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        let mut outer = Sha256::new();
        outer.update(&opad);
        HmacKey { inner, outer }
    }

    /// Computes `HMAC-SHA-256(key, msg)` from the midstates.
    pub fn mac(&self, msg: &[u8]) -> Digest {
        self.mac_concat(&[msg])
    }

    /// Computes the HMAC over the concatenation of several parts without
    /// joining them into one buffer.
    pub fn mac_concat(&self, parts: &[&[u8]]) -> Digest {
        let mut inner = self.inner.clone();
        for p in parts {
            inner.update(p);
        }
        let inner_digest = inner.finalize();
        let mut outer = self.outer.clone();
        outer.update(inner_digest.as_bytes());
        outer.finalize()
    }
}

/// Constant-time-ish tag comparison. The simulator has no real timing side
/// channel, but the comparison is still written without early exit so the
/// code shape matches a production implementation.
pub fn verify_tag(expected: &Digest, actual: &Digest) -> bool {
    let mut acc = 0u8;
    for (a, b) in expected.as_bytes().iter().zip(actual.as_bytes()) {
        acc |= a ^ b;
    }
    acc == 0
}

/// Simple HKDF-like key derivation: `derive_key(master, label)` produces a
/// 32-byte subkey bound to `label`.
///
/// # Examples
///
/// ```
/// use itcrypto::hmac::derive_key;
///
/// let link = derive_key(b"master-secret", b"spines-link-3-4");
/// let other = derive_key(b"master-secret", b"spines-link-3-5");
/// assert_ne!(link, other);
/// ```
pub fn derive_key(master: &[u8], label: &[u8]) -> [u8; 32] {
    hmac_sha256(master, label).0
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 4231 test vectors.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            tag.to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2_short_key() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            tag.to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        // 131-byte key forces the key-hashing path.
        let key = [0xaau8; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            tag.to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn different_keys_different_tags() {
        assert_ne!(hmac_sha256(b"k1", b"msg"), hmac_sha256(b"k2", b"msg"));
    }

    #[test]
    fn verify_tag_accepts_equal_rejects_unequal() {
        let a = hmac_sha256(b"k", b"m");
        let b = hmac_sha256(b"k", b"m");
        let c = hmac_sha256(b"k", b"n");
        assert!(verify_tag(&a, &b));
        assert!(!verify_tag(&a, &c));
    }

    #[test]
    fn concat_matches_joined() {
        let joined = hmac_sha256(b"k", b"abcdef");
        assert_eq!(hmac_sha256_concat(b"k", &[b"abc", b"def"]), joined);
    }

    #[test]
    fn derived_keys_are_label_separated() {
        let a = derive_key(b"m", b"a");
        let b = derive_key(b"m", b"b");
        let a2 = derive_key(b"m", b"a");
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }

    #[test]
    fn precomputed_key_matches_oneshot() {
        // Key lengths around the block size (including the hashed-key
        // path) and message lengths around compression boundaries.
        for key_len in [0usize, 1, 31, 32, 63, 64, 65, 131] {
            let key: Vec<u8> = (0..key_len).map(|x| (x * 7) as u8).collect();
            let hk = HmacKey::new(&key);
            for msg_len in [0usize, 1, 16, 55, 56, 64, 100, 1000] {
                let msg: Vec<u8> = (0..msg_len).map(|x| (x * 13) as u8).collect();
                assert_eq!(
                    hk.mac(&msg),
                    hmac_sha256(&key, &msg),
                    "key_len={key_len} msg_len={msg_len}"
                );
            }
        }
    }

    #[test]
    fn precomputed_concat_matches_joined() {
        let hk = HmacKey::new(b"k");
        assert_eq!(hk.mac_concat(&[b"abc", b"", b"def"]), hk.mac(b"abcdef"));
        assert_eq!(hk.mac_concat(&[]), hk.mac(b""));
    }
}
