//! Experiments E4 and E5: the power-plant test deployment (§V).

use crate::harness::RunMeta;
use diversity::recovery::RecoveryScheduler;
use plc::topology::Scenario;
use prime::application::Application;
use prime::replica::Timing;
use prime::types::Config as PrimeConfig;
use redteam::lab::CommercialLab;
use scada::commercial::CommercialHmi;
use simnet::time::SimDuration;
use spire::config::SpireConfig;
use spire::deploy::Deployment;
use spire::hardening::HardeningProfile;
use spire::latency::{measure_spire, summarize, LatencySummary, Sample};

pub(crate) fn fast_timing() -> Timing {
    Timing {
        aru_interval: SimDuration::from_millis(10),
        pp_interval: SimDuration::from_millis(10),
        suspect_timeout: SimDuration::from_millis(2_000),
        checkpoint_interval: 20,
        catchup_timeout: SimDuration::from_millis(300),
    }
}

/// E4 result: six (compressed) days of continuous plant operation.
#[derive(Clone, Debug)]
pub struct PlantRun {
    /// Simulated seconds per "deployment day" (time compression factor).
    pub seconds_per_day: u64,
    /// Days simulated.
    pub days: u64,
    /// Proactive recoveries completed.
    pub recoveries: u64,
    /// Minimum executed update count across healthy replicas at the end.
    pub min_executed: u64,
    /// HMI frames applied across all three HMIs.
    pub hmi_frames: u64,
    /// View changes observed (0 = leader never faltered).
    pub view_changes: u64,
    /// Longest interval between consecutive HMI-0 display updates.
    pub longest_display_gap: SimDuration,
    /// Whether all healthy replicas ended with identical state digests.
    pub replicas_consistent: bool,
    /// Full metrics/journal snapshot of the run.
    pub obs: obs::ObsReport,
    /// Determinism capture of the deployment (digest + event count).
    pub meta: RunMeta,
}

/// E4 — the plant deployment: 6 replicas (f=1, k=1), the full 17-PLC
/// scenario set, breaker cycle running, periodic proactive recovery, six
/// compressed days of continuous operation.
///
/// Time compression: one deployment "day" is `seconds_per_day` simulated
/// seconds (the event patterns — polls, cycle flips, recoveries — keep
/// their relative cadence; see EXPERIMENTS.md).
pub fn e4_plant_deployment(seed: u64, days: u64, seconds_per_day: u64) -> PlantRun {
    e4_plant_deployment_traced(seed, days, seconds_per_day, false, false)
}

/// [`e4_plant_deployment`] with the journal optionally echoed live to
/// stdout (`spire-sim e4 --trace`) and causal span tracing optionally
/// enabled (`--trace-export`; every cycle command then journals its
/// span tree).
pub fn e4_plant_deployment_traced(
    seed: u64,
    days: u64,
    seconds_per_day: u64,
    trace: bool,
    span_tracing: bool,
) -> PlantRun {
    // Full plant configuration but with the emulated fleet reduced to two
    // distribution and two generation PLCs so six days stay tractable; the
    // real + emulated mix is preserved.
    let mut cfg = SpireConfig::plant();
    cfg.proxies.truncate(5);
    cfg.hmis = 3;
    // The deployment's LAN links are lossless with fixed latency, so the
    // seed must enter through the workload: a seed-derived sub-millisecond
    // phase on the cycle period makes distinct seeds produce distinct
    // event streams (and journal digests) while identical seeds reproduce
    // byte-identically.
    let period = SimDuration::from_micros(700_000 + seed % 1_000);
    let cfg = cfg.with_cycle(Scenario::PlantSubset, period, 0);
    let mut d = Deployment::build(cfg, HardeningProfile::deployed(), seed);
    d.obs.set_trace(trace);
    d.obs.set_tracing(span_tracing);
    for i in 0..6 {
        d.replica_mut(i).set_timing(fast_timing());
    }
    // One proactive recovery per simulated "day-sixth", k = 1, downtime 2 s.
    let day = SimDuration::from_secs(seconds_per_day);
    let interval = SimDuration::from_secs((seconds_per_day / 6).max(4));
    let mut scheduler = RecoveryScheduler::new(6, 1, interval, SimDuration::from_secs(2));
    d.run_with_recovery(day.saturating_mul(days), &mut scheduler);
    d.run_for(SimDuration::from_secs(5));

    let min_executed = (0..6)
        .map(|i| d.replica(i).replica.exec_seq())
        .min()
        .unwrap_or(0);
    let hmi_frames: u64 = (0..3)
        .map(|h| d.obs.counter_value(&format!("hmi.{h}.frames_applied")))
        .sum();
    let view_changes =
        d.obs
            .journal_count(|e| matches!(e, obs::Event::ViewChange { .. })) as u64;
    let digests: Vec<_> = (0..6)
        .map(|i| {
            (
                d.replica(i).replica.exec_seq(),
                d.replica(i).replica.app().digest(),
            )
        })
        .collect();
    let max_exec = digests.iter().map(|(e, _)| *e).max().unwrap_or(0);
    let at_head: Vec<_> = digests.iter().filter(|(e, _)| *e == max_exec).collect();
    let replicas_consistent = at_head.windows(2).all(|w| w[0].1 == w[1].1);

    // Longest gap between display updates on HMI 0.
    let log = &d.hmi(0).hmi.update_log;
    let mut longest = SimDuration::ZERO;
    for w in log.windows(2) {
        let gap = w[1].0.since(w[0].0);
        if gap > longest {
            longest = gap;
        }
    }
    PlantRun {
        seconds_per_day,
        days,
        recoveries: scheduler.completed,
        min_executed,
        hmi_frames,
        view_changes,
        longest_display_gap: longest,
        replicas_consistent,
        meta: RunMeta::capture("e4.deployment", &d.obs, &d.sim),
        obs: d.obs.report(),
    }
}

/// E5 result: Spire vs. commercial reaction-time distributions.
#[derive(Clone, Debug)]
pub struct ReactionTimes {
    /// Spire's distribution.
    pub spire: LatencySummary,
    /// The commercial system's distribution.
    pub commercial: LatencySummary,
    /// The plant's timing requirement used for the verdict (200 ms, a
    /// typical HMI-refresh requirement; the paper gives no number).
    pub requirement: SimDuration,
    /// Metrics snapshot of the Spire-side run, including the
    /// `e5.spire.reaction_us` and `e5.commercial.reaction_us` histograms
    /// and the journaled span trees of every measured flip.
    pub obs: obs::ObsReport,
    /// Per-stage attribution of Spire's reaction path (detect →
    /// publish → overlay → Prime ordering → deliver → render), from
    /// the causal traces of the measured flips.
    pub spire_stages: Option<obs::trace::StageBreakdown>,
    /// Per-stage attribution of the commercial reaction path (detect →
    /// poll → render).
    pub commercial_stages: Option<obs::trace::StageBreakdown>,
    /// Determinism captures: the Spire deployment and the commercial lab.
    pub meta: Vec<RunMeta>,
}

impl ReactionTimes {
    /// Whether Spire met the requirement (the paper's reported outcome).
    pub fn spire_meets_requirement(&self) -> bool {
        self.spire.median <= self.requirement
    }

    /// Whether Spire beat the commercial system (the paper's headline).
    pub fn spire_faster(&self) -> bool {
        self.spire.median < self.commercial.median
    }
}

/// E5 — the measurement device: flip a breaker, time the HMI update, for
/// both systems.
pub fn e5_reaction_time(seed: u64, flips: usize) -> ReactionTimes {
    e5_reaction_time_traced(seed, flips, false)
}

/// [`e5_reaction_time`] with the journal optionally echoed live to
/// stdout (`spire-sim e5 --trace`).
///
/// Causal span tracing is always on for E5: each flip's trace follows
/// the breaker change from the PLC through the proxy, the external
/// overlay, Prime's ordering rounds, and the HMI vote to the rendered
/// display, and the per-stage p50 shares are asserted to telescope to
/// the measured end-to-end reaction.
pub fn e5_reaction_time_traced(seed: u64, flips: usize, trace: bool) -> ReactionTimes {
    // Spire side: fast polling, plant subset.
    let cfg = SpireConfig::minimal(PrimeConfig::plant(), Scenario::PlantSubset);
    let mut d = Deployment::build(cfg, HardeningProfile::deployed(), seed);
    d.obs.set_trace(trace);
    d.obs.set_tracing(true);
    for i in 0..6 {
        d.replica_mut(i).set_timing(fast_timing());
    }
    // The §V measurement used a dedicated fast poll; 20 ms keeps the
    // proxy's detection latency small relative to ordering.
    d.proxy_mut(0)
        .set_poll_interval(SimDuration::from_millis(20));
    d.proxy_mut(0).verbose_updates = true;
    // As in E4, the seed must enter through the workload: a seed-derived
    // sub-millisecond phase shifts every flip relative to the 20 ms poll
    // schedule, so distinct seeds produce distinct detect latencies (and
    // journal digests) while identical seeds reproduce exactly.
    let phase = SimDuration::from_micros(seed % 1_000);
    d.run_for(SimDuration::from_secs(3));
    d.run_for(phase);
    let spire_samples = measure_spire(&mut d, 0, 1, 0, flips, SimDuration::from_secs(1));

    // Commercial side: same topology PLC, primary-backup master pair.
    let mut lab = CommercialLab::build(seed + 7, false);
    lab.obs.set_trace(trace);
    lab.obs.set_tracing(true);
    lab.sim.run_for(SimDuration::from_secs(2));
    lab.sim.run_for(phase);
    let mut commercial_samples: Vec<Sample> = Vec::new();
    let mut state = true;
    for i in 0..flips {
        // Same deterministic phase jitter as the Spire side.
        lab.sim
            .run_for(SimDuration::from_micros((i as u64 * 7_919) % 100_000));
        state = !state;
        let flipped_at = lab.sim.now();
        let before = lab
            .sim
            .process_ref::<CommercialHmi>(lab.hmi)
            .expect("hmi")
            .box_transitions
            .len();
        lab.sim
            .process_mut::<plc::emulator::PlcEmulator>(lab.plc)
            .expect("plc")
            .force_breaker(0, state, flipped_at);
        lab.sim.run_for(SimDuration::from_secs(1));
        let hmi = lab.sim.process_ref::<CommercialHmi>(lab.hmi).expect("hmi");
        let displayed_at = hmi
            .box_transitions
            .get(before..)
            .and_then(|new| new.iter().find(|&&(_, closed)| closed == state))
            .map(|&(t, _)| t);
        let sample = Sample {
            flipped_at,
            displayed_at,
        };
        if let Some(reaction) = sample.reaction() {
            d.obs
                .histogram("e5.commercial.reaction_us")
                .record(reaction.as_micros());
        }
        commercial_samples.push(sample);
    }

    let spire = summarize(&spire_samples);
    let commercial = summarize(&commercial_samples);
    let spire_stages = obs::trace::stage_breakdown(&d.obs.journal_records(), obs::Stage::Detect);
    let commercial_stages =
        obs::trace::stage_breakdown(&lab.obs.journal_records(), obs::Stage::Detect);
    // The stage shares must telescope: each column sums to its chain's
    // end-to-end total, and when every flip completed, the p50 chain is
    // the median flip, so its total matches the measured median.
    for (summary, stages) in [(&spire, &spire_stages), (&commercial, &commercial_stages)] {
        let Some(b) = stages else { continue };
        assert_eq!(b.p50_sum_us(), b.p50_total_us, "stage shares telescope");
        if summary.missed == 0 && b.chains == summary.samples as u64 {
            assert!(
                b.p50_total_us.abs_diff(summary.median.as_micros()) <= 1,
                "p50 chain total {}us != median reaction {}us",
                b.p50_total_us,
                summary.median.as_micros(),
            );
        }
    }
    ReactionTimes {
        spire,
        commercial,
        requirement: SimDuration::from_millis(200),
        meta: vec![
            RunMeta::capture("e5.spire", &d.obs, &d.sim),
            RunMeta::capture("e5.commercial", &lab.obs, &lab.sim),
        ],
        obs: d.obs.report(),
        spire_stages,
        commercial_stages,
    }
}

/// Renders E5 as the measured table, with the per-stage reaction-path
/// attribution of each system when tracing captured it.
pub fn render_reaction(r: &ReactionTimes) -> String {
    let mut out = format!(
        "system      samples  missed  min      median   mean     max\n\
         spire       {:>7}  {:>6}  {:>7}  {:>7}  {:>7}  {:>7}\n\
         commercial  {:>7}  {:>6}  {:>7}  {:>7}  {:>7}  {:>7}\n\
         requirement: median <= {}   spire meets: {}   spire faster: {}\n",
        r.spire.samples,
        r.spire.missed,
        r.spire.min.to_string(),
        r.spire.median.to_string(),
        r.spire.mean.to_string(),
        r.spire.max.to_string(),
        r.commercial.samples,
        r.commercial.missed,
        r.commercial.min.to_string(),
        r.commercial.median.to_string(),
        r.commercial.mean.to_string(),
        r.commercial.max.to_string(),
        r.requirement,
        r.spire_meets_requirement(),
        r.spire_faster(),
    );
    use std::fmt::Write as _;
    for (label, stages) in [
        ("spire", &r.spire_stages),
        ("commercial", &r.commercial_stages),
    ] {
        let Some(b) = stages else { continue };
        let _ = write!(out, "\n{label} reaction path ({} chains):\n", b.chains);
        let _ = writeln!(
            out,
            "  {:<18} {:>6} {:>9} {:>9}",
            "stage", "count", "p50_us", "p99_us"
        );
        for row in &b.rows {
            let _ = writeln!(
                out,
                "  {:<18} {:>6} {:>9} {:>9}",
                row.stage.name(),
                row.count,
                row.p50_us,
                row.p99_us
            );
        }
        let _ = writeln!(
            out,
            "  {:<18} {:>6} {:>9} {:>9}",
            "total", "", b.p50_total_us, b.p99_total_us
        );
    }
    out
}
