//! Overlay topology analysis: shortest paths and node-disjoint path
//! counts.
//!
//! Spines' intrusion tolerance degrades with overlay connectivity: a
//! message survives `c-1` compromised intermediate daemons iff the overlay
//! is `c`-connected between source and destination (the dissemination
//! floods over all paths). The deployment overlays in this reproduction
//! are full meshes (maximal connectivity); this module exists so
//! alternative topologies — like the multi-site WAN overlays of the
//! follow-on Spire work — can be analyzed before deployment.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::config::SpinesConfig;

/// Shortest hop-count from `from` to every reachable daemon (BFS — overlay
/// links are unweighted here).
pub fn hop_counts(cfg: &SpinesConfig, from: u32) -> BTreeMap<u32, u32> {
    let mut dist = BTreeMap::new();
    if !cfg.daemons.contains_key(&from) {
        return dist;
    }
    dist.insert(from, 0);
    let mut queue = VecDeque::from([from]);
    while let Some(u) = queue.pop_front() {
        let du = dist[&u];
        for v in cfg.neighbors(u) {
            if let std::collections::btree_map::Entry::Vacant(e) = dist.entry(v) {
                e.insert(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Node-split graph vertex: each daemon `v` becomes `In(v) → Out(v)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
enum Node {
    In(u32),
    Out(u32),
}

/// Unit-capacity max-flow on the node-split graph: returns the flow value
/// plus the initial and residual capacity maps (for path decomposition).
type FlowResult = (
    u32,
    BTreeMap<(Node, Node), i32>,
    BTreeMap<(Node, Node), i32>,
);

fn node_split_flow(cfg: &SpinesConfig, s: u32, t: u32) -> FlowResult {
    // Node splitting: each daemon v becomes v_in → v_out with capacity 1
    // (except s and t, which are unbounded). Edges are (u_out → v_in).
    // Unit capacities → count augmenting paths with BFS (Edmonds-Karp).
    let mut capacity: BTreeMap<(Node, Node), i32> = BTreeMap::new();
    let mut adj: BTreeMap<Node, BTreeSet<Node>> = BTreeMap::new();
    let add_edge = |a: Node,
                    b: Node,
                    cap: i32,
                    capacity: &mut BTreeMap<(Node, Node), i32>,
                    adj: &mut BTreeMap<Node, BTreeSet<Node>>| {
        *capacity.entry((a, b)).or_insert(0) += cap;
        capacity.entry((b, a)).or_insert(0);
        adj.entry(a).or_default().insert(b);
        adj.entry(b).or_default().insert(a);
    };
    for (&v, _) in cfg.daemons.iter() {
        let cap = if v == s || v == t { i32::MAX / 2 } else { 1 };
        add_edge(Node::In(v), Node::Out(v), cap, &mut capacity, &mut adj);
    }
    for &(a, b) in cfg.edges.iter() {
        add_edge(Node::Out(a), Node::In(b), 1, &mut capacity, &mut adj);
        add_edge(Node::Out(b), Node::In(a), 1, &mut capacity, &mut adj);
    }
    let initial = capacity.clone();
    let source = Node::Out(s);
    let sink = Node::In(t);
    let mut flow = 0u32;
    loop {
        // BFS for an augmenting path.
        let mut parent: BTreeMap<Node, Node> = BTreeMap::new();
        let mut queue = VecDeque::from([source]);
        let mut found = false;
        while let Some(u) = queue.pop_front() {
            if u == sink {
                found = true;
                break;
            }
            if let Some(neigh) = adj.get(&u) {
                for &v in neigh {
                    if v != source
                        && !parent.contains_key(&v)
                        && capacity.get(&(u, v)).copied().unwrap_or(0) > 0
                    {
                        parent.insert(v, u);
                        queue.push_back(v);
                    }
                }
            }
        }
        if !found {
            break;
        }
        // Augment by 1 (unit capacities).
        let mut v = sink;
        while v != source {
            let u = parent[&v];
            *capacity.get_mut(&(u, v)).expect("edge") -= 1;
            *capacity.get_mut(&(v, u)).expect("edge") += 1;
            v = u;
        }
        flow += 1;
    }
    (flow, initial, capacity)
}

/// Number of *internally node-disjoint* paths between `s` and `t`
/// (Menger's theorem via unit-capacity max-flow on the node-split graph).
pub fn disjoint_paths(cfg: &SpinesConfig, s: u32, t: u32) -> u32 {
    if s == t || !cfg.daemons.contains_key(&s) || !cfg.daemons.contains_key(&t) {
        return 0;
    }
    node_split_flow(cfg, s, t).0
}

/// The actual node-disjoint routes behind [`disjoint_paths`]: one daemon
/// sequence (from `s` to `t` inclusive) per unit of max-flow, obtained by
/// flow decomposition. The routes share no intermediate daemon, and every
/// consecutive pair is an edge of `cfg` — WAN route selection for a
/// multi-site overlay picks redundant disjoint routes from this set.
pub fn disjoint_routes(cfg: &SpinesConfig, s: u32, t: u32) -> Vec<Vec<u32>> {
    if s == t || !cfg.daemons.contains_key(&s) || !cfg.daemons.contains_key(&t) {
        return Vec::new();
    }
    let (flow, initial, residual) = node_split_flow(cfg, s, t);
    // Net forward flow per directed edge. Netting both directions drops
    // any cancelled push-back introduced by augmentation.
    let mut net: BTreeMap<(Node, Node), i32> = BTreeMap::new();
    for (&(u, v), &init) in initial.iter() {
        if init <= 0 {
            continue;
        }
        let used = init - residual.get(&(u, v)).copied().unwrap_or(0);
        let back_init = initial.get(&(v, u)).copied().unwrap_or(0);
        let back_used = back_init - residual.get(&(v, u)).copied().unwrap_or(0);
        let f = used - back_used.max(0);
        if f > 0 {
            net.insert((u, v), f);
        }
    }
    // Walk each unit of flow from the source; conservation guarantees the
    // walk reaches t, and consuming edges as we go makes it terminate.
    let mut routes = Vec::new();
    for _ in 0..flow {
        let mut path = vec![s];
        let mut cur = Node::Out(s);
        loop {
            let Some((&(u, v), _)) = net
                .range((cur, Node::In(0))..)
                .take_while(|(&(u, _), _)| u == cur)
                .find(|(_, &f)| f > 0)
            else {
                // No remaining flow out of this vertex (should not happen
                // for a conserved flow); abandon the partial walk.
                return routes;
            };
            debug_assert_eq!(u, cur);
            match net.get_mut(&(u, v)) {
                Some(f) if *f > 1 => *f -= 1,
                _ => {
                    net.remove(&(u, v));
                }
            }
            match v {
                Node::In(d) if d == t => {
                    path.push(t);
                    break;
                }
                Node::In(d) => {
                    path.push(d);
                    // Consume the node edge In(d) → Out(d).
                    match net.get_mut(&(Node::In(d), Node::Out(d))) {
                        Some(f) if *f > 1 => *f -= 1,
                        _ => {
                            net.remove(&(Node::In(d), Node::Out(d)));
                        }
                    }
                    cur = Node::Out(d);
                }
                Node::Out(_) => unreachable!("edges go Out → In"),
            }
        }
        routes.push(path);
    }
    routes
}

/// The overlay's resilience: the minimum number of node-disjoint paths
/// over all daemon pairs. A resilience of `c` means any `c-1` compromised
/// or crashed intermediate daemons cannot disconnect correct daemons.
pub fn resilience(cfg: &SpinesConfig) -> u32 {
    let ids: Vec<u32> = cfg.daemons.keys().copied().collect();
    let mut min = u32::MAX;
    for (i, &a) in ids.iter().enumerate() {
        for &b in &ids[i + 1..] {
            min = min.min(disjoint_paths(cfg, a, b));
        }
    }
    if min == u32::MAX {
        0
    } else {
        min
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SpinesMode;
    use simnet::types::{IpAddr, Port};

    fn addrs(n: u32) -> Vec<(u32, IpAddr)> {
        (0..n)
            .map(|i| (i, IpAddr::new(10, 1, 0, (i + 1) as u8)))
            .collect()
    }

    fn with_edges(n: u32, edges: &[(u32, u32)]) -> SpinesConfig {
        SpinesConfig::with_edges(
            addrs(n),
            edges.iter().copied(),
            Port(8100),
            [1; 32],
            SpinesMode::IntrusionTolerant,
        )
    }

    #[test]
    fn hop_counts_on_line() {
        let cfg = with_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let d = hop_counts(&cfg, 0);
        assert_eq!(d[&0], 0);
        assert_eq!(d[&1], 1);
        assert_eq!(d[&2], 2);
        assert_eq!(d[&3], 3);
    }

    #[test]
    fn hop_counts_unreachable_omitted() {
        let cfg = with_edges(4, &[(0, 1), (2, 3)]);
        let d = hop_counts(&cfg, 0);
        assert!(d.contains_key(&1));
        assert!(!d.contains_key(&2));
    }

    #[test]
    fn full_mesh_has_maximal_disjoint_paths() {
        let cfg =
            SpinesConfig::full_mesh(addrs(6), Port(8100), [1; 32], SpinesMode::IntrusionTolerant);
        // Direct edge + 4 two-hop paths through the other daemons.
        assert_eq!(disjoint_paths(&cfg, 0, 5), 5);
        assert_eq!(resilience(&cfg), 5);
    }

    #[test]
    fn line_topology_has_one_path() {
        let cfg = with_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(disjoint_paths(&cfg, 0, 3), 1);
        assert_eq!(resilience(&cfg), 1);
    }

    #[test]
    fn ring_topology_has_two_paths() {
        let cfg = with_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert_eq!(disjoint_paths(&cfg, 0, 2), 2);
        assert_eq!(resilience(&cfg), 2);
    }

    #[test]
    fn cut_vertex_limits_resilience() {
        // Two triangles joined at daemon 2: removing it disconnects them.
        let cfg = with_edges(5, &[(0, 1), (1, 2), (0, 2), (2, 3), (2, 4), (3, 4)]);
        assert_eq!(disjoint_paths(&cfg, 0, 4), 1, "all paths pass daemon 2");
        assert_eq!(resilience(&cfg), 1);
    }

    #[test]
    fn degenerate_inputs() {
        let cfg = with_edges(3, &[(0, 1)]);
        assert_eq!(disjoint_paths(&cfg, 0, 0), 0);
        assert_eq!(disjoint_paths(&cfg, 0, 9), 0);
        assert_eq!(disjoint_paths(&cfg, 0, 2), 0, "daemon 2 is isolated");
    }

    /// Routes returned by `disjoint_routes` must be valid (every hop an
    /// overlay edge), internally node-disjoint, and as numerous as
    /// `disjoint_paths` says.
    fn assert_routes_valid(cfg: &SpinesConfig, s: u32, t: u32) {
        let routes = disjoint_routes(cfg, s, t);
        assert_eq!(routes.len() as u32, disjoint_paths(cfg, s, t));
        let mut middles = BTreeSet::new();
        for r in &routes {
            assert_eq!(r.first(), Some(&s));
            assert_eq!(r.last(), Some(&t));
            for hop in r.windows(2) {
                let e = if hop[0] <= hop[1] {
                    (hop[0], hop[1])
                } else {
                    (hop[1], hop[0])
                };
                assert!(cfg.edges.contains(&e), "hop {e:?} not an edge");
            }
            for &m in &r[1..r.len() - 1] {
                assert!(middles.insert(m), "routes share intermediate {m}");
            }
        }
    }

    #[test]
    fn disjoint_routes_on_ring() {
        let cfg = with_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert_routes_valid(&cfg, 0, 2);
    }

    #[test]
    fn disjoint_routes_on_full_mesh() {
        let cfg =
            SpinesConfig::full_mesh(addrs(6), Port(8100), [1; 32], SpinesMode::IntrusionTolerant);
        assert_routes_valid(&cfg, 0, 5);
        assert_eq!(disjoint_routes(&cfg, 0, 5).len(), 5);
    }

    #[test]
    fn disjoint_routes_through_cut_vertex() {
        let cfg = with_edges(5, &[(0, 1), (1, 2), (0, 2), (2, 3), (2, 4), (3, 4)]);
        let routes = disjoint_routes(&cfg, 0, 4);
        assert_eq!(routes.len(), 1);
        assert!(routes[0].contains(&2), "the single route passes the cut");
        assert_routes_valid(&cfg, 0, 4);
    }

    #[test]
    fn disjoint_routes_degenerate_inputs() {
        let cfg = with_edges(3, &[(0, 1)]);
        assert!(disjoint_routes(&cfg, 0, 0).is_empty());
        assert!(disjoint_routes(&cfg, 0, 9).is_empty());
        assert!(disjoint_routes(&cfg, 0, 2).is_empty());
    }

    #[test]
    fn deployment_overlays_are_maximally_resilient() {
        // The internal overlay of the plant config: 6-daemon full mesh.
        let cfg =
            SpinesConfig::full_mesh(addrs(6), Port(8100), [1; 32], SpinesMode::IntrusionTolerant);
        // f = 1 compromised daemon cannot partition correct daemons —
        // with room to spare.
        assert!(resilience(&cfg) > 1);
    }
}
