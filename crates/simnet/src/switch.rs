//! Switches with learning or static MAC tables.
//!
//! §III-B: "On the switch, we configured a static mapping of MAC addresses
//! to switch ports." [`SwitchMode::Static`] models that configuration, with
//! optional ingress port-security (frames whose source MAC does not belong
//! to the arrival port are dropped and counted) — which is what defeats MAC
//! spoofing and the switch half of the man-in-the-middle attacks.

use std::collections::BTreeMap;

use crate::link::LinkId;
use crate::types::MacAddr;

/// Identifies a switch.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct SwitchId(pub u32);

/// Forwarding behaviour.
#[derive(Clone, Debug, PartialEq)]
pub enum SwitchMode {
    /// Commodity behaviour: learn source MAC → port, flood unknown unicast
    /// and broadcast. Vulnerable to CAM games and MITM via ARP poisoning.
    Learning,
    /// Hardened behaviour: a fixed MAC → port map. Unknown unicast is
    /// dropped (never flooded), and if `enforce_ingress` is set, frames
    /// arriving on a port that does not own their source MAC are dropped.
    Static {
        /// The operator-configured MAC-to-port map.
        map: BTreeMap<MacAddr, usize>,
        /// Drop frames whose source MAC does not match the ingress port.
        enforce_ingress: bool,
    },
}

/// Forwarding decision for one frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Forward {
    /// Send out these ports.
    Ports(Vec<usize>),
    /// Drop, with the reason recorded.
    Drop(DropReason),
}

/// Why a switch dropped a frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// Static mode: source MAC not assigned to the ingress port.
    IngressViolation,
    /// Static mode: destination MAC not in the static map.
    UnknownDestination,
    /// Destination port has no connected link.
    DeadPort,
}

/// A switch instance.
#[derive(Clone, Debug)]
pub struct Switch {
    /// This switch's id.
    pub id: SwitchId,
    /// Forwarding mode.
    pub mode: SwitchMode,
    /// Link attached to each port (None = empty port).
    pub ports: Vec<Option<LinkId>>,
    /// Learning mode's CAM table.
    cam: BTreeMap<MacAddr, usize>,
    /// Count of port-security violations (observable evidence of spoofing).
    pub ingress_violations: u64,
    /// Count of unknown-destination drops in static mode.
    pub unknown_dst_drops: u64,
    /// Count of frames dropped by an active partition.
    pub partition_drops: u64,
    /// Capture taps attached to this switch (span ports).
    pub taps: Vec<crate::capture::TapId>,
    /// Active partition: port → group (unlisted ports are group 0).
    /// Frames only forward between ports of the same group.
    partition: Option<BTreeMap<usize, u32>>,
}

impl Switch {
    /// Creates a switch with `port_count` empty ports.
    pub fn new(id: SwitchId, port_count: usize, mode: SwitchMode) -> Self {
        Switch {
            id,
            mode,
            ports: vec![None; port_count],
            cam: BTreeMap::new(),
            ingress_violations: 0,
            unknown_dst_drops: 0,
            partition_drops: 0,
            taps: Vec::new(),
            partition: None,
        }
    }

    /// Activates a partition: ports are confined to their assigned group
    /// (unlisted ports form group 0).
    pub fn set_partition(&mut self, assignment: BTreeMap<usize, u32>) {
        self.partition = Some(assignment);
    }

    /// Heals the partition.
    pub fn clear_partition(&mut self) {
        self.partition = None;
    }

    /// Whether a partition is currently active.
    pub fn partition_active(&self) -> bool {
        self.partition.is_some()
    }

    /// Whether two ports may exchange frames under the active partition
    /// (always true when none is set).
    pub fn same_partition_group(&self, a: usize, b: usize) -> bool {
        match &self.partition {
            None => true,
            Some(groups) => {
                groups.get(&a).copied().unwrap_or(0) == groups.get(&b).copied().unwrap_or(0)
            }
        }
    }

    /// Number of ports.
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }

    /// Computes where a frame entering on `ingress` with the given MACs
    /// goes. Mutates learning state / violation counters.
    pub fn forward(&mut self, ingress: usize, src_mac: MacAddr, dst_mac: MacAddr) -> Forward {
        match &self.mode {
            SwitchMode::Learning => {
                self.cam.insert(src_mac, ingress);
                if dst_mac.is_broadcast() {
                    return Forward::Ports(self.all_except(ingress));
                }
                match self.cam.get(&dst_mac) {
                    Some(&p) if p != ingress => Forward::Ports(vec![p]),
                    Some(_) => Forward::Drop(DropReason::DeadPort), // hairpin: already local
                    None => Forward::Ports(self.all_except(ingress)),
                }
            }
            SwitchMode::Static {
                map,
                enforce_ingress,
            } => {
                if *enforce_ingress {
                    match map.get(&src_mac) {
                        Some(&owner) if owner == ingress => {}
                        _ => {
                            self.ingress_violations += 1;
                            return Forward::Drop(DropReason::IngressViolation);
                        }
                    }
                }
                if dst_mac.is_broadcast() {
                    return Forward::Ports(self.all_except(ingress));
                }
                match map.get(&dst_mac) {
                    Some(&p) if p != ingress => Forward::Ports(vec![p]),
                    Some(_) => Forward::Drop(DropReason::DeadPort),
                    None => {
                        self.unknown_dst_drops += 1;
                        Forward::Drop(DropReason::UnknownDestination)
                    }
                }
            }
        }
    }

    fn all_except(&self, ingress: usize) -> Vec<usize> {
        (0..self.ports.len())
            .filter(|&p| p != ingress && self.ports[p].is_some())
            .collect()
    }

    /// Learning-mode CAM contents (for tests / diagnostics).
    pub fn cam_entry(&self, mac: MacAddr) -> Option<usize> {
        self.cam.get(&mac).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::NodeId;

    fn mac(n: u32) -> MacAddr {
        MacAddr::derived(NodeId(n), 0)
    }

    fn learning(ports: usize) -> Switch {
        let mut sw = Switch::new(SwitchId(0), ports, SwitchMode::Learning);
        for p in 0..ports {
            sw.ports[p] = Some(crate::link::LinkId(p as u32));
        }
        sw
    }

    fn static_sw(assignments: &[(u32, usize)], enforce: bool) -> Switch {
        let ports = assignments.iter().map(|&(_, p)| p).max().unwrap_or(0) + 1;
        let map = assignments.iter().map(|&(m, p)| (mac(m), p)).collect();
        let mut sw = Switch::new(
            SwitchId(0),
            ports,
            SwitchMode::Static {
                map,
                enforce_ingress: enforce,
            },
        );
        for p in 0..ports {
            sw.ports[p] = Some(crate::link::LinkId(p as u32));
        }
        sw
    }

    #[test]
    fn learning_floods_unknown_then_forwards() {
        let mut sw = learning(4);
        // Unknown destination: flood to all other ports.
        assert_eq!(sw.forward(0, mac(1), mac(2)), Forward::Ports(vec![1, 2, 3]));
        // Now the switch heard mac(2) on port 1; unicast goes there only.
        sw.forward(1, mac(2), mac(1));
        assert_eq!(sw.forward(0, mac(1), mac(2)), Forward::Ports(vec![1]));
        assert_eq!(sw.cam_entry(mac(1)), Some(0));
    }

    #[test]
    fn learning_broadcast_floods() {
        let mut sw = learning(3);
        assert_eq!(
            sw.forward(2, mac(1), MacAddr::BROADCAST),
            Forward::Ports(vec![0, 1])
        );
    }

    #[test]
    fn learning_is_poisonable_by_cam_override() {
        let mut sw = learning(3);
        sw.forward(0, mac(1), MacAddr::BROADCAST); // mac1 at port 0
                                                   // Attacker on port 2 claims mac(1).
        sw.forward(2, mac(1), MacAddr::BROADCAST);
        assert_eq!(sw.cam_entry(mac(1)), Some(2));
        // Traffic for mac(1) now goes to the attacker.
        assert_eq!(sw.forward(1, mac(5), mac(1)), Forward::Ports(vec![2]));
    }

    #[test]
    fn static_forwards_by_map_only() {
        let mut sw = static_sw(&[(1, 0), (2, 1), (3, 2)], false);
        assert_eq!(sw.forward(0, mac(1), mac(2)), Forward::Ports(vec![1]));
        // Destination not in map → dropped, not flooded.
        assert_eq!(
            sw.forward(0, mac(1), mac(9)),
            Forward::Drop(DropReason::UnknownDestination)
        );
        assert_eq!(sw.unknown_dst_drops, 1);
    }

    #[test]
    fn static_ingress_enforcement_blocks_spoofed_source() {
        let mut sw = static_sw(&[(1, 0), (2, 1)], true);
        // Attacker on port 1 spoofs mac(1) (which belongs to port 0).
        assert_eq!(
            sw.forward(1, mac(1), mac(2)),
            Forward::Drop(DropReason::IngressViolation)
        );
        assert_eq!(sw.ingress_violations, 1);
        // Unknown source MAC is also a violation when enforcing.
        assert_eq!(
            sw.forward(1, mac(7), mac(1)),
            Forward::Drop(DropReason::IngressViolation)
        );
    }

    #[test]
    fn static_broadcast_still_floods_from_legit_source() {
        let mut sw = static_sw(&[(1, 0), (2, 1), (3, 2)], true);
        assert_eq!(
            sw.forward(0, mac(1), MacAddr::BROADCAST),
            Forward::Ports(vec![1, 2])
        );
    }

    #[test]
    fn hairpin_to_same_port_dropped() {
        let mut sw = static_sw(&[(1, 0), (2, 0)], false);
        assert_eq!(
            sw.forward(0, mac(1), mac(2)),
            Forward::Drop(DropReason::DeadPort)
        );
    }

    #[test]
    fn flood_skips_empty_ports() {
        let mut sw = learning(4);
        sw.ports[2] = None;
        assert_eq!(
            sw.forward(0, mac(1), MacAddr::BROADCAST),
            Forward::Ports(vec![1, 3])
        );
    }
}
