//! `obs::prof` contract tests: folded-stack assembly is a pure fold over
//! the charge multiset (any event interleaving produces byte-identical
//! output), and per-run attribution telescopes exactly — the rows sum to
//! the simulated time the run consumed, with nothing double-counted and
//! nothing dropped.

use obs::prof::{CryptoOp, PhaseCost, Profile};
use proptest::prelude::*;

/// One profiler charge.
#[derive(Clone, Debug)]
struct Charge {
    stack: &'static str,
    cost: PhaseCost,
}

const STACKS: &[&str] = &[
    "prime;preorder;po_request",
    "prime;preorder;po_aru",
    "prime;order;pre_prepare",
    "prime;order;commit",
    "prime;catchup;checkpoint",
    "prime;timer",
    "spines;hop",
    "scada;apply",
    "idle",
];

/// Decodes a proptest-drawn `(stack index, time, bytes, packed)` tuple
/// into a charge; the packed word carries the crypto/event counts.
fn decode(raw: &(usize, u64, u64, u64)) -> Charge {
    let (idx, time_us, bytes, packed) = *raw;
    Charge {
        stack: STACKS[idx],
        cost: PhaseCost {
            time_us,
            bytes,
            sign: packed & 0x3,
            verify: (packed >> 2) & 0x3,
            hmac: (packed >> 4) & 0x3,
            events: (packed >> 6) & 0x7,
        },
    }
}

/// The strategy behind [`decode`].
fn raw_charges() -> impl Strategy<Value = Vec<(usize, u64, u64, u64)>> {
    proptest::collection::vec(
        (
            0usize..STACKS.len(),
            0u64..10_000,
            0u64..4_096,
            any::<u64>(),
        ),
        0..64,
    )
}

proptest! {
    /// The folded output (and the whole profile) is independent of the
    /// order charges arrive in: simulated-event interleaving cannot
    /// change what the profiler reports.
    #[test]
    fn folded_output_is_interleaving_independent(
        raw in raw_charges(),
        seed in any::<u64>(),
    ) {
        let charges: Vec<Charge> = raw.iter().map(decode).collect();
        let mut in_order = Profile::new();
        for c in &charges {
            in_order.charge(c.stack, c.cost);
        }
        // A deterministic shuffle driven by the proptest seed.
        let mut shuffled = charges.clone();
        let mut state = seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            shuffled.swap(i, (state >> 33) as usize % (i + 1));
        }
        let mut reordered = Profile::new();
        for c in &shuffled {
            reordered.charge(c.stack, c.cost);
        }
        prop_assert_eq!(&in_order, &reordered);
        prop_assert_eq!(in_order.folded(), reordered.folded());
    }

    /// Splitting a charge stream across two profiles and merging equals
    /// charging everything into one — the distributive law run_step's
    /// per-step capture relies on.
    #[test]
    fn merge_distributes_over_charge(
        raw in raw_charges(),
        split in 0usize..64,
    ) {
        let charges: Vec<Charge> = raw.iter().map(decode).collect();
        let split = split.min(charges.len());
        let mut whole = Profile::new();
        for c in &charges {
            whole.charge(c.stack, c.cost);
        }
        let (mut a, mut b) = (Profile::new(), Profile::new());
        for c in &charges[..split] {
            a.charge(c.stack, c.cost);
        }
        for c in &charges[split..] {
            b.charge(c.stack, c.cost);
        }
        a.merge(&b);
        prop_assert_eq!(whole.folded(), a.folded());
    }
}

/// A real profiled run telescopes exactly: the attribution rows of a
/// 1-step E11 ramp sum to precisely the simulated time the step's
/// cluster consumed, and the rendered table says so.
#[test]
fn profiled_e11_step_telescopes_to_simulated_time() {
    obs::prof::set_enabled(true);
    let run = bench::saturation::e11_saturation(42, &[50]);
    obs::prof::set_enabled(false);
    let total = obs::prof::take();
    let step = &run.steps[0];
    let prof = step.prof.as_ref().expect("profiler was on");
    assert!(!prof.folded().is_empty());
    assert_eq!(
        prof.total_time_us(),
        step.sim_elapsed_us,
        "rows sum exactly to the step's simulated time"
    );
    // The per-step capture also left the charges in the thread total.
    assert_eq!(total.total_time_us(), step.sim_elapsed_us);
    let table = obs::report::attribution_markdown(prof, Some(step.sim_elapsed_us));
    assert!(table.contains("telescoping: exact"), "table: {table}");
}

/// Crypto charges land in the op they name.
#[test]
fn crypto_ops_accumulate_separately() {
    let mut p = Profile::new();
    for (op, n) in [
        (CryptoOp::Sign, 3),
        (CryptoOp::Verify, 5),
        (CryptoOp::Hmac, 7),
    ] {
        let mut cost = PhaseCost::default();
        match op {
            CryptoOp::Sign => cost.sign = n,
            CryptoOp::Verify => cost.verify = n,
            CryptoOp::Hmac => cost.hmac = n,
        }
        p.charge("spines;hop", cost);
    }
    let total = p.total();
    assert_eq!((total.sign, total.verify, total.hmac), (3, 5, 7));
}
