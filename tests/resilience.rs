//! Cross-crate resilience scenarios beyond the paper's scripted
//! experiments: leader crashes inside the full deployment, vote gating
//! under partial interception, lossy links, and figure regeneration.

use bench::figures::{fig1_conventional, fig2_spire, fig4_hmi};
use plc::topology::Scenario;
use prime::replica::Timing;
use prime::types::Config as PrimeConfig;
use redteam::attacker::{AttackStep, Attacker};
use simnet::link::LinkSpec;
use simnet::sim::{InterfaceSpec, NodeSpec, Simulation};
use simnet::switch::SwitchMode;
use simnet::time::{SimDuration, SimTime};
use simnet::types::IpAddr;
use spire::config::SpireConfig;
use spire::deploy::Deployment;
use spire::hardening::HardeningProfile;

fn fast_timing() -> Timing {
    Timing {
        aru_interval: SimDuration::from_millis(10),
        pp_interval: SimDuration::from_millis(10),
        suspect_timeout: SimDuration::from_millis(800),
        checkpoint_interval: 20,
        catchup_timeout: SimDuration::from_millis(300),
    }
}

fn cycling_deployment(seed: u64) -> Deployment {
    let cfg = SpireConfig::minimal(PrimeConfig::red_team(), Scenario::RedTeamDistribution)
        .with_cycle(
            Scenario::RedTeamDistribution,
            SimDuration::from_millis(400),
            0,
        );
    let mut d = Deployment::build(cfg, HardeningProfile::deployed(), seed);
    for i in 0..4 {
        d.replica_mut(i).set_timing(fast_timing());
    }
    d
}

#[test]
fn leader_crash_in_full_deployment_triggers_view_change_and_service_continues() {
    let mut d = cycling_deployment(7001);
    d.run_for(SimDuration::from_secs(3));
    let frames_before = d.hmi(0).stats.frames_applied;
    assert!(frames_before > 0);
    // A healthy leader means no view changes so far.
    assert_eq!(
        d.obs
            .journal_count(|e| matches!(e, obs::Event::ViewChange { .. })),
        0,
        "no view changes before the fault"
    );

    // Replica 0 leads view 0; kill its whole node (host + daemons).
    d.take_replica_down(0);
    d.run_for(SimDuration::from_secs(6));

    // The remaining replicas suspected the silent leader and moved on.
    for i in 1..4 {
        assert!(
            d.replica(i).replica.view() >= 1,
            "replica {i} still in view 0"
        );
    }
    // Every surviving replica journaled its view installation.
    let view_changes = d
        .obs
        .journal_count(|e| matches!(e, obs::Event::ViewChange { .. }));
    assert!(
        view_changes >= 3,
        "3 surviving replicas journal view changes, got {view_changes}"
    );
    for i in 1..4 {
        assert!(
            d.obs.journal_count(
                |e| matches!(e, obs::Event::ViewChange { replica, .. } if *replica == i)
            ) >= 1,
            "replica {i} journaled its view change"
        );
    }
    // The crash itself was journaled as a recovery start.
    assert_eq!(
        d.obs
            .journal_count(|e| matches!(e, obs::Event::RecoveryStart { replica: 0 })),
        1
    );
    let frames_after = d.hmi(0).stats.frames_applied;
    assert!(
        frames_after > frames_before,
        "display updates resumed after the view change"
    );
}

#[test]
fn fault_free_run_journals_no_view_changes() {
    let mut d = cycling_deployment(7005);
    d.run_for(SimDuration::from_secs(8));
    assert!(d.hmi(0).stats.frames_applied > 0, "service live");
    assert_eq!(
        d.obs
            .journal_count(|e| matches!(e, obs::Event::ViewChange { .. })),
        0,
        "a stable leader never causes view changes"
    );
    assert_eq!(
        d.obs.journal_count(|e| matches!(
            e,
            obs::Event::RecoveryStart { .. } | obs::Event::RecoveryEnd { .. }
        )),
        0,
        "no recoveries scheduled in a plain run"
    );
    // But the journal is not empty: vote-gated frame emissions are there.
    assert!(
        d.obs
            .journal_count(|e| matches!(e, obs::Event::FrameEmit { .. }))
            > 0,
        "frame emissions journaled"
    );
}

#[test]
fn vote_gating_survives_interception_of_one_replica() {
    // Weaken exactly the ARP layer so the attacker can steer ONE replica's
    // external traffic through itself; f+1 voting means the HMI and proxy
    // still act correctly on the remaining replicas' matching messages.
    let profile = HardeningProfile::without("static_arp");
    let cfg = SpireConfig::minimal(PrimeConfig::red_team(), Scenario::RedTeamDistribution)
        .with_cycle(
            Scenario::RedTeamDistribution,
            SimDuration::from_millis(400),
            0,
        );
    let mut d = Deployment::build(cfg, profile, 7002);
    for i in 0..4 {
        d.replica_mut(i).set_timing(fast_timing());
    }
    d.run_for(SimDuration::from_secs(3));
    let frames_before = d.hmi(0).stats.frames_applied;

    // Poison the HMI's view of replica 0: its frames now go to the
    // attacker (who drops them).
    let t0 = d.now();
    let mut attacker = Attacker::new();
    attacker.schedule(
        t0 + SimDuration::from_millis(100),
        AttackStep::ArpPoison {
            victim: d.cfg.hmi_ip(0),
            claim_ip: d.cfg.replica_external_ip(0),
            count: 30,
        },
    );
    let mut spec = NodeSpec::new(
        "mitm",
        vec![InterfaceSpec::dynamic(IpAddr::new(10, 20, 0, 66))],
        Box::new(attacker),
    );
    spec.promiscuous = true;
    let node = d.attach_external_attacker(spec);
    d.run_for(SimDuration::from_secs(5));

    let obs = &d
        .sim
        .process_ref::<Attacker>(node)
        .expect("attacker")
        .observed;
    assert!(
        obs.intercepted > 0,
        "attacker really did steal replica 0's frames"
    );
    // Display still advances and still shows the truth: 3 of 4 replicas
    // supply matching frames, and f+1 = 2 suffice.
    let frames_after = d.hmi(0).stats.frames_applied;
    assert!(
        frames_after > frames_before,
        "vote gating masked the interception"
    );
}

#[test]
fn prime_converges_over_lossy_links() {
    // 5% frame loss on every link: retransmission-free protocols would
    // stall; Prime's periodic ARU gossip + leader re-proposals + catch-up
    // keep execution converging.
    let mut c = prime::harness::Cluster::with_latency(
        PrimeConfig::red_team(),
        1,
        SimDuration::from_millis(2),
    );
    c.set_timing(fast_timing());
    for i in 0..10 {
        c.submit(0, format!("lossy{i}=1"));
        c.run_for(SimDuration::from_millis(80));
    }
    c.run_for(SimDuration::from_secs(3));
    assert_eq!(c.min_executed(), 10);
    c.assert_consistent();
}

#[test]
fn simnet_link_loss_counted_and_tolerated() {
    struct Pinger {
        peer: IpAddr,
        pongs: u32,
        sent: u32,
    }
    impl simnet::process::Process for Pinger {
        fn on_start(&mut self, ctx: &mut simnet::process::Context<'_>) {
            ctx.set_timer(SimDuration::from_millis(10), 1);
        }
        fn on_timer(&mut self, ctx: &mut simnet::process::Context<'_>, _t: u64) {
            if self.sent < 200 {
                self.sent += 1;
                let pkt = simnet::packet::Packet {
                    src_ip: ctx.ip(0),
                    dst_ip: self.peer,
                    src_port: simnet::types::Port(1),
                    dst_port: simnet::types::Port(0),
                    kind: simnet::packet::TransportKind::Ping,
                    payload: bytes::Bytes::new(),
                    trace: None,
                };
                ctx.send(0, pkt);
                ctx.set_timer(SimDuration::from_millis(10), 1);
            }
        }
        fn on_packet(
            &mut self,
            _ctx: &mut simnet::process::Context<'_>,
            pkt: simnet::packet::Packet,
        ) {
            if pkt.kind == simnet::packet::TransportKind::Pong {
                self.pongs += 1;
            }
        }
    }
    struct Silent;
    impl simnet::process::Process for Silent {}

    let mut sim = Simulation::new(99);
    let a = sim.add_node(NodeSpec::new(
        "a",
        vec![InterfaceSpec::dynamic(IpAddr::new(10, 0, 0, 1))],
        Box::new(Pinger {
            peer: IpAddr::new(10, 0, 0, 2),
            pongs: 0,
            sent: 0,
        }),
    ));
    let b = sim.add_node(NodeSpec::new(
        "b",
        vec![InterfaceSpec::dynamic(IpAddr::new(10, 0, 0, 2))],
        Box::new(Silent),
    ));
    let sw = sim.add_switch(2, SwitchMode::Learning);
    let lossy = LinkSpec {
        loss: 0.2,
        ..LinkSpec::lan()
    };
    sim.connect(a, 0, sw, 0, lossy);
    sim.connect(b, 0, sw, 1, LinkSpec::lan());
    sim.run_for(SimDuration::from_secs(5));

    let p = sim.process_ref::<Pinger>(a).expect("pinger");
    assert_eq!(p.sent, 200);
    // With 20% loss each way some pongs are missing, but most arrive.
    assert!(p.pongs < 200, "some loss observed");
    assert!(p.pongs > 100, "most pings survived, got {}", p.pongs);
    assert!(sim.stats().frames_dropped > 0);
}

#[test]
fn figures_render_expected_content() {
    let f1 = fig1_conventional(61);
    assert!(f1.contains("primary master"));
    assert!(
        f1.contains("true"),
        "commercial HMI shows closed breakers: {f1}"
    );

    let f2 = fig2_spire(62);
    assert!(f2.contains("6 SCADA-master replicas"));
    assert!(f2.contains("internal switch: true"));

    let f4 = fig4_hmi(63);
    assert!(f4.contains("B10-1"));
    assert!(f4.contains("Building 4"));
}

#[test]
fn plant_scale_deployment_all_seventeen_plcs() {
    // The full §V roster: plant subset + 10 distribution + 6 generation
    // PLCs, three HMIs, six replicas — everything polls and orders.
    let cfg = SpireConfig::plant();
    let mut d = Deployment::build(cfg, HardeningProfile::deployed(), 7003);
    for i in 0..6 {
        d.replica_mut(i).set_timing(fast_timing());
    }
    d.run_for(SimDuration::from_secs(4));
    assert_eq!(d.cfg.proxies.len(), 17);
    for p in 0..17 {
        assert!(
            d.proxy(p).stats.updates_sent >= 1,
            "proxy {p} reported status"
        );
    }
    assert!(
        d.min_executed() >= 17,
        "every scenario's status ordered at least once"
    );
    // All three HMI locations display.
    for h in 0..3 {
        assert!(d.hmi(h).stats.frames_applied >= 1, "hmi {h} live");
    }
}

#[test]
fn breach_then_system_reset_repopulates_state_from_field() {
    // E6 continuation (§III-A): three of four replicas crash with state
    // loss — beyond f = 1, so no catch-up quorum exists and the system
    // cannot recover from replicas. The automatic reset restarts ALL
    // replicas in a fresh era; normal field polling repopulates state.
    let mut d = cycling_deployment(7004);
    d.run_for(SimDuration::from_secs(3));
    for i in 0..3 {
        d.take_replica_down(i);
    }
    d.run_for(SimDuration::from_secs(2));
    // No quorum: the survivor cannot execute anything new either.
    let survivor_stalled = d.replica(3).replica.exec_seq();
    d.system_reset();
    d.run_for(SimDuration::from_secs(8));
    let execs: Vec<u64> = (0..4).map(|i| d.replica(i).replica.exec_seq()).collect();
    assert!(
        execs.iter().all(|&e| e > 0),
        "all replicas executing again: {execs:?}"
    );
    // The fresh era's state reflects the field truth (polls repopulated it).
    let plc_positions = d.plc(0).positions();
    let shown = d.hmi(0).hmi.positions("jhu").map(|p| p.to_vec());
    assert_eq!(
        shown,
        Some(plc_positions),
        "display matches physical ground truth"
    );
    let _ = survivor_stalled;
    let _ = SimTime::ZERO;
}
