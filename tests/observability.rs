//! Determinism and fidelity of the observability layer: the same seed
//! must produce a byte-identical event journal (and therefore the same
//! digest), different seeds must not, and the registry must agree with
//! the legacy stats structs it mirrors.

use bench::plant_experiments::{e4_plant_deployment, e5_reaction_time};
use plc::topology::Scenario;
use prime::types::Config as PrimeConfig;
use simnet::time::SimDuration;
use spire::config::SpireConfig;
use spire::deploy::Deployment;
use spire::hardening::HardeningProfile;

#[test]
fn e4_same_seed_yields_identical_journal_digest() {
    let a = e4_plant_deployment(4242, 1, 6);
    let b = e4_plant_deployment(4242, 1, 6);
    assert!(a.obs.journal_len > 0, "the run journaled events");
    assert_eq!(
        a.obs.journal_digest, b.obs.journal_digest,
        "same seed, same journal digest"
    );
    // Not just the digest: the entire metrics snapshot is reproducible.
    assert_eq!(a.obs, b.obs, "same seed, same counters/gauges/histograms");
    assert_eq!(a.hmi_frames, b.hmi_frames);
    assert_eq!(a.view_changes, b.view_changes);
}

#[test]
fn e4_different_seeds_yield_different_digests() {
    let a = e4_plant_deployment(4242, 1, 6);
    let b = e4_plant_deployment(4243, 1, 6);
    assert_ne!(
        a.obs.journal_digest, b.obs.journal_digest,
        "different seeds perturb event timing, changing the journal"
    );
}

#[test]
fn e5_same_seed_yields_identical_span_trees_and_digest() {
    // E5 runs with span tracing enabled, so this pins determinism of
    // the whole tracing pipeline: id allocation, packet-borne context
    // propagation, and journaled start/end records.
    let a = e5_reaction_time(4242, 4);
    let b = e5_reaction_time(4242, 4);
    assert_eq!(
        a.obs.journal_digest, b.obs.journal_digest,
        "same seed, same journal digest with tracing enabled"
    );
    let ta = obs::trace::assemble(&a.obs.journal);
    let tb = obs::trace::assemble(&b.obs.journal);
    assert_eq!(ta.orphan_ends, 0, "every journaled end had a start");
    assert!(!ta.traces.is_empty(), "the measured flips produced traces");
    assert_eq!(ta, tb, "same seed, identical assembled span trees");
    assert_eq!(a.spire_stages, b.spire_stages);
    assert_eq!(a.commercial_stages, b.commercial_stages);
}

#[test]
fn e5_different_seeds_yield_different_digests() {
    let a = e5_reaction_time(4242, 4);
    let b = e5_reaction_time(4243, 4);
    assert_ne!(
        a.obs.journal_digest, b.obs.journal_digest,
        "different seeds perturb span timing, changing the journal"
    );
}

#[test]
fn registry_mirrors_legacy_stats_structs() {
    let cfg = SpireConfig::minimal(PrimeConfig::red_team(), Scenario::PlantSubset);
    let mut d = Deployment::build(cfg, HardeningProfile::deployed(), 515);
    d.run_for(SimDuration::from_secs(5));

    for h in 0..d.cfg.hmis {
        let stats = d.hmi(h).stats;
        assert_eq!(
            d.obs.counter_value(&format!("hmi.{h}.frames_applied")),
            stats.frames_applied,
            "hmi {h} frames_applied mirrored"
        );
        assert_eq!(
            d.obs.counter_value(&format!("hmi.{h}.frames_pending")),
            stats.frames_pending,
            "hmi {h} frames_pending mirrored"
        );
    }
    for p in 0..d.cfg.proxies.len() as u32 {
        assert_eq!(
            d.obs.counter_value(&format!("proxy.{p}.updates_sent")),
            d.proxy(p).stats.updates_sent,
            "proxy {p} updates_sent mirrored"
        );
    }
    for i in 0..d.cfg.n() {
        assert_eq!(
            d.obs.counter_value(&format!("spines.int.r{i}.delivered")),
            d.replica(i).internal.stats.delivered,
            "replica {i} internal deliveries mirrored"
        );
    }
    // Network counters flow through the same registry.
    let net = d.sim.stats();
    assert_eq!(
        d.obs.counter_value("net.frames_delivered"),
        net.frames_delivered
    );
    assert!(net.frames_delivered > 0, "traffic flowed");
    // The report renders every registered counter plus the digest line.
    let report = d.obs.report();
    assert!(
        report.render().contains("journal:"),
        "render ends with the journal line"
    );
}
