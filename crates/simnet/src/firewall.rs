//! Per-host firewalls.
//!
//! §III-B: "we configured the firewall of each machine to block all incoming
//! and outgoing traffic other than the specific IP address and port
//! combinations used by our protocols". [`Firewall::locked_down`] builds
//! exactly that profile; [`Firewall::open`] models the commercial/enterprise
//! hosts the red team walked through.

use crate::packet::{Packet, TransportKind};
use crate::types::{IpAddr, Port};

/// Default verdict when no rule matches.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FirewallPolicy {
    /// Accept unmatched traffic (desktop-style "open philosophy").
    Accept,
    /// Silently drop unmatched traffic. No RST, no ICMP — the scanner sees
    /// nothing, which is the "no visibility into the system" behaviour the
    /// red team reported against Spire.
    Drop,
}

/// A single allow rule: traffic with this peer address and local port.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AllowRule {
    /// Remote peer address the rule permits (exact match).
    pub peer: IpAddr,
    /// Local port the rule permits.
    pub local_port: Port,
}

/// Direction of traffic relative to the host.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Arriving at this host.
    Inbound,
    /// Leaving this host.
    Outbound,
}

/// A host firewall.
#[derive(Clone, Debug)]
pub struct Firewall {
    policy: FirewallPolicy,
    allow: Vec<AllowRule>,
    /// Whether IPv6 is enabled. The hardened profile turns it off; the flag
    /// exists so the hardening-ablation experiment can toggle it (a modelled
    /// IPv6 attack surface, see `redteam`).
    pub ipv6_enabled: bool,
}

impl Firewall {
    /// A fully open firewall (accept everything) with IPv6 on — the Ubuntu-
    /// desktop-style default the paper moved away from.
    pub fn open() -> Self {
        Firewall {
            policy: FirewallPolicy::Accept,
            allow: Vec::new(),
            ipv6_enabled: true,
        }
    }

    /// The hardened profile: default-deny both directions, IPv6 off.
    /// Specific peer/port pairs must be added with [`Firewall::allow`].
    pub fn locked_down() -> Self {
        Firewall {
            policy: FirewallPolicy::Drop,
            allow: Vec::new(),
            ipv6_enabled: false,
        }
    }

    /// Adds an allow rule for a peer/local-port combination (both
    /// directions; the paper allowlists exact IP-and-port pairs).
    pub fn allow(&mut self, peer: IpAddr, local_port: Port) -> &mut Self {
        self.allow.push(AllowRule { peer, local_port });
        self
    }

    /// The default policy.
    pub fn policy(&self) -> FirewallPolicy {
        self.policy
    }

    /// Number of explicit allow rules.
    pub fn rule_count(&self) -> usize {
        self.allow.len()
    }

    /// Decides whether `pkt` traveling in `dir` is permitted.
    ///
    /// ICMP echo replies and TCP handshake responses for allowed flows are
    /// covered because the rule matches on the *peer* and the *local* port:
    /// for inbound traffic the peer is the source, for outbound the
    /// destination.
    pub fn permits(&self, dir: Direction, pkt: &Packet) -> bool {
        if self.policy == FirewallPolicy::Accept {
            return true;
        }
        let (peer, local_port) = match dir {
            Direction::Inbound => (pkt.src_ip, pkt.dst_port),
            Direction::Outbound => (pkt.dst_ip, pkt.src_port),
        };
        self.allow
            .iter()
            .any(|r| r.peer == peer && r.local_port == local_port)
    }

    /// Whether a blocked inbound SYN should elicit a RST (reachable but
    /// closed) or nothing (default-deny drops silently).
    pub fn responds_to_blocked_syn(&self) -> bool {
        self.policy == FirewallPolicy::Accept
    }

    /// Convenience used by scanners: would a SYN to `local_port` from
    /// `peer` reach the host's listener check at all?
    pub fn syn_reaches_host(&self, peer: IpAddr, local_port: Port) -> bool {
        self.permits(
            Direction::Inbound,
            &Packet {
                src_ip: peer,
                dst_ip: IpAddr::UNSPECIFIED,
                src_port: Port(0),
                dst_port: local_port,
                kind: TransportKind::TcpSyn,
                payload: bytes::Bytes::new(),
                trace: None,
            },
        )
    }
}

impl Default for Firewall {
    fn default() -> Self {
        Firewall::open()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn pkt(src: IpAddr, dst: IpAddr, sp: u16, dp: u16) -> Packet {
        Packet::udp(src, dst, Port(sp), Port(dp), Bytes::new())
    }

    const PEER: IpAddr = IpAddr::new(10, 0, 0, 5);
    const OTHER: IpAddr = IpAddr::new(10, 0, 0, 9);
    const ME: IpAddr = IpAddr::new(10, 0, 0, 1);

    #[test]
    fn open_accepts_everything() {
        let fw = Firewall::open();
        assert!(fw.permits(Direction::Inbound, &pkt(OTHER, ME, 1, 2)));
        assert!(fw.permits(Direction::Outbound, &pkt(ME, OTHER, 3, 4)));
        assert!(fw.responds_to_blocked_syn());
        assert!(fw.ipv6_enabled);
    }

    #[test]
    fn locked_down_drops_unmatched() {
        let fw = Firewall::locked_down();
        assert!(!fw.permits(Direction::Inbound, &pkt(OTHER, ME, 1, 2)));
        assert!(!fw.permits(Direction::Outbound, &pkt(ME, OTHER, 3, 4)));
        assert!(!fw.responds_to_blocked_syn());
        assert!(!fw.ipv6_enabled);
    }

    #[test]
    fn allow_rule_matches_inbound_and_outbound() {
        let mut fw = Firewall::locked_down();
        fw.allow(PEER, Port(8100));
        // Inbound: peer is source, local port is destination.
        assert!(fw.permits(Direction::Inbound, &pkt(PEER, ME, 999, 8100)));
        // Outbound: peer is destination, local port is source.
        assert!(fw.permits(Direction::Outbound, &pkt(ME, PEER, 8100, 999)));
        // Wrong peer or port still dropped.
        assert!(!fw.permits(Direction::Inbound, &pkt(OTHER, ME, 999, 8100)));
        assert!(!fw.permits(Direction::Inbound, &pkt(PEER, ME, 999, 8101)));
    }

    #[test]
    fn syn_reaches_host_respects_rules() {
        let mut fw = Firewall::locked_down();
        fw.allow(PEER, Port(22));
        assert!(fw.syn_reaches_host(PEER, Port(22)));
        assert!(!fw.syn_reaches_host(OTHER, Port(22)));
        assert!(!fw.syn_reaches_host(PEER, Port(23)));
    }

    #[test]
    fn rule_count_tracks_additions() {
        let mut fw = Firewall::locked_down();
        assert_eq!(fw.rule_count(), 0);
        fw.allow(PEER, Port(1)).allow(OTHER, Port(2));
        assert_eq!(fw.rule_count(), 2);
        assert_eq!(fw.policy(), FirewallPolicy::Drop);
    }
}
