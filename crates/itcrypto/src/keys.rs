//! Key pairs and the PKI-style key registry distributed to all Spire
//! components at configuration time (the original system ships RSA public
//! keys to every replica, proxy, and daemon in its configuration).

use std::collections::BTreeMap;
use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::schnorr::{self, Signature, G, P, Q};

/// A public verification key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PublicKey(pub u64);

impl fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PublicKey({:x})", self.0)
    }
}

impl PublicKey {
    /// Verifies `sig` over `msg`.
    pub fn verify(&self, msg: &[u8], sig: &Signature) -> bool {
        schnorr::verify(self.0, msg, sig)
    }
}

/// A signing key pair.
///
/// # Examples
///
/// ```
/// use itcrypto::keys::KeyPair;
///
/// let mut kp = KeyPair::generate(1);
/// let sig = kp.sign(b"hello");
/// assert!(kp.public_key().verify(b"hello", &sig));
/// ```
#[derive(Clone)]
pub struct KeyPair {
    secret: u64,
    public: PublicKey,
    nonce_rng: StdRng,
}

impl fmt::Debug for KeyPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print the secret.
        write!(f, "KeyPair(pk={:x})", self.public.0)
    }
}

impl KeyPair {
    /// Deterministically generates a key pair from a seed. Distinct seeds
    /// give distinct keys (with overwhelming probability in the group size).
    pub fn generate(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5bd1);
        let secret = rng.gen_range(1..Q);
        let public = PublicKey(schnorr::pow_mod(G, secret, P));
        KeyPair {
            secret,
            public,
            nonce_rng: StdRng::seed_from_u64(seed ^ 0xdead_beef),
        }
    }

    /// Returns the public half.
    pub fn public_key(&self) -> PublicKey {
        self.public
    }

    /// Signs a message. Uses an internal deterministic nonce RNG so repeated
    /// runs of a seeded simulation produce identical transcripts.
    pub fn sign(&mut self, msg: &[u8]) -> Signature {
        schnorr::sign(self.secret, self.public.0, msg, &mut self.nonce_rng)
    }
}

/// Identity of a principal in the key registry.
///
/// Spire's configuration assigns keys to replicas, Spines daemons, proxies,
/// and HMIs; we namespace them the same way.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Principal {
    /// A Prime/SCADA-master replica, by replica index.
    Replica(u32),
    /// A Spines overlay daemon, by daemon id.
    Daemon(u32),
    /// A PLC/RTU proxy, by proxy id.
    Proxy(u32),
    /// An HMI instance, by id.
    Hmi(u32),
    /// A client injecting updates (e.g. the breaker-cycle generator).
    Client(u32),
}

impl fmt::Display for Principal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Principal::Replica(i) => write!(f, "replica-{i}"),
            Principal::Daemon(i) => write!(f, "daemon-{i}"),
            Principal::Proxy(i) => write!(f, "proxy-{i}"),
            Principal::Hmi(i) => write!(f, "hmi-{i}"),
            Principal::Client(i) => write!(f, "client-{i}"),
        }
    }
}

/// The system-wide public-key registry, distributed out-of-band at
/// configuration time (as in the real deployment).
#[derive(Clone, Debug, Default)]
pub struct KeyRegistry {
    keys: BTreeMap<Principal, PublicKey>,
}

impl KeyRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a principal's public key, returning the previous key if one
    /// was present (useful when proactive recovery rotates keys).
    pub fn register(&mut self, who: Principal, key: PublicKey) -> Option<PublicKey> {
        self.keys.insert(who, key)
    }

    /// Looks up a principal's key.
    pub fn lookup(&self, who: Principal) -> Option<PublicKey> {
        self.keys.get(&who).copied()
    }

    /// Verifies a signature attributed to `who`. Unknown principals fail.
    pub fn verify(&self, who: Principal, msg: &[u8], sig: &Signature) -> bool {
        self.lookup(who).is_some_and(|pk| pk.verify(msg, sig))
    }

    /// Number of registered principals.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Iterates over registered principals and keys.
    pub fn iter(&self) -> impl Iterator<Item = (&Principal, &PublicKey)> {
        self.keys.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_seeds_distinct_keys() {
        let a = KeyPair::generate(1);
        let b = KeyPair::generate(2);
        assert_ne!(a.public_key(), b.public_key());
    }

    #[test]
    fn same_seed_same_key() {
        assert_eq!(
            KeyPair::generate(99).public_key(),
            KeyPair::generate(99).public_key()
        );
    }

    #[test]
    fn registry_verify_known_and_unknown() {
        let mut kp = KeyPair::generate(5);
        let mut reg = KeyRegistry::new();
        reg.register(Principal::Replica(0), kp.public_key());
        let sig = kp.sign(b"msg");
        assert!(reg.verify(Principal::Replica(0), b"msg", &sig));
        assert!(!reg.verify(Principal::Replica(1), b"msg", &sig));
        assert!(!reg.verify(Principal::Replica(0), b"other", &sig));
    }

    #[test]
    fn registry_key_rotation_returns_old() {
        let kp1 = KeyPair::generate(1);
        let kp2 = KeyPair::generate(2);
        let mut reg = KeyRegistry::new();
        assert!(reg
            .register(Principal::Daemon(3), kp1.public_key())
            .is_none());
        let old = reg.register(Principal::Daemon(3), kp2.public_key());
        assert_eq!(old, Some(kp1.public_key()));
        assert_eq!(reg.lookup(Principal::Daemon(3)), Some(kp2.public_key()));
    }

    #[test]
    fn debug_never_reveals_secret() {
        let kp = KeyPair::generate(123);
        let dbg = format!("{kp:?}");
        assert!(dbg.contains("pk="));
        assert!(!dbg.contains(&format!("{}", kp.secret)));
    }

    #[test]
    fn principal_display() {
        assert_eq!(Principal::Replica(2).to_string(), "replica-2");
        assert_eq!(Principal::Hmi(0).to_string(), "hmi-0");
    }

    #[test]
    fn registry_len_and_iter() {
        let mut reg = KeyRegistry::new();
        assert!(reg.is_empty());
        for i in 0..4 {
            reg.register(
                Principal::Replica(i),
                KeyPair::generate(i as u64).public_key(),
            );
        }
        assert_eq!(reg.len(), 4);
        assert_eq!(reg.iter().count(), 4);
    }
}
