//! The [`Process`] trait — application code hosted on a simulated node —
//! and the [`Context`] handed to its callbacks.

use std::any::Any;

use obs::trace::TraceCtx;
use rand::rngs::StdRng;

use crate::packet::{Frame, Packet};
use crate::time::{SimDuration, SimTime};
use crate::types::{IpAddr, MacAddr, NodeId, Port};

/// Buffered side effects a process requests during a callback. Applied by
/// the simulator after the callback returns, preserving determinism.
#[derive(Debug)]
pub enum Action {
    /// Send a packet through the normal host stack (ARP resolution,
    /// outbound firewall) on interface `ifidx`.
    SendPacket {
        /// Interface index.
        ifidx: usize,
        /// The packet to send.
        packet: Packet,
    },
    /// Inject a raw frame on interface `ifidx`, bypassing ARP and the
    /// outbound firewall — the raw-socket capability an attacker with root
    /// uses for spoofing and poisoning.
    SendRawFrame {
        /// Interface index.
        ifidx: usize,
        /// The frame, with arbitrary (possibly forged) MACs/IPs.
        frame: Frame,
    },
    /// Arm a one-shot timer that fires `delay` from now with identifier
    /// `timer`.
    SetTimer {
        /// Delay from the current instant.
        delay: SimDuration,
        /// Caller-chosen identifier passed back to `on_timer`.
        timer: u64,
    },
    /// Open a listening port (SYNs to it now answer SYN-ACK).
    Listen(Port),
    /// Close a listening port.
    Unlisten(Port),
    /// Record a log line attributed to this node.
    Log(String),
}

/// Execution context for a single process callback.
pub struct Context<'a> {
    pub(crate) node: NodeId,
    pub(crate) now: SimTime,
    pub(crate) interfaces: &'a [(MacAddr, IpAddr)],
    pub(crate) actions: &'a mut Vec<Action>,
    pub(crate) rng: &'a mut StdRng,
    /// Ambient causal-trace context: pre-set to the incoming packet's
    /// context for `on_packet`/`on_transit`, adjustable by the process.
    pub(crate) trace: Option<TraceCtx>,
}

impl<'a> Context<'a> {
    /// The hosting node's id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of interfaces on this node.
    pub fn interface_count(&self) -> usize {
        self.interfaces.len()
    }

    /// IP address of interface `ifidx`.
    ///
    /// # Panics
    ///
    /// Panics if `ifidx` is out of range.
    pub fn ip(&self, ifidx: usize) -> IpAddr {
        self.interfaces[ifidx].1
    }

    /// MAC address of interface `ifidx`.
    ///
    /// # Panics
    ///
    /// Panics if `ifidx` is out of range.
    pub fn mac(&self, ifidx: usize) -> MacAddr {
        self.interfaces[ifidx].0
    }

    /// Deterministic per-simulation RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// The ambient causal-trace context: the incoming packet's context
    /// for packet callbacks, unless the process overrode it.
    pub fn trace(&self) -> Option<TraceCtx> {
        self.trace
    }

    /// Overrides the ambient trace context for the rest of the
    /// callback; subsequent [`Context::send`]s stamp it on packets.
    pub fn set_trace(&mut self, trace: Option<TraceCtx>) {
        self.trace = trace;
    }

    /// Sends a packet through the normal host stack. Packets without
    /// an explicit trace context inherit the ambient one, so causality
    /// propagates through request/response relays untouched.
    pub fn send(&mut self, ifidx: usize, mut packet: Packet) {
        if packet.trace.is_none() {
            packet.trace = self.trace;
        }
        self.actions.push(Action::SendPacket { ifidx, packet });
    }

    /// Injects a raw frame (attacker capability; bypasses outbound checks).
    pub fn send_raw(&mut self, ifidx: usize, frame: Frame) {
        self.actions.push(Action::SendRawFrame { ifidx, frame });
    }

    /// Arms a one-shot timer.
    pub fn set_timer(&mut self, delay: SimDuration, timer: u64) {
        self.actions.push(Action::SetTimer { delay, timer });
    }

    /// Opens a listening port.
    pub fn listen(&mut self, port: Port) {
        self.actions.push(Action::Listen(port));
    }

    /// Closes a listening port.
    pub fn unlisten(&mut self, port: Port) {
        self.actions.push(Action::Unlisten(port));
    }

    /// Emits a log line.
    pub fn log(&mut self, line: impl Into<String>) {
        self.actions.push(Action::Log(line.into()));
    }
}

/// Application logic hosted on a node.
///
/// All callbacks receive a [`Context`] for reading node identity/time and
/// buffering side effects. Default implementations ignore the event, so
/// simple processes implement only what they need.
///
/// `Send` because the parallel scheduler moves whole shards — nodes and
/// their processes — onto worker threads between window barriers. Only
/// one thread ever touches a process at a time, so `Sync` is not needed.
pub trait Process: Any + Send {
    /// Called once when the simulation starts (or the node is replaced).
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let _ = ctx;
    }

    /// Called for every packet addressed to this host that passed the MAC
    /// filter and inbound firewall: datagrams, scan responses
    /// (SYN-ACK/RST), and echo replies.
    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        let _ = (ctx, pkt);
    }

    /// Called when a timer armed with [`Context::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: u64) {
        let _ = (ctx, timer);
    }

    /// Called for an IP packet whose destination MAC is this host but whose
    /// destination IP is not — i.e. traffic steered here by ARP poisoning.
    /// Ordinary hosts drop it (the default); a man-in-the-middle attacker
    /// inspects, modifies, and re-injects.
    fn on_transit(&mut self, ctx: &mut Context<'_>, ifidx: usize, pkt: Packet) {
        let _ = (ctx, ifidx, pkt);
    }

    /// Called for frames observed promiscuously (node configured with
    /// `promiscuous: true`) that are not addressed to this host. Passive
    /// observation only.
    fn on_promiscuous(&mut self, ctx: &mut Context<'_>, ifidx: usize, frame: &Frame) {
        let _ = (ctx, ifidx, frame);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    struct Nop;
    impl Process for Nop {}

    #[test]
    fn context_accessors_and_actions() {
        let interfaces = vec![(MacAddr::derived(NodeId(3), 0), IpAddr::new(10, 0, 0, 3))];
        let mut actions = Vec::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mut ctx = Context {
            node: NodeId(3),
            now: SimTime(77),
            interfaces: &interfaces,
            actions: &mut actions,
            rng: &mut rng,
            trace: None,
        };
        assert_eq!(ctx.node(), NodeId(3));
        assert_eq!(ctx.now(), SimTime(77));
        assert_eq!(ctx.interface_count(), 1);
        assert_eq!(ctx.ip(0), IpAddr::new(10, 0, 0, 3));
        assert_eq!(ctx.mac(0), MacAddr::derived(NodeId(3), 0));
        ctx.set_timer(SimDuration::from_millis(5), 42);
        ctx.listen(Port(8100));
        ctx.log("hello");
        assert_eq!(actions.len(), 3);
    }

    #[test]
    fn default_process_impls_are_noops() {
        let interfaces = vec![(MacAddr::derived(NodeId(0), 0), IpAddr::new(1, 1, 1, 1))];
        let mut actions = Vec::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mut ctx = Context {
            node: NodeId(0),
            now: SimTime(0),
            interfaces: &interfaces,
            actions: &mut actions,
            rng: &mut rng,
            trace: None,
        };
        let mut p = Nop;
        p.on_start(&mut ctx);
        p.on_timer(&mut ctx, 1);
        assert!(actions.is_empty());
    }
}
