//! The Spines daemon: link crypto, flooding, deduplication, delivery.
//!
//! Each Spire host embeds one daemon per overlay it participates in. The
//! daemon is transport-agnostic: the owner feeds it received wire bytes
//! ([`SpinesDaemon::on_wire`]) and transmits whatever `(addr, bytes)`
//! pairs the daemon returns. This keeps the daemon synchronous and
//! deterministic while the hosting [`simnet::Process`] does the I/O.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use bytes::Bytes;
use itcrypto::stream::{open_with, seal_with, LinkKeys, SealedBox};
use simnet::types::IpAddr;
use simnet::wire::{DecodeError, Reader, Wire, Writer};

use crate::config::{SpinesConfig, SpinesMode};
use crate::fairness::FairQueue;
use crate::message::{Destination, MsgKind, SpinesMsg};

/// Maximum remembered (src, seq) pairs for flood deduplication.
const SEEN_CAP: usize = 100_000;
/// Forwarding budget drained per received frame.
const FORWARD_BUDGET: usize = 4;
/// Per-source forward queue cap (flooders drop their own excess).
const PER_SOURCE_CAP: usize = 64;

/// A message delivered to the local application.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Delivery {
    /// Originating daemon.
    pub src: u32,
    /// The destination it was sent to.
    pub dst: Destination,
    /// Application payload.
    pub payload: Bytes,
}

/// Counters exposed for experiments and the MANA board.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DaemonStats {
    /// Messages this daemon originated.
    pub originated: u64,
    /// Messages forwarded to neighbors.
    pub forwarded: u64,
    /// Messages delivered to the local application.
    pub delivered: u64,
    /// Frames rejected for failed authentication/decryption.
    pub auth_failures: u64,
    /// Frames rejected as duplicates.
    pub duplicates: u64,
    /// Legacy diagnostic messages ignored in intrusion-tolerant mode.
    pub legacy_diag_ignored: u64,
    /// Malformed frames.
    pub malformed: u64,
}

/// Cached registry counter handles mirroring [`DaemonStats`], plus the
/// seal/open tallies that only exist in the registry. Re-registered under
/// a deployment scope by [`SpinesDaemon::attach_obs`].
struct DaemonObs {
    originated: obs::Counter,
    forwarded: obs::Counter,
    delivered: obs::Counter,
    auth_failures: obs::Counter,
    duplicates: obs::Counter,
    legacy_diag_ignored: obs::Counter,
    malformed: obs::Counter,
    sealed: obs::Counter,
    opened: obs::Counter,
}

impl DaemonObs {
    fn from_hub(hub: &obs::ObsHub, scope: &str) -> Self {
        let c = |metric: &str| hub.counter(&format!("{scope}.{metric}"));
        DaemonObs {
            originated: c("originated"),
            forwarded: c("forwarded"),
            delivered: c("delivered"),
            auth_failures: c("auth_failures"),
            duplicates: c("duplicates"),
            legacy_diag_ignored: c("legacy_diag_ignored"),
            malformed: c("malformed"),
            sealed: c("sealed"),
            opened: c("opened"),
        }
    }
}

/// Wire envelope: mode tag + either plaintext (legacy) or a sealed box.
enum LinkFrame {
    Legacy(Vec<u8>),
    Sealed(SealedBox),
}

impl Wire for LinkFrame {
    fn encode(&self, w: &mut Writer) {
        match self {
            LinkFrame::Legacy(bytes) => {
                w.put_u8(0).put_bytes(bytes);
            }
            LinkFrame::Sealed(sb) => {
                w.put_u8(1)
                    .put_u64(sb.nonce)
                    .put_bytes(&sb.ciphertext)
                    .put_raw(&sb.tag);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.get_u8()? {
            0 => Ok(LinkFrame::Legacy(r.get_bytes()?)),
            1 => {
                let nonce = r.get_u64()?;
                let ciphertext = r.get_bytes()?;
                let tag: [u8; 32] = r
                    .get_raw(32)?
                    .try_into()
                    .map_err(|_| DecodeError::new("tag"))?;
                Ok(LinkFrame::Sealed(SealedBox {
                    nonce,
                    ciphertext,
                    tag,
                }))
            }
            _ => Err(DecodeError::new("link frame tag")),
        }
    }
}

/// One Spines overlay daemon.
pub struct SpinesDaemon {
    cfg: SpinesConfig,
    id: u32,
    subscriptions: BTreeSet<u16>,
    next_seq: u64,
    seen: BTreeSet<(u32, u64)>,
    seen_order: VecDeque<(u32, u64)>,
    /// Outgoing nonce per neighbor (never reused on a link direction).
    nonces: BTreeMap<u32, u64>,
    /// Pre-derived link keys per neighbor. Deriving costs four HMAC key
    /// setups; every sealed/opened frame used to pay it, now only the
    /// first frame per link does.
    link_keys: BTreeMap<u32, LinkKeys>,
    /// Pre-derived all-zero "keys" for the rebuilt-binary case
    /// (`has_keys == false`), lazily built.
    null_keys: Option<LinkKeys>,
    /// Reverse address lookup (the config only stores id → addr).
    addr_to_id: BTreeMap<IpAddr, u32>,
    forward_queue: FairQueue<SpinesMsg>,
    deliveries: Vec<Delivery>,
    /// Whether the daemon is running (attackers stop it in E3).
    pub running: bool,
    /// Whether the daemon holds valid link keys (a rebuilt/modified binary
    /// without the deployment's keys does not).
    pub has_keys: bool,
    /// Set when a legacy-mode daemon executed an attacker diagnostic —
    /// i.e. the exploit fired.
    pub legacy_compromised: bool,
    /// Counters.
    pub stats: DaemonStats,
    /// Observability hub (detached until [`SpinesDaemon::attach_obs`]).
    obs: obs::ObsHub,
    c: DaemonObs,
}

impl SpinesDaemon {
    /// Creates daemon `id` of the overlay described by `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the configuration.
    pub fn new(id: u32, cfg: SpinesConfig) -> Self {
        assert!(cfg.daemons.contains_key(&id), "daemon id not in config");
        let hub = obs::ObsHub::new();
        let counters = DaemonObs::from_hub(&hub, &format!("spines.d{id}"));
        let addr_to_id = cfg.daemons.iter().map(|(&d, &a)| (a, d)).collect();
        SpinesDaemon {
            cfg,
            id,
            subscriptions: BTreeSet::new(),
            next_seq: 0,
            seen: BTreeSet::new(),
            seen_order: VecDeque::new(),
            nonces: BTreeMap::new(),
            link_keys: BTreeMap::new(),
            null_keys: None,
            addr_to_id,
            forward_queue: FairQueue::new(PER_SOURCE_CAP),
            deliveries: Vec::new(),
            running: true,
            has_keys: true,
            legacy_compromised: false,
            stats: DaemonStats::default(),
            obs: hub,
            c: counters,
        }
    }

    /// Joins the shared deployment hub, re-registering this daemon's
    /// counters as `{scope}.{metric}` and carrying over any tallies
    /// accumulated while detached.
    pub fn attach_obs(&mut self, hub: &obs::ObsHub, scope: &str) {
        let fresh = DaemonObs::from_hub(hub, scope);
        fresh.originated.add(self.c.originated.get());
        fresh.forwarded.add(self.c.forwarded.get());
        fresh.delivered.add(self.c.delivered.get());
        fresh.auth_failures.add(self.c.auth_failures.get());
        fresh.duplicates.add(self.c.duplicates.get());
        fresh
            .legacy_diag_ignored
            .add(self.c.legacy_diag_ignored.get());
        fresh.malformed.add(self.c.malformed.get());
        fresh.sealed.add(self.c.sealed.get());
        fresh.opened.add(self.c.opened.get());
        self.obs = hub.clone();
        self.c = fresh;
    }

    /// This daemon's id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Current forwarding fair-queue depth (summed across sources) —
    /// the per-link gauge the flight recorder's [`obs::Event::LinkHealth`]
    /// snapshots record.
    pub fn forward_depth(&self) -> usize {
        self.forward_queue.len()
    }

    /// Journals one overlay-hop forwarding span: an instant
    /// [`obs::Stage::SpinesHop`] child of `parent`, attributed to
    /// `node` (the hosting component's id). Hosts call this when a
    /// traced packet reaches their daemon's port, so each overlay hop
    /// of a traced message appears in the span tree. No-op (returning
    /// `None`) when tracing is off or the packet carried no context.
    pub fn trace_hop(&self, parent: Option<obs::TraceCtx>, node: u32) -> Option<obs::TraceCtx> {
        self.obs.instant_span(parent, obs::Stage::SpinesHop, node)
    }

    /// The overlay configuration.
    pub fn config(&self) -> &SpinesConfig {
        &self.cfg
    }

    /// Subscribes the local application to a group.
    pub fn subscribe(&mut self, group: u16) {
        self.subscriptions.insert(group);
    }

    /// Raises the originating sequence number to at least `base`. A daemon
    /// restarted after proactive recovery must not reuse sequence numbers
    /// from its previous life, or peers' flood deduplication silently
    /// drops everything it sends; hosts derive the base from the (always
    /// advancing) clock at start-up.
    pub fn set_seq_base(&mut self, base: u64) {
        self.next_seq = self.next_seq.max(base);
    }

    /// Drains messages delivered to the local application.
    pub fn take_deliveries(&mut self) -> Vec<Delivery> {
        std::mem::take(&mut self.deliveries)
    }

    /// Originates a message to every subscriber of `group`. Returns the
    /// wire sends `(neighbor addr, bytes)` the owner must transmit.
    pub fn multicast(&mut self, group: u16, priority: u8, payload: Bytes) -> Vec<(IpAddr, Bytes)> {
        self.originate(Destination::Group(group), priority, MsgKind::Data, payload)
    }

    /// Originates a message to one daemon.
    pub fn unicast(&mut self, dst: u32, priority: u8, payload: Bytes) -> Vec<(IpAddr, Bytes)> {
        self.originate(Destination::Daemon(dst), priority, MsgKind::Data, payload)
    }

    /// Originates a legacy diagnostic message (only an attacker does this).
    pub fn send_legacy_diag(&mut self, payload: Bytes) -> Vec<(IpAddr, Bytes)> {
        self.originate(Destination::Group(0), 0, MsgKind::LegacyDiag, payload)
    }

    fn originate(
        &mut self,
        dst: Destination,
        priority: u8,
        kind: MsgKind,
        payload: Bytes,
    ) -> Vec<(IpAddr, Bytes)> {
        if !self.running {
            return Vec::new();
        }
        let msg = SpinesMsg {
            src: self.id,
            seq: self.next_seq,
            dst,
            priority,
            kind,
            payload,
        };
        self.next_seq += 1;
        self.stats.originated += 1;
        self.c.originated.inc();
        self.remember(msg.src, msg.seq);
        // Local delivery for group messages we subscribe to.
        self.maybe_deliver(&msg);
        self.flood(&msg, None)
    }

    /// Processes received wire bytes from `from`. Returns frames to send
    /// (forwarded floods).
    pub fn on_wire(&mut self, from: IpAddr, data: &[u8]) -> Vec<(IpAddr, Bytes)> {
        if !self.running {
            return Vec::new();
        }
        let Some(neighbor) = self.addr_to_id.get(&from).copied() else {
            // Not a configured daemon: outsiders can't speak overlay.
            self.stats.auth_failures += 1;
            self.c.auth_failures.inc();
            self.obs
                .journal(obs::Event::AuthFailure { daemon: self.id });
            return Vec::new();
        };
        let msg = match self.decode_frame(neighbor, data) {
            Ok(m) => m,
            Err(failure) => {
                match failure {
                    FrameFailure::Auth => {
                        self.stats.auth_failures += 1;
                        self.c.auth_failures.inc();
                        self.obs
                            .journal(obs::Event::AuthFailure { daemon: self.id });
                    }
                    FrameFailure::Malformed => {
                        self.stats.malformed += 1;
                        self.c.malformed.inc();
                    }
                }
                return Vec::new();
            }
        };
        if self.seen.contains(&(msg.src, msg.seq)) {
            self.stats.duplicates += 1;
            self.c.duplicates.inc();
            return Vec::new();
        }
        self.remember(msg.src, msg.seq);
        self.maybe_deliver(&msg);
        // Queue for fair forwarding, then drain a budget.
        let src = msg.src;
        self.forward_queue.push(src, msg);
        let drained = self.forward_queue.drain(FORWARD_BUDGET);
        let mut out = Vec::new();
        for item in drained {
            out.extend(self.flood(&item.value, Some(neighbor)));
        }
        out
    }

    /// The cached real link keys for this daemon's link to `neighbor`.
    fn real_keys(&mut self, neighbor: u32) -> &LinkKeys {
        let (cfg, id) = (&self.cfg, self.id);
        self.link_keys
            .entry(neighbor)
            .or_insert_with(|| LinkKeys::derive(&cfg.link_key(id, neighbor)))
    }

    /// The link keys used for *sealing* toward `neighbor`: the real keys,
    /// or the all-zero keys when the binary was rebuilt without key
    /// material (`has_keys == false`). Opening always uses the real keys —
    /// a rebuilt binary can still read the network; it just cannot
    /// produce frames its peers accept.
    fn seal_keys(&mut self, neighbor: u32) -> &LinkKeys {
        if self.has_keys {
            self.real_keys(neighbor)
        } else {
            self.null_keys
                .get_or_insert_with(|| LinkKeys::derive(&[0u8; 32]))
        }
    }

    fn decode_frame(&mut self, neighbor: u32, data: &[u8]) -> Result<SpinesMsg, FrameFailure> {
        let frame = LinkFrame::from_wire(data).map_err(|_| FrameFailure::Malformed)?;
        let plaintext = match (self.cfg.mode, frame) {
            (SpinesMode::IntrusionTolerant, LinkFrame::Sealed(sb)) => {
                obs::prof::charge_crypto("spines;hop", obs::prof::CryptoOp::Hmac, 1);
                let plain = open_with(self.real_keys(neighbor), &sb).ok_or(FrameFailure::Auth)?;
                self.c.opened.inc();
                plain
            }
            (SpinesMode::Legacy, LinkFrame::Legacy(bytes)) => bytes,
            // Mode mismatch: an unencrypted daemon talking to an
            // intrusion-tolerant network (or vice versa) is rejected.
            _ => return Err(FrameFailure::Auth),
        };
        SpinesMsg::from_wire(&plaintext).map_err(|_| FrameFailure::Malformed)
    }

    fn maybe_deliver(&mut self, msg: &SpinesMsg) {
        match msg.kind {
            MsgKind::Data => {
                let for_me = match msg.dst {
                    Destination::Daemon(d) => d == self.id,
                    Destination::Group(g) => self.subscriptions.contains(&g),
                };
                if for_me {
                    self.stats.delivered += 1;
                    self.c.delivered.inc();
                    self.deliveries.push(Delivery {
                        src: msg.src,
                        dst: msg.dst,
                        payload: msg.payload.clone(),
                    });
                }
            }
            MsgKind::LegacyDiag => match self.cfg.mode {
                SpinesMode::Legacy => {
                    // The vulnerable handler runs attacker input.
                    self.legacy_compromised = true;
                }
                SpinesMode::IntrusionTolerant => {
                    // Code path disabled: §IV-B "it was in a portion of the
                    // code that is disabled when Spines is run in
                    // intrusion-tolerant mode".
                    self.stats.legacy_diag_ignored += 1;
                    self.c.legacy_diag_ignored.inc();
                }
            },
        }
    }

    fn flood(&mut self, msg: &SpinesMsg, exclude: Option<u32>) -> Vec<(IpAddr, Bytes)> {
        let mut out = Vec::new();
        // Serialize once; only the per-link sealing differs per neighbor.
        let plaintext = msg.to_wire();
        for neighbor in self.cfg.neighbors(self.id) {
            if Some(neighbor) == exclude {
                continue;
            }
            let Some(addr) = self.cfg.addr_of(neighbor) else {
                continue;
            };
            let frame = match self.cfg.mode {
                SpinesMode::Legacy => LinkFrame::Legacy(plaintext.to_vec()),
                SpinesMode::IntrusionTolerant => {
                    let nonce = self.nonces.entry(neighbor).or_insert(0);
                    *nonce += 1;
                    let nonce = *nonce;
                    self.c.sealed.inc();
                    obs::prof::charge_crypto("spines;hop", obs::prof::CryptoOp::Hmac, 1);
                    LinkFrame::Sealed(seal_with(self.seal_keys(neighbor), nonce, &plaintext))
                }
            };
            self.stats.forwarded += 1;
            self.c.forwarded.inc();
            obs::prof::charge_msg("spines;hop", 1, plaintext.len() as u64);
            out.push((addr, frame.to_wire()));
        }
        out
    }

    fn remember(&mut self, src: u32, seq: u64) {
        if self.seen.insert((src, seq)) {
            self.seen_order.push_back((src, seq));
            if self.seen_order.len() > SEEN_CAP {
                if let Some(old) = self.seen_order.pop_front() {
                    self.seen.remove(&old);
                }
            }
        }
    }
}

enum FrameFailure {
    Auth,
    Malformed,
}

impl std::fmt::Debug for SpinesDaemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpinesDaemon")
            .field("id", &self.id)
            .field("running", &self.running)
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::types::Port;

    fn cfg(n: u32, mode: SpinesMode) -> SpinesConfig {
        let daemons: Vec<(u32, IpAddr)> = (0..n)
            .map(|i| (i, IpAddr::new(10, 1, 0, (i + 1) as u8)))
            .collect();
        SpinesConfig::full_mesh(daemons, Port(8100), [9; 32], mode)
    }

    /// Delivers wire sends between daemons until quiescent.
    fn exchange(daemons: &mut [SpinesDaemon], mut pending: Vec<(IpAddr, Bytes)>, from: IpAddr) {
        let mut hops: Vec<(IpAddr, IpAddr, Bytes)> =
            pending.drain(..).map(|(to, b)| (from, to, b)).collect();
        while let Some((src, dst, bytes)) = hops.pop() {
            let idx = daemons
                .iter()
                .position(|d| d.cfg.addr_of(d.id) == Some(dst))
                .expect("destination daemon exists");
            let my_addr = daemons[idx].cfg.addr_of(daemons[idx].id).expect("addr");
            let out = daemons[idx].on_wire(src, &bytes);
            for (to, b) in out {
                hops.push((my_addr, to, b));
            }
        }
    }

    #[test]
    fn group_multicast_reaches_subscribers() {
        let c = cfg(4, SpinesMode::IntrusionTolerant);
        let mut ds: Vec<SpinesDaemon> = (0..4).map(|i| SpinesDaemon::new(i, c.clone())).collect();
        for d in &mut ds {
            d.subscribe(8101);
        }
        let sends = ds[0].multicast(8101, 1, Bytes::from_static(b"hello"));
        assert_eq!(sends.len(), 3);
        let from = c.addr_of(0).expect("addr");
        exchange(&mut ds, sends, from);
        for (i, d) in ds.iter_mut().enumerate() {
            let got = d.take_deliveries();
            assert_eq!(got.len(), 1, "daemon {i}");
            assert_eq!(got[0].payload.as_ref(), b"hello");
            assert_eq!(got[0].src, 0);
        }
    }

    #[test]
    fn unicast_only_reaches_target() {
        let c = cfg(3, SpinesMode::IntrusionTolerant);
        let mut ds: Vec<SpinesDaemon> = (0..3).map(|i| SpinesDaemon::new(i, c.clone())).collect();
        let sends = ds[0].unicast(2, 1, Bytes::from_static(b"direct"));
        let from = c.addr_of(0).expect("addr");
        exchange(&mut ds, sends, from);
        assert!(ds[1].take_deliveries().is_empty());
        assert_eq!(ds[2].take_deliveries().len(), 1);
    }

    #[test]
    fn self_subscribed_multicast_delivers_locally() {
        let c = cfg(2, SpinesMode::IntrusionTolerant);
        let mut d = SpinesDaemon::new(0, c);
        d.subscribe(5);
        let _ = d.multicast(5, 1, Bytes::from_static(b"loop"));
        assert_eq!(d.take_deliveries().len(), 1);
    }

    #[test]
    fn daemon_without_keys_is_rejected() {
        let c = cfg(2, SpinesMode::IntrusionTolerant);
        let mut d0 = SpinesDaemon::new(0, c.clone());
        let mut d1 = SpinesDaemon::new(1, c.clone());
        d1.subscribe(7);
        d0.has_keys = false; // red team's rebuilt daemon
        let sends = d0.multicast(7, 1, Bytes::from_static(b"evil"));
        for (to, bytes) in sends {
            assert_eq!(to, c.addr_of(1).expect("addr"));
            d1.on_wire(c.addr_of(0).expect("addr"), &bytes);
        }
        assert!(d1.take_deliveries().is_empty());
        assert_eq!(d1.stats.auth_failures, 1);
    }

    #[test]
    fn outsider_address_rejected() {
        let c = cfg(2, SpinesMode::IntrusionTolerant);
        let mut d1 = SpinesDaemon::new(1, c);
        let out = d1.on_wire(IpAddr::new(66, 6, 6, 6), b"garbage");
        assert!(out.is_empty());
        assert_eq!(d1.stats.auth_failures, 1);
    }

    #[test]
    fn legacy_exploit_fires_in_legacy_mode_only() {
        // Legacy network: the diagnostic handler runs.
        let cl = cfg(2, SpinesMode::Legacy);
        let mut a = SpinesDaemon::new(0, cl.clone());
        let mut b = SpinesDaemon::new(1, cl.clone());
        let sends = a.send_legacy_diag(Bytes::from_static(b"rm -rf /"));
        for (_to, bytes) in sends {
            b.on_wire(cl.addr_of(0).expect("addr"), &bytes);
        }
        assert!(b.legacy_compromised);

        // Intrusion-tolerant network: same message, code path disabled.
        let ci = cfg(2, SpinesMode::IntrusionTolerant);
        let mut a = SpinesDaemon::new(0, ci.clone());
        let mut b = SpinesDaemon::new(1, ci.clone());
        let sends = a.send_legacy_diag(Bytes::from_static(b"rm -rf /"));
        for (_to, bytes) in sends {
            b.on_wire(ci.addr_of(0).expect("addr"), &bytes);
        }
        assert!(!b.legacy_compromised);
        assert_eq!(b.stats.legacy_diag_ignored, 1);
    }

    #[test]
    fn duplicates_suppressed() {
        let c = cfg(2, SpinesMode::IntrusionTolerant);
        let mut a = SpinesDaemon::new(0, c.clone());
        let mut b = SpinesDaemon::new(1, c.clone());
        b.subscribe(3);
        let sends = a.multicast(3, 1, Bytes::from_static(b"x"));
        let (_, bytes) = &sends[0];
        let from = c.addr_of(0).expect("addr");
        b.on_wire(from, bytes);
        b.on_wire(from, bytes);
        assert_eq!(b.take_deliveries().len(), 1);
        assert_eq!(b.stats.duplicates, 1);
    }

    #[test]
    fn stopped_daemon_is_silent() {
        let c = cfg(2, SpinesMode::IntrusionTolerant);
        let mut a = SpinesDaemon::new(0, c.clone());
        a.running = false;
        assert!(a.multicast(1, 1, Bytes::from_static(b"x")).is_empty());
        assert!(a
            .on_wire(c.addr_of(1).expect("addr"), b"anything")
            .is_empty());
    }

    #[test]
    fn multihop_line_topology_floods_end_to_end() {
        let daemons: Vec<(u32, IpAddr)> = (0..4)
            .map(|i| (i, IpAddr::new(10, 1, 0, (i + 1) as u8)))
            .collect();
        let c = SpinesConfig::with_edges(
            daemons,
            [(0, 1), (1, 2), (2, 3)],
            Port(8100),
            [3; 32],
            SpinesMode::IntrusionTolerant,
        );
        let mut ds: Vec<SpinesDaemon> = (0..4).map(|i| SpinesDaemon::new(i, c.clone())).collect();
        ds[3].subscribe(9);
        let sends = ds[0].multicast(9, 1, Bytes::from_static(b"far"));
        let from = c.addr_of(0).expect("addr");
        exchange(&mut ds, sends, from);
        assert_eq!(ds[3].take_deliveries().len(), 1);
    }

    #[test]
    fn seq_base_prevents_dedup_after_restart() {
        let c = cfg(2, SpinesMode::IntrusionTolerant);
        let mut old = SpinesDaemon::new(0, c.clone());
        let mut peer = SpinesDaemon::new(1, c.clone());
        peer.subscribe(4);
        let from = c.addr_of(0).expect("addr");
        for i in 0..5 {
            let sends = old.multicast(4, 1, Bytes::from(vec![i]));
            for (_to, bytes) in sends {
                peer.on_wire(from, &bytes);
            }
        }
        assert_eq!(peer.take_deliveries().len(), 5);
        // Restart without a seq base: everything is dedup-dropped.
        let mut restarted = SpinesDaemon::new(0, c.clone());
        let sends = restarted.multicast(4, 1, Bytes::from_static(b"lost"));
        for (_to, bytes) in sends {
            peer.on_wire(from, &bytes);
        }
        assert!(
            peer.take_deliveries().is_empty(),
            "reused seq silently dropped"
        );
        // Restart with a clock-derived base: delivery resumes.
        let mut fixed = SpinesDaemon::new(0, c.clone());
        fixed.set_seq_base(1_000_000);
        let sends = fixed.multicast(4, 1, Bytes::from_static(b"alive"));
        for (_to, bytes) in sends {
            peer.on_wire(from, &bytes);
        }
        assert_eq!(peer.take_deliveries().len(), 1);
    }

    #[test]
    fn legacy_frame_rejected_by_it_network() {
        let ci = cfg(2, SpinesMode::IntrusionTolerant);
        let cl = SpinesConfig {
            mode: SpinesMode::Legacy,
            ..ci.clone()
        };
        let mut legacy = SpinesDaemon::new(0, cl);
        let mut it = SpinesDaemon::new(1, ci.clone());
        it.subscribe(2);
        let sends = legacy.multicast(2, 1, Bytes::from_static(b"old"));
        for (_to, bytes) in sends {
            it.on_wire(ci.addr_of(0).expect("addr"), &bytes);
        }
        assert!(it.take_deliveries().is_empty());
        assert_eq!(it.stats.auth_failures, 1);
    }
}
