//! `f+1` matching-message voting.
//!
//! A single compromised SCADA master can emit arbitrary commands and
//! display frames. Proxies and HMIs therefore act only once `f+1`
//! *identical* messages (matched on every field including the execution
//! sequence) have arrived from *distinct* replicas — at least one of which
//! must be correct.

use std::collections::{BTreeMap, BTreeSet};

/// Collects votes keyed by message content; fires once per key when the
/// threshold of distinct voters is reached.
#[derive(Clone, Debug)]
pub struct VoteCollector<K: Ord + Clone> {
    threshold: u32,
    votes: BTreeMap<K, BTreeSet<u32>>,
    fired: BTreeSet<K>,
    /// Keys that reached threshold (monotone counter for stats).
    pub decisions: u64,
}

impl<K: Ord + Clone> VoteCollector<K> {
    /// Creates a collector requiring `threshold` distinct voters.
    pub fn new(threshold: u32) -> Self {
        VoteCollector {
            threshold,
            votes: BTreeMap::new(),
            fired: BTreeSet::new(),
            decisions: 0,
        }
    }

    /// Records a vote from `voter` for `key`. Returns `true` exactly once
    /// per key: when the threshold is first reached.
    pub fn vote(&mut self, key: K, voter: u32) -> bool {
        if self.fired.contains(&key) {
            return false;
        }
        let set = self.votes.entry(key.clone()).or_default();
        set.insert(voter);
        if set.len() as u32 >= self.threshold {
            self.fired.insert(key.clone());
            self.votes.remove(&key);
            self.decisions += 1;
            true
        } else {
            false
        }
    }

    /// Number of keys still below threshold.
    pub fn pending(&self) -> usize {
        self.votes.len()
    }

    /// Drops vote state for keys older than the retention horizon, using a
    /// caller-supplied predicate (e.g. exec_seq below a watermark).
    pub fn retain<F: FnMut(&K) -> bool>(&mut self, mut keep: F) {
        self.votes.retain(|k, _| keep(k));
        self.fired.retain(|k| keep(k));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_exactly_once_at_threshold() {
        let mut v = VoteCollector::new(2);
        assert!(!v.vote("cmd", 0));
        assert!(v.vote("cmd", 1), "second distinct voter fires");
        assert!(!v.vote("cmd", 2), "already fired");
        assert_eq!(v.decisions, 1);
    }

    #[test]
    fn duplicate_voter_does_not_count_twice() {
        let mut v = VoteCollector::new(2);
        assert!(!v.vote("cmd", 0));
        assert!(!v.vote("cmd", 0), "same replica repeating itself");
        assert!(v.vote("cmd", 1));
    }

    #[test]
    fn different_content_is_a_different_key() {
        // A faulty replica voting for a *different* command cannot merge
        // with honest votes.
        let mut v = VoteCollector::new(2);
        assert!(!v.vote(("open", 1u64), 0));
        assert!(
            !v.vote(("close", 1u64), 1),
            "conflicting content, no quorum"
        );
        assert!(v.vote(("open", 1u64), 2));
        assert_eq!(v.pending(), 1, "the lying vote is still parked");
    }

    #[test]
    fn retain_garbage_collects() {
        let mut v = VoteCollector::new(3);
        for seq in 0u64..10 {
            v.vote(seq, 0);
        }
        assert_eq!(v.pending(), 10);
        v.retain(|&seq| seq >= 8);
        assert_eq!(v.pending(), 2);
    }

    #[test]
    fn threshold_one_fires_immediately() {
        let mut v = VoteCollector::new(1);
        assert!(v.vote("x", 5));
    }
}
