//! Sequential↔parallel equivalence suite: the conservative parallel
//! scheduler must be *bit-for-bit* digest-identical to the sequential
//! engine — same journal bytes, same event counts, same rendered result
//! tables — at every seed and thread count. Each experiment is
//! fingerprinted at threads ∈ {1, 2, 4} and compared against the
//! sequential reference; at the golden seed the reference is additionally
//! cross-checked against the pinned table in `tests/golden_digests.rs`,
//! so a bug that corrupted both engines identically would still fail.
//!
//! The full matrix (e1–e13 × seeds {42, 1111, 7} × threads {1, 2, 4})
//! runs in release builds; debug builds trim to the golden seed and the
//! fastest experiments to keep `cargo test -q` inside its time budget
//! (the full matrix still runs under `ci/check.sh`, which tests in
//! release).

use bench::harness::{experiment_fingerprint, FINGERPRINTED, GOLDEN_SEED};
use simnet::sim::set_default_threads;

/// Runs `id` at `seed` with the scheduler forced to `threads`.
/// `set_default_threads` is thread-local, and the libtest harness runs
/// each `#[test]` on its own thread, so tests cannot race each other's
/// setting; resetting to 1 keeps later fingerprints in the same test
/// honest.
fn fingerprint_at(id: &str, seed: u64, threads: usize) -> String {
    set_default_threads(threads);
    let digest = experiment_fingerprint(id, seed);
    set_default_threads(1);
    digest
}

/// Asserts the parallel digests equal the sequential one for `id` at
/// `seed`, across every checked thread count.
fn check_equivalence(id: &str, seed: u64) {
    let sequential = fingerprint_at(id, seed, 1);
    for threads in [2, 4] {
        let parallel = fingerprint_at(id, seed, threads);
        assert_eq!(
            parallel, sequential,
            "{id} at seed {seed} diverged with {threads} threads"
        );
    }
}

/// Seeds exercised beyond the golden one. Release-only: the full matrix
/// is ~180 experiment runs, far past the debug-build time budget.
#[cfg(not(debug_assertions))]
const EXTRA_SEEDS: &[u64] = &[1111, 7];
#[cfg(debug_assertions)]
const EXTRA_SEEDS: &[u64] = &[];

/// Experiments checked in debug builds: the cheapest representatives of
/// each scheduler regime (multi-switch LAN, proxy/PLC cables, WAN sites).
const DEBUG_IDS: &[&str] = &["e1", "e2", "e8", "e13a"];

fn in_budget(id: &str) -> bool {
    !cfg!(debug_assertions) || DEBUG_IDS.contains(&id)
}

#[test]
fn golden_seed_matrix() {
    for id in FINGERPRINTED {
        if in_budget(id) {
            check_equivalence(id, GOLDEN_SEED);
        }
    }
}

#[test]
fn extra_seeds_matrix() {
    for &seed in EXTRA_SEEDS {
        for id in FINGERPRINTED {
            check_equivalence(id, seed);
        }
    }
}

/// The bench harness's E4 scaling curve asserts digest-identity at every
/// point it times (it panics on divergence); two points suffice as a CI
/// smoke that the `spire-sim bench` scaling path works. Release-only:
/// two debug-build E4 days would blow the `cargo test -q` budget.
#[cfg(not(debug_assertions))]
#[test]
fn bench_scaling_curve_smoke() {
    let curve = bench::harness::e4_scaling_curve(GOLDEN_SEED, &[1, 2]);
    assert_eq!(curve.len(), 2);
    assert!(curve.iter().all(|p| p.sim_events > 0));
    assert!((curve[0].speedup - 1.0).abs() < f64::EPSILON);
}

/// The sequential reference itself must match the pinned golden table —
/// guards against the (sequential) refactor and the equivalence suite
/// drifting together.
#[test]
fn sequential_reference_matches_pinned_golden() {
    // Spot-check the experiments the parallel scheduler leans on most:
    // e4 (plant deployment, the bench target) and e12 (chaos engine).
    const PINNED: &[(&str, &str)] = &[
        (
            "e4",
            "30245b3f3ec8608370abff900ab7baca296722f6f5cf1f44cb4018617e6e8433",
        ),
        (
            "e12",
            "7b22a3c488ecd5a7d6370c375ec26f3fdf17e69a51b938aac4c01ef0a204c451",
        ),
    ];
    for (id, want) in PINNED {
        if in_budget(id) || cfg!(not(debug_assertions)) {
            assert_eq!(&fingerprint_at(id, GOLDEN_SEED, 4), want, "{id} drifted");
        }
    }
}
