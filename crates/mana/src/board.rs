//! The situational-awareness board "tailored for power plant engineers"
//! (§II) — a text rendering of every MANA instance's health and incidents,
//! viewable alongside the HMI.

use simnet::time::SimTime;

use crate::ids::ManaInstance;

/// The operator board aggregating several MANA instances.
#[derive(Debug, Default)]
pub struct Board;

impl Board {
    /// Renders the board for the given instances at `now`.
    pub fn render(instances: &[&ManaInstance], now: SimTime) -> String {
        let mut out = String::new();
        out.push_str(&format!("== MANA situational awareness (t = {now}) ==\n"));
        for mana in instances {
            let status = if !mana.is_trained() {
                "TRAINING".to_string()
            } else if mana
                .alerts
                .last()
                .is_some_and(|a| now.since(a.last_seen).as_millis() < 5_000)
            {
                "ALERT".to_string()
            } else {
                "NORMAL".to_string()
            };
            out.push_str(&format!(
                "[{status:^8}] {} — {} windows scored, {} flagged, {} incidents\n",
                mana.name,
                mana.windows_scored,
                mana.windows_flagged,
                mana.alerts.len()
            ));
            for alert in mana.alerts.iter().rev().take(3) {
                out.push_str(&format!(
                    "    {} at {} (peak z = {:.1}, {} windows)\n",
                    alert.kind.describe(),
                    alert.start,
                    alert.peak_z,
                    alert.windows
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::time::SimDuration;

    #[test]
    fn renders_training_and_normal_states() {
        let untrained = ManaInstance::new("MANA 1", SimDuration::from_millis(100));
        let board = Board::render(&[&untrained], SimTime(1_000_000));
        assert!(board.contains("TRAINING"));
        assert!(board.contains("MANA 1"));
    }

    #[test]
    fn renders_alerts() {
        use crate::ids::{Alert, AlertKind};
        let mut mana = ManaInstance::new("MANA 2", SimDuration::from_millis(100));
        mana.alerts.push(Alert {
            start: SimTime(900_000),
            last_seen: SimTime(999_000),
            kind: AlertKind::PortScan,
            windows: 3,
            peak_z: 42.0,
        });
        // Not trained yet so status says TRAINING, but incidents render.
        let board = Board::render(&[&mana], SimTime(1_000_000));
        assert!(board.contains("port scan"));
        assert!(board.contains("1 incidents"));
    }
}
