//! Software diversity, OS hardening, and proactive recovery — the
//! defenses that make Spire's `f`-intrusion budget meaningful (§II, §III-B,
//! §VI-A of the paper).
//!
//! * [`variant`] — the MultiCompiler model: compiling with a random seed
//!   yields a variant whose attack-surface *layout* differs; an exploit is
//!   crafted against one layout and works only there. Binary-hardening
//!   choices (stripping debug symbols, compiling options in instead of
//!   command-line flags/config files) multiply the attacker's work, per
//!   the red team's own debrief (§VI-A).
//! * [`os`] — operating-system profiles: the Ubuntu-desktop-style open
//!   install the components originally ran on vs. the minimal CentOS
//!   server the team ported everything to; dirtycow and the sshd exploit
//!   work on the former and not the latter (§IV-B).
//! * [`recovery`] — the proactive-recovery scheduler: every period, `k`
//!   replicas are taken down, restored from clean images, and recompiled
//!   with fresh seeds, bounding the attacker's accumulation window.
//! * [`economics`] — the attacker-race model for the diversity ablation
//!   (E9): how long until more than `f` replicas are simultaneously
//!   compromised, with and without diversity and recovery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod economics;
pub mod os;
pub mod recovery;
pub mod variant;

pub use economics::{race, RaceConfig, RaceOutcome};
pub use os::{CveClass, OsProfile};
pub use recovery::RecoveryScheduler;
pub use variant::{BinaryHardening, Exploit, MultiCompiler, Variant};
