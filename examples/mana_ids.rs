//! MANA end to end: train on the deployment's own baseline capture, then
//! watch the red team's attacks surface as classified incidents on the
//! situational-awareness board (§II, §III-C).
//!
//! Run with: `cargo run --release --example mana_ids`

use bench::mana_experiment::{e7_mana_detection, render_mana};

fn main() {
    println!("== MANA: passive training, then the red team arrives ==\n");
    let run = e7_mana_detection(1337);
    println!("{}", render_mana(&run));
    println!(
        "verdict: scan={} arp={} flood={}  (false-positive rate on clean traffic: {:.4})",
        run.detected_scan, run.detected_arp, run.detected_flood, run.clean_flag_rate
    );
}
