//! Schnorr signatures over a small safe-prime group.
//!
//! The group is the order-`q` subgroup of `Z_p^*` with
//! `p = 2q + 1 = 4611686018427394499` (62 bits) and generator `g = 4`.
//!
//! **This is simulation-grade cryptography.** A 62-bit discrete log is
//! entirely practical to compute; the point is not security against a real
//! adversary but faithful *in-protocol* behaviour: signatures are
//! transferable (any party can verify with the public key), unforgeable
//! without the secret key by the honest-but-scripted adversaries in this
//! repository, and deterministic given an RNG seed. The original Spire used
//! 2048-bit RSA via OpenSSL; swapping these primitives does not change any
//! protocol logic.

use std::fmt;

use rand::Rng;

use crate::sha256::sha256_concat;

/// Group modulus `p` (a safe prime, `p = 2q + 1`).
pub const P: u64 = 4_611_686_018_427_394_499;
/// Subgroup order `q` (prime).
pub const Q: u64 = 2_305_843_009_213_697_249;
/// Generator of the order-`q` subgroup.
pub const G: u64 = 4;

/// Multiplies modulo `p` without overflow.
#[inline]
pub fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

/// Computes `base^exp mod m` by square-and-multiply.
pub fn pow_mod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    let mut acc: u64 = 1 % m;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, m);
        }
        base = mul_mod(base, base, m);
        exp >>= 1;
    }
    acc
}

/// Deterministic Miller-Rabin primality test, exact for all `u64` using the
/// standard 12-witness set. Used by tests to validate the group parameters.
pub fn is_prime_u64(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n.is_multiple_of(p) {
            return n == p;
        }
    }
    let mut d = n - 1;
    let mut r = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        r += 1;
    }
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// A Schnorr signature `(e, s)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature {
    /// Challenge scalar `e = H(R || pk || m) mod q`.
    pub e: u64,
    /// Response scalar `s = k + e*x mod q`.
    pub s: u64,
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Signature(e={:x}, s={:x})", self.e, self.s)
    }
}

impl Signature {
    /// Serializes the signature to 16 bytes (big-endian `e || s`).
    pub fn to_bytes(self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.e.to_be_bytes());
        out[8..].copy_from_slice(&self.s.to_be_bytes());
        out
    }

    /// Parses a signature from [`Signature::to_bytes`] output.
    pub fn from_bytes(bytes: &[u8; 16]) -> Self {
        Signature {
            e: u64::from_be_bytes(bytes[..8].try_into().expect("8 bytes")),
            s: u64::from_be_bytes(bytes[8..].try_into().expect("8 bytes")),
        }
    }
}

fn challenge(r: u64, pk: u64, msg: &[u8]) -> u64 {
    let d = sha256_concat(&[&r.to_be_bytes(), &pk.to_be_bytes(), msg]);
    d.prefix_u64() % Q
}

/// Signs `msg` with secret scalar `x`, using nonce source `rng`.
pub fn sign<R: Rng>(x: u64, pk: u64, msg: &[u8], rng: &mut R) -> Signature {
    // k must be non-zero mod q.
    let k = rng.gen_range(1..Q);
    let r = pow_mod(G, k, P);
    let e = challenge(r, pk, msg);
    let s = (k as u128 + mul_mod_q(e, x) as u128) % Q as u128;
    Signature { e, s: s as u64 }
}

#[inline]
fn mul_mod_q(a: u64, b: u64) -> u64 {
    ((a as u128 * b as u128) % Q as u128) as u64
}

/// Verifies a signature against public key `pk = g^x mod p`.
pub fn verify(pk: u64, msg: &[u8], sig: &Signature) -> bool {
    if sig.e >= Q || sig.s >= Q {
        return false;
    }
    // R' = g^s * pk^{-e} = g^s * pk^{q-e}
    let gs = pow_mod(G, sig.s, P);
    let pk_neg_e = pow_mod(pk, Q - (sig.e % Q), P);
    let r = mul_mod(gs, pk_neg_e, P);
    challenge(r, pk, msg) == sig.e
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn group_parameters_are_valid() {
        assert!(is_prime_u64(P));
        assert!(is_prime_u64(Q));
        assert_eq!(P, 2 * Q + 1);
        // g generates the order-q subgroup: g^q == 1 and g != 1.
        assert_eq!(pow_mod(G, Q, P), 1);
        assert_ne!(pow_mod(G, 2, P), 1);
    }

    #[test]
    fn sign_verify_roundtrip() {
        let mut rng = StdRng::seed_from_u64(7);
        let x = rng.gen_range(1..Q);
        let pk = pow_mod(G, x, P);
        for i in 0..50u32 {
            let msg = format!("update-{i}");
            let sig = sign(x, pk, msg.as_bytes(), &mut rng);
            assert!(verify(pk, msg.as_bytes(), &sig));
        }
    }

    #[test]
    fn wrong_message_rejected() {
        let mut rng = StdRng::seed_from_u64(8);
        let x = rng.gen_range(1..Q);
        let pk = pow_mod(G, x, P);
        let sig = sign(x, pk, b"open B57", &mut rng);
        assert!(!verify(pk, b"open B56", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let mut rng = StdRng::seed_from_u64(9);
        let x1 = rng.gen_range(1..Q);
        let x2 = rng.gen_range(1..Q);
        let pk1 = pow_mod(G, x1, P);
        let pk2 = pow_mod(G, x2, P);
        let sig = sign(x1, pk1, b"m", &mut rng);
        assert!(!verify(pk2, b"m", &sig));
    }

    #[test]
    fn malformed_scalars_rejected() {
        let mut rng = StdRng::seed_from_u64(10);
        let x = rng.gen_range(1..Q);
        let pk = pow_mod(G, x, P);
        let sig = sign(x, pk, b"m", &mut rng);
        assert!(!verify(pk, b"m", &Signature { e: Q, s: sig.s }));
        assert!(!verify(pk, b"m", &Signature { e: sig.e, s: Q }));
    }

    #[test]
    fn tampered_signature_rejected() {
        let mut rng = StdRng::seed_from_u64(11);
        let x = rng.gen_range(1..Q);
        let pk = pow_mod(G, x, P);
        let sig = sign(x, pk, b"m", &mut rng);
        let bad = Signature {
            e: sig.e ^ 1,
            s: sig.s,
        };
        assert!(!verify(pk, b"m", &bad));
        let bad2 = Signature {
            e: sig.e,
            s: (sig.s + 1) % Q,
        };
        assert!(!verify(pk, b"m", &bad2));
    }

    #[test]
    fn serialization_roundtrip() {
        let mut rng = StdRng::seed_from_u64(12);
        let x = rng.gen_range(1..Q);
        let pk = pow_mod(G, x, P);
        let sig = sign(x, pk, b"m", &mut rng);
        assert_eq!(Signature::from_bytes(&sig.to_bytes()), sig);
    }

    #[test]
    fn pow_mod_edge_cases() {
        assert_eq!(pow_mod(0, 0, 5), 1); // 0^0 == 1 by convention here
        assert_eq!(pow_mod(2, 0, 5), 1);
        assert_eq!(pow_mod(2, 10, 1024 + 1), 1024);
        assert_eq!(pow_mod(7, 1, 5), 2);
    }

    #[test]
    fn miller_rabin_known_values() {
        assert!(is_prime_u64(2));
        assert!(is_prime_u64(3));
        assert!(!is_prime_u64(1));
        assert!(!is_prime_u64(0));
        assert!(is_prime_u64(104_729)); // 10000th prime
        assert!(!is_prime_u64(104_730));
        // Carmichael number 561 = 3*11*17 must be rejected.
        assert!(!is_prime_u64(561));
    }
}
