//! Per-run observability snapshot and its table rendering.

use crate::event::TimedEvent;
use crate::hist::HistogramSummary;
use crate::trace::StageBreakdown;

/// Everything a run recorded, snapshotted: counters, gauges, histogram
/// summaries, critical-path tables, and the journal itself (with its
/// length and digest). This is what experiments return and the CLI
/// prints under `--metrics`.
#[derive(Clone, Debug, PartialEq)]
pub struct ObsReport {
    /// Counter name → value, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge name → value, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Histogram name → summary, sorted by name; empty histograms omitted.
    pub histograms: Vec<(String, HistogramSummary)>,
    /// Per-root-stage latency attribution assembled from the journaled
    /// span trees; empty when the run traced nothing.
    pub critical_paths: Vec<StageBreakdown>,
    /// Number of journal records.
    pub journal_len: usize,
    /// Hex SHA-256 digest of the journal encoding — the run's identity.
    pub journal_digest: String,
    /// The journal records themselves (`--trace-export` renders these
    /// as Chrome trace-event JSON after the run).
    pub journal: Vec<TimedEvent>,
}

impl ObsReport {
    /// Value of a counter in this snapshot (zero if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Summary of a histogram in this snapshot, if it recorded samples.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
    }

    /// Renders the snapshot as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("observability report\n");
        out.push_str("--------------------\n");
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name:<40} {v:>12}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in &self.gauges {
                out.push_str(&format!("  {name:<40} {v:>12}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str(&format!(
                "histograms:\n  {:<40} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
                "name", "count", "p50", "p99", "max", "mean"
            ));
            for (name, s) in &self.histograms {
                out.push_str(&format!(
                    "  {:<40} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
                    name, s.count, s.p50, s.p99, s.max, s.mean
                ));
            }
        }
        if !self.critical_paths.is_empty() {
            for b in &self.critical_paths {
                out.push_str(&format!(
                    "critical path from '{}' ({} chains):\n  {:<40} {:>8} {:>10} {:>10}\n",
                    b.root, b.chains, "stage", "count", "p50_us", "p99_us"
                ));
                for row in &b.rows {
                    out.push_str(&format!(
                        "  {:<40} {:>8} {:>10} {:>10}\n",
                        row.stage.name(),
                        row.count,
                        row.p50_us,
                        row.p99_us
                    ));
                }
                out.push_str(&format!(
                    "  {:<40} {:>8} {:>10} {:>10}\n",
                    "total", "", b.p50_total_us, b.p99_total_us
                ));
            }
        }
        out.push_str(&format!(
            "journal: {} records, digest {}\n",
            self.journal_len, self.journal_digest
        ));
        out
    }
}

/// Renders a [`crate::prof::Profile`] as a markdown attribution table:
/// one row per phase stack (simulated time, share, events, bytes, and
/// per-class crypto-operation counts), a telescoped total row, and a
/// telescoping verdict line. When `expected_total_us` is given (the
/// run's independently measured elapsed simulated time) the verdict
/// states whether the rows sum to it exactly; otherwise it just states
/// the sum. This is the single renderer the CLI and EXPERIMENTS.md use,
/// so the telescoping check is not re-implemented ad hoc per call site.
pub fn attribution_markdown(
    profile: &crate::prof::Profile,
    expected_total_us: Option<u64>,
) -> String {
    use std::fmt::Write as _;
    let total = profile.total();
    let mut out = String::new();
    out.push_str("| phase | time_us | share | events | bytes | sign | verify | hmac |\n");
    out.push_str("|---|---:|---:|---:|---:|---:|---:|---:|\n");
    for (stack, cost) in profile.rows() {
        let share = if total.time_us > 0 {
            100.0 * cost.time_us as f64 / total.time_us as f64
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "| {} | {} | {:.1}% | {} | {} | {} | {} | {} |",
            stack, cost.time_us, share, cost.events, cost.bytes, cost.sign, cost.verify, cost.hmac
        );
    }
    let _ = writeln!(
        out,
        "| **total** | **{}** | 100.0% | {} | {} | {} | {} | {} |",
        total.time_us, total.events, total.bytes, total.sign, total.verify, total.hmac
    );
    match expected_total_us {
        Some(expect) if expect == total.time_us => {
            let _ = writeln!(
                out,
                "\ntelescoping: exact ({} us across {} phases == {} us simulated)",
                total.time_us,
                profile.len(),
                expect
            );
        }
        Some(expect) => {
            let _ = writeln!(
                out,
                "\ntelescoping: MISMATCH (rows sum to {} us, simulated total {} us)",
                total.time_us, expect
            );
        }
        None => {
            let _ = writeln!(
                out,
                "\nrows sum to {} us of simulated time across {} phases",
                total.time_us,
                profile.len()
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ObsReport {
        ObsReport {
            counters: vec![("net.delivered".into(), 42)],
            gauges: vec![("replicas.up".into(), 6)],
            histograms: vec![(
                "hmi.reaction_us".into(),
                HistogramSummary {
                    count: 10,
                    min: 50,
                    p50: 70,
                    p99: 90,
                    max: 95,
                    mean: 71,
                },
            )],
            critical_paths: Vec::new(),
            journal_len: 3,
            journal_digest: "abcd".repeat(16),
            journal: Vec::new(),
        }
    }

    #[test]
    fn lookups_find_recorded_entries() {
        let r = sample();
        assert_eq!(r.counter("net.delivered"), 42);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.histogram("hmi.reaction_us").map(|s| s.p50), Some(70));
        assert!(r.histogram("missing").is_none());
    }

    #[test]
    fn attribution_markdown_reports_telescoping_verdict() {
        use crate::prof::{PhaseCost, Profile};
        let mut p = Profile::new();
        p.charge(
            "prime;order",
            PhaseCost {
                time_us: 30,
                events: 2,
                sign: 1,
                ..PhaseCost::default()
            },
        );
        p.charge(
            "idle",
            PhaseCost {
                time_us: 70,
                ..PhaseCost::default()
            },
        );
        let exact = attribution_markdown(&p, Some(100));
        assert!(exact.contains("telescoping: exact"), "{exact}");
        assert!(
            exact.contains("| prime;order | 30 | 30.0% | 2 |"),
            "{exact}"
        );
        assert!(exact.contains("| **total** | **100** |"), "{exact}");
        let bad = attribution_markdown(&p, Some(99));
        assert!(bad.contains("telescoping: MISMATCH"), "{bad}");
        let free = attribution_markdown(&p, None);
        assert!(free.contains("rows sum to 100 us"), "{free}");
    }

    #[test]
    fn render_contains_every_section() {
        let text = sample().render();
        for needle in [
            "counters:",
            "gauges:",
            "histograms:",
            "net.delivered",
            "3 records",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
