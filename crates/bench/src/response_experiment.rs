//! Experiment E16: closed-loop intrusion response under multi-stage
//! attack campaigns (see EXPERIMENTS.md, "E16").
//!
//! The same seed-deterministic campaign — a Byzantine implant whose
//! spoofed exfiltration traffic lights up the per-replica MANA instances,
//! plus link noise and a proxy-attributed flood — runs twice against the
//! E4 plant deployment: once with the paper's *periodic* proactive
//! recovery (round-robin rejuvenation on a fixed schedule, blind to the
//! detectors) and once with the *feedback* policy
//! (`response::Controller`), which triggers recoveries toward suspected
//! replicas, throttles flooding proxies, and tracks degraded modes. The
//! comparison is time-in-compromised-state, reaction time, and
//! availability — the closed loop must shorten the first two without
//! hurting the third.
//!
//! Detection is honest: the controller never sees the fault schedule. A
//! compromise window is *ground truth* for scoring only (opened by the
//! chaos `Injected` signal, closed by a policy takedown or the scheduled
//! heal); the controller acts on MANA window scores, Prime health gauges,
//! and reachability alone.

use chaos::driver::ChaosDriver;
use chaos::invariants::{CheckerConfig, InvariantChecker, InvariantReport};
use chaos::plan::{ChaosPlan, Fault, FaultKind, ScheduledFault};
use chaos::signal::{ChaosSignal, SignalFeed, SignalKind};
use diversity::recovery::RecoveryScheduler;
use mana::ids::ManaInstance;
use plc::topology::Scenario;
use prime::byzantine::ByzMode;
use prime::types::Config as PrimeConfig;
use redteam::attacker::{AttackStep, Attacker};
use response::{
    Actuation, Controller, ControllerInput, ProxyObservation, ReplicaObservation, ResponseConfig,
};
use simnet::capture::PacketRecord;
use simnet::sim::{InterfaceSpec, NodeSpec};
use simnet::time::{SimDuration, SimTime};
use simnet::types::IpAddr;
use spire::config::{SpireConfig, EXTERNAL_SPINES_PORT};
use spire::deploy::Deployment;
use spire::hardening::HardeningProfile;

use crate::harness::RunMeta;
use crate::plant_experiments::fast_timing;

/// Controller/scheduler tick.
const TICK: SimDuration = SimDuration::from_millis(100);
/// Warm-up before anything else (ARP, overlay discovery, first orders).
const WARMUP: SimDuration = SimDuration::from_secs(1);
/// MANA baseline capture per run (fixed; `--days` scales campaigns only).
const TRAINING: SimDuration = SimDuration::from_secs(12);
/// MANA analysis window.
const MANA_WINDOW: SimDuration = SimDuration::from_millis(250);
/// Ticks a window score is held for the controller before decaying to 0
/// (windows close every 250 ms; ticks are 100 ms).
const Z_HOLD_TICKS: u32 = 5;
/// Periodic-baseline rejuvenation interval (one full round-robin cycle
/// per shape-A wave — the paper's schedule, compressed).
const PERIODIC_INTERVAL: SimDuration = SimDuration::from_secs(3);
/// Recovery downtime, shared by both policies for a fair comparison.
const DOWNTIME: SimDuration = SimDuration::from_millis(1_200);
/// MANA subject id convention for proxy `p` (replicas use their index).
const PROXY_SUBJECT_BASE: u32 = 1_000;

/// Which recovery policy drives the run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// The paper's schedule: blind round-robin rejuvenation.
    Periodic,
    /// The closed loop: `response::Controller` + triggered recoveries.
    Feedback,
}

impl Policy {
    /// Report label.
    pub fn name(self) -> &'static str {
        match self {
            Policy::Periodic => "periodic",
            Policy::Feedback => "feedback",
        }
    }
}

/// The two campaign shapes E16 pins.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Shape {
    /// E16a: one implant (mute-leader flip on replica 4) exfiltrating
    /// spoofed flood traffic, then a proxy-attributed flood that should
    /// engage the throttle actuator. One wave is 24 s.
    ImplantFlood,
    /// E16b: two sequential implants (replicas 2 then 5), each exfiltrating
    /// under its own address, with link noise between. One wave is 28 s.
    DoubleCompromise,
}

impl Shape {
    /// Experiment id ("e16a" / "e16b").
    pub fn id(self) -> &'static str {
        match self {
            Shape::ImplantFlood => "e16a",
            Shape::DoubleCompromise => "e16b",
        }
    }

    /// Report label.
    pub fn name(self) -> &'static str {
        match self {
            Shape::ImplantFlood => "implant-flood",
            Shape::DoubleCompromise => "double-compromise",
        }
    }

    /// One wave's length; `--days` repeats waves back to back.
    fn wave(self) -> SimDuration {
        match self {
            Shape::ImplantFlood => SimDuration::from_secs(24),
            Shape::DoubleCompromise => SimDuration::from_secs(28),
        }
    }

    /// The chaos timeline for `waves` waves, offsets relative to the
    /// driver's start. Deliberately contains no `NodeCrash`/`Recovery`
    /// faults: every node down/up in an E16 run is a *policy* decision,
    /// so the two policies are compared on identical ground truth.
    fn plan(self, waves: u64) -> ChaosPlan {
        let mut faults = Vec::new();
        for w in 0..waves {
            let base = self.wave().saturating_mul(w);
            let at = |ms: u64| base + SimDuration::from_millis(ms);
            match self {
                Shape::ImplantFlood => {
                    faults.push(ScheduledFault {
                        at: at(1_000),
                        duration: SimDuration::from_secs(10),
                        fault: Fault::ByzFlip {
                            replica: 4,
                            mode: ByzMode::MuteLeader,
                        },
                    });
                    faults.push(ScheduledFault {
                        at: at(4_000),
                        duration: SimDuration::from_millis(1_500),
                        fault: Fault::LinkLoss {
                            replica: 2,
                            loss: 0.2,
                        },
                    });
                    faults.push(ScheduledFault {
                        at: at(15_000),
                        duration: SimDuration::from_millis(1_500),
                        fault: Fault::LatencySpike {
                            replica: 1,
                            latency: SimDuration::from_millis(4),
                        },
                    });
                }
                Shape::DoubleCompromise => {
                    faults.push(ScheduledFault {
                        at: at(1_000),
                        duration: SimDuration::from_secs(8),
                        fault: Fault::ByzFlip {
                            replica: 2,
                            mode: ByzMode::DelayLeader(SimDuration::from_millis(100)),
                        },
                    });
                    faults.push(ScheduledFault {
                        at: at(6_000),
                        duration: SimDuration::from_millis(1_500),
                        fault: Fault::LinkLoss {
                            replica: 0,
                            loss: 0.2,
                        },
                    });
                    faults.push(ScheduledFault {
                        at: at(14_000),
                        duration: SimDuration::from_secs(8),
                        fault: Fault::ByzFlip {
                            replica: 5,
                            mode: ByzMode::MuteLeader,
                        },
                    });
                }
            }
        }
        ChaosPlan { faults }
    }

    /// The attacker's exfiltration schedule: floods spoofed under the
    /// compromised replica's (or the proxy's) source address, so the
    /// per-subject MANA instances attribute them honestly. Times are
    /// absolute; `t0` is the campaign start.
    fn attacker(self, d: &Deployment, t0: SimTime, waves: u64) -> Attacker {
        let mut attacker = Attacker::new();
        let mut burst = |at: SimTime, spoof: IpAddr, pps: u32, dur_ms: u64| {
            attacker.schedule(
                at,
                AttackStep::DosBurst {
                    target: d.cfg.replica_external_ip(1),
                    port: EXTERNAL_SPINES_PORT,
                    pps,
                    duration: SimDuration::from_millis(dur_ms),
                    spoof_src: Some(spoof),
                    payload: 600,
                },
            );
        };
        for w in 0..waves {
            let base = t0 + self.wave().saturating_mul(w);
            match self {
                Shape::ImplantFlood => {
                    burst(
                        base + SimDuration::from_millis(1_200),
                        d.cfg.replica_external_ip(4),
                        2_000,
                        2_500,
                    );
                    burst(
                        base + SimDuration::from_millis(9_000),
                        d.cfg.proxy_ip(0),
                        2_000,
                        2_000,
                    );
                }
                Shape::DoubleCompromise => {
                    burst(
                        base + SimDuration::from_millis(1_200),
                        d.cfg.replica_external_ip(2),
                        1_800,
                        2_500,
                    );
                    burst(
                        base + SimDuration::from_millis(14_200),
                        d.cfg.replica_external_ip(5),
                        1_800,
                        2_500,
                    );
                }
            }
        }
        attacker
    }
}

/// One policy's verdict for a campaign.
#[derive(Clone, Debug)]
pub struct PolicyOutcome {
    /// Policy label ("periodic" / "feedback").
    pub policy: &'static str,
    /// Recoveries the policy started (node actually taken down).
    pub recoveries: u64,
    /// Restores applied.
    pub restores: u64,
    /// Ground-truth time spent with a live implant, microseconds.
    pub compromised_us: u64,
    /// Per-compromise end-to-end reaction samples (inject → takedown, or
    /// the full window when the scheduled heal got there first).
    pub reaction_us: Vec<u64>,
    /// Compromise windows closed by the policy.
    pub reacted: u64,
    /// Compromise windows the policy never caught (heal closed them).
    pub missed: u64,
    /// Throttle actuations (feedback only).
    pub throttles: u64,
    /// Proxy updates suppressed by the rate cap.
    pub updates_throttled: u64,
    /// MANA windows flagged anomalous across all instances.
    pub anomaly_windows: u64,
    /// Degraded-mode transitions journaled (feedback only).
    pub transitions: u64,
    /// Per-invariant verdicts.
    pub invariants: Vec<InvariantReport>,
    /// True when no invariant fired.
    pub all_green: bool,
    /// Minimum executed update count across replicas at the end.
    pub min_executed: u64,
    /// Longest interval with no global execution progress, microseconds.
    pub longest_stall_us: u64,
    /// Determinism capture (journal digest + event count).
    pub meta: RunMeta,
}

impl PolicyOutcome {
    /// p99 (effectively max for the few windows per run) reaction time.
    pub fn reaction_p99_us(&self) -> u64 {
        let mut sorted = self.reaction_us.clone();
        sorted.sort_unstable();
        if sorted.is_empty() {
            return 0;
        }
        let idx = (sorted.len() - 1).min(sorted.len() * 99 / 100);
        sorted[idx]
    }
}

/// E16 result: one campaign shape, both policies.
#[derive(Clone, Debug)]
pub struct CampaignRun {
    /// Experiment id ("e16a" / "e16b").
    pub id: &'static str,
    /// Shape label.
    pub shape: &'static str,
    /// Waves run (`--days`).
    pub waves: u64,
    /// The blind periodic baseline.
    pub periodic: PolicyOutcome,
    /// The closed loop.
    pub feedback: PolicyOutcome,
}

/// Ground-truth compromise bookkeeping (scoring only — never shown to
/// the controller).
struct CompromiseLog {
    /// Open implants: (replica, injected at).
    open: Vec<(u32, SimTime)>,
    compromised_us: u64,
    reaction_us: Vec<u64>,
    reacted: u64,
    missed: u64,
}

impl CompromiseLog {
    fn new() -> Self {
        CompromiseLog {
            open: Vec::new(),
            compromised_us: 0,
            reaction_us: Vec::new(),
            reacted: 0,
            missed: 0,
        }
    }

    fn note_signals(&mut self, signals: &[ChaosSignal]) {
        for sig in signals {
            if sig.code != FaultKind::ByzFlip.tag() {
                continue;
            }
            match sig.kind {
                SignalKind::Injected => self.open.push((sig.target, sig.at)),
                SignalKind::Healed => self.close(sig.target, sig.at, false),
                _ => {}
            }
        }
    }

    /// A policy takedown of `replica` at `now` ends its implant, if one
    /// is live. Returns whether it was.
    fn note_takedown(&mut self, replica: u32, now: SimTime) -> bool {
        let was_live = self.open.iter().any(|(r, _)| *r == replica);
        self.close(replica, now, true);
        was_live
    }

    fn close(&mut self, replica: u32, at: SimTime, by_policy: bool) {
        let Some(pos) = self.open.iter().position(|(r, _)| *r == replica) else {
            return;
        };
        let (_, injected) = self.open.remove(pos);
        let lived = at.since(injected).as_micros();
        self.compromised_us += lived;
        self.reaction_us.push(lived);
        if by_policy {
            self.reacted += 1;
        } else {
            self.missed += 1;
        }
    }
}

/// Held per-subject anomaly score: the latest window's peak z, decayed to
/// zero after `Z_HOLD_TICKS` controller ticks without a fresh window.
struct HeldScore {
    z: f64,
    age: u32,
}

impl HeldScore {
    fn new() -> Self {
        HeldScore {
            z: 0.0,
            age: Z_HOLD_TICKS,
        }
    }

    fn tick(&mut self, fresh_max: Option<f64>) {
        match fresh_max {
            Some(z) => {
                self.z = z;
                self.age = 0;
            }
            None => {
                self.age = self.age.saturating_add(1);
                if self.age >= Z_HOLD_TICKS {
                    self.z = 0.0;
                }
            }
        }
    }
}

/// Per-subject MANA routing: instance `i < n` watches traffic *sent* by
/// replica `i`'s external address (spoofed exfiltration is attributed to
/// the replica it impersonates); the last instance watches the proxy.
struct SubjectMana {
    instances: Vec<(IpAddr, ManaInstance, HeldScore)>,
}

impl SubjectMana {
    fn new(d: &Deployment, n: u32) -> Self {
        let mut instances = Vec::new();
        for r in 0..n {
            let mut inst = ManaInstance::new(format!("MANA r{r}"), MANA_WINDOW);
            inst.journal_scores(d.obs.clone(), r);
            instances.push((d.cfg.replica_external_ip(r), inst, HeldScore::new()));
        }
        let mut proxy = ManaInstance::new("MANA proxy0", MANA_WINDOW);
        proxy.journal_scores(d.obs.clone(), PROXY_SUBJECT_BASE);
        instances.push((d.cfg.proxy_ip(0), proxy, HeldScore::new()));
        SubjectMana { instances }
    }

    fn ingest(&mut self, records: &[PacketRecord], now: SimTime) {
        for (ip, inst, _) in &mut self.instances {
            inst.ingest(records.iter().filter(|r| r.src_ip == *ip).cloned());
            inst.advance_to(now);
        }
    }

    fn finish_training(&mut self, now: SimTime) {
        for (_, inst, _) in &mut self.instances {
            inst.advance_to(now);
            inst.finish_training();
        }
    }

    /// Drains fresh window scores and updates each subject's held z.
    fn tick_scores(&mut self) {
        for (_, inst, held) in &mut self.instances {
            let fresh = inst
                .take_window_scores()
                .iter()
                .map(|s| s.max_z)
                .fold(None, |acc: Option<f64>, z| {
                    Some(acc.map_or(z, |a| a.max(z)))
                });
            held.tick(fresh);
        }
    }

    fn replica_z(&self, r: usize) -> f64 {
        self.instances[r].2.z
    }

    fn proxy_z(&self) -> f64 {
        self.instances[self.instances.len() - 1].2.z
    }

    fn flagged_windows(&self) -> u64 {
        self.instances
            .iter()
            .map(|(_, inst, _)| inst.windows_flagged)
            .sum()
    }
}

/// Builds the E16 deployment (the E4 plant subset with chaos hardening)
/// and runs warm-up.
fn build_deployment(seed: u64) -> (Deployment, PrimeConfig) {
    let mut prime_cfg = PrimeConfig::plant();
    // Same rationale as E12: catch-up after recovery needs dedup-table
    // transfer or the rejoining replica forks its execution numbering.
    prime_cfg.transfer_dedup = true;
    let cfg = SpireConfig::minimal(prime_cfg, Scenario::PlantSubset);
    let mut d = Deployment::build(cfg, HardeningProfile::deployed(), seed);
    for i in 0..prime_cfg.n() {
        d.replica_mut(i).set_timing(fast_timing());
    }
    d.proxy_mut(0)
        .set_poll_interval(SimDuration::from_millis(100));
    d.proxy_mut(0).verbose_updates = true;
    d.run_for(WARMUP);
    (d, prime_cfg)
}

/// Applies a policy takedown if `replica` is actually reachable; keeps
/// the checker's fault budget honest (a live implant on the victim is
/// neutralized by the clean-image recovery, so its Byzantine budget slot
/// frees the moment the node drops).
fn apply_takedown(
    d: &mut Deployment,
    checker: &mut InvariantChecker,
    log: &mut CompromiseLog,
    replica: u32,
    now: SimTime,
) -> bool {
    if !d.replica_up(replica) {
        return false;
    }
    if log.note_takedown(replica, now) {
        d.replica_mut(replica).replica.byz = ByzMode::Correct;
        checker.byz_healed(replica);
    }
    d.take_replica_down(replica);
    checker.replica_down(replica);
    true
}

fn apply_restore(d: &mut Deployment, checker: &mut InvariantChecker, replica: u32) {
    if d.replica_up(replica) {
        return;
    }
    d.restore_replica(replica);
    checker.replica_rejoined(replica, d);
}

/// Runs one (shape, policy) campaign end to end.
fn run_policy(seed: u64, shape: Shape, policy: Policy, waves: u64) -> PolicyOutcome {
    let (mut d, prime_cfg) = build_deployment(seed);
    let n = prime_cfg.n();

    // Train the per-subject MANA instances on clean operation. A zero-wave
    // run has no campaign to detect, so it skips straight to quiescence
    // (keeps the `--days 0` CLI smoke cheap).
    let mut mana = SubjectMana::new(&d, n);
    let chunks = if waves == 0 {
        0
    } else {
        TRAINING.as_micros() / SimDuration::from_millis(500).as_micros()
    };
    d.sim.drain_tap(d.external_tap); // discard boot/ARP noise
    for _ in 0..chunks {
        d.run_for(SimDuration::from_millis(500));
        let records = d.sim.drain_tap(d.external_tap);
        mana.ingest(&records, d.now());
    }
    mana.finish_training(d.now());

    // Campaign setup: plan + attacker + checker + signal feed + policy.
    let t0 = d.now();
    let horizon = shape.wave().saturating_mul(waves);
    let mut attacker_spec = NodeSpec::new(
        "red-team",
        vec![InterfaceSpec::dynamic(IpAddr::new(10, 20, 0, 66))],
        Box::new(shape.attacker(&d, t0, waves)),
    );
    attacker_spec.promiscuous = true;
    d.attach_external_attacker(attacker_spec);

    let mut checker = InvariantChecker::new(CheckerConfig::for_prime(&prime_cfg), &d);
    let feed = SignalFeed::new();
    let mut cursor = 0usize;
    let mut driver = ChaosDriver::new(shape.plan(waves));
    driver.attach_signals(feed.clone());
    checker.attach_signals(feed.clone());

    let mut scheduler = match policy {
        Policy::Periodic => RecoveryScheduler::new(n, prime_cfg.k, PERIODIC_INTERVAL, DOWNTIME),
        // Feedback never uses the periodic clock; the huge interval
        // leaves only the trigger path (and its variant rotation) live.
        Policy::Feedback => RecoveryScheduler::new(n, prime_cfg.k, horizon + WARMUP, DOWNTIME),
    };
    scheduler.align(t0);
    let mut controller = Controller::new(ResponseConfig::for_budget(n, prime_cfg.f, prime_cfg.k));
    controller.attach_obs(d.obs.clone());

    let mut log = CompromiseLog::new();
    // Periodic policy's pending restores: (replica, due).
    let mut pending_restore: Vec<(u32, SimTime)> = Vec::new();
    let mut recoveries = 0u64;
    let mut restores = 0u64;
    let mut throttles = 0u64;
    // Availability probe: longest interval without global exec progress.
    let mut max_exec = 0u64;
    let mut last_progress = t0;
    let mut longest_stall = SimDuration::ZERO;

    let deadline = t0 + horizon;
    while d.now() < deadline {
        driver.run_soak(&mut d, &mut checker, TICK, TICK);
        let now = d.now();

        let records = d.sim.drain_tap(d.external_tap);
        mana.ingest(&records, now);
        mana.tick_scores();
        let signals = feed.drain_from(&mut cursor);
        log.note_signals(&signals);

        match policy {
            Policy::Feedback => {
                let replicas: Vec<ReplicaObservation> = (0..n)
                    .map(|r| {
                        let health = d.replica_health(r);
                        ReplicaObservation {
                            replica: r,
                            up: d.replica_up(r),
                            anomaly_z: mana.replica_z(r as usize),
                            po_queue: health.po_queue,
                            tat_us: health.tat_us,
                            view: health.view,
                            catching_up: health.catching_up,
                        }
                    })
                    .collect();
                let input = ControllerInput {
                    now,
                    replicas,
                    proxies: vec![ProxyObservation {
                        proxy: 0,
                        anomaly_z: mana.proxy_z(),
                    }],
                    signals,
                };
                for act in controller.step(&input) {
                    match act {
                        Actuation::TakeDown { replica } => {
                            // Variant rotation rides the same scheduler as
                            // the periodic path; budget honored by both.
                            scheduler.trigger(replica, now);
                            if apply_takedown(&mut d, &mut checker, &mut log, replica, now) {
                                recoveries += 1;
                            }
                        }
                        Actuation::Restore { replica } => {
                            apply_restore(&mut d, &mut checker, replica);
                            restores += 1;
                        }
                        Actuation::Throttle {
                            proxy,
                            min_interval,
                        } => {
                            d.set_proxy_rate_limit(proxy, Some(min_interval));
                            throttles += 1;
                        }
                        Actuation::Unthrottle { proxy } => {
                            d.set_proxy_rate_limit(proxy, None);
                        }
                    }
                }
            }
            Policy::Periodic => {
                for ev in scheduler.poll(now) {
                    if apply_takedown(&mut d, &mut checker, &mut log, ev.replica, now) {
                        recoveries += 1;
                        pending_restore.push((ev.replica, ev.finish));
                    }
                }
                let due: Vec<u32> = pending_restore
                    .iter()
                    .filter(|(_, t)| now >= *t)
                    .map(|(r, _)| *r)
                    .collect();
                for r in due {
                    pending_restore.retain(|(pr, _)| *pr != r);
                    apply_restore(&mut d, &mut checker, r);
                    restores += 1;
                }
            }
        }

        let exec = (0..n)
            .filter(|&r| d.replica_up(r))
            .map(|r| d.replica(r).replica.exec_seq())
            .max()
            .unwrap_or(0);
        if exec > max_exec {
            max_exec = exec;
            last_progress = now;
        }
        longest_stall = longest_stall.max(now.since(last_progress));
    }

    // End of campaign: bring every policy-downed replica back, heal the
    // remaining chaos windows, and let reconvergence finish.
    for r in controller.isolated() {
        apply_restore(&mut d, &mut checker, r);
        restores += 1;
    }
    for (r, _) in std::mem::take(&mut pending_restore) {
        apply_restore(&mut d, &mut checker, r);
        restores += 1;
    }
    driver.heal_all(&mut d, &mut checker);
    d.set_proxy_rate_limit(0, None);
    driver.run_quiesce(&mut d, &mut checker, SimDuration::from_secs(8), TICK);
    log.note_signals(&feed.drain_from(&mut cursor));

    let label = format!("{}.{}", shape.id(), policy.name());
    let meta = RunMeta::capture(&label, &d.obs, &d.sim);
    PolicyOutcome {
        policy: policy.name(),
        recoveries,
        restores,
        compromised_us: log.compromised_us,
        reaction_us: log.reaction_us,
        reacted: log.reacted,
        missed: log.missed,
        throttles,
        updates_throttled: d.proxy(0).stats.updates_throttled,
        anomaly_windows: mana.flagged_windows(),
        transitions: controller.stats.transitions,
        invariants: checker.reports(),
        all_green: checker.all_green(),
        min_executed: d.min_executed(),
        longest_stall_us: longest_stall.as_micros(),
        meta,
    }
}

/// E16 — one campaign shape, both policies, same seed and ground truth.
/// `days` is the wave count (0 = setup smoke only).
pub fn e16_campaign(seed: u64, shape: Shape, days: u64) -> CampaignRun {
    CampaignRun {
        id: shape.id(),
        shape: shape.name(),
        waves: days,
        periodic: run_policy(seed, shape, Policy::Periodic, days),
        feedback: run_policy(seed, shape, Policy::Feedback, days),
    }
}

/// Negative control: a deliberately over-budget crash plan (no MANA, no
/// attacker) with the checker forced armed. Bounded-delay must trip under
/// *both* policies — the closed loop does not mask genuine over-budget
/// outages. Returns the per-invariant reports.
pub fn e16_beyond_budget(seed: u64, policy: Policy) -> Vec<InvariantReport> {
    let (mut d, prime_cfg) = build_deployment(seed);
    let n = prime_cfg.n();
    let horizon = SimDuration::from_secs(10);

    let mut checker_cfg = CheckerConfig::for_prime(&prime_cfg);
    checker_cfg.assume_within_budget = true;
    let mut checker = InvariantChecker::new(checker_cfg, &d);
    let feed = SignalFeed::new();
    let mut cursor = 0usize;
    let mut driver = ChaosDriver::new(ChaosPlan::beyond_budget_crashes(prime_cfg.f, horizon));
    driver.attach_signals(feed.clone());
    checker.attach_signals(feed.clone());

    let mut scheduler = RecoveryScheduler::new(n, prime_cfg.k, PERIODIC_INTERVAL, DOWNTIME);
    scheduler.align(d.now());
    let mut controller = Controller::new(ResponseConfig::for_budget(n, prime_cfg.f, prime_cfg.k));
    let mut log = CompromiseLog::new();
    let mut pending_restore: Vec<(u32, SimTime)> = Vec::new();

    let deadline = d.now() + horizon;
    while d.now() < deadline {
        driver.run_soak(&mut d, &mut checker, TICK, TICK);
        let now = d.now();
        let signals = feed.drain_from(&mut cursor);
        match policy {
            Policy::Feedback => {
                let replicas: Vec<ReplicaObservation> = (0..n)
                    .map(|r| ReplicaObservation {
                        replica: r,
                        up: d.replica_up(r),
                        ..ReplicaObservation::default()
                    })
                    .collect();
                let input = ControllerInput {
                    now,
                    replicas,
                    proxies: Vec::new(),
                    signals,
                };
                for act in controller.step(&input) {
                    match act {
                        Actuation::TakeDown { replica } => {
                            apply_takedown(&mut d, &mut checker, &mut log, replica, now);
                        }
                        Actuation::Restore { replica } => {
                            apply_restore(&mut d, &mut checker, replica);
                        }
                        _ => {}
                    }
                }
            }
            Policy::Periodic => {
                for ev in scheduler.poll(now) {
                    if apply_takedown(&mut d, &mut checker, &mut log, ev.replica, now) {
                        pending_restore.push((ev.replica, ev.finish));
                    }
                }
                let due: Vec<u32> = pending_restore
                    .iter()
                    .filter(|(_, t)| now >= *t)
                    .map(|(r, _)| *r)
                    .collect();
                for r in due {
                    pending_restore.retain(|(pr, _)| *pr != r);
                    apply_restore(&mut d, &mut checker, r);
                }
            }
        }
    }
    checker.reports()
}

fn render_policy(out: &mut String, p: &PolicyOutcome) {
    out.push_str(&format!(
        "  {:<9} compromised {:>7.3}s  reaction p99 {:>7.3}s  reacted {}/{}  \
         recoveries {:>2}  throttles {}  stall {:>6.3}s  min-exec {:>5}  {}\n",
        p.policy,
        p.compromised_us as f64 / 1e6,
        p.reaction_p99_us() as f64 / 1e6,
        p.reacted,
        p.reacted + p.missed,
        p.recoveries,
        p.throttles,
        p.longest_stall_us as f64 / 1e6,
        p.min_executed,
        if p.all_green { "GREEN" } else { "RED" },
    ));
}

/// Renders one campaign's periodic-vs-feedback table.
pub fn render_campaign(run: &CampaignRun) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{} campaign \"{}\": {} wave(s)\n",
        run.id, run.shape, run.waves
    ));
    render_policy(&mut out, &run.periodic);
    render_policy(&mut out, &run.feedback);
    let (p, f) = (run.periodic.compromised_us, run.feedback.compromised_us);
    if p > 0 {
        out.push_str(&format!(
            "  feedback cuts time-in-compromised-state {:.1}x ({:.3}s -> {:.3}s)\n",
            p as f64 / (f.max(1)) as f64,
            p as f64 / 1e6,
            f as f64 / 1e6
        ));
    }
    out.push_str(&format!(
        "  anomaly windows flagged: periodic {} feedback {}   mode transitions: {}\n",
        run.periodic.anomaly_windows, run.feedback.anomaly_windows, run.feedback.transitions
    ));
    out
}

fn policy_json(p: &PolicyOutcome) -> String {
    let invariants: Vec<String> = p
        .invariants
        .iter()
        .map(|inv| {
            format!(
                "{{\"name\":\"{}\",\"checks\":{},\"violations\":{}}}",
                inv.name, inv.checks, inv.violations
            )
        })
        .collect();
    let reactions: Vec<String> = p.reaction_us.iter().map(u64::to_string).collect();
    format!(
        "{{\"policy\":\"{}\",\"compromised_us\":{},\"reaction_p99_us\":{},\"reaction_us\":[{}],\
         \"reacted\":{},\"missed\":{},\"recoveries\":{},\"restores\":{},\"throttles\":{},\
         \"updates_throttled\":{},\"anomaly_windows\":{},\"transitions\":{},\
         \"longest_stall_us\":{},\"min_executed\":{},\"all_green\":{},\
         \"invariants\":[{}],\"journal_digest\":\"{}\"}}",
        p.policy,
        p.compromised_us,
        p.reaction_p99_us(),
        reactions.join(","),
        p.reacted,
        p.missed,
        p.recoveries,
        p.restores,
        p.throttles,
        p.updates_throttled,
        p.anomaly_windows,
        p.transitions,
        p.longest_stall_us,
        p.min_executed,
        p.all_green,
        invariants.join(","),
        p.meta.journal_digest
    )
}

/// One campaign as JSON (for `spire-sim e16 --json`).
pub fn campaign_json(run: &CampaignRun) -> String {
    format!(
        "{{\n  \"id\": \"{}\",\n  \"shape\": \"{}\",\n  \"waves\": {},\n  \
         \"periodic\": {},\n  \"feedback\": {}\n}}",
        run.id,
        run.shape,
        run.waves,
        policy_json(&run.periodic),
        policy_json(&run.feedback)
    )
}
