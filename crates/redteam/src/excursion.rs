//! The §IV-B compromised-replica excursion: "the red team was given
//! gradually increasing control of one of the SCADA master replicas (a
//! situation Spire is designed to withstand) as well as access to Spire's
//! source code."
//!
//! Stages, exactly as the paper reports them:
//!
//! 1. **User access — stop the Spines daemons.** No effect: the system
//!    tolerates the loss of any one replica.
//! 2. **Restart with a modified daemon (no keys).** Rejected: link
//!    encryption keeps it out of the overlay.
//! 3. **Privilege escalation (dirtycow / sshd).** Fails on the hardened
//!    minimal-CentOS profile.
//! 4. **Patch the deployed binary with the discovered exploit.** The
//!    patched daemon is a valid overlay member, but the exploit lives in
//!    the legacy code path, disabled in intrusion-tolerant mode.
//! 5. **Root access and source code.** The replica is fully Byzantine;
//!    Prime's `f = 1` budget absorbs it.

use diversity::os::CveClass;
use simnet::time::SimDuration;
use spire::deploy::Deployment;
use spire::replica_host::ReplicaHost;

/// One excursion stage's result.
#[derive(Clone, Debug)]
pub struct Stage {
    /// Stage number (1-5).
    pub number: u32,
    /// What the attacker did.
    pub action: String,
    /// Whether the attack affected Spire's operation.
    pub disrupted_service: bool,
    /// Evidence recorded.
    pub evidence: String,
}

/// The full excursion report.
#[derive(Clone, Debug)]
pub struct ExcursionReport {
    /// Per-stage outcomes.
    pub stages: Vec<Stage>,
    /// HMI frames applied before the excursion began.
    pub frames_before: u64,
    /// HMI frames applied after all stages.
    pub frames_after: u64,
}

impl ExcursionReport {
    /// Whether Spire kept operating through every stage.
    pub fn spire_survived(&self) -> bool {
        self.frames_after > self.frames_before && self.stages.iter().all(|s| !s.disrupted_service)
    }
}

/// Measures whether the deployment keeps making display progress over a
/// window (the service-liveness probe between stages).
fn service_progresses(d: &mut Deployment, window: SimDuration) -> (bool, u64) {
    let before = d.obs.counter_value("hmi.0.frames_applied");
    d.run_for(window);
    let after = d.obs.counter_value("hmi.0.frames_applied");
    (after > before, after)
}

/// Runs the excursion against replica `victim` of a running deployment.
/// The deployment should already be executing a workload (e.g. the
/// breaker cycle) so service progress is observable.
pub fn run_excursion(d: &mut Deployment, victim: u32) -> ExcursionReport {
    let probe = SimDuration::from_secs(3);
    let mut stages = Vec::new();
    let frames_before = d.obs.counter_value("hmi.0.frames_applied");

    // Stage 1: user access — stop the Spines daemons on the victim.
    {
        let host = d.replica_mut(victim);
        host.internal.running = false;
        host.external.running = false;
    }
    let (progressed, _) = service_progresses(d, probe);
    stages.push(Stage {
        number: 1,
        action: format!("stopped Spines daemons on replica {victim}"),
        disrupted_service: !progressed,
        evidence: "remaining replicas continue ordering; loss of one replica tolerated".into(),
    });

    // Stage 2: restart a rebuilt daemon that lacks the deployment keys.
    {
        let host = d.replica_mut(victim);
        host.internal.running = true;
        host.external.running = true;
        host.internal.has_keys = false;
        host.external.has_keys = false;
    }
    let (progressed, _) = service_progresses(d, probe);
    let auth_failures: u64 = (0..d.cfg.n())
        .filter(|&i| i != victim)
        .map(|i| {
            d.obs
                .counter_value(&format!("spines.int.r{i}.auth_failures"))
        })
        .sum();
    stages.push(Stage {
        number: 2,
        action: "restarted modified Spines daemon without deployment keys".into(),
        disrupted_service: !progressed,
        evidence: format!("peers rejected unauthenticated frames ({auth_failures} auth failures)"),
    });

    // Stage 3: privilege escalation attempts on the hardened OS.
    let os = d.hardening.os;
    let dirtycow = os.vulnerable_to(CveClass::DirtyCow);
    let sshd = os.vulnerable_to(CveClass::SshDaemon);
    stages.push(Stage {
        number: 3,
        action: "attempted dirtycow and sshd privilege escalation".into(),
        disrupted_service: false,
        evidence: format!(
            "dirtycow {}, sshd exploit {} on {:?}",
            if dirtycow { "SUCCEEDED" } else { "failed" },
            if sshd { "SUCCEEDED" } else { "failed" },
            os
        ),
    });

    // Stage 4: patch the real binary (keys intact) with the legacy-path
    // exploit; in intrusion-tolerant mode the handler is compiled out.
    {
        let host = d.replica_mut(victim);
        host.internal.has_keys = true;
        host.external.has_keys = true;
        let _ = host
            .internal
            .send_legacy_diag(bytes::Bytes::from_static(b"exploit"));
        // (The returned wire sends are dropped here: the daemon emits them
        // on its next real I/O; for the stage verdict what matters is the
        // peers' handling, exercised via the live network below.)
    }
    let (progressed, _) = service_progresses(d, probe);
    let ignored: u64 = (0..d.cfg.n())
        .map(|i| {
            d.obs
                .counter_value(&format!("spines.int.r{i}.legacy_diag_ignored"))
        })
        .sum();
    stages.push(Stage {
        number: 4,
        action: "patched Spines binary with legacy-path exploit".into(),
        disrupted_service: !progressed,
        evidence: format!(
            "accepted as valid member; exploit path disabled in intrusion-tolerant mode ({ignored} diagnostics ignored so far)"
        ),
    });

    // Stage 5: root + source. The replica turns fully Byzantine: crash it
    // (the most service-affecting thing a single replica can do once
    // protocol-level attacks are absorbed) and also flood from it.
    {
        let host = d.replica_mut(victim);
        host.replica.byz = prime::byzantine::ByzMode::Crashed;
    }
    let (progressed, frames_after) = service_progresses(d, probe);
    stages.push(Stage {
        number: 5,
        action: "root access with source code; replica fully Byzantine".into(),
        disrupted_service: !progressed,
        evidence: "within the f = 1 intrusion budget; ordering continues".into(),
    });

    ExcursionReport {
        stages,
        frames_before,
        frames_after,
    }
}

// ReplicaHost is used through Deployment accessors; keep the import used.
#[allow(unused_imports)]
use ReplicaHost as _ReplicaHostUsed;

#[cfg(test)]
mod tests {
    use super::*;
    use plc::topology::Scenario;
    use prime::replica::Timing;
    use prime::types::Config as PrimeConfig;
    use spire::config::SpireConfig;
    use spire::hardening::HardeningProfile;
    use spire::hmi_host::CycleConfig;

    #[test]
    fn excursion_does_not_disrupt_spire() {
        let cfg = SpireConfig::minimal(PrimeConfig::red_team(), Scenario::RedTeamDistribution);
        let mut d = Deployment::build(cfg, HardeningProfile::deployed(), 99);
        for i in 0..4 {
            d.replica_mut(i).set_timing(Timing {
                aru_interval: SimDuration::from_millis(10),
                pp_interval: SimDuration::from_millis(10),
                suspect_timeout: SimDuration::from_millis(1_000),
                checkpoint_interval: 20,
                catchup_timeout: SimDuration::from_millis(300),
            });
        }
        // Drive the breaker cycle so service progress is observable.
        d.hmi_mut(0).set_cycle(CycleConfig {
            scenario: Scenario::RedTeamDistribution,
            period: SimDuration::from_millis(500),
            max_flips: 0,
        });
        let cfg2 = d.cfg.clone();
        let mut host = spire::hmi_host::HmiHost::new(cfg2, 0);
        host.attach_obs(&d.obs);
        host.set_cycle(CycleConfig {
            scenario: Scenario::RedTeamDistribution,
            period: SimDuration::from_millis(500),
            max_flips: 0,
        });
        d.sim.replace_process(d.hmi_nodes[0], Box::new(host));
        d.run_for(SimDuration::from_secs(3));
        assert!(
            d.hmi(0).stats.frames_applied > 0,
            "cycle running before excursion"
        );

        let report = run_excursion(&mut d, 3);
        assert!(
            report.spire_survived(),
            "excursion must not disrupt Spire: {report:#?}"
        );
        assert_eq!(report.stages.len(), 5);
        assert!(report.stages[2].evidence.contains("dirtycow failed"));
        // With one replica Byzantine (crashed), remaining 3 of 4 suffice.
        assert!(report.frames_after > report.frames_before);
    }

    #[test]
    fn excursion_stage3_succeeds_on_soft_os() {
        // The ablation: on the Ubuntu-desktop profile the escalation works.
        let cfg = SpireConfig::minimal(PrimeConfig::red_team(), Scenario::PlantSubset);
        let mut profile = HardeningProfile::deployed();
        profile.os = diversity::os::OsProfile::UbuntuDesktop;
        let mut d = Deployment::build(cfg, profile, 100);
        d.run_for(SimDuration::from_secs(1));
        let report = run_excursion(&mut d, 0);
        assert!(report.stages[2].evidence.contains("dirtycow SUCCEEDED"));
    }
}
