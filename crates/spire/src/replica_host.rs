//! The process hosting one SCADA-master replica: a Prime replica with the
//! [`scada::ScadaApp`] application, plus one Spines daemon per network.
//!
//! Interface 0 is on the isolated internal network (replication traffic
//! only); interface 1 is on the external network (client updates in,
//! vote-gated commands/frames out) — exactly Figure 2.

use bytes::Bytes;
use prime::replica::{OutEvent, Replica, Timing};
use prime::types::ReplicaId;
use scada::master::{MasterAction, ScadaApp};
use simnet::packet::Packet;
use simnet::process::{Context, Process};
use simnet::time::SimDuration;
use simnet::wire::Wire;
use spines::daemon::SpinesDaemon;
use spines::message::Destination;

use crate::config::{
    SpireConfig, EXTERNAL_SPINES_PORT, GROUP_MASTERS, GROUP_PRIME, INTERNAL_SPINES_PORT,
};
use crate::messages::ExternalMsg;

const TICK_TIMER: u64 = 1;
const TICK: SimDuration = SimDuration(10_000); // 10 ms

/// Counters exposed for experiments.
#[derive(Clone, Copy, Debug, Default)]
pub struct HostStats {
    /// Client updates submitted into Prime.
    pub updates_submitted: u64,
    /// Ordered updates executed locally.
    pub executed: u64,
    /// PLC commands emitted.
    pub plc_commands_sent: u64,
    /// HMI frames emitted.
    pub hmi_frames_sent: u64,
    /// View changes observed.
    pub view_changes: u64,
    /// Application-level state transfers performed.
    pub state_transfers: u64,
}

/// One SCADA-master replica host.
pub struct ReplicaHost {
    cfg: SpireConfig,
    id: u32,
    /// The internal-network Spines daemon (attackers stop/patch this).
    pub internal: SpinesDaemon,
    /// The external-network Spines daemon.
    pub external: SpinesDaemon,
    /// The Prime replica hosting the SCADA master.
    pub replica: Replica<ScadaApp>,
    /// When set, the next tick performs proactive recovery.
    pub pending_recovery: bool,
    /// Counters.
    pub stats: HostStats,
    /// Observability hub (detached until [`ReplicaHost::attach_obs`]).
    obs: obs::ObsHub,
    /// Ticks elapsed since start, for flight-recorder snapshot cadence.
    health_ticks: u64,
}

impl ReplicaHost {
    /// Creates replica host `id` from the deployment configuration.
    pub fn new(cfg: SpireConfig, id: u32) -> Self {
        let mut internal = SpinesDaemon::new(id, cfg.internal_spines());
        internal.subscribe(GROUP_PRIME);
        let mut external = SpinesDaemon::new(cfg.ext_daemon_of_replica(id), cfg.external_spines());
        external.subscribe(GROUP_MASTERS);
        let replica = Replica::new(
            ReplicaId(id),
            cfg.prime,
            cfg.replica_keypair(id),
            cfg.registry(),
            ScadaApp::new(),
        );
        ReplicaHost {
            cfg,
            id,
            internal,
            external,
            replica,
            pending_recovery: false,
            stats: HostStats::default(),
            obs: obs::ObsHub::new(),
            health_ticks: 0,
        }
    }

    /// Joins the shared deployment hub: the Prime replica and both Spines
    /// daemons re-register their metrics under deployment-wide names.
    pub fn attach_obs(&mut self, hub: &obs::ObsHub) {
        self.replica.attach_obs(hub);
        self.internal
            .attach_obs(hub, &format!("spines.int.r{}", self.id));
        self.external
            .attach_obs(hub, &format!("spines.ext.r{}", self.id));
        self.obs = hub.clone();
    }

    /// This replica's id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Overrides Prime timing (tests tighten timeouts).
    pub fn set_timing(&mut self, timing: Timing) {
        self.replica.set_timing(timing);
    }

    /// Transmits queued Spines wire sends.
    fn flush_sends(
        ctx: &mut Context<'_>,
        ifidx: usize,
        port: simnet::types::Port,
        sends: Vec<(simnet::types::IpAddr, Bytes)>,
    ) {
        for (addr, bytes) in sends {
            let pkt = Packet::udp(ctx.ip(ifidx), addr, port, port, bytes);
            ctx.send(ifidx, pkt);
        }
    }

    /// Routes Prime out-events: protocol messages to the internal overlay,
    /// application actions to the external overlay.
    fn route_events(&mut self, ctx: &mut Context<'_>, events: Vec<OutEvent>) {
        for event in events {
            match event {
                OutEvent::Broadcast(env) => {
                    // Serialize-once: the envelope already carries the
                    // wire bytes from signing time.
                    let sends = self.internal.multicast(GROUP_PRIME, 1, env.wire);
                    Self::flush_sends(ctx, 0, INTERNAL_SPINES_PORT, sends);
                }
                OutEvent::Send(to, env) => {
                    let sends = self.internal.unicast(to.0, 1, env.wire);
                    Self::flush_sends(ctx, 0, INTERNAL_SPINES_PORT, sends);
                }
                OutEvent::Execute { trace, .. } => {
                    self.stats.executed += 1;
                    obs::prof::charge_msg("scada;apply", 1, 0);
                    // Outgoing application messages (commands/frames)
                    // produced by this execution inherit its context.
                    if trace.is_some() {
                        ctx.set_trace(trace);
                    }
                }
                OutEvent::ViewChanged { view } => {
                    self.stats.view_changes += 1;
                    ctx.log(format!("replica {} moved to view {view}", self.id));
                }
                OutEvent::StateTransferRequested => {
                    ctx.log(format!(
                        "replica {} requested app-level state transfer",
                        self.id
                    ));
                }
                OutEvent::StateTransferInstalled { exec_seq } => {
                    self.stats.state_transfers += 1;
                    self.obs
                        .journal(obs::Event::RecoveryEnd { replica: self.id });
                    ctx.log(format!(
                        "replica {} installed app state at exec {exec_seq}",
                        self.id
                    ));
                }
                OutEvent::CheckpointStable { .. } => {}
            }
        }
        // Ship application actions produced by executions.
        let actions = self.replica.app_mut().take_actions();
        for action in actions {
            match action {
                MasterAction::PlcCommand {
                    scenario,
                    breaker,
                    close,
                    exec_seq,
                } => {
                    self.stats.plc_commands_sent += 1;
                    let Some(proxy) = self
                        .cfg
                        .proxies
                        .iter()
                        .find(|p| p.scenario.tag() == scenario)
                        .map(|p| p.index)
                    else {
                        continue;
                    };
                    let msg = ExternalMsg::PlcCommand {
                        replica: self.id,
                        scenario,
                        breaker,
                        close,
                        exec_seq,
                    };
                    let group = self.cfg.proxy_group(proxy);
                    let sends = self.external.multicast(group, 1, msg.to_wire());
                    Self::flush_sends(ctx, 1, EXTERNAL_SPINES_PORT, sends);
                }
                MasterAction::HmiFrame {
                    scenario,
                    positions,
                    currents,
                    exec_seq,
                } => {
                    self.stats.hmi_frames_sent += 1;
                    for h in 0..self.cfg.hmis {
                        let msg = ExternalMsg::HmiFrame {
                            replica: self.id,
                            scenario: scenario.clone(),
                            positions: positions.clone(),
                            currents: currents.clone(),
                            exec_seq,
                        };
                        let group = self.cfg.hmi_group(h);
                        let sends = self.external.multicast(group, 1, msg.to_wire());
                        Self::flush_sends(ctx, 1, EXTERNAL_SPINES_PORT, sends);
                    }
                }
            }
        }
    }

    fn drain_deliveries(&mut self, ctx: &mut Context<'_>) {
        // Internal: Prime protocol messages.
        for delivery in self.internal.take_deliveries() {
            if let Ok(msg) = prime::messages::SignedMsg::from_wire(&delivery.payload) {
                let events = self.replica.on_message(msg, ctx.now());
                self.route_events(ctx, events);
            }
        }
        // External: client updates.
        for delivery in self.external.take_deliveries() {
            if delivery.dst != Destination::Group(GROUP_MASTERS) {
                continue;
            }
            if let Ok(ExternalMsg::ClientUpdate(update)) = ExternalMsg::from_wire(&delivery.payload)
            {
                self.stats.updates_submitted += 1;
                self.replica.set_incoming_trace(ctx.trace());
                let events = self.replica.submit(update, ctx.now());
                self.route_events(ctx, events);
            }
        }
    }
}

impl Process for ReplicaHost {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.listen(INTERNAL_SPINES_PORT);
        ctx.listen(EXTERNAL_SPINES_PORT);
        // A freshly recovered daemon must not reuse overlay sequence
        // numbers from its previous life (peers deduplicate floods); the
        // clock-derived base guarantees uniqueness across incarnations.
        let seq_base = ctx.now().as_micros() << 16;
        self.internal.set_seq_base(seq_base);
        self.external.set_seq_base(seq_base);
        ctx.set_timer(TICK, TICK_TIMER);
        ctx.log(format!("scada-master replica {} online", self.id));
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: u64) {
        if timer != TICK_TIMER {
            return;
        }
        if self.pending_recovery {
            self.pending_recovery = false;
            let events = self.replica.recover(ctx.now());
            self.route_events(ctx, events);
        }
        let events = self.replica.tick(ctx.now());
        self.route_events(ctx, events);
        self.drain_deliveries(ctx);
        let health_every = obs::prof::health_every();
        if health_every > 0 {
            self.health_ticks += 1;
            if self.health_ticks.is_multiple_of(health_every) {
                self.obs.journal(obs::Event::LinkHealth {
                    daemon: self.internal.id(),
                    link: 0,
                    depth: self.internal.forward_depth() as u32,
                });
                self.obs.journal(obs::Event::LinkHealth {
                    daemon: self.external.id(),
                    link: 1,
                    depth: self.external.forward_depth() as u32,
                });
            }
        }
        ctx.set_timer(TICK, TICK_TIMER);
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        if pkt.dst_port == INTERNAL_SPINES_PORT {
            let sends = self.internal.on_wire(pkt.src_ip, &pkt.payload);
            Self::flush_sends(ctx, 0, INTERNAL_SPINES_PORT, sends);
        } else if pkt.dst_port == EXTERNAL_SPINES_PORT {
            if let Some(hop) = self.external.trace_hop(ctx.trace(), self.id) {
                ctx.set_trace(Some(hop));
            }
            let sends = self.external.on_wire(pkt.src_ip, &pkt.payload);
            Self::flush_sends(ctx, 1, EXTERNAL_SPINES_PORT, sends);
        }
        self.drain_deliveries(ctx);
    }
}

impl std::fmt::Debug for ReplicaHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaHost")
            .field("id", &self.id)
            .field("exec", &self.replica.exec_seq())
            .field("view", &self.replica.view())
            .finish()
    }
}
