//! The simulation engine: world construction, scheduling, and the
//! sequential event loop.
//!
//! Delivery semantics live in `crate::exec`; event storage lives in
//! [`crate::queue`]; the conservative parallel scheduler lives in
//! `crate::shard` (both private modules). This module owns the public
//! API and the sequential
//! reference loop that the parallel scheduler is proven digest-identical
//! against.

use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet};

use obs::ObsHub;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::arp::{ArpMode, ArpTable};
use crate::capture::{PacketRecord, Tap, TapId};
use crate::exec::{EventKind, EventSink, Exec, Interface, NetCounters, Node, World};
use crate::firewall::Firewall;
use crate::link::{Link, LinkId, LinkSpec};
use crate::process::Process;
use crate::queue::EventQueue;
use crate::switch::{Switch, SwitchId, SwitchMode};
use crate::time::{SimDuration, SimTime};
use crate::types::{IpAddr, MacAddr, NodeId};

/// Where a link terminates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EndpointRef {
    /// A node interface.
    Nic {
        /// The node.
        node: NodeId,
        /// Interface index on the node.
        ifidx: usize,
    },
    /// A switch port.
    SwitchPort {
        /// The switch.
        switch: SwitchId,
        /// Port index on the switch.
        port: usize,
    },
}

/// Configuration for one interface of a new node.
#[derive(Clone, Debug)]
pub struct InterfaceSpec {
    /// The interface's IP address.
    pub ip: IpAddr,
    /// Static (hardened) or dynamic (poisonable) ARP.
    pub arp_mode: ArpMode,
}

impl InterfaceSpec {
    /// Convenience: an interface with dynamic ARP.
    pub fn dynamic(ip: IpAddr) -> Self {
        InterfaceSpec {
            ip,
            arp_mode: ArpMode::Dynamic,
        }
    }

    /// Convenience: an interface with static ARP.
    pub fn static_arp(ip: IpAddr) -> Self {
        InterfaceSpec {
            ip,
            arp_mode: ArpMode::Static,
        }
    }
}

/// Configuration for a new node.
pub struct NodeSpec {
    /// Human-readable name (diagnostics only).
    pub name: String,
    /// Host firewall.
    pub firewall: Firewall,
    /// Interfaces to create.
    pub interfaces: Vec<InterfaceSpec>,
    /// The hosted process.
    pub process: Box<dyn Process>,
    /// Whether the NIC delivers frames not addressed to it (attacker boxes).
    pub promiscuous: bool,
    /// The misfeature §III-B disables: answer ARP requests for IPs that
    /// belong to *other* NICs on this machine.
    pub answers_arp_for_other_ifaces: bool,
    /// Strong-host model (strict reverse-path/interface binding): accept a
    /// packet only if its destination IP belongs to the *arrival*
    /// interface. Part of the §III-B host hardening; commodity hosts run
    /// the weak-host model (false).
    pub strict_interface_binding: bool,
}

impl NodeSpec {
    /// A standard host: given interfaces, open firewall, not promiscuous,
    /// with the ARP cross-answer misfeature *enabled* (the OS default the
    /// paper had to turn off).
    pub fn new(
        name: impl Into<String>,
        interfaces: Vec<InterfaceSpec>,
        process: Box<dyn Process>,
    ) -> Self {
        NodeSpec {
            name: name.into(),
            firewall: Firewall::open(),
            interfaces,
            process,
            promiscuous: false,
            answers_arp_for_other_ifaces: true,
            strict_interface_binding: false,
        }
    }

    /// Applies the full §III-B host hardening: locked-down firewall (caller
    /// adds allow rules), static ARP, no cross-interface ARP answers.
    pub fn hardened(mut self) -> Self {
        self.firewall = Firewall::locked_down();
        self.answers_arp_for_other_ifaces = false;
        self.strict_interface_binding = true;
        for i in &mut self.interfaces {
            i.arp_mode = ArpMode::Static;
        }
        self
    }
}

/// Aggregate counters for a run, derived from the [`ObsHub`] registry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Frames handed to links.
    pub frames_sent: u64,
    /// Frames delivered to an endpoint.
    pub frames_delivered: u64,
    /// Frames dropped (loss, queues, down links/nodes, switch drops).
    pub frames_dropped: u64,
    /// Packets delivered to processes.
    pub packets_to_process: u64,
    /// Inbound packets dropped by host firewalls.
    pub firewall_drops: u64,
    /// ARP learn attempts rejected by static tables.
    pub arp_rejected: u64,
}

thread_local! {
    static DEFAULT_THREADS: Cell<usize> = const { Cell::new(1) };
}

/// Sets the worker-thread count newly created [`Simulation`]s default to
/// (thread-local, so parallel test binaries cannot race each other).
/// `spire-sim --threads N` routes through here so every simulation an
/// experiment builds inherits the setting.
pub fn set_default_threads(n: usize) {
    DEFAULT_THREADS.with(|c| c.set(n.max(1)));
}

/// The current thread-local default worker-thread count.
pub fn default_threads() -> usize {
    DEFAULT_THREADS.with(|c| c.get())
}

/// The sequential scheduler's sink: assigns the global sequence number at
/// creation time, exactly as the pre-parallel engine did.
struct GlobalSink<'a> {
    queue: &'a mut EventQueue<EventKind>,
    seq: &'a mut u64,
}

impl EventSink for GlobalSink<'_> {
    fn schedule(&mut self, at: SimTime, kind: EventKind) {
        let seq = *self.seq;
        *self.seq += 1;
        self.queue.insert(at.as_micros(), seq, kind);
    }
}

/// The simulation world and scheduler.
pub struct Simulation {
    pub(crate) now: SimTime,
    pub(crate) seq: u64,
    pub(crate) queue: EventQueue<EventKind>,
    pub(crate) world: World,
    pub(crate) threads: usize,
    pub(crate) events_processed: u64,
}

impl Simulation {
    /// Creates an empty simulation with a deterministic RNG seed. Metrics
    /// land on a private [`ObsHub`] until [`Simulation::attach_obs`]
    /// replaces it with a deployment-wide one.
    pub fn new(seed: u64) -> Self {
        let obs = ObsHub::new();
        let net = NetCounters::from_hub(&obs);
        Simulation {
            now: SimTime::ZERO,
            seq: 0,
            queue: EventQueue::new(),
            world: World {
                nodes: Vec::new(),
                switches: Vec::new(),
                links: Vec::new(),
                taps: Vec::new(),
                logs: Vec::new(),
                rng: StdRng::seed_from_u64(seed),
                obs,
                net,
            },
            threads: default_threads(),
            events_processed: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed since construction (the denominator for
    /// sim-events/sec throughput in `spire-sim bench`).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Sets the worker-thread count for subsequent runs. `1` (or `0`)
    /// means strictly sequential; `n >= 2` enables the conservative
    /// parallel scheduler when the topology yields at least two shards.
    /// Digests are identical either way — that is the point.
    pub fn set_threads(&mut self, n: usize) {
        self.threads = n.max(1);
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The observability hub this engine stamps and counts into.
    pub fn obs(&self) -> &ObsHub {
        &self.world.obs
    }

    /// Redirects all engine metrics and journal records to `hub` (a
    /// deployment shares one hub across the engine and every host
    /// process). Values already accumulated carry over.
    pub fn attach_obs(&mut self, hub: &ObsHub) {
        let fresh = NetCounters::from_hub(hub);
        fresh.frames_sent.add(self.world.net.frames_sent.get());
        fresh
            .frames_delivered
            .add(self.world.net.frames_delivered.get());
        fresh
            .frames_dropped
            .add(self.world.net.frames_dropped.get());
        fresh
            .packets_to_process
            .add(self.world.net.packets_to_process.get());
        fresh
            .firewall_drops
            .add(self.world.net.firewall_drops.get());
        fresh.arp_rejected.add(self.world.net.arp_rejected.get());
        hub.set_now_us(self.now.as_micros());
        self.world.obs = hub.clone();
        self.world.net = fresh;
    }

    /// Aggregate counters (a registry snapshot, kept for API stability).
    pub fn stats(&self) -> SimStats {
        SimStats {
            frames_sent: self.world.net.frames_sent.get(),
            frames_delivered: self.world.net.frames_delivered.get(),
            frames_dropped: self.world.net.frames_dropped.get(),
            packets_to_process: self.world.net.packets_to_process.get(),
            firewall_drops: self.world.net.firewall_drops.get(),
            arp_rejected: self.world.net.arp_rejected.get(),
        }
    }

    /// All log lines emitted so far as `(time, node, line)`.
    pub fn logs(&self) -> &[(SimTime, NodeId, String)] {
        &self.world.logs
    }

    /// Adds a node; MACs are derived deterministically. Schedules its
    /// `on_start` at the current time.
    pub fn add_node(&mut self, spec: NodeSpec) -> NodeId {
        let id = NodeId(self.world.nodes.len() as u32);
        let interfaces = spec
            .interfaces
            .into_iter()
            .enumerate()
            .map(|(i, ispec)| Interface {
                mac: MacAddr::derived(id, i as u8),
                ip: ispec.ip,
                arp: ArpTable::new(ispec.arp_mode),
                link: None,
                pending: BTreeMap::new(),
            })
            .collect();
        self.world.nodes.push(Some(Node {
            name: spec.name,
            firewall: spec.firewall,
            interfaces,
            listeners: BTreeSet::new(),
            process: Some(spec.process),
            promiscuous: spec.promiscuous,
            answers_arp_for_other_ifaces: spec.answers_arp_for_other_ifaces,
            strict_interface_binding: spec.strict_interface_binding,
            up: true,
            generation: 0,
            firewall_drops: 0,
        }));
        self.push_event(
            self.now,
            EventKind::Start {
                node: id,
                generation: 0,
            },
        );
        id
    }

    /// Adds a switch.
    pub fn add_switch(&mut self, port_count: usize, mode: SwitchMode) -> SwitchId {
        let id = SwitchId(self.world.switches.len() as u32);
        self.world
            .switches
            .push(Some(Switch::new(id, port_count, mode)));
        id
    }

    /// Attaches a capture tap (span port) to a switch.
    pub fn add_tap(&mut self, switch: SwitchId) -> TapId {
        let id = TapId(self.world.taps.len() as u32);
        self.world.taps.push(Some((Tap::new(), switch)));
        self.world.switch_mut(switch).taps.push(id);
        id
    }

    /// Read access to a tap's records.
    pub fn tap(&self, tap: TapId) -> &Tap {
        &self.world.taps[tap.0 as usize].as_ref().expect("tap").0
    }

    /// Drains a tap's buffered records.
    pub fn drain_tap(&mut self, tap: TapId) -> Vec<PacketRecord> {
        self.world.tap_mut(tap).0.drain()
    }

    /// Connects a node interface to a switch port.
    ///
    /// # Panics
    ///
    /// Panics if either side is already connected or indices are invalid.
    pub fn connect(
        &mut self,
        node: NodeId,
        ifidx: usize,
        switch: SwitchId,
        port: usize,
        spec: LinkSpec,
    ) -> LinkId {
        assert!(
            self.world.node(node).interfaces[ifidx].link.is_none(),
            "interface already connected"
        );
        assert!(
            self.world.switch(switch).ports[port].is_none(),
            "switch port already connected"
        );
        let id = LinkId(self.world.links.len() as u32);
        let a = EndpointRef::Nic { node, ifidx };
        let b = EndpointRef::SwitchPort { switch, port };
        self.world.links.push(Some((Link::new(spec), a, b)));
        self.world.node_mut(node).interfaces[ifidx].link = Some(id);
        self.world.switch_mut(switch).ports[port] = Some(id);
        id
    }

    /// Connects two node interfaces with a direct cable (no switch) — the
    /// paper's PLC-to-proxy wire.
    pub fn connect_direct(
        &mut self,
        a: (NodeId, usize),
        b: (NodeId, usize),
        spec: LinkSpec,
    ) -> LinkId {
        assert!(
            self.world.node(a.0).interfaces[a.1].link.is_none(),
            "interface already connected"
        );
        assert!(
            self.world.node(b.0).interfaces[b.1].link.is_none(),
            "interface already connected"
        );
        let id = LinkId(self.world.links.len() as u32);
        let ea = EndpointRef::Nic {
            node: a.0,
            ifidx: a.1,
        };
        let eb = EndpointRef::Nic {
            node: b.0,
            ifidx: b.1,
        };
        self.world.links.push(Some((Link::new(spec), ea, eb)));
        self.world.node_mut(a.0).interfaces[a.1].link = Some(id);
        self.world.node_mut(b.0).interfaces[b.1].link = Some(id);
        id
    }

    /// Connects two switches (inter-switch trunk, e.g. through a router
    /// modeled as a plain link between enterprise and operations networks).
    pub fn connect_switches(
        &mut self,
        a: (SwitchId, usize),
        b: (SwitchId, usize),
        spec: LinkSpec,
    ) -> LinkId {
        assert!(
            self.world.switch(a.0).ports[a.1].is_none(),
            "switch port already connected"
        );
        assert!(
            self.world.switch(b.0).ports[b.1].is_none(),
            "switch port already connected"
        );
        let id = LinkId(self.world.links.len() as u32);
        let ea = EndpointRef::SwitchPort {
            switch: a.0,
            port: a.1,
        };
        let eb = EndpointRef::SwitchPort {
            switch: b.0,
            port: b.1,
        };
        self.world.links.push(Some((Link::new(spec), ea, eb)));
        self.world.switch_mut(a.0).ports[a.1] = Some(id);
        self.world.switch_mut(b.0).ports[b.1] = Some(id);
        id
    }

    /// Installs a static ARP entry on a node interface.
    pub fn install_arp(&mut self, node: NodeId, ifidx: usize, ip: IpAddr, mac: MacAddr) {
        self.world.node_mut(node).interfaces[ifidx]
            .arp
            .install(ip, mac);
    }

    /// The derived MAC of a node interface.
    pub fn mac_of(&self, node: NodeId, ifidx: usize) -> MacAddr {
        self.world.node(node).interfaces[ifidx].mac
    }

    /// The IP of a node interface.
    pub fn ip_of(&self, node: NodeId, ifidx: usize) -> IpAddr {
        self.world.node(node).interfaces[ifidx].ip
    }

    /// Takes a node up or down (crash / power off). Down nodes drop all
    /// frames and timers.
    pub fn set_node_up(&mut self, node: NodeId, up: bool) {
        self.world.node_mut(node).up = up;
    }

    /// Whether a node is up.
    pub fn node_up(&self, node: NodeId) -> bool {
        self.world.node(node).up
    }

    /// Takes a link up or down. Taking a link down also loses every frame
    /// already in flight on it (see `EventKind::FrameAt`).
    pub fn set_link_up(&mut self, link: LinkId, up: bool) {
        self.world.link_mut(link).0.up = up;
    }

    /// Whether a link is up.
    pub fn link_up(&self, link: LinkId) -> bool {
        self.world.link(link).0.up
    }

    /// A link's current spec (chaos windows save it before mutating).
    pub fn link_spec(&self, link: LinkId) -> LinkSpec {
        self.world.link(link).0.spec
    }

    /// Sets a link's random-loss probability (loss-burst injection).
    pub fn set_link_loss(&mut self, link: LinkId, loss: f64) {
        self.world.link_mut(link).0.spec.loss = loss;
    }

    /// Sets a link's one-way latency (latency-spike injection).
    pub fn set_link_latency(&mut self, link: LinkId, latency: SimDuration) {
        self.world.link_mut(link).0.spec.latency = latency;
    }

    /// The link attached to a node interface, if connected.
    pub fn link_of(&self, node: NodeId, ifidx: usize) -> Option<LinkId> {
        self.world.node(node).interfaces[ifidx].link
    }

    /// Partitions a switch: ports are assigned to groups (unlisted ports
    /// are group 0) and frames only forward between ports of the same
    /// group. Inert until set; [`Simulation::clear_switch_partition`]
    /// heals.
    pub fn set_switch_partition(&mut self, id: SwitchId, assignment: BTreeMap<usize, u32>) {
        self.world.switch_mut(id).set_partition(assignment);
    }

    /// Heals a switch partition.
    pub fn clear_switch_partition(&mut self, id: SwitchId) {
        self.world.switch_mut(id).clear_partition();
    }

    /// Replaces a node's process (proactive recovery installs a fresh,
    /// rediversified replica). Schedules `on_start` for the new process.
    pub fn replace_process(&mut self, node: NodeId, process: Box<dyn Process>) {
        let n = self.world.node_mut(node);
        n.process = Some(process);
        n.generation += 1;
        let generation = n.generation;
        self.push_event(self.now, EventKind::Start { node, generation });
    }

    /// Immutable access to a node's process, downcast to `T`.
    pub fn process_ref<T: Process>(&self, node: NodeId) -> Option<&T> {
        let p = self.world.node(node).process.as_deref()?;
        (p as &dyn std::any::Any).downcast_ref::<T>()
    }

    /// Mutable access to a node's process, downcast to `T`.
    ///
    /// Mutating process state from outside the event loop is reserved for
    /// test setup and attacker "hands-on-keyboard" actions.
    pub fn process_mut<T: Process>(&mut self, node: NodeId) -> Option<&mut T> {
        let p = self.world.node_mut(node).process.as_deref_mut()?;
        (p as &mut dyn std::any::Any).downcast_mut::<T>()
    }

    /// A node's static switch-facing state: count of inbound firewall drops.
    pub fn firewall_drops(&self, node: NodeId) -> u64 {
        self.world.node(node).firewall_drops
    }

    /// Count of ARP learn attempts rejected by a node interface (evidence
    /// of poisoning attempts bouncing off static tables).
    pub fn arp_rejections(&self, node: NodeId, ifidx: usize) -> u64 {
        self.world.node(node).interfaces[ifidx].arp.rejected_updates
    }

    /// Resolves an IP in a node interface's ARP table (diagnostics: lets
    /// experiments check what a host — or an attacker — has learned).
    pub fn arp_entry(&self, node: NodeId, ifidx: usize, ip: IpAddr) -> Option<MacAddr> {
        self.world.node(node).interfaces[ifidx].arp.resolve(ip)
    }

    /// Reads a switch's counters.
    pub fn switch(&self, id: SwitchId) -> &Switch {
        self.world.switch(id)
    }

    /// Authorizes `mac` on `port` of a static switch (the operator — or an
    /// attacker with physical access to patch panels — amending the static
    /// MAC-to-port map). No-op for learning switches.
    pub fn authorize_switch_port(&mut self, id: SwitchId, mac: MacAddr, port: usize) {
        if let SwitchMode::Static { map, .. } = &mut self.world.switch_mut(id).mode {
            map.insert(mac, port);
        }
    }

    /// Runs until the event queue is empty or `deadline` is passed.
    /// Returns the number of events processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut n = 0;
        if self.parallel_eligible(deadline) {
            n += crate::shard::run_parallel(self, deadline).unwrap_or(0);
        }
        // Sequential loop: the only path when threads == 1, the mop-up
        // (normally a no-op) when the parallel scheduler ran or bailed.
        // With `obs::prof` enabled this loop is also the profiler's time
        // source: each gap of simulated time is charged to the event
        // that ends it (and the trailing drain to `idle`), so the
        // attribution rows telescope exactly to the elapsed time.
        let profiling = obs::prof::enabled();
        while let Some((at, _key)) = self.queue.peek() {
            if at > deadline.as_micros() {
                break;
            }
            let (at, _key, kind) = self.queue.pop().expect("peeked");
            if profiling {
                let stack = kind.prof_stack(&self.world);
                obs::prof::charge_time(&stack, at.saturating_sub(self.now.as_micros()));
                obs::prof::charge_msg(&stack, 1, 0);
            }
            self.now = SimTime(at);
            self.world.obs.set_now_us(at);
            Exec {
                world: &mut self.world,
                now: self.now,
                sink: &mut GlobalSink {
                    queue: &mut self.queue,
                    seq: &mut self.seq,
                },
            }
            .dispatch(kind);
            n += 1;
        }
        self.events_processed += n;
        // Time always advances to the deadline even if the queue drained.
        if self.now < deadline {
            if profiling {
                obs::prof::charge_time("idle", deadline.since(self.now).as_micros());
            }
            self.now = deadline;
            self.world.obs.set_now_us(deadline.as_micros());
        }
        n
    }

    /// Runs for `dur` beyond the current time.
    pub fn run_for(&mut self, dur: SimDuration) -> u64 {
        let deadline = self.now + dur;
        self.run_until(deadline)
    }

    /// Whether this run may go through the parallel scheduler at all.
    /// Conservative by design: any feature whose output order the shards
    /// cannot reproduce exactly (trace spans, live trace echo, lossy links
    /// drawing from the shared RNG, a shared hub whose clock has moved
    /// past ours) falls back to the sequential reference loop, which is
    /// always digest-correct.
    fn parallel_eligible(&self, deadline: SimTime) -> bool {
        self.threads >= 2
            && deadline > self.now
            && !self.queue.is_empty()
            // Profiling charges and health snapshots are driven by
            // thread-local state the shard workers cannot see; both
            // force the (digest-identical) sequential reference loop.
            && !obs::prof::enabled()
            && obs::prof::health_every() == 0
            && !self.world.obs.tracing()
            && !self.world.obs.trace_echo()
            && self.world.obs.now_us() == self.now.as_micros()
            && self
                .world
                .links
                .iter()
                .flatten()
                .all(|(l, _, _)| l.spec.loss == 0.0)
    }

    pub(crate) fn push_event(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.insert(at.as_micros(), seq, kind);
    }
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("nodes", &self.world.nodes.len())
            .field("switches", &self.world.switches.len())
            .field("links", &self.world.links.len())
            .field("queued_events", &self.queue.len())
            .field("threads", &self.threads)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Frame, Packet, TransportKind};
    use crate::process::{Context, Process};
    use crate::types::Port;
    use bytes::Bytes;

    /// Sends one datagram to a peer on start; records everything received.
    struct Chatter {
        peer: IpAddr,
        received: Vec<Packet>,
        send_on_start: bool,
    }

    impl Chatter {
        fn new(peer: IpAddr, send_on_start: bool) -> Box<Self> {
            Box::new(Chatter {
                peer,
                received: Vec::new(),
                send_on_start,
            })
        }
    }

    impl Process for Chatter {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            if self.send_on_start {
                let pkt = Packet::udp(
                    ctx.ip(0),
                    self.peer,
                    Port(1000),
                    Port(2000),
                    Bytes::from_static(b"hi"),
                );
                ctx.send(0, pkt);
            }
            ctx.listen(Port(2000));
        }

        fn on_packet(&mut self, _ctx: &mut Context<'_>, pkt: Packet) {
            self.received.push(pkt);
        }
    }

    const IP_A: IpAddr = IpAddr::new(10, 0, 0, 1);
    const IP_B: IpAddr = IpAddr::new(10, 0, 0, 2);

    fn two_hosts_on_switch(arp: ArpMode) -> (Simulation, NodeId, NodeId) {
        let mut sim = Simulation::new(1);
        let spec_a = InterfaceSpec {
            ip: IP_A,
            arp_mode: arp,
        };
        let spec_b = InterfaceSpec {
            ip: IP_B,
            arp_mode: arp,
        };
        let a = sim.add_node(NodeSpec::new("a", vec![spec_a], Chatter::new(IP_B, true)));
        let b = sim.add_node(NodeSpec::new("b", vec![spec_b], Chatter::new(IP_A, false)));
        let sw = sim.add_switch(4, SwitchMode::Learning);
        sim.connect(a, 0, sw, 0, LinkSpec::lan());
        sim.connect(b, 0, sw, 1, LinkSpec::lan());
        (sim, a, b)
    }

    #[test]
    fn datagram_delivered_via_dynamic_arp() {
        let (mut sim, _a, b) = two_hosts_on_switch(ArpMode::Dynamic);
        sim.run_for(SimDuration::from_millis(10));
        let recv = &sim.process_ref::<Chatter>(b).expect("chatter").received;
        assert_eq!(recv.len(), 1);
        assert_eq!(recv[0].payload.as_ref(), b"hi");
        assert_eq!(recv[0].src_ip, IP_A);
    }

    #[test]
    fn static_arp_without_entry_cannot_send() {
        let (mut sim, _a, b) = two_hosts_on_switch(ArpMode::Static);
        sim.run_for(SimDuration::from_millis(10));
        assert!(sim
            .process_ref::<Chatter>(b)
            .expect("chatter")
            .received
            .is_empty());
    }

    #[test]
    fn static_arp_with_installed_entries_works() {
        let (mut sim, a, b) = two_hosts_on_switch(ArpMode::Static);
        let mac_b = sim.mac_of(b, 0);
        sim.install_arp(a, 0, IP_B, mac_b);
        // Restart a's process behaviour by re-running start via replace.
        sim.replace_process(a, Chatter::new(IP_B, true));
        sim.run_for(SimDuration::from_millis(10));
        assert_eq!(
            sim.process_ref::<Chatter>(b)
                .expect("chatter")
                .received
                .len(),
            1
        );
    }

    #[test]
    fn down_node_receives_nothing() {
        let (mut sim, _a, b) = two_hosts_on_switch(ArpMode::Dynamic);
        sim.set_node_up(b, false);
        sim.run_for(SimDuration::from_millis(10));
        assert!(sim
            .process_ref::<Chatter>(b)
            .expect("chatter")
            .received
            .is_empty());
        sim.set_node_up(b, true);
        assert!(sim.node_up(b));
    }

    #[test]
    fn firewall_blocks_inbound() {
        let mut sim = Simulation::new(2);
        let a = sim.add_node(NodeSpec::new(
            "a",
            vec![InterfaceSpec::dynamic(IP_A)],
            Chatter::new(IP_B, true),
        ));
        let mut spec_b = NodeSpec::new(
            "b",
            vec![InterfaceSpec::dynamic(IP_B)],
            Chatter::new(IP_A, false),
        );
        spec_b.firewall = Firewall::locked_down();
        let b = sim.add_node(spec_b);
        let sw = sim.add_switch(2, SwitchMode::Learning);
        sim.connect(a, 0, sw, 0, LinkSpec::lan());
        sim.connect(b, 0, sw, 1, LinkSpec::lan());
        sim.run_for(SimDuration::from_millis(10));
        assert!(sim
            .process_ref::<Chatter>(b)
            .expect("chatter")
            .received
            .is_empty());
        assert_eq!(sim.firewall_drops(b), 1);
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerProc {
            fired: Vec<u64>,
        }
        impl Process for TimerProc {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(SimDuration::from_millis(5), 2);
                ctx.set_timer(SimDuration::from_millis(1), 1);
                ctx.set_timer(SimDuration::from_millis(9), 3);
            }
            fn on_timer(&mut self, _ctx: &mut Context<'_>, timer: u64) {
                self.fired.push(timer);
            }
        }
        let mut sim = Simulation::new(3);
        let n = sim.add_node(NodeSpec::new(
            "t",
            vec![InterfaceSpec::dynamic(IP_A)],
            Box::new(TimerProc { fired: vec![] }),
        ));
        sim.run_for(SimDuration::from_millis(20));
        assert_eq!(
            sim.process_ref::<TimerProc>(n).expect("proc").fired,
            vec![1, 2, 3]
        );
    }

    #[test]
    fn determinism_same_seed_same_logs() {
        let run = |seed| {
            let (mut sim, _a, _b) = two_hosts_on_switch(ArpMode::Dynamic);
            let _ = seed;
            sim.run_for(SimDuration::from_millis(10));
            sim.stats()
        };
        assert_eq!(run(1), run(1));
    }

    #[test]
    fn direct_cable_bypasses_switch() {
        let mut sim = Simulation::new(4);
        let a = sim.add_node(NodeSpec::new(
            "plc",
            vec![InterfaceSpec::dynamic(IP_A)],
            Chatter::new(IP_B, true),
        ));
        let b = sim.add_node(NodeSpec::new(
            "proxy",
            vec![InterfaceSpec::dynamic(IP_B)],
            Chatter::new(IP_A, false),
        ));
        sim.connect_direct((a, 0), (b, 0), LinkSpec::cable());
        sim.run_for(SimDuration::from_millis(10));
        assert_eq!(
            sim.process_ref::<Chatter>(b)
                .expect("chatter")
                .received
                .len(),
            1
        );
    }

    #[test]
    fn tap_records_switch_traffic() {
        let mut sim = Simulation::new(5);
        let a = sim.add_node(NodeSpec::new(
            "a",
            vec![InterfaceSpec::dynamic(IP_A)],
            Chatter::new(IP_B, true),
        ));
        let b = sim.add_node(NodeSpec::new(
            "b",
            vec![InterfaceSpec::dynamic(IP_B)],
            Chatter::new(IP_A, false),
        ));
        let sw = sim.add_switch(4, SwitchMode::Learning);
        sim.connect(a, 0, sw, 0, LinkSpec::lan());
        sim.connect(b, 0, sw, 1, LinkSpec::lan());
        let tap = sim.add_tap(sw);
        sim.run_for(SimDuration::from_millis(10));
        assert!(sim.tap(tap).len() >= 3, "ARP request + reply + data");
        let drained = sim.drain_tap(tap);
        assert!(!drained.is_empty());
        assert!(sim.tap(tap).is_empty());
    }

    #[test]
    fn ping_gets_pong() {
        struct Pinger {
            peer: IpAddr,
            pongs: u32,
        }
        impl Process for Pinger {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                let pkt = Packet {
                    src_ip: ctx.ip(0),
                    dst_ip: self.peer,
                    src_port: Port(0),
                    dst_port: Port(0),
                    kind: TransportKind::Ping,
                    payload: Bytes::new(),
                    trace: None,
                };
                ctx.send(0, pkt);
            }
            fn on_packet(&mut self, _ctx: &mut Context<'_>, pkt: Packet) {
                if pkt.kind == TransportKind::Pong {
                    self.pongs += 1;
                }
            }
        }
        let mut sim = Simulation::new(6);
        let a = sim.add_node(NodeSpec::new(
            "a",
            vec![InterfaceSpec::dynamic(IP_A)],
            Box::new(Pinger {
                peer: IP_B,
                pongs: 0,
            }),
        ));
        let b = sim.add_node(NodeSpec::new(
            "b",
            vec![InterfaceSpec::dynamic(IP_B)],
            Chatter::new(IP_A, false),
        ));
        let sw = sim.add_switch(2, SwitchMode::Learning);
        sim.connect(a, 0, sw, 0, LinkSpec::lan());
        sim.connect(b, 0, sw, 1, LinkSpec::lan());
        sim.run_for(SimDuration::from_millis(10));
        assert_eq!(sim.process_ref::<Pinger>(a).expect("pinger").pongs, 1);
    }

    #[test]
    fn syn_to_open_port_synack_closed_rst() {
        struct Scanner {
            peer: IpAddr,
            results: Vec<(Port, TransportKind)>,
        }
        impl Process for Scanner {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                for port in [2000u16, 2001] {
                    let pkt = Packet::syn(ctx.ip(0), self.peer, Port(40000), Port(port));
                    ctx.send(0, pkt);
                }
            }
            fn on_packet(&mut self, _ctx: &mut Context<'_>, pkt: Packet) {
                self.results.push((pkt.src_port, pkt.kind));
            }
        }
        let mut sim = Simulation::new(7);
        let a = sim.add_node(NodeSpec::new(
            "scanner",
            vec![InterfaceSpec::dynamic(IP_A)],
            Box::new(Scanner {
                peer: IP_B,
                results: vec![],
            }),
        ));
        let b = sim.add_node(NodeSpec::new(
            "b",
            vec![InterfaceSpec::dynamic(IP_B)],
            Chatter::new(IP_A, false),
        ));
        let sw = sim.add_switch(2, SwitchMode::Learning);
        sim.connect(a, 0, sw, 0, LinkSpec::lan());
        sim.connect(b, 0, sw, 1, LinkSpec::lan());
        sim.run_for(SimDuration::from_millis(10));
        let results = &sim.process_ref::<Scanner>(a).expect("scanner").results;
        assert_eq!(results.len(), 2);
        let mut sorted = results.clone();
        sorted.sort_by_key(|(p, _)| p.0);
        assert_eq!(sorted[0], (Port(2000), TransportKind::TcpSynAck));
        assert_eq!(sorted[1], (Port(2001), TransportKind::TcpRst));
    }

    #[test]
    fn strict_interface_binding_drops_cross_interface_packets() {
        // Node B has two interfaces; a packet addressed to interface 1's
        // IP but delivered (via broadcast) to interface 0 is dropped under
        // the strong-host model and accepted under the weak-host model.
        struct RawSender {
            target_ip: IpAddr,
        }
        impl Process for RawSender {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                let pkt = Packet::udp(ctx.ip(0), self.target_ip, Port(5), Port(2000), Bytes::new());
                let frame = Frame {
                    src_mac: ctx.mac(0),
                    dst_mac: MacAddr::BROADCAST,
                    payload: crate::packet::EtherPayload::Ip(pkt),
                };
                ctx.send_raw(0, frame);
            }
        }
        let other_ip = IpAddr::new(172, 16, 0, 1);
        for (strict, expect_delivered) in [(true, 0usize), (false, 1usize)] {
            let mut sim = Simulation::new(31);
            let a = sim.add_node(NodeSpec::new(
                "a",
                vec![InterfaceSpec::dynamic(IP_A)],
                Box::new(RawSender {
                    target_ip: other_ip,
                }),
            ));
            let mut spec_b = NodeSpec::new(
                "b",
                vec![
                    InterfaceSpec::dynamic(IP_B),
                    InterfaceSpec::dynamic(other_ip),
                ],
                Chatter::new(IP_A, false),
            );
            spec_b.strict_interface_binding = strict;
            let b = sim.add_node(spec_b);
            let sw = sim.add_switch(2, SwitchMode::Learning);
            sim.connect(a, 0, sw, 0, LinkSpec::lan());
            sim.connect(b, 0, sw, 1, LinkSpec::lan());
            sim.run_for(SimDuration::from_millis(10));
            let got = sim
                .process_ref::<Chatter>(b)
                .expect("chatter")
                .received
                .len();
            assert_eq!(got, expect_delivered, "strict={strict}");
        }
    }

    #[test]
    fn locked_down_target_gives_scanner_nothing() {
        struct Scanner {
            peer: IpAddr,
            responses: u32,
        }
        impl Process for Scanner {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                for port in 2000u16..2010 {
                    ctx.send(
                        0,
                        Packet::syn(ctx.ip(0), self.peer, Port(40000), Port(port)),
                    );
                }
            }
            fn on_packet(&mut self, _ctx: &mut Context<'_>, _pkt: Packet) {
                self.responses += 1;
            }
        }
        let mut sim = Simulation::new(8);
        let a = sim.add_node(NodeSpec::new(
            "scanner",
            vec![InterfaceSpec::dynamic(IP_A)],
            Box::new(Scanner {
                peer: IP_B,
                responses: 0,
            }),
        ));
        let mut spec_b = NodeSpec::new(
            "b",
            vec![InterfaceSpec::dynamic(IP_B)],
            Chatter::new(IP_A, false),
        );
        spec_b.firewall = Firewall::locked_down();
        let b = sim.add_node(spec_b);
        let sw = sim.add_switch(2, SwitchMode::Learning);
        sim.connect(a, 0, sw, 0, LinkSpec::lan());
        sim.connect(b, 0, sw, 1, LinkSpec::lan());
        sim.run_for(SimDuration::from_millis(10));
        // The red team saw *nothing*: no SYN-ACK, no RST.
        assert_eq!(sim.process_ref::<Scanner>(a).expect("scanner").responses, 0);
        assert_eq!(sim.firewall_drops(b), 10);
    }

    /// Two chatters on a direct link with ARP already warm; returns the
    /// link so tests can flap or reshape it.
    fn warm_direct_pair() -> (Simulation, NodeId, NodeId, LinkId) {
        let mut sim = Simulation::new(3);
        let a = sim.add_node(NodeSpec::new(
            "a",
            vec![InterfaceSpec::dynamic(IP_A)],
            Chatter::new(IP_B, true),
        ));
        let b = sim.add_node(NodeSpec::new(
            "b",
            vec![InterfaceSpec::dynamic(IP_B)],
            Chatter::new(IP_A, false),
        ));
        let link = sim.connect_direct((a, 0), (b, 0), LinkSpec::lan());
        sim.run_for(SimDuration::from_millis(1));
        assert_eq!(
            sim.process_ref::<Chatter>(b)
                .expect("chatter")
                .received
                .len(),
            1
        );
        (sim, a, b, link)
    }

    #[test]
    fn downed_link_drops_in_flight_frames() {
        let (mut sim, a, b, link) = warm_direct_pair();
        // Re-send, then take the link down while the frame is in flight:
        // the frame must be lost, not delivered when the link heals.
        sim.replace_process(a, Chatter::new(IP_B, true));
        sim.run_for(SimDuration::from_micros(10));
        sim.set_link_up(link, false);
        assert!(!sim.link_up(link));
        sim.run_for(SimDuration::from_millis(1));
        sim.set_link_up(link, true);
        sim.run_for(SimDuration::from_millis(5));
        assert_eq!(
            sim.process_ref::<Chatter>(b)
                .expect("chatter")
                .received
                .len(),
            1,
            "ghost frame delivered after link heal"
        );
    }

    #[test]
    fn link_loss_and_latency_windows_apply() {
        let (mut sim, a, b, link) = warm_direct_pair();
        // Total loss: nothing new arrives.
        sim.set_link_loss(link, 1.0);
        sim.replace_process(a, Chatter::new(IP_B, true));
        sim.run_for(SimDuration::from_millis(5));
        assert_eq!(
            sim.process_ref::<Chatter>(b)
                .expect("chatter")
                .received
                .len(),
            1
        );
        // Heal the loss, spike the latency: delivery happens, but late.
        sim.set_link_loss(link, 0.0);
        sim.set_link_latency(link, SimDuration::from_millis(2));
        assert_eq!(sim.link_spec(link).latency, SimDuration::from_millis(2));
        sim.replace_process(a, Chatter::new(IP_B, true));
        sim.run_for(SimDuration::from_millis(1));
        assert_eq!(
            sim.process_ref::<Chatter>(b)
                .expect("chatter")
                .received
                .len(),
            1,
            "frame arrived before the spiked latency elapsed"
        );
        sim.run_for(SimDuration::from_millis(5));
        assert_eq!(
            sim.process_ref::<Chatter>(b)
                .expect("chatter")
                .received
                .len(),
            2
        );
    }

    #[test]
    fn switch_partition_confines_frames_to_groups() {
        let (mut sim, a, b) = two_hosts_on_switch(ArpMode::Dynamic);
        let sw = SwitchId(0);
        let mut groups = BTreeMap::new();
        groups.insert(1usize, 1u32); // b's port in group 1, a's in group 0
        sim.set_switch_partition(sw, groups);
        sim.run_for(SimDuration::from_millis(10));
        assert!(sim
            .process_ref::<Chatter>(b)
            .expect("chatter")
            .received
            .is_empty());
        assert!(sim.switch(sw).partition_drops > 0);
        assert!(sim.switch(sw).partition_active());
        // Heal: the ARP retry re-broadcasts, resolution completes, and the
        // packet parked during the partition finally delivers.
        sim.clear_switch_partition(sw);
        sim.run_for(SimDuration::from_millis(600));
        assert!(!sim
            .process_ref::<Chatter>(b)
            .expect("chatter")
            .received
            .is_empty());
        let _ = a;
    }
}
