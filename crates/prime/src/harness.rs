//! A deterministic in-memory cluster harness for tests and benchmarks.
//!
//! Runs `n` replicas over a simulated message fabric with uniform latency
//! and optional per-replica partitions. This is *not* the full `simnet`
//! deployment (the `spire` crate does that); it exists so Prime's protocol
//! logic can be exercised and benchmarked in isolation.

use std::collections::{BTreeSet, BinaryHeap};

use bytes::Bytes;
use itcrypto::keys::{KeyPair, KeyRegistry, Principal};
use simnet::time::{SimDuration, SimTime};
use simnet::wire::Wire;

use crate::application::{Application, KvApp};
use crate::messages::SignedMsg;
use crate::replica::{OutEvent, Replica, Timing};
use crate::types::{Config, ReplicaId, SignedUpdate, Update};

/// Seed base for replica keys (distinct from client seeds).
const REPLICA_KEY_SEED: u64 = 0x5250; // "RP"
const CLIENT_KEY_SEED: u64 = 0x434C; // "CL"

struct QueuedMsg {
    at: SimTime,
    seq: u64,
    to: ReplicaId,
    msg: SignedMsg,
}

impl PartialEq for QueuedMsg {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for QueuedMsg {}
impl PartialOrd for QueuedMsg {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedMsg {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

/// A deterministic cluster of [`Replica<KvApp>`]s.
pub struct Cluster {
    /// The replicas (index = id).
    pub replicas: Vec<Replica<KvApp>>,
    config: Config,
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<QueuedMsg>,
    latency: SimDuration,
    tick_interval: SimDuration,
    next_tick: SimTime,
    client_keys: Vec<KeyPair>,
    client_seqs: Vec<u64>,
    /// Replica ids currently partitioned away (drop all their traffic).
    pub partitioned: BTreeSet<u32>,
    /// Execution log per replica: (exec_seq, client, client_seq).
    pub exec_logs: Vec<Vec<(u64, u32, u64)>>,
    /// Virtual time of each execution, parallel to `exec_logs`.
    pub exec_times: Vec<Vec<SimTime>>,
    /// Outbound-bandwidth model: virtual time a replica's NIC spends
    /// serializing one outgoing message. `None` (the default) keeps the
    /// classic infinite-capacity fabric that the protocol tests and E8
    /// rely on; E11 sets it to expose the ordering-saturation knee.
    out_cost: Option<SimDuration>,
    /// Per-replica NIC-free time under the bandwidth model.
    next_free: Vec<SimTime>,
    /// Uniform message-loss probability (0.0 = the classic lossless
    /// fabric). Applied per enqueued message with a seeded generator so
    /// lossy runs stay deterministic.
    loss: f64,
    /// splitmix64 state driving the loss rolls.
    loss_state: u64,
    /// Messages dropped by the loss model.
    pub dropped_messages: u64,
}

impl Cluster {
    /// Builds a cluster for `config` with `clients` registered clients and
    /// a uniform message latency of 1 ms.
    pub fn new(config: Config, clients: u32) -> Self {
        Self::with_latency(config, clients, SimDuration::from_millis(1))
    }

    /// Builds a cluster with explicit message latency.
    pub fn with_latency(config: Config, clients: u32, latency: SimDuration) -> Self {
        let n = config.n();
        let mut registry = KeyRegistry::new();
        let mut replica_keys = Vec::new();
        for i in 0..n {
            let kp = KeyPair::generate(REPLICA_KEY_SEED + i as u64);
            registry.register(Principal::Replica(i), kp.public_key());
            replica_keys.push(kp);
        }
        let mut client_keys = Vec::new();
        for c in 0..clients {
            let kp = KeyPair::generate(CLIENT_KEY_SEED + c as u64);
            registry.register(Principal::Client(c), kp.public_key());
            client_keys.push(kp);
        }
        let replicas = replica_keys
            .into_iter()
            .enumerate()
            .map(|(i, key)| {
                Replica::new(
                    ReplicaId(i as u32),
                    config,
                    key,
                    registry.clone(),
                    KvApp::new(),
                )
            })
            .collect();
        Cluster {
            replicas,
            config,
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            latency,
            tick_interval: SimDuration::from_millis(10),
            next_tick: SimTime::ZERO,
            client_keys,
            client_seqs: vec![0; clients as usize],
            partitioned: BTreeSet::new(),
            exec_logs: vec![Vec::new(); n as usize],
            exec_times: vec![Vec::new(); n as usize],
            out_cost: None,
            next_free: vec![SimTime::ZERO; n as usize],
            loss: 0.0,
            loss_state: 0,
            dropped_messages: 0,
        }
    }

    /// Enables the finite outbound-capacity model: every message a replica
    /// sends occupies its NIC for `per_msg` of virtual time, so a sender's
    /// messages serialize and queueing delay appears once the offered load
    /// exceeds what the NIC drains (the E11 saturation knee).
    pub fn set_out_cost(&mut self, per_msg: SimDuration) {
        self.out_cost = Some(per_msg);
    }

    /// Enables uniform message loss: each enqueued message is dropped with
    /// probability `loss`, rolled from a splitmix64 stream seeded by
    /// `seed` (same seed + same run ⇒ same drops).
    pub fn set_loss(&mut self, loss: f64, seed: u64) {
        self.loss = loss;
        self.loss_state = seed;
    }

    /// One deterministic Bernoulli roll from the loss stream.
    fn loss_roll(&mut self) -> bool {
        if self.loss <= 0.0 {
            return false;
        }
        // splitmix64: tiny, seedable, and plenty for a drop decision.
        self.loss_state = self.loss_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.loss_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z as f64 / u64::MAX as f64) < self.loss
    }

    /// Applies tighter timing to every replica (tests).
    pub fn set_timing(&mut self, timing: Timing) {
        for r in &mut self.replicas {
            r.set_timing(timing);
        }
    }

    /// The cluster configuration.
    pub fn config(&self) -> Config {
        self.config
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Signs and submits a client update to every replica (Spire clients
    /// multicast through Spines; every replica hears every update).
    pub fn submit(&mut self, client: u32, payload: impl Into<Bytes>) {
        let payload = payload.into();
        self.client_seqs[client as usize] += 1;
        let update = Update::new(client, self.client_seqs[client as usize], payload);
        let sig = self.client_keys[client as usize].sign(&update.to_wire());
        let signed = SignedUpdate { update, sig };
        let now = self.now;
        for i in 0..self.replicas.len() {
            if self.partitioned.contains(&(i as u32)) {
                continue;
            }
            let events = self.replicas[i].submit(signed.clone(), now);
            self.dispatch(ReplicaId(i as u32), events);
        }
    }

    /// Submits to exactly one replica (for targeted tests).
    pub fn submit_to(&mut self, replica: ReplicaId, client: u32, payload: impl Into<Bytes>) {
        let payload = payload.into();
        self.client_seqs[client as usize] += 1;
        let update = Update::new(client, self.client_seqs[client as usize], payload);
        let sig = self.client_keys[client as usize].sign(&update.to_wire());
        let signed = SignedUpdate { update, sig };
        let now = self.now;
        let events = self.replicas[replica.0 as usize].submit(signed, now);
        self.dispatch(replica, events);
    }

    fn dispatch(&mut self, from: ReplicaId, events: Vec<OutEvent>) {
        for ev in events {
            match ev {
                OutEvent::Broadcast(env) => {
                    // Serialize-once: `env.wire` is the message's exact
                    // wire image, so its length is the per-copy byte cost.
                    obs::prof::charge_msg(
                        env.msg.msg.prof_stack(),
                        0,
                        env.wire.len() as u64 * (self.replicas.len() as u64 - 1),
                    );
                    for to in 0..self.replicas.len() as u32 {
                        if to != from.0 {
                            self.enqueue(ReplicaId(to), env.msg.clone());
                        }
                    }
                }
                OutEvent::Send(to, env) => {
                    obs::prof::charge_msg(env.msg.msg.prof_stack(), 0, env.wire.len() as u64);
                    self.enqueue(to, env.msg)
                }
                OutEvent::Execute {
                    exec_seq, update, ..
                } => {
                    self.exec_logs[from.0 as usize].push((
                        exec_seq,
                        update.client,
                        update.client_seq,
                    ));
                    self.exec_times[from.0 as usize].push(self.now);
                }
                _ => {}
            }
        }
    }

    fn enqueue(&mut self, to: ReplicaId, msg: SignedMsg) {
        if self.partitioned.contains(&msg.from.0) || self.partitioned.contains(&to.0) {
            return;
        }
        if self.loss_roll() {
            self.dropped_messages += 1;
            return;
        }
        let at = match self.out_cost {
            Some(cost) => {
                let lane = &mut self.next_free[msg.from.0 as usize];
                let depart = (*lane).max(self.now) + cost;
                *lane = depart;
                depart + self.latency
            }
            None => self.now + self.latency,
        };
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(QueuedMsg { at, seq, to, msg });
    }

    /// Runs the cluster for `dur` of virtual time.
    ///
    /// When `obs::prof` is enabled, this loop is the profiler's time
    /// source: every gap of virtual time is charged to exactly one
    /// stack — the message delivery or tick that ends it, or `idle`
    /// for the trailing drain — so the per-phase attribution rows
    /// telescope to the elapsed virtual time with zero remainder.
    pub fn run_for(&mut self, dur: SimDuration) {
        let deadline = self.now + dur;
        let profiling = obs::prof::enabled();
        loop {
            let next_msg_at = self.queue.peek().map(|m| m.at);
            let next_event = match next_msg_at {
                Some(t) if t <= self.next_tick => t,
                _ => self.next_tick,
            };
            if next_event > deadline {
                break;
            }
            let dt = next_event.since(self.now).as_micros();
            self.now = next_event;
            if Some(next_event) == next_msg_at {
                let qm = self.queue.pop().expect("peeked");
                if profiling {
                    let stack = qm.msg.msg.prof_stack();
                    obs::prof::charge_time(stack, dt);
                    obs::prof::charge_msg(stack, 1, 0);
                }
                let now = self.now;
                let events = self.replicas[qm.to.0 as usize].on_message(qm.msg, now);
                self.dispatch(qm.to, events);
            } else {
                if profiling {
                    obs::prof::charge_time("prime;timer", dt);
                    obs::prof::charge_msg("prime;timer", 1, 0);
                }
                let now = self.now;
                for i in 0..self.replicas.len() {
                    if self.partitioned.contains(&(i as u32)) {
                        continue;
                    }
                    let events = self.replicas[i].tick(now);
                    self.dispatch(ReplicaId(i as u32), events);
                }
                self.next_tick += self.tick_interval;
            }
        }
        if profiling {
            obs::prof::charge_time("idle", deadline.since(self.now).as_micros());
        }
        self.now = deadline;
    }

    /// Triggers proactive recovery on one replica.
    pub fn recover_replica(&mut self, id: ReplicaId) {
        let now = self.now;
        let events = self.replicas[id.0 as usize].recover(now);
        self.dispatch(id, events);
    }

    /// Minimum executed count across non-partitioned, correct replicas.
    pub fn min_executed(&self) -> u64 {
        self.replicas
            .iter()
            .enumerate()
            .filter(|(i, r)| !self.partitioned.contains(&(*i as u32)) && !r.byz.is_byzantine())
            .map(|(_, r)| r.exec_seq())
            .min()
            .unwrap_or(0)
    }

    /// Asserts all correct replicas agree on what was executed at every
    /// global execution sequence they both observed, and that replicas at
    /// the same execution point have identical application digests.
    /// Returns the number of distinct execution sequences checked.
    ///
    /// Logs are compared *by execution sequence*, not by log index: a
    /// replica that recovered mid-run resumes from a snapshot, so its
    /// local log legitimately starts (or has a gap) mid-stream.
    ///
    /// # Panics
    ///
    /// Panics (test-style) on divergence.
    pub fn assert_consistent(&self) -> usize {
        let correct: Vec<usize> = self
            .replicas
            .iter()
            .enumerate()
            .filter(|(i, r)| !self.partitioned.contains(&(*i as u32)) && !r.byz.is_byzantine())
            .map(|(i, _)| i)
            .collect();
        let mut agreed: std::collections::BTreeMap<u64, ((u32, u64), usize)> =
            std::collections::BTreeMap::new();
        for &i in &correct {
            for &(exec_seq, client, client_seq) in &self.exec_logs[i] {
                match agreed.get(&exec_seq) {
                    None => {
                        agreed.insert(exec_seq, ((client, client_seq), i));
                    }
                    Some(&(existing, who)) => {
                        assert_eq!(
                            existing,
                            (client, client_seq),
                            "execution diverged at seq {exec_seq}: r{who} vs r{i}"
                        );
                    }
                }
            }
        }
        // Replicas with equal exec counts must have equal app digests.
        for w in correct.windows(2) {
            let (a, b) = (w[0], w[1]);
            if self.replicas[a].exec_seq() == self.replicas[b].exec_seq() {
                assert_eq!(
                    self.replicas[a].app().digest(),
                    self.replicas[b].app().digest(),
                    "application state diverged between r{a} and r{b}"
                );
            }
        }
        agreed.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::byzantine::ByzMode;

    fn fast_timing() -> Timing {
        Timing {
            aru_interval: SimDuration::from_millis(10),
            pp_interval: SimDuration::from_millis(10),
            suspect_timeout: SimDuration::from_millis(400),
            checkpoint_interval: 10,
            catchup_timeout: SimDuration::from_millis(200),
        }
    }

    #[test]
    fn orders_and_executes_updates() {
        let mut c = Cluster::new(Config::red_team(), 2);
        c.set_timing(fast_timing());
        for i in 0..10 {
            c.submit(0, format!("k{i}=v{i}"));
            c.run_for(SimDuration::from_millis(50));
        }
        c.run_for(SimDuration::from_millis(500));
        assert_eq!(c.min_executed(), 10);
        let len = c.assert_consistent();
        assert_eq!(len, 10);
        // Application state reflects the updates.
        assert_eq!(c.replicas[0].app().get(b"k3"), Some(b"v3".as_ref()));
    }

    #[test]
    fn six_replica_plant_config_works() {
        let mut c = Cluster::new(Config::plant(), 1);
        c.set_timing(fast_timing());
        for i in 0..5 {
            c.submit(0, format!("b{i}=closed"));
        }
        c.run_for(SimDuration::from_secs(2));
        assert_eq!(c.min_executed(), 5);
        c.assert_consistent();
    }

    #[test]
    fn tolerates_one_crashed_replica() {
        let mut c = Cluster::new(Config::red_team(), 1);
        c.set_timing(fast_timing());
        c.replicas[3].byz = ByzMode::Crashed;
        for i in 0..8 {
            c.submit(0, format!("x{i}=1"));
            c.run_for(SimDuration::from_millis(40));
        }
        c.run_for(SimDuration::from_secs(1));
        assert_eq!(c.min_executed(), 8);
        c.assert_consistent();
    }

    #[test]
    fn crashed_leader_triggers_view_change_and_recovers_liveness() {
        let mut c = Cluster::new(Config::red_team(), 1);
        c.set_timing(fast_timing());
        // Replica 0 leads view 0; crash it.
        c.replicas[0].byz = ByzMode::Crashed;
        c.submit(0, "a=1");
        c.run_for(SimDuration::from_secs(3));
        // The remaining replicas must have moved to view ≥ 1 and executed.
        for r in c.replicas.iter().skip(1) {
            assert!(r.view() >= 1, "replica {:?} still in view 0", r.id());
            assert_eq!(r.exec_seq(), 1);
        }
        c.assert_consistent();
    }

    #[test]
    fn delaying_leader_is_deposed() {
        let mut c = Cluster::new(Config::red_team(), 1);
        c.set_timing(fast_timing());
        c.replicas[0].byz = ByzMode::DelayLeader(SimDuration::from_secs(30));
        for i in 0..3 {
            c.submit(0, format!("d{i}=1"));
        }
        c.run_for(SimDuration::from_secs(3));
        assert!(c.replicas[1].view() >= 1, "delaying leader was not deposed");
        assert_eq!(c.min_executed(), 3);
        c.assert_consistent();
    }

    #[test]
    fn mute_leader_is_deposed() {
        let mut c = Cluster::new(Config::red_team(), 1);
        c.set_timing(fast_timing());
        c.replicas[0].byz = ByzMode::MuteLeader;
        c.submit(0, "m=1");
        c.run_for(SimDuration::from_secs(3));
        assert!(c.replicas[2].view() >= 1);
        assert_eq!(c.min_executed(), 1);
        c.assert_consistent();
    }

    #[test]
    fn proactive_recovery_catches_up_via_state_transfer() {
        let mut c = Cluster::new(Config::plant(), 1);
        c.set_timing(fast_timing());
        for i in 0..12 {
            c.submit(0, format!("pre{i}=x"));
            c.run_for(SimDuration::from_millis(30));
        }
        c.run_for(SimDuration::from_millis(500));
        assert_eq!(c.min_executed(), 12);
        // Recover replica 5: it wipes state and must state-transfer back.
        c.recover_replica(ReplicaId(5));
        c.run_for(SimDuration::from_millis(500));
        assert_eq!(c.replicas[5].exec_seq(), 12, "recovered replica caught up");
        assert_eq!(c.replicas[5].app().digest(), c.replicas[0].app().digest());
        assert_eq!(c.replicas[5].stats.catchups, 1);
        // And it continues executing new updates.
        c.submit(0, "post=1");
        c.run_for(SimDuration::from_millis(500));
        assert_eq!(c.replicas[5].exec_seq(), 13);
    }

    #[test]
    fn recovery_during_load_keeps_cluster_live() {
        // Plant config: f=1, k=1 → can lose one to recovery and one to
        // intrusion simultaneously.
        let mut c = Cluster::new(Config::plant(), 1);
        c.set_timing(fast_timing());
        c.replicas[4].byz = ByzMode::Crashed; // the "intrusion"
        for i in 0..5 {
            c.submit(0, format!("w{i}=1"));
            c.run_for(SimDuration::from_millis(30));
        }
        c.recover_replica(ReplicaId(5));
        for i in 5..10 {
            c.submit(0, format!("w{i}=1"));
            c.run_for(SimDuration::from_millis(30));
        }
        c.run_for(SimDuration::from_secs(1));
        // The four healthy replicas plus the recovered one all execute.
        for (i, r) in c.replicas.iter().enumerate() {
            if i != 4 {
                assert_eq!(r.exec_seq(), 10, "replica {i}");
            }
        }
        c.assert_consistent();
    }

    #[test]
    fn partitioned_replica_catches_up_after_heal() {
        let mut c = Cluster::new(Config::red_team(), 1);
        c.set_timing(fast_timing());
        c.partitioned.insert(3);
        for i in 0..15 {
            c.submit(0, format!("p{i}=1"));
            c.run_for(SimDuration::from_millis(30));
        }
        c.run_for(SimDuration::from_millis(300));
        assert_eq!(c.replicas[3].exec_seq(), 0);
        // Heal; checkpoints + catch-up bring it back.
        c.partitioned.clear();
        c.submit(0, "heal=1");
        c.run_for(SimDuration::from_secs(3));
        assert!(
            c.replicas[3].exec_seq() >= 15,
            "partitioned replica caught up, got {}",
            c.replicas[3].exec_seq()
        );
    }

    #[test]
    fn catchup_backoff_schedule_doubles_then_caps() {
        use crate::replica::catchup_backoff;
        let base = SimDuration::from_millis(200);
        // First retry waits one plain timeout (pre-backoff behaviour),
        // then the wait doubles per unanswered round and caps at 16×.
        let expect_ms = [200u64, 400, 800, 1600, 3200, 3200, 3200];
        for (attempt, &ms) in expect_ms.iter().enumerate() {
            assert_eq!(
                catchup_backoff(base, attempt as u32),
                SimDuration::from_millis(ms),
                "attempt {attempt}"
            );
        }
        assert_eq!(catchup_backoff(base, 40), SimDuration::from_millis(3200));
    }

    #[test]
    fn catchup_retransmits_follow_backoff_and_stay_bounded() {
        let mut c = Cluster::new(Config::plant(), 1);
        c.set_timing(fast_timing());
        for i in 0..5 {
            c.submit(0, format!("k{i}=v"));
            c.run_for(SimDuration::from_millis(30));
        }
        c.run_for(SimDuration::from_millis(500));
        assert_eq!(c.min_executed(), 5);
        // Total blackout: every catch-up round goes unanswered. The
        // recovering replica must retransmit on the backoff schedule
        // (10 bounded retries ≈ 22 s at a 200 ms base) and then give up
        // rather than spin forever.
        c.set_loss(1.0, 7);
        c.recover_replica(ReplicaId(5));
        c.run_for(SimDuration::from_secs(10));
        let early = c.replicas[5].stats.catchup_retransmits;
        assert!(
            (6..10).contains(&early),
            "backoff should have spaced retries out, got {early} in 10 s"
        );
        c.run_for(SimDuration::from_secs(20));
        assert_eq!(c.replicas[5].stats.catchup_retransmits, 10);
        assert!(
            !c.replicas[5].is_catching_up(),
            "replica must give up after the attempt budget"
        );
        assert!(c.dropped_messages > 0);
    }

    /// Satellite: `Replica::recover()` + `request_catchup` under 30 %
    /// message loss must still reconverge (retransmit-with-backoff rides
    /// over lost catch-up rounds). Returns the recovered replica's
    /// application digest for pinning.
    fn recovery_reconverges_under_loss(seed: u64) -> String {
        let mut c = Cluster::new(Config::plant(), 1);
        c.set_timing(fast_timing());
        for i in 0..20 {
            c.submit(0, format!("k{i}=v{i}"));
            c.run_for(SimDuration::from_millis(30));
        }
        c.run_for(SimDuration::from_millis(500));
        assert_eq!(c.min_executed(), 20);
        c.set_loss(0.3, seed);
        c.recover_replica(ReplicaId(5));
        c.run_for(SimDuration::from_secs(20));
        assert_eq!(
            c.replicas[5].exec_seq(),
            20,
            "recovered replica reconverged under 30% loss (seed {seed})"
        );
        assert_eq!(
            c.replicas[5].app().digest(),
            c.replicas[0].app().digest(),
            "application state matches after reconvergence"
        );
        c.assert_consistent();
        c.replicas[5].app().digest().to_hex()
    }

    /// The reconvergence digest is a pure function of the 20 executed
    /// updates, so both loss seeds land on the same pinned state.
    const RECONVERGENCE_DIGEST: &str =
        "e67b60a1e408e4ac6985e15aa6ec9d0117e325f432cc4e3c5809680848a84e96";

    #[test]
    fn recovery_reconverges_under_30pct_loss_seed_42() {
        assert_eq!(recovery_reconverges_under_loss(42), RECONVERGENCE_DIGEST);
    }

    #[test]
    fn recovery_reconverges_under_30pct_loss_seed_1111() {
        assert_eq!(recovery_reconverges_under_loss(1111), RECONVERGENCE_DIGEST);
    }

    /// With `transfer_dedup` armed, a recovered replica inherits its
    /// peers' duplicate-suppression table through catch-up: every update
    /// reaches every replica (each introduces it, like Spire's proxy
    /// multicast), so duplicate orderings keep arriving after the
    /// snapshot install, and without the table the recovered replica
    /// executes copies its peers suppressed — forking its execution
    /// numbering. Found by the chaos engine's agreement invariant.
    #[test]
    fn dedup_table_transfers_across_proactive_recovery() {
        let mut config = Config::plant();
        config.transfer_dedup = true;
        let mut c = Cluster::new(config, 2);
        c.set_timing(fast_timing());
        for i in 0..12 {
            c.submit(i % 2, format!("d{i}=v"));
            c.run_for(SimDuration::from_millis(60));
        }
        c.run_for(SimDuration::from_millis(500));
        assert_eq!(c.min_executed(), 12);
        c.recover_replica(ReplicaId(5));
        c.run_for(SimDuration::from_secs(2));
        assert!(c.replicas[5].stats.catchups >= 1, "recovery caught up");
        for i in 0..12 {
            c.submit(i % 2, format!("p{i}=v"));
            c.run_for(SimDuration::from_millis(60));
        }
        c.run_for(SimDuration::from_secs(1));
        // Identical execution numbering everywhere: duplicates suppressed
        // by veterans were also suppressed by the recovered replica.
        for r in &c.replicas {
            assert_eq!(r.exec_seq(), 24, "no duplicate executions leaked");
        }
        assert_eq!(c.replicas[5].app().digest(), c.replicas[0].app().digest());
        c.assert_consistent();
    }

    /// Losing a full "site" (replicas 3–5) leaves three survivors — below
    /// the static quorum of 4 — so ordering halts until the management
    /// plane installs a degraded membership epoch; under the epoch's
    /// majority quorum (2) ordering must continue among the survivors.
    #[test]
    fn degraded_epoch_orders_after_site_loss() {
        use crate::types::Membership;
        let mut c = Cluster::new(Config::plant(), 1);
        c.set_timing(fast_timing());
        for i in 0..6 {
            c.submit(0, format!("pre{i}=v"));
            c.run_for(SimDuration::from_millis(40));
        }
        c.run_for(SimDuration::from_millis(400));
        assert_eq!(c.min_executed(), 6);
        c.partitioned.extend([3, 4, 5]);
        let now = c.now();
        for i in 0..3 {
            c.replicas[i].set_membership(Membership::degraded(vec![0, 1, 2]), now);
        }
        for i in 0..8 {
            c.submit(0, format!("sev{i}=v"));
            c.run_for(SimDuration::from_millis(40));
        }
        c.run_for(SimDuration::from_secs(1));
        assert_eq!(c.min_executed(), 14, "ordering live in the degraded epoch");
        c.assert_consistent();
    }

    /// Losing the site that holds the view-0 leader: the epoch rotates
    /// leadership over its own member list, so members[0] leads the same
    /// view and no view change is needed to restore liveness.
    #[test]
    fn degraded_epoch_rotates_leadership_over_members() {
        use crate::types::Membership;
        let mut c = Cluster::new(Config::plant(), 1);
        c.set_timing(fast_timing());
        c.submit(0, "warm=v");
        c.run_for(SimDuration::from_secs(1));
        assert_eq!(c.min_executed(), 1);
        c.partitioned.extend([0, 1, 2]);
        let now = c.now();
        for i in 3..6 {
            c.replicas[i].set_membership(Membership::degraded(vec![3, 4, 5]), now);
        }
        assert!(c.replicas[3].is_leader(), "members[0] leads the epoch");
        for i in 0..5 {
            c.submit(0, format!("s{i}=v"));
            c.run_for(SimDuration::from_millis(40));
        }
        c.run_for(SimDuration::from_secs(2));
        for r in c.replicas.iter().skip(3) {
            assert_eq!(r.exec_seq(), 6, "{:?} executed under the epoch", r.id());
        }
        c.assert_consistent();
    }

    /// Heal + failback: clearing the epoch restores the static quorum,
    /// the healed replicas catch up via checkpoints + state transfer, and
    /// the whole cluster converges on one history.
    #[test]
    fn failback_after_site_heal_restores_full_membership() {
        use crate::types::Membership;
        let mut config = Config::plant();
        config.transfer_dedup = true;
        let mut c = Cluster::new(config, 1);
        c.set_timing(fast_timing());
        for i in 0..6 {
            c.submit(0, format!("pre{i}=v"));
            c.run_for(SimDuration::from_millis(40));
        }
        c.run_for(SimDuration::from_millis(400));
        assert_eq!(c.min_executed(), 6);
        c.partitioned.extend([3, 4, 5]);
        let now = c.now();
        for i in 0..3 {
            c.replicas[i].set_membership(Membership::degraded(vec![0, 1, 2]), now);
        }
        for i in 0..8 {
            c.submit(0, format!("sev{i}=v"));
            c.run_for(SimDuration::from_millis(40));
        }
        c.run_for(SimDuration::from_secs(1));
        assert_eq!(c.min_executed(), 14);
        // Site heals: failback to the full configuration.
        c.partitioned.clear();
        for i in 0..3 {
            c.replicas[i].clear_membership();
        }
        for i in 0..6 {
            c.submit(0, format!("post{i}=v"));
            c.run_for(SimDuration::from_millis(40));
        }
        c.run_for(SimDuration::from_secs(5));
        for r in &c.replicas {
            assert_eq!(r.exec_seq(), 20, "{:?} converged after failback", r.id());
        }
        c.assert_consistent();
    }

    /// Messages from outside the epoch membership are dropped while the
    /// epoch is active: stale votes from the severed side must not count
    /// toward the reduced thresholds.
    #[test]
    fn epoch_ignores_non_member_messages() {
        use crate::types::Membership;
        let mut c = Cluster::new(Config::plant(), 1);
        c.set_timing(fast_timing());
        c.submit(0, "a=1");
        c.run_for(SimDuration::from_secs(1));
        let now = c.now();
        c.replicas[0].set_membership(Membership::degraded(vec![0, 1, 2]), now);
        // A perfectly valid checkpoint vote from r5 (a non-member) must
        // not be admitted while the epoch is active.
        let before = c.replicas[0].stats.bad_sigs;
        let env = {
            let r5 = &mut c.replicas[5];
            let digest = r5.app().digest();
            let exec = r5.exec_seq();
            crate::messages::Envelope::sign(
                ReplicaId(5),
                crate::messages::PrimeMsg::Checkpoint {
                    exec_seq: exec,
                    app_digest: digest,
                },
                &mut KeyPair::generate(REPLICA_KEY_SEED + 5),
            )
        };
        let out = c.replicas[0].on_message(env.msg, now);
        assert!(out.is_empty(), "non-member message produced no effects");
        assert_eq!(c.replicas[0].stats.bad_sigs, before);
        c.replicas[0].clear_membership();
        assert!(c.replicas[0].membership().is_none());
    }

    #[test]
    fn duplicate_submissions_execute_once() {
        let mut c = Cluster::new(Config::red_team(), 1);
        c.set_timing(fast_timing());
        // submit() already fans out to all four replicas: each introduces
        // the update. Execution must happen exactly once per replica.
        c.submit(0, "only=once");
        c.run_for(SimDuration::from_secs(1));
        for log in &c.exec_logs {
            assert_eq!(log.len(), 1, "executed exactly once");
        }
        // Each replica introduced it separately; duplicates suppressed.
        assert!(c.replicas[0].stats.dup_suppressed > 0);
    }

    #[test]
    fn throughput_many_updates() {
        let mut c = Cluster::new(Config::red_team(), 4);
        c.set_timing(fast_timing());
        for batch in 0..20 {
            for client in 0..4 {
                c.submit(client, format!("c{client}b{batch}=v"));
            }
            c.run_for(SimDuration::from_millis(20));
        }
        c.run_for(SimDuration::from_secs(2));
        assert_eq!(c.min_executed(), 80);
        c.assert_consistent();
    }
}
