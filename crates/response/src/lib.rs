//! Closed-loop intrusion response for the Spire reproduction.
//!
//! The paper's deployment (DSN 2019) tolerates intrusions with *open*
//! loops: MANA raises alerts for a human operator, and proactive recovery
//! rejuvenates replicas on a fixed periodic schedule regardless of what
//! the detectors see. This crate closes the loop, following the
//! feedback-control framing of "Intrusion Tolerance for Networked Systems
//! through Two-Level Feedback Control" (see PAPERS.md): a deterministic
//! controller consumes per-replica MANA anomaly scores, Prime
//! flight-recorder health gauges (PO-queue depth, turnaround time, view
//! churn), and the typed `chaos::signal` feed, and drives three actuators:
//!
//! 1. **Recovery scheduling** — a suspected replica jumps the periodic
//!    round-robin queue (`diversity::recovery::RecoveryScheduler::trigger`)
//!    and is rejuvenated immediately, subject to the same `f`/`k` budget,
//!    so detection shortens time-in-compromised-state without endangering
//!    agreement.
//! 2. **Traffic throttling** — a flooding (or flooded) proxy gets a
//!    status-update rate cap (`spire::proxy::PlcProxy::set_update_rate_limit`)
//!    so the replication path is not saturated while the flood lasts.
//! 3. **Degraded modes** — a journaled [`ResponseState`] machine
//!    (Normal → Suspicious → Throttled → Isolating → Recovering) with
//!    hysteresis and cool-downs, so the controller cannot flap.
//!
//! The controller is pure and seed-deterministic: [`Controller::step`] is
//! a function of its config and the observation stream only — no clocks,
//! no randomness — which is what the determinism proptests pin. It is
//! opt-in: nothing instantiates a controller unless an experiment asks
//! for one, so every pre-existing golden digest is untouched. E16
//! (`bench::response_experiment`) evaluates it against the periodic
//! baseline under multi-stage attack campaigns.

pub mod controller;

pub use controller::{
    Actuation, Controller, ControllerInput, ProxyObservation, ReplicaObservation, ResponseConfig,
    ResponseState, ResponseStats,
};
