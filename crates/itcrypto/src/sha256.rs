//! From-scratch SHA-256 (FIPS 180-4).
//!
//! Used for every digest in the system: message digests for signatures,
//! Merkle-tree nodes, checkpoint digests, and as the compression function
//! inside [`crate::hmac`].

use std::fmt;

/// A 256-bit digest.
///
/// # Examples
///
/// ```
/// use itcrypto::sha256::sha256;
///
/// let d = sha256(b"abc");
/// assert_eq!(
///     d.to_hex(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// The all-zero digest, used as a sentinel for "no digest yet".
    pub const ZERO: Digest = Digest([0; 32]);

    /// Returns the digest as a byte slice.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Renders the digest as lowercase hex.
    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// A short 8-hex-character prefix, convenient for logs.
    pub fn short(&self) -> String {
        self.to_hex()[..8].to_string()
    }

    /// Interprets the first 8 bytes as a big-endian `u64` (for sampling and
    /// for deriving scalars in [`crate::schnorr`]).
    pub fn prefix_u64(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("digest has 32 bytes"))
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({})", self.short())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; 32]> for Digest {
    fn from(bytes: [u8; 32]) -> Self {
        Digest(bytes)
    }
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// # Examples
///
/// ```
/// use itcrypto::sha256::{sha256, Sha256};
///
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(h.finalize(), sha256(b"abc"));
/// ```
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buf: [0; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Feeds `data` into the hash.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(rest.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            rest = tail;
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Consumes the hasher and returns the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80 then zeros then 64-bit length.
        self.update_padding(bit_len);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    fn update_padding(&mut self, bit_len: u64) {
        let mut pad = Vec::with_capacity(72);
        pad.push(0x80u8);
        let msg_len = self.buf_len + 1;
        let zeros = if msg_len <= 56 {
            56 - msg_len
        } else {
            120 - msg_len
        };
        pad.extend(std::iter::repeat_n(0u8, zeros));
        pad.extend_from_slice(&bit_len.to_be_bytes());
        // Reuse update, but avoid double-counting length.
        let save = self.total_len;
        self.update(&pad);
        self.total_len = save;
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for i in 0..16 {
            w[i] = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256.
///
/// # Examples
///
/// ```
/// use itcrypto::sha256::sha256;
///
/// assert_eq!(
///     sha256(b"").to_hex(),
///     "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
/// );
/// ```
pub fn sha256(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// Hashes the concatenation of several byte slices (avoids an allocation at
/// call sites that would otherwise concatenate).
pub fn sha256_concat(parts: &[&[u8]]) -> Digest {
    let mut h = Sha256::new();
    for p in parts {
        h.update(p);
    }
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    // NIST / well-known test vectors.
    #[test]
    fn empty_string() {
        assert_eq!(
            sha256(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            sha256(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn exactly_one_block() {
        // 64 bytes: forces the padding to spill into a second block.
        let msg = [0x61u8; 64];
        assert_eq!(
            sha256(&msg).to_hex(),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb"
        );
    }

    #[test]
    fn fifty_five_and_fifty_six_byte_boundary() {
        // 55 bytes leaves exactly room for 0x80 + length; 56 does not.
        let m55 = [0x62u8; 55];
        let m56 = [0x62u8; 56];
        assert_ne!(sha256(&m55), sha256(&m56));
        assert_eq!(sha256(&m55), sha256(&m55));
    }

    #[test]
    fn million_a() {
        let msg = vec![b'a'; 1_000_000];
        assert_eq!(
            sha256(&msg).to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).flat_map(|x| x.to_le_bytes()).collect();
        for chunk in [1usize, 3, 7, 63, 64, 65, 100] {
            let mut h = Sha256::new();
            for c in data.chunks(chunk) {
                h.update(c);
            }
            assert_eq!(h.finalize(), sha256(&data), "chunk size {chunk}");
        }
    }

    #[test]
    fn concat_matches_manual_concat() {
        let joined = [b"hello".as_slice(), b" ", b"world"].concat();
        assert_eq!(sha256_concat(&[b"hello", b" ", b"world"]), sha256(&joined));
    }

    #[test]
    fn digest_display_and_short() {
        let d = sha256(b"abc");
        assert_eq!(d.short(), "ba7816bf");
        assert_eq!(format!("{d}"), d.to_hex());
        assert!(format!("{d:?}").contains("ba7816bf"));
    }

    #[test]
    fn prefix_u64_is_big_endian() {
        let d = Digest([
            0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
            0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
        ]);
        assert_eq!(d.prefix_u64(), 0x0102030405060708);
    }
}
