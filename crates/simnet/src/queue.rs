//! Slab-backed indexed event queue with a total pop order.
//!
//! The old engine stored events as boxed nodes in a `BinaryHeap`, and
//! its comparator silently depended on `(time, seq)` pairs never
//! repeating — an assumption a parallel merge would amplify into real
//! nondeterminism. This queue makes the contract explicit:
//!
//! * every entry carries a caller-supplied **key** (the global sequence
//!   number, or a shard's provisional rank) and pops happen in strict
//!   `(time, key)` lexicographic order — a *total* order, so heap
//!   behavior can never depend on insertion order;
//! * payloads live in a slab (`Vec` + free list), not in the heap
//!   nodes, so the binary heap shuffles 24-byte index tuples instead of
//!   full events;
//! * entries are addressable: [`EventQueue::cancel`] and
//!   [`EventQueue::rekey`] are `O(log n)` amortized, implemented as
//!   lazy tombstones — the heap keeps the stale `(time, key, slot)`
//!   tuple, and pops discard tuples whose slot generation or key no
//!   longer matches the slab.
//!
//! The sequential scheduler keys entries by global sequence number.
//! Parallel shards key locally-created events by a provisional rank
//! (high bit set, so they sort after every already-assigned sequence
//! number at equal time — exactly where the sequential engine would
//! put them) and [`EventQueue::rekey`] them to their real sequence
//! number at the next window barrier.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A stable reference to a queued entry, for [`EventQueue::cancel`] /
/// [`EventQueue::rekey`]. Generation-stamped: handles to entries that
/// were already popped (or canceled) are detected and rejected even if
/// the slot has been reused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventHandle {
    slot: u32,
    generation: u32,
}

struct Slot<T> {
    /// Bumped every time the slot is vacated, invalidating old handles
    /// and stale heap tuples.
    generation: u32,
    /// `Some` while the slot holds a live entry.
    entry: Option<Entry<T>>,
}

struct Entry<T> {
    at: u64,
    key: u64,
    payload: T,
}

/// A priority queue over `(time, key)` with slab storage and indexed
/// cancelation. `T` is the event payload; times and keys are plain
/// `u64`s so the queue stays agnostic of the engine's types.
pub struct EventQueue<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    /// Min-heap of `(at, key, slot, generation)`. Tuples are never
    /// removed eagerly; [`EventQueue::pop`] discards ones whose slot
    /// no longer matches (canceled, rekeyed, or already popped).
    heap: BinaryHeap<Reverse<(u64, u64, u32, u32)>>,
    /// Live entries (excludes tombstones still sitting in the heap).
    len: usize,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            slots: Vec::new(),
            free: Vec::new(),
            heap: BinaryHeap::new(),
            len: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue holds no live entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `payload` at `(at, key)` and returns its handle.
    pub fn insert(&mut self, at: u64, key: u64, payload: T) -> EventHandle {
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                let slot = self.slots.len() as u32;
                self.slots.push(Slot {
                    generation: 0,
                    entry: None,
                });
                slot
            }
        };
        let s = &mut self.slots[slot as usize];
        debug_assert!(s.entry.is_none(), "free slot must be vacant");
        s.entry = Some(Entry { at, key, payload });
        self.heap.push(Reverse((at, key, slot, s.generation)));
        self.len += 1;
        EventHandle {
            slot,
            generation: s.generation,
        }
    }

    /// Removes the entry behind `handle`, returning its payload, or
    /// `None` if it was already popped, canceled, or rekeyed away.
    /// `O(1)` now; the heap tombstone is discarded by a later pop.
    pub fn cancel(&mut self, handle: EventHandle) -> Option<T> {
        let s = self.slots.get_mut(handle.slot as usize)?;
        if s.generation != handle.generation || s.entry.is_none() {
            return None;
        }
        let entry = s.entry.take().expect("checked occupied");
        self.vacate(handle.slot);
        Some(entry.payload)
    }

    /// Changes the tie-break key of a live entry (same time), pushing a
    /// fresh heap tuple; the old tuple becomes a tombstone. Returns the
    /// entry's new handle (the old one is invalidated), or `None` if
    /// the handle was already dead. The parallel scheduler uses this at
    /// window barriers to replace provisional ranks with assigned
    /// global sequence numbers.
    pub fn rekey(&mut self, handle: EventHandle, key: u64) -> Option<EventHandle> {
        let s = self.slots.get_mut(handle.slot as usize)?;
        if s.generation != handle.generation {
            return None;
        }
        let entry = s.entry.as_mut()?;
        if entry.key == key {
            return Some(handle);
        }
        entry.key = key;
        // Bump the generation so the *old* heap tuple (old key, old
        // generation) can never validate, then re-push the entry under
        // the new generation.
        s.generation = s.generation.wrapping_add(1);
        self.heap
            .push(Reverse((entry.at, key, handle.slot, s.generation)));
        Some(EventHandle {
            slot: handle.slot,
            generation: s.generation,
        })
    }

    /// The `(time, key)` of the next entry, without popping it.
    pub fn peek(&mut self) -> Option<(u64, u64)> {
        loop {
            let &Reverse((at, key, slot, generation)) = self.heap.peek()?;
            if self.tuple_is_live(slot, generation) {
                return Some((at, key));
            }
            self.heap.pop();
        }
    }

    /// Pops the entry with the smallest `(time, key)`.
    pub fn pop(&mut self) -> Option<(u64, u64, T)> {
        loop {
            let Reverse((at, key, slot, generation)) = self.heap.pop()?;
            if !self.tuple_is_live(slot, generation) {
                continue;
            }
            let s = &mut self.slots[slot as usize];
            let entry = s.entry.take().expect("live tuple has entry");
            self.vacate(slot);
            return Some((at, key, entry.payload));
        }
    }

    /// Drains every live entry in an unspecified order (end-of-run
    /// merge back into the global queue, where insertion re-sorts).
    pub fn drain_unordered(&mut self) -> Vec<(u64, u64, T)> {
        let mut out = Vec::with_capacity(self.len);
        for (i, s) in self.slots.iter_mut().enumerate() {
            if let Some(entry) = s.entry.take() {
                out.push((entry.at, entry.key, entry.payload));
                s.generation = s.generation.wrapping_add(1);
                self.free.push(i as u32);
            }
        }
        self.len = 0;
        self.heap.clear();
        out
    }

    fn tuple_is_live(&self, slot: u32, generation: u32) -> bool {
        let s = &self.slots[slot as usize];
        s.generation == generation && s.entry.is_some()
    }

    fn vacate(&mut self, slot: u32) {
        let s = &mut self.slots[slot as usize];
        s.generation = s.generation.wrapping_add(1);
        self.free.push(slot);
        self.len -= 1;
    }
}

impl<T> std::fmt::Debug for EventQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.len)
            .field("heap_tuples", &self.heap.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_key_order() {
        let mut q = EventQueue::new();
        q.insert(10, 2, "b");
        q.insert(10, 1, "a");
        q.insert(5, 9, "first");
        assert_eq!(q.peek(), Some((5, 9)));
        assert_eq!(q.pop(), Some((5, 9, "first")));
        assert_eq!(q.pop(), Some((10, 1, "a")));
        assert_eq!(q.pop(), Some((10, 2, "b")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    /// The ordering-hazard fix: `(time, key)` is a total order, so the
    /// pop sequence is independent of insertion order.
    #[test]
    fn pop_order_is_insertion_order_independent() {
        let entries: Vec<(u64, u64)> = vec![(3, 7), (1, 2), (3, 1), (2, 5), (1, 9), (2, 4)];
        let reference: Vec<(u64, u64)> = {
            let mut q = EventQueue::new();
            for &(at, key) in &entries {
                q.insert(at, key, ());
            }
            std::iter::from_fn(|| q.pop().map(|(at, key, ())| (at, key))).collect()
        };
        let mut sorted = entries.clone();
        sorted.sort_unstable();
        assert_eq!(reference, sorted);

        // Every rotation of the insertion order pops identically.
        for rot in 1..entries.len() {
            let mut q = EventQueue::new();
            for &(at, key) in entries[rot..].iter().chain(&entries[..rot]) {
                q.insert(at, key, ());
            }
            let got: Vec<(u64, u64)> =
                std::iter::from_fn(|| q.pop().map(|(at, key, ())| (at, key))).collect();
            assert_eq!(got, reference, "rotation {rot} changed pop order");
        }
    }

    #[test]
    fn cancel_removes_exactly_one_entry() {
        let mut q = EventQueue::new();
        let _a = q.insert(1, 1, "a");
        let b = q.insert(2, 2, "b");
        let _c = q.insert(3, 3, "c");
        assert_eq!(q.cancel(b), Some("b"));
        assert_eq!(q.cancel(b), None, "double cancel");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((1, 1, "a")));
        assert_eq!(q.pop(), Some((3, 3, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn stale_handles_do_not_touch_reused_slots() {
        let mut q = EventQueue::new();
        let a = q.insert(1, 1, "a");
        assert_eq!(q.pop(), Some((1, 1, "a")));
        // The slot is reused for a new entry; the old handle must not
        // cancel it.
        let b = q.insert(2, 2, "b");
        assert_eq!(a.slot, b.slot, "test assumes slot reuse");
        assert_eq!(q.cancel(a), None);
        assert_eq!(q.pop(), Some((2, 2, "b")));
    }

    #[test]
    fn rekey_moves_entry_to_new_position() {
        let mut q = EventQueue::new();
        let hi = q.insert(5, u64::MAX, "provisional");
        q.insert(5, 10, "assigned");
        let hi = q.rekey(hi, 3).expect("live");
        assert_eq!(q.pop(), Some((5, 3, "provisional")));
        assert_eq!(q.pop(), Some((5, 10, "assigned")));
        assert_eq!(q.rekey(hi, 7), None, "handle dead after pop");
    }

    #[test]
    fn drain_unordered_empties_the_queue() {
        let mut q = EventQueue::new();
        q.insert(2, 1, "x");
        q.insert(1, 1, "y");
        let canceled = q.insert(3, 1, "z");
        q.cancel(canceled);
        let mut drained = q.drain_unordered();
        drained.sort_unstable_by_key(|&(at, key, _)| (at, key));
        assert_eq!(drained, vec![(1, 1, "y"), (2, 1, "x")]);
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }
}
