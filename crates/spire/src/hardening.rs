//! The §III-B low-level hardening steps as explicit, individually
//! toggleable switches.
//!
//! §VI-A: "if we had not performed the low-level network setup ... the red
//! team would likely have been able to succeed in at least causing a
//! denial of service without even attempting attacks at the Spines or
//! SCADA system levels." Experiment E10 flips each switch off one at a
//! time and re-runs the red-team attacks.

use diversity::os::OsProfile;
use diversity::variant::BinaryHardening;

/// The full hardening profile of a Spire deployment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HardeningProfile {
    /// Static ARP tables on every host (vs. dynamic/poisonable).
    pub static_arp: bool,
    /// Static MAC-to-port maps with ingress enforcement on switches
    /// (vs. learning switches).
    pub static_switch: bool,
    /// Default-deny host firewalls with explicit allow rules
    /// (vs. open firewalls).
    pub firewall_lockdown: bool,
    /// Replication runs on a physically separate internal network
    /// (vs. sharing the external operations network).
    pub isolated_internal: bool,
    /// The PLC connects only to its proxy over a direct cable
    /// (vs. sitting on the operations network switch).
    pub plc_behind_proxy: bool,
    /// NICs do not answer ARP for other NICs' addresses.
    pub no_cross_iface_arp: bool,
    /// Operating system profile on all hosts.
    pub os: OsProfile,
    /// Binary hardening of the deployed executables.
    pub binary: BinaryHardening,
}

impl HardeningProfile {
    /// The full §III-B deployment profile (what Spire actually ran with;
    /// binaries were *not* yet stripped in 2017 — §VI-A's lesson).
    pub fn deployed() -> Self {
        HardeningProfile {
            static_arp: true,
            static_switch: true,
            firewall_lockdown: true,
            isolated_internal: true,
            plc_behind_proxy: true,
            no_cross_iface_arp: true,
            os: OsProfile::CentosMinimal,
            binary: BinaryHardening::deployed_2017(),
        }
    }

    /// Everything off: the commercial / default posture.
    pub fn none() -> Self {
        HardeningProfile {
            static_arp: false,
            static_switch: false,
            firewall_lockdown: false,
            isolated_internal: false,
            plc_behind_proxy: false,
            no_cross_iface_arp: false,
            os: OsProfile::UbuntuDesktop,
            binary: BinaryHardening::deployed_2017(),
        }
    }

    /// Returns `deployed()` with one named switch turned off — the E10
    /// ablation. Valid names: `static_arp`, `static_switch`,
    /// `firewall_lockdown`, `isolated_internal`, `plc_behind_proxy`,
    /// `no_cross_iface_arp`, `os`.
    ///
    /// # Panics
    ///
    /// Panics on an unknown switch name (experiment configuration error).
    pub fn without(switch: &str) -> Self {
        let mut p = Self::deployed();
        match switch {
            "static_arp" => p.static_arp = false,
            "static_switch" => p.static_switch = false,
            "firewall_lockdown" => p.firewall_lockdown = false,
            "isolated_internal" => p.isolated_internal = false,
            "plc_behind_proxy" => p.plc_behind_proxy = false,
            "no_cross_iface_arp" => p.no_cross_iface_arp = false,
            "os" => p.os = OsProfile::UbuntuDesktop,
            other => panic!("unknown hardening switch: {other}"),
        }
        p
    }

    /// All ablatable switch names (drives E10).
    pub fn switch_names() -> &'static [&'static str] {
        &[
            "static_arp",
            "static_switch",
            "firewall_lockdown",
            "isolated_internal",
            "plc_behind_proxy",
            "no_cross_iface_arp",
            "os",
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deployed_has_everything_on() {
        let p = HardeningProfile::deployed();
        assert!(p.static_arp && p.static_switch && p.firewall_lockdown);
        assert!(p.isolated_internal && p.plc_behind_proxy && p.no_cross_iface_arp);
        assert_eq!(p.os, OsProfile::CentosMinimal);
    }

    #[test]
    fn without_toggles_exactly_one() {
        for &name in HardeningProfile::switch_names() {
            let p = HardeningProfile::without(name);
            assert_ne!(
                p,
                HardeningProfile::deployed(),
                "switch {name} had no effect"
            );
        }
        assert!(!HardeningProfile::without("static_arp").static_arp);
        assert_eq!(HardeningProfile::without("os").os, OsProfile::UbuntuDesktop);
    }

    #[test]
    #[should_panic(expected = "unknown hardening switch")]
    fn unknown_switch_panics() {
        let _ = HardeningProfile::without("bogus");
    }
}
