//! E16 closed-loop intrusion response: the feedback policy must beat the
//! blind periodic baseline on time-in-compromised-state and reaction time
//! without giving up availability, and the comparison must be honest —
//! a deliberately over-budget outage trips the invariant checker under
//! *both* policies (the closed loop cannot mask genuine failures).
//!
//! The full campaigns are release-only (a debug-build campaign pair is
//! minutes of wall clock); `ci/check.sh` runs them in release. The
//! negative control stays in the debug budget: no MANA training, a 10 s
//! horizon.

use bench::response_experiment::{e16_beyond_budget, Policy};
#[cfg(not(debug_assertions))]
use bench::response_experiment::{e16_campaign, CampaignRun, Shape};

/// The e16 campaign contract, uniform across shapes and seeds: strictly
/// less ground-truth compromised time, every window reacted to, reaction
/// p99 no worse, availability (invariants + longest stall) no worse.
#[cfg(not(debug_assertions))]
fn assert_feedback_beats_periodic(run: &CampaignRun) {
    let (p, f) = (&run.periodic, &run.feedback);
    assert!(
        f.compromised_us < p.compromised_us,
        "{}: feedback must shrink time-in-compromised-state ({} vs {})",
        run.id,
        f.compromised_us,
        p.compromised_us
    );
    assert_eq!(
        f.missed, 0,
        "{}: feedback missed {} compromise window(s)",
        run.id, f.missed
    );
    assert!(
        f.reacted >= 1 && f.reacted >= p.reacted,
        "{}: feedback reacted to {} windows, periodic {}",
        run.id,
        f.reacted,
        p.reacted
    );
    assert!(
        f.reaction_p99_us() <= p.reaction_p99_us(),
        "{}: feedback reaction p99 {}us worse than periodic {}us",
        run.id,
        f.reaction_p99_us(),
        p.reaction_p99_us()
    );
    assert!(p.all_green, "{}: periodic baseline went RED", run.id);
    assert!(f.all_green, "{}: feedback policy went RED", run.id);
    assert!(
        f.longest_stall_us <= p.longest_stall_us,
        "{}: feedback stalled longer ({}us) than periodic ({}us)",
        run.id,
        f.longest_stall_us,
        p.longest_stall_us
    );
    // Targeted response is also cheaper: fewer node bounces than blind
    // round-robin rejuvenation.
    assert!(
        f.recoveries < p.recoveries,
        "{}: feedback used {} recoveries vs periodic {}",
        run.id,
        f.recoveries,
        p.recoveries
    );
    assert!(
        f.transitions > 0,
        "{}: feedback journaled no degraded-mode transitions",
        run.id
    );
}

#[cfg(not(debug_assertions))]
#[test]
fn implant_flood_feedback_beats_periodic_and_throttles() {
    for seed in [42, 1111] {
        let run = e16_campaign(seed, Shape::ImplantFlood, 1);
        assert_feedback_beats_periodic(&run);
        // The proxy-attributed flood stage must engage the throttle
        // actuator, and the rate cap must actually suppress updates.
        assert!(
            run.feedback.throttles >= 1,
            "seed {seed}: proxy flood never throttled"
        );
        assert!(
            run.feedback.updates_throttled > 0,
            "seed {seed}: throttle engaged but suppressed no updates"
        );
        assert_eq!(run.periodic.throttles, 0, "periodic has no throttle path");
    }
}

#[cfg(not(debug_assertions))]
#[test]
fn double_compromise_feedback_beats_periodic() {
    for seed in [42, 1111] {
        let run = e16_campaign(seed, Shape::DoubleCompromise, 1);
        assert_feedback_beats_periodic(&run);
        // Two sequential implants: the budget guard forces them to be
        // handled one at a time (k = 1), and both must be caught.
        assert_eq!(run.feedback.reacted, 2, "seed {seed}: both implants caught");
    }
}

/// Same seed, same shape, two fresh harness runs: the journals (and hence
/// every actuation, transition, and anomaly score) must be byte-identical.
#[cfg(not(debug_assertions))]
#[test]
fn campaign_is_deterministic_across_runs() {
    let a = e16_campaign(42, Shape::ImplantFlood, 1);
    let b = e16_campaign(42, Shape::ImplantFlood, 1);
    for (x, y) in [(&a.periodic, &b.periodic), (&a.feedback, &b.feedback)] {
        assert_eq!(x.meta.journal_digest, y.meta.journal_digest);
        assert_eq!(x.meta.sim_events, y.meta.sim_events);
        assert_eq!(x.compromised_us, y.compromised_us);
        assert_eq!(x.reaction_us, y.reaction_us);
    }
}

/// Negative control: an over-budget crash plan (f + 2 replicas down) must
/// trip bounded-delay under BOTH policies. If the feedback loop ever made
/// this pass, the E16 "all green" columns would be vacuous.
#[test]
fn over_budget_outage_trips_checker_under_both_policies() {
    for policy in [Policy::Periodic, Policy::Feedback] {
        let reports = e16_beyond_budget(42, policy);
        let bounded_delay = reports
            .iter()
            .find(|r| r.name.contains("bounded-delay"))
            .expect("bounded-delay invariant reported");
        assert!(
            bounded_delay.violations > 0,
            "{:?}: over-budget outage must trip bounded-delay, got {:?}",
            policy,
            reports
        );
    }
}
