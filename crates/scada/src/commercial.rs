//! The commercial SCADA baseline: a primary-backup master pair with
//! unauthenticated protocols, set up "according to NIST-recommended best
//! practices" (§IV) — firewalled, but with no cryptography and the PLC
//! directly on the operations network. This is the system the red team
//! took over in hours.

use bytes::Bytes;
use modbus::{Request, Response, TcpFrame};
use plc::emulator::PLC_MODBUS_PORT;
use simnet::packet::Packet;
use simnet::process::{Context, Process};
use simnet::time::{SimDuration, SimTime};
use simnet::types::{IpAddr, Port};
use simnet::wire::{DecodeError, Reader, Wire, Writer};

/// Port the commercial master listens on (status/commands/heartbeats).
pub const MASTER_PORT: Port = Port(20_000);
/// Port the commercial HMI listens on.
pub const HMI_PORT: Port = Port(20_001);

const POLL_TIMER: u64 = 1;
const HEARTBEAT_CHECK_TIMER: u64 = 2;

/// The unauthenticated status frame the master pushes to the HMI (and to
/// its backup, as a heartbeat). Anyone who can reach the HMI port can
/// forge one — that is the point.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CommercialStatus {
    /// Monotonic status sequence.
    pub seq: u64,
    /// Breaker positions.
    pub positions: Vec<bool>,
    /// Breaker currents.
    pub currents: Vec<u16>,
}

impl Wire for CommercialStatus {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(0xC5); // frame type marker
        w.put_u64(self.seq);
        w.put_u32(self.positions.len() as u32);
        for &p in &self.positions {
            w.put_bool(p);
        }
        w.put_u32(self.currents.len() as u32);
        for &c in &self.currents {
            w.put_u16(c);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        if r.get_u8()? != 0xC5 {
            return Err(DecodeError::new("status marker"));
        }
        let seq = r.get_u64()?;
        let np = r.get_u32()? as usize;
        if np > 4096 {
            return Err(DecodeError::new("positions length"));
        }
        let positions = (0..np).map(|_| r.get_bool()).collect::<Result<_, _>>()?;
        let nc = r.get_u32()? as usize;
        if nc > 4096 {
            return Err(DecodeError::new("currents length"));
        }
        let currents = (0..nc).map(|_| r.get_u16()).collect::<Result<_, _>>()?;
        Ok(CommercialStatus {
            seq,
            positions,
            currents,
        })
    }
}

/// The unauthenticated supervisory command frame (HMI → master).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CommercialCommand {
    /// Breaker index.
    pub breaker: u16,
    /// Desired state.
    pub close: bool,
}

impl Wire for CommercialCommand {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(0xC7);
        w.put_u16(self.breaker);
        w.put_bool(self.close);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        if r.get_u8()? != 0xC7 {
            return Err(DecodeError::new("command marker"));
        }
        Ok(CommercialCommand {
            breaker: r.get_u16()?,
            close: r.get_bool()?,
        })
    }
}

/// Role of a commercial master instance.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MasterRole {
    /// Actively polling and commanding.
    Primary,
    /// Watching heartbeats, ready to take over.
    Backup,
}

/// A commercial SCADA master (one of the primary/backup pair).
pub struct CommercialMaster {
    /// Current role (backup promotes itself on heartbeat loss).
    pub role: MasterRole,
    plc: IpAddr,
    hmi: IpAddr,
    peer: IpAddr,
    poll_interval: SimDuration,
    transaction: u16,
    status_seq: u64,
    breaker_count: u16,
    /// Last positions read from the PLC.
    pub positions: Vec<bool>,
    /// Last currents read.
    pub currents: Vec<u16>,
    last_peer_heartbeat: SimTime,
    /// Commands executed (including any injected by an attacker).
    pub commands_executed: u64,
    /// Failovers performed.
    pub failovers: u64,
    obs: obs::ObsHub,
    trace_node: u32,
}

impl CommercialMaster {
    /// Creates a master. `peer` is the other master of the pair.
    pub fn new(
        role: MasterRole,
        plc: IpAddr,
        hmi: IpAddr,
        peer: IpAddr,
        breaker_count: u16,
    ) -> Self {
        CommercialMaster {
            role,
            plc,
            hmi,
            peer,
            poll_interval: SimDuration::from_millis(100),
            transaction: 0,
            status_seq: 0,
            breaker_count,
            positions: Vec::new(),
            currents: Vec::new(),
            last_peer_heartbeat: SimTime::ZERO,
            commands_executed: 0,
            failovers: 0,
            obs: obs::ObsHub::new(),
            trace_node: 0,
        }
    }

    /// Joins a shared observability hub; `node` labels this master's
    /// trace spans.
    pub fn attach_obs(&mut self, hub: &obs::ObsHub, node: u32) {
        self.obs = hub.clone();
        self.trace_node = node;
    }

    fn send_modbus(&mut self, ctx: &mut Context<'_>, req: Request) {
        self.transaction = self.transaction.wrapping_add(1);
        let frame = TcpFrame::new(self.transaction, 1, req.encode());
        let pkt = Packet::udp(
            ctx.ip(0),
            self.plc,
            MASTER_PORT,
            PLC_MODBUS_PORT,
            Bytes::from(frame.encode()),
        );
        ctx.send(0, pkt);
    }
}

impl Process for CommercialMaster {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.listen(MASTER_PORT);
        self.last_peer_heartbeat = ctx.now();
        ctx.set_timer(self.poll_interval, POLL_TIMER);
        ctx.set_timer(self.poll_interval.saturating_mul(3), HEARTBEAT_CHECK_TIMER);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: u64) {
        match timer {
            POLL_TIMER => {
                if self.role == MasterRole::Primary {
                    self.send_modbus(
                        ctx,
                        Request::ReadDiscreteInputs {
                            address: 0,
                            count: self.breaker_count,
                        },
                    );
                    self.send_modbus(
                        ctx,
                        Request::ReadInputRegisters {
                            address: 0,
                            count: self.breaker_count,
                        },
                    );
                }
                ctx.set_timer(self.poll_interval, POLL_TIMER);
            }
            HEARTBEAT_CHECK_TIMER => {
                if self.role == MasterRole::Backup
                    && ctx.now().since(self.last_peer_heartbeat)
                        > self.poll_interval.saturating_mul(5)
                {
                    self.role = MasterRole::Primary;
                    self.failovers += 1;
                    ctx.log("commercial backup taking over as primary");
                }
                ctx.set_timer(self.poll_interval.saturating_mul(3), HEARTBEAT_CHECK_TIMER);
            }
            _ => {}
        }
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        // Modbus responses from the PLC.
        if pkt.src_port == PLC_MODBUS_PORT {
            if let Some(frame) = TcpFrame::decode(&pkt.payload) {
                let positions_req = Request::ReadDiscreteInputs {
                    address: 0,
                    count: self.breaker_count,
                };
                let currents_req = Request::ReadInputRegisters {
                    address: 0,
                    count: self.breaker_count,
                };
                if let Some(Response::Bits { values, .. }) =
                    Response::decode(&frame.pdu, &positions_req)
                {
                    let changed = self.positions != values;
                    self.positions = values;
                    if changed || self.status_seq == 0 {
                        // The poll observed a field change; the status
                        // push to the HMI continues its trace.
                        let poll =
                            self.obs
                                .instant_span(ctx.trace(), obs::Stage::Poll, self.trace_node);
                        if poll.is_some() {
                            ctx.set_trace(poll);
                        }
                        self.status_seq += 1;
                        let status = CommercialStatus {
                            seq: self.status_seq,
                            positions: self.positions.clone(),
                            currents: self.currents.clone(),
                        };
                        let bytes = status.to_wire();
                        // Unauthenticated push to HMI + heartbeat to peer.
                        let to_hmi =
                            Packet::udp(ctx.ip(0), self.hmi, MASTER_PORT, HMI_PORT, bytes.clone());
                        ctx.send(0, to_hmi);
                    }
                    // Heartbeat to the backup every poll regardless.
                    let hb = CommercialStatus {
                        seq: self.status_seq,
                        positions: self.positions.clone(),
                        currents: self.currents.clone(),
                    };
                    let to_peer =
                        Packet::udp(ctx.ip(0), self.peer, MASTER_PORT, MASTER_PORT, hb.to_wire());
                    ctx.send(0, to_peer);
                } else if let Some(Response::Registers { values, .. }) =
                    Response::decode(&frame.pdu, &currents_req)
                {
                    self.currents = values;
                }
            }
            return;
        }
        // Heartbeat from the peer master.
        if pkt.src_ip == self.peer && pkt.dst_port == MASTER_PORT {
            if CommercialStatus::from_wire(&pkt.payload).is_ok() {
                self.last_peer_heartbeat = ctx.now();
            }
            return;
        }
        // Supervisory command — accepted from ANYONE (no authentication).
        if let Ok(cmd) = CommercialCommand::from_wire(&pkt.payload) {
            if self.role == MasterRole::Primary {
                self.commands_executed += 1;
                self.send_modbus(
                    ctx,
                    Request::WriteSingleCoil {
                        address: cmd.breaker,
                        value: cmd.close,
                    },
                );
            }
        }
    }
}

/// The commercial HMI: displays whatever status frames arrive.
pub struct CommercialHmi {
    master: IpAddr,
    /// Latest displayed positions.
    pub positions: Vec<bool>,
    /// Highest status sequence displayed.
    pub last_seq: u64,
    /// Every applied display update: `(time, seq)`.
    pub update_log: Vec<(SimTime, u64)>,
    /// Status frames accepted from an address other than the configured
    /// master (spoofed updates the operator unknowingly trusted).
    pub spoofed_accepted: u64,
    /// Transitions of the measurement box breaker (§V), `(time, closed)`.
    pub box_transitions: Vec<(SimTime, bool)>,
    /// Breaker index driving the measurement box.
    pub sensor_breaker: u16,
    obs: obs::ObsHub,
    trace_node: u32,
}

impl CommercialHmi {
    /// Creates an HMI expecting status from `master`.
    pub fn new(master: IpAddr) -> Self {
        CommercialHmi {
            master,
            positions: Vec::new(),
            last_seq: 0,
            update_log: Vec::new(),
            spoofed_accepted: 0,
            box_transitions: Vec::new(),
            sensor_breaker: 0,
            obs: obs::ObsHub::new(),
            trace_node: 0,
        }
    }

    /// Joins a shared observability hub; `node` labels this HMI's
    /// trace spans.
    pub fn attach_obs(&mut self, hub: &obs::ObsHub, node: u32) {
        self.obs = hub.clone();
        self.trace_node = node;
    }

    /// Sends an operator command toward the (believed) master.
    pub fn issue_command(&self, ctx: &mut Context<'_>, breaker: u16, close: bool) {
        let cmd = CommercialCommand { breaker, close };
        let pkt = Packet::udp(ctx.ip(0), self.master, HMI_PORT, MASTER_PORT, cmd.to_wire());
        ctx.send(0, pkt);
    }
}

impl Process for CommercialHmi {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.listen(HMI_PORT);
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        let Ok(status) = CommercialStatus::from_wire(&pkt.payload) else {
            return;
        };
        // No authentication: the HMI has no way to tell master from forger.
        if pkt.src_ip != self.master {
            self.spoofed_accepted += 1;
        }
        if status.seq <= self.last_seq && pkt.src_ip == self.master {
            return;
        }
        self.last_seq = status.seq.max(self.last_seq);
        let old_box = self.positions.get(self.sensor_breaker as usize).copied();
        self.positions = status.positions;
        self.update_log.push((ctx.now(), status.seq));
        let new_box = self.positions.get(self.sensor_breaker as usize).copied();
        if let (Some(n), o) = (new_box, old_box) {
            if o != Some(n) {
                self.box_transitions.push((ctx.now(), n));
                self.obs
                    .instant_span(ctx.trace(), obs::Stage::Render, self.trace_node);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plc::emulator::PlcEmulator;
    use plc::topology::Scenario;
    use simnet::{InterfaceSpec, LinkSpec, NodeSpec, Simulation, SwitchMode};

    const PLC_IP: IpAddr = IpAddr::new(10, 2, 0, 1);
    const PRIMARY_IP: IpAddr = IpAddr::new(10, 2, 0, 2);
    const BACKUP_IP: IpAddr = IpAddr::new(10, 2, 0, 3);
    const HMI_IP: IpAddr = IpAddr::new(10, 2, 0, 4);

    fn build() -> (
        Simulation,
        simnet::NodeId,
        simnet::NodeId,
        simnet::NodeId,
        simnet::NodeId,
    ) {
        let mut sim = Simulation::new(42);
        let plc = sim.add_node(NodeSpec::new(
            "plc",
            vec![InterfaceSpec::dynamic(PLC_IP)],
            Box::new(PlcEmulator::new(Scenario::RedTeamDistribution)),
        ));
        let primary = sim.add_node(NodeSpec::new(
            "primary",
            vec![InterfaceSpec::dynamic(PRIMARY_IP)],
            Box::new(CommercialMaster::new(
                MasterRole::Primary,
                PLC_IP,
                HMI_IP,
                BACKUP_IP,
                7,
            )),
        ));
        let backup = sim.add_node(NodeSpec::new(
            "backup",
            vec![InterfaceSpec::dynamic(BACKUP_IP)],
            Box::new(CommercialMaster::new(
                MasterRole::Backup,
                PLC_IP,
                HMI_IP,
                PRIMARY_IP,
                7,
            )),
        ));
        let hmi = sim.add_node(NodeSpec::new(
            "hmi",
            vec![InterfaceSpec::dynamic(HMI_IP)],
            Box::new(CommercialHmi::new(PRIMARY_IP)),
        ));
        let sw = sim.add_switch(8, SwitchMode::Learning);
        sim.connect(plc, 0, sw, 0, LinkSpec::lan());
        sim.connect(primary, 0, sw, 1, LinkSpec::lan());
        sim.connect(backup, 0, sw, 2, LinkSpec::lan());
        sim.connect(hmi, 0, sw, 3, LinkSpec::lan());
        (sim, plc, primary, backup, hmi)
    }

    #[test]
    fn poll_loop_reaches_hmi() {
        let (mut sim, _plc, _primary, _backup, hmi) = build();
        sim.run_for(SimDuration::from_secs(2));
        let h = sim.process_ref::<CommercialHmi>(hmi).expect("hmi");
        assert_eq!(h.positions, vec![true; 7], "all breakers closed initially");
        assert!(h.last_seq >= 1);
    }

    #[test]
    fn failover_when_primary_dies() {
        let (mut sim, _plc, primary, backup, hmi) = build();
        sim.run_for(SimDuration::from_secs(1));
        sim.set_node_up(primary, false);
        sim.run_for(SimDuration::from_secs(3));
        let b = sim.process_ref::<CommercialMaster>(backup).expect("backup");
        assert_eq!(b.role, MasterRole::Primary);
        assert_eq!(b.failovers, 1);
        let _ = hmi;
    }

    #[test]
    fn unauthenticated_command_from_anyone_executes() {
        // An "operator" that is actually an attacker box on the network.
        struct Attacker {
            master: IpAddr,
        }
        impl Process for Attacker {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                let cmd = CommercialCommand {
                    breaker: 0,
                    close: false,
                };
                let pkt = Packet::udp(
                    ctx.ip(0),
                    self.master,
                    Port(6666),
                    MASTER_PORT,
                    cmd.to_wire(),
                );
                ctx.send(0, pkt);
            }
        }
        let (mut sim, plc, primary, _backup, _hmi) = build();
        let atk = sim.add_node(NodeSpec::new(
            "attacker",
            vec![InterfaceSpec::dynamic(IpAddr::new(10, 2, 0, 66))],
            Box::new(Attacker { master: PRIMARY_IP }),
        ));
        // Need a free port on the switch — rebuild with an extra port used.
        let sw = simnet::SwitchId(0);
        sim.connect(atk, 0, sw, 4, LinkSpec::lan());
        sim.run_for(SimDuration::from_secs(2));
        let m = sim
            .process_ref::<CommercialMaster>(primary)
            .expect("master");
        assert!(m.commands_executed >= 1, "attacker command executed");
        let p = sim.process_ref::<PlcEmulator>(plc).expect("plc");
        assert!(!p.positions()[0], "breaker B10-1 opened by attacker");
    }

    #[test]
    fn spoofed_status_accepted_by_hmi() {
        struct Spoofer {
            hmi: IpAddr,
        }
        impl Process for Spoofer {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                // Tell the operator everything is fine (all closed) with a
                // high sequence so it sticks.
                let status = CommercialStatus {
                    seq: 10_000,
                    positions: vec![true; 7],
                    currents: vec![0; 7],
                };
                let pkt = Packet::udp(ctx.ip(0), self.hmi, Port(6666), HMI_PORT, status.to_wire());
                ctx.send(0, pkt);
            }
        }
        let (mut sim, _plc, _primary, _backup, hmi) = build();
        let atk = sim.add_node(NodeSpec::new(
            "spoofer",
            vec![InterfaceSpec::dynamic(IpAddr::new(10, 2, 0, 66))],
            Box::new(Spoofer { hmi: HMI_IP }),
        ));
        sim.connect(atk, 0, simnet::SwitchId(0), 4, LinkSpec::lan());
        sim.run_for(SimDuration::from_secs(1));
        let h = sim.process_ref::<CommercialHmi>(hmi).expect("hmi");
        assert!(h.spoofed_accepted >= 1, "HMI displayed forged status");
        assert_eq!(h.last_seq, 10_000);
    }
}
