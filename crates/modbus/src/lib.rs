//! A Modbus protocol implementation (the subset industrial breaker PLCs
//! speak, and exactly what the Spire PLC proxy uses on its direct cable).
//!
//! The paper's deployments talk Modbus between the PLC proxy and the PLC
//! (§II, §IV-A, §V); the red team's decisive first win against the
//! commercial system was dumping and re-uploading PLC configuration over
//! this *unauthenticated* protocol. This crate therefore implements the
//! protocol faithfully enough that (a) the proxy/PLC pairing works over a
//! simulated serial cable or TCP, and (b) an attacker with network reach
//! can speak it just as easily as the legitimate master — that asymmetry
//! *is* the experiment.
//!
//! A DNP3 subset (data-link framing with per-block CRCs, integrity polls,
//! direct operates) lives in [`dnp3`] — the paper names both protocols.
//!
//! Supported function codes: 0x01 Read Coils, 0x02 Read Discrete Inputs,
//! 0x03 Read Holding Registers, 0x04 Read Input Registers, 0x05 Write
//! Single Coil, 0x06 Write Single Register, 0x0F Write Multiple Coils,
//! 0x10 Write Multiple Registers, plus 0x2B (device identification — the
//! reconnaissance half of the "memory dump" attack) and a vendor-style
//! 0x5A configuration upload/download modeled on the maintenance backdoor
//! the red team exploited.
//!
//! # Examples
//!
//! ```
//! use modbus::{Request, Response, DataStore, execute};
//!
//! let mut store = DataStore::new(16, 16);
//! let resp = execute(&Request::WriteSingleCoil { address: 3, value: true }, &mut store);
//! assert_eq!(resp, Response::WriteSingleCoil { address: 3, value: true });
//! assert_eq!(store.coil(3), Some(true));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc;
pub mod dnp3;
pub mod frame;
pub mod pdu;
pub mod server;

pub use frame::{MbapHeader, RtuFrame, TcpFrame};
pub use pdu::{ExceptionCode, Request, Response};
pub use server::{execute, execute_traced, is_write, DataStore};
