//! A k-means anomaly detector — MANA's second model family.
//!
//! The paper describes "machine learning and anomaly-based intrusion
//! detection methods" (plural); alongside the per-feature Gaussian model,
//! this clusters the baseline's feature vectors (z-normalized) and scores
//! a window by its distance to the nearest centroid, in units of that
//! cluster's typical spread. SCADA baselines have a small number of
//! traffic modes (poll rounds, heartbeats, idle), which k-means captures
//! directly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::features::{FeatureVector, FEATURE_COUNT};

/// A trained k-means model.
#[derive(Clone, Debug)]
pub struct KMeansModel {
    /// Normalization means.
    mean: [f64; FEATURE_COUNT],
    /// Normalization standard deviations (floored).
    std: [f64; FEATURE_COUNT],
    /// Cluster centroids in normalized space.
    centroids: Vec<[f64; FEATURE_COUNT]>,
    /// Per-cluster mean distance of training members (spread).
    spread: Vec<f64>,
    /// Alert threshold in spread units.
    pub distance_threshold: f64,
}

fn normalize(
    v: &[f64; FEATURE_COUNT],
    mean: &[f64; FEATURE_COUNT],
    std: &[f64; FEATURE_COUNT],
) -> [f64; FEATURE_COUNT] {
    let mut out = [0.0; FEATURE_COUNT];
    for i in 0..FEATURE_COUNT {
        out[i] = (v[i] - mean[i]) / std[i];
    }
    out
}

fn dist(a: &[f64; FEATURE_COUNT], b: &[f64; FEATURE_COUNT]) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

impl KMeansModel {
    /// Fits `k` clusters on baseline windows with `iterations` of Lloyd's
    /// algorithm, seeded deterministically.
    ///
    /// # Panics
    ///
    /// Panics if `windows` is empty or `k == 0`.
    pub fn train(windows: &[FeatureVector], k: usize, iterations: usize, seed: u64) -> Self {
        assert!(!windows.is_empty(), "cannot train on an empty baseline");
        assert!(k > 0, "k must be positive");
        let k = k.min(windows.len());
        // Normalization statistics.
        let n = windows.len() as f64;
        let mut mean = [0.0; FEATURE_COUNT];
        for w in windows {
            for (m, &v) in mean.iter_mut().zip(w.values.iter()) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut std = [0.0; FEATURE_COUNT];
        for w in windows {
            for i in 0..FEATURE_COUNT {
                let d = w.values[i] - mean[i];
                std[i] += d * d;
            }
        }
        for s in &mut std {
            *s = (*s / n).sqrt().max(0.5);
        }
        let points: Vec<[f64; FEATURE_COUNT]> = windows
            .iter()
            .map(|w| normalize(&w.values, &mean, &std))
            .collect();

        // k-means++ style seeding (greedy farthest point, deterministic).
        let mut rng = StdRng::seed_from_u64(seed);
        let mut centroids = vec![points[rng.gen_range(0..points.len())]];
        while centroids.len() < k {
            let (far_idx, _) = points
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    let d = centroids
                        .iter()
                        .map(|c| dist(p, c))
                        .fold(f64::MAX, f64::min);
                    (i, d)
                })
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
                .expect("nonempty");
            centroids.push(points[far_idx]);
        }

        // Lloyd iterations.
        let mut assignment = vec![0usize; points.len()];
        for _ in 0..iterations {
            for (i, p) in points.iter().enumerate() {
                assignment[i] = centroids
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| dist(p, a).partial_cmp(&dist(p, b)).expect("finite"))
                    .map(|(j, _)| j)
                    .expect("nonempty");
            }
            let mut sums = vec![[0.0; FEATURE_COUNT]; centroids.len()];
            let mut counts = vec![0usize; centroids.len()];
            for (i, p) in points.iter().enumerate() {
                counts[assignment[i]] += 1;
                for f in 0..FEATURE_COUNT {
                    sums[assignment[i]][f] += p[f];
                }
            }
            for (j, c) in centroids.iter_mut().enumerate() {
                if counts[j] > 0 {
                    for f in 0..FEATURE_COUNT {
                        c[f] = sums[j][f] / counts[j] as f64;
                    }
                }
            }
        }
        // Spread per cluster (floored so empty/tight clusters stay sane).
        let mut spread = vec![0.0f64; centroids.len()];
        let mut counts = vec![0usize; centroids.len()];
        for (i, p) in points.iter().enumerate() {
            spread[assignment[i]] += dist(p, &centroids[assignment[i]]);
            counts[assignment[i]] += 1;
        }
        for (s, &c) in spread.iter_mut().zip(counts.iter()) {
            *s = if c > 0 {
                (*s / c as f64).max(0.25)
            } else {
                0.25
            };
        }
        KMeansModel {
            mean,
            std,
            centroids,
            spread,
            distance_threshold: 8.0,
        }
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Anomaly score: distance to the nearest centroid in units of that
    /// cluster's training spread.
    pub fn score(&self, window: &FeatureVector) -> f64 {
        let p = normalize(&window.values, &self.mean, &self.std);
        self.centroids
            .iter()
            .zip(self.spread.iter())
            .map(|(c, s)| dist(&p, c) / s)
            .fold(f64::MAX, f64::min)
    }

    /// Whether a window crosses the alert threshold.
    pub fn is_anomalous(&self, window: &FeatureVector) -> bool {
        self.score(window) >= self.distance_threshold
    }
}

/// One point of a ROC curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RocPoint {
    /// The score threshold.
    pub threshold: f64,
    /// True-positive rate at that threshold.
    pub tpr: f64,
    /// False-positive rate at that threshold.
    pub fpr: f64,
}

/// Computes a ROC curve from `(score, is_attack)` labeled samples, and
/// the area under it (trapezoidal).
pub fn roc_curve(samples: &[(f64, bool)]) -> (Vec<RocPoint>, f64) {
    let positives = samples.iter().filter(|(_, a)| *a).count().max(1) as f64;
    let negatives = samples.iter().filter(|(_, a)| !*a).count().max(1) as f64;
    let mut thresholds: Vec<f64> = samples.iter().map(|(s, _)| *s).collect();
    thresholds.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
    thresholds.dedup();
    let mut points = Vec::with_capacity(thresholds.len() + 2);
    points.push(RocPoint {
        threshold: f64::INFINITY,
        tpr: 0.0,
        fpr: 0.0,
    });
    for &t in &thresholds {
        let tp = samples.iter().filter(|(s, a)| *a && *s >= t).count() as f64;
        let fp = samples.iter().filter(|(s, a)| !*a && *s >= t).count() as f64;
        points.push(RocPoint {
            threshold: t,
            tpr: tp / positives,
            fpr: fp / negatives,
        });
    }
    // AUC by trapezoid over (fpr, tpr).
    let mut auc = 0.0;
    for w in points.windows(2) {
        auc += (w[1].fpr - w[0].fpr) * (w[1].tpr + w[0].tpr) / 2.0;
    }
    (points, auc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::time::SimTime;

    fn window(values: [f64; FEATURE_COUNT]) -> FeatureVector {
        FeatureVector {
            window_start: SimTime(0),
            values,
        }
    }

    /// A bimodal baseline: poll rounds and idle windows.
    fn baseline() -> Vec<FeatureVector> {
        let mut out = Vec::new();
        for i in 0..100 {
            let j = (i % 5) as f64;
            out.push(window([
                20.0 + j,
                2_000.0 + 10.0 * j,
                4.0,
                3.0,
                0.0,
                1.0,
                1.0,
                2.0,
                100.0,
                6.0,
            ]));
            out.push(window([
                2.0,
                120.0 + j,
                1.0,
                1.0,
                0.0,
                0.0,
                0.0,
                0.0,
                60.0,
                1.0,
            ]));
        }
        out
    }

    #[test]
    fn baseline_modes_score_low() {
        let model = KMeansModel::train(&baseline(), 3, 10, 1);
        assert_eq!(model.k(), 3);
        for w in baseline() {
            assert!(
                !model.is_anomalous(&w),
                "baseline flagged with score {}",
                model.score(&w)
            );
        }
    }

    #[test]
    fn attack_windows_score_high() {
        let model = KMeansModel::train(&baseline(), 3, 10, 1);
        let scan = window([
            220.0, 9_000.0, 5.0, 200.0, 200.0, 1.0, 1.0, 2.0, 42.0, 205.0,
        ]);
        let flood = window([
            50_000.0,
            60_000_000.0,
            4.0,
            3.0,
            0.0,
            1.0,
            1.0,
            2.0,
            1_200.0,
            6.0,
        ]);
        assert!(
            model.is_anomalous(&scan),
            "scan score {}",
            model.score(&scan)
        );
        assert!(
            model.is_anomalous(&flood),
            "flood score {}",
            model.score(&flood)
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = KMeansModel::train(&baseline(), 3, 10, 7);
        let b = KMeansModel::train(&baseline(), 3, 10, 7);
        let w = window([20.0, 2_000.0, 4.0, 3.0, 0.0, 1.0, 1.0, 2.0, 100.0, 6.0]);
        assert_eq!(a.score(&w), b.score(&w));
    }

    #[test]
    fn k_capped_by_sample_count() {
        let tiny = vec![window([1.0; FEATURE_COUNT]), window([2.0; FEATURE_COUNT])];
        let model = KMeansModel::train(&tiny, 8, 5, 1);
        assert!(model.k() <= 2);
    }

    #[test]
    fn roc_perfect_separation_gives_auc_one() {
        let samples: Vec<(f64, bool)> = (0..50)
            .map(|i| (i as f64, false))
            .chain((100..150).map(|i| (i as f64, true)))
            .collect();
        let (points, auc) = roc_curve(&samples);
        assert!((auc - 1.0).abs() < 1e-9, "auc = {auc}");
        assert_eq!(points.first().map(|p| (p.tpr, p.fpr)), Some((0.0, 0.0)));
        let last = points.last().expect("nonempty");
        assert_eq!((last.tpr, last.fpr), (1.0, 1.0));
    }

    #[test]
    fn roc_random_scores_give_auc_near_half() {
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let samples: Vec<(f64, bool)> = (0..2000).map(|i| (rng.gen::<f64>(), i % 2 == 0)).collect();
        let (_, auc) = roc_curve(&samples);
        assert!((auc - 0.5).abs() < 0.05, "auc = {auc}");
    }

    #[test]
    #[should_panic(expected = "empty baseline")]
    fn empty_training_panics() {
        let _ = KMeansModel::train(&[], 3, 5, 1);
    }
}
