//! Deterministic continuous profiler: simulated-cost attribution.
//!
//! Wall-clock profilers sample a real CPU; this simulator has none, so
//! the profiler charges *simulated* costs instead. The schedulers
//! (the simnet event loop and the Prime cluster harness) attribute
//! every inter-event gap of simulated time to exactly one phase stack —
//! the stack of the event that ends the gap — so the per-stack time
//! rows **telescope**: they sum to the total simulated time, exactly,
//! by construction. Components ride along on the same stacks with
//! commuting columns (message bytes, sign/verify/HMAC operation
//! counts, event counts) that need not telescope.
//!
//! The accumulator is thread-local and entirely outside the [`crate::ObsHub`]
//! journal, so enabling it cannot perturb a run's digest; it does force
//! the sequential scheduler (the parallel shards never see the
//! enabling thread's flag, and the charges themselves are
//! order-sensitive only in wall-clock, never in content — see
//! [`Profile::charge`], which is commutative).
//!
//! Output is a folded-stack text ([`Profile::folded`]) consumable by
//! standard flamegraph tooling (`flamegraph.pl`, speedscope, inferno),
//! plus an exact attribution table rendered by
//! [`crate::report::attribution_markdown`].

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;

/// A crypto operation class charged to a phase stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CryptoOp {
    /// Public-key signature creation.
    Sign,
    /// Public-key signature verification (cache misses only — memoized
    /// verdicts cost nothing and are not charged).
    Verify,
    /// Symmetric seal/open (Spines link HMAC).
    Hmac,
}

/// Additive cost cell for one phase stack. All fields commute under
/// addition, so accumulation order never changes the result.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseCost {
    /// Simulated time charged, microseconds. Only the schedulers charge
    /// this column, and they charge every gap exactly once, so across
    /// all rows it telescopes to total simulated time.
    pub time_us: u64,
    /// Message payload bytes attributed to the stack.
    pub bytes: u64,
    /// Signature creations.
    pub sign: u64,
    /// Signature verifications (cache misses).
    pub verify: u64,
    /// HMAC seal/open operations.
    pub hmac: u64,
    /// Events (messages dispatched, frames forwarded, executions).
    pub events: u64,
}

impl PhaseCost {
    /// Adds `other` into `self` field-wise.
    pub fn add(&mut self, other: &PhaseCost) {
        self.time_us += other.time_us;
        self.bytes += other.bytes;
        self.sign += other.sign;
        self.verify += other.verify;
        self.hmac += other.hmac;
        self.events += other.events;
    }
}

/// A profile: phase stack (`;`-joined, flamegraph convention) → cost.
///
/// Keyed by a `BTreeMap` so iteration, [`Profile::folded`] output, and
/// equality are canonical regardless of the order charges arrived in.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Profile {
    rows: BTreeMap<String, PhaseCost>,
}

impl Profile {
    /// An empty profile.
    pub fn new() -> Self {
        Profile::default()
    }

    /// Adds `cost` to `stack`'s row. Addition commutes, so any
    /// interleaving of the same multiset of charges yields the same
    /// profile — the property the interleaving proptest pins.
    pub fn charge(&mut self, stack: &str, cost: PhaseCost) {
        if let Some(row) = self.rows.get_mut(stack) {
            row.add(&cost);
        } else {
            self.rows.insert(stack.to_string(), cost);
        }
    }

    /// Merges another profile in (row-wise addition).
    pub fn merge(&mut self, other: &Profile) {
        for (stack, cost) in &other.rows {
            self.charge(stack, *cost);
        }
    }

    /// Iterates rows in canonical (lexicographic stack) order.
    pub fn rows(&self) -> impl Iterator<Item = (&str, &PhaseCost)> {
        self.rows.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of distinct stacks.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no charges have landed.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Sum of every row (the telescoped totals).
    pub fn total(&self) -> PhaseCost {
        let mut t = PhaseCost::default();
        for cost in self.rows.values() {
            t.add(cost);
        }
        t
    }

    /// Total simulated time charged, microseconds. Equals the run's
    /// elapsed simulated time exactly when a scheduler charged every
    /// gap (the telescoping invariant).
    pub fn total_time_us(&self) -> u64 {
        self.rows.values().map(|c| c.time_us).sum()
    }

    /// Folded-stack text: one `stack value` line per row (value =
    /// simulated microseconds), in canonical order. Feed to
    /// `flamegraph.pl`, inferno, or speedscope.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for (stack, cost) in &self.rows {
            out.push_str(stack);
            out.push(' ');
            out.push_str(&cost.time_us.to_string());
            out.push('\n');
        }
        out
    }
}

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static HEALTH_EVERY: Cell<u64> = const { Cell::new(0) };
    static CURRENT: RefCell<Profile> = RefCell::new(Profile::new());
}

/// Enables/disables cost attribution on this thread. Charges made while
/// disabled are dropped at the call site (one branch). Profiling state
/// is thread-local by design: the simulation drives on one thread, and
/// parallel shard workers (which would not see this flag) are excluded
/// by the scheduler's eligibility gate whenever profiling is on.
pub fn set_enabled(on: bool) {
    ENABLED.with(|e| e.set(on));
}

/// Whether cost attribution is live on this thread.
pub fn enabled() -> bool {
    ENABLED.with(Cell::get)
}

/// Sets the health-snapshot cadence: every `n` protocol ticks each
/// replica journals a [`crate::Event::ReplicaHealth`] record and each
/// replica host journals per-link [`crate::Event::LinkHealth`] records.
/// `0` (the default) disables snapshots, keeping journals — and
/// therefore golden digests — byte-identical to historical runs.
pub fn set_health_every(n: u64) {
    HEALTH_EVERY.with(|h| h.set(n));
}

/// The health-snapshot cadence in ticks (`0` = off).
pub fn health_every() -> u64 {
    HEALTH_EVERY.with(Cell::get)
}

/// Charges a gap of simulated time (schedulers only — see the
/// telescoping contract on [`PhaseCost::time_us`]).
pub fn charge_time(stack: &str, time_us: u64) {
    if !enabled() {
        return;
    }
    CURRENT.with(|p| {
        p.borrow_mut().charge(
            stack,
            PhaseCost {
                time_us,
                ..PhaseCost::default()
            },
        )
    });
}

/// Charges `n` events and `bytes` payload bytes to a stack.
pub fn charge_msg(stack: &str, events: u64, bytes: u64) {
    if !enabled() {
        return;
    }
    CURRENT.with(|p| {
        p.borrow_mut().charge(
            stack,
            PhaseCost {
                bytes,
                events,
                ..PhaseCost::default()
            },
        )
    });
}

/// Charges `n` crypto operations of class `op` to a stack.
pub fn charge_crypto(stack: &str, op: CryptoOp, n: u64) {
    if n == 0 || !enabled() {
        return;
    }
    let mut cost = PhaseCost::default();
    match op {
        CryptoOp::Sign => cost.sign = n,
        CryptoOp::Verify => cost.verify = n,
        CryptoOp::Hmac => cost.hmac = n,
    }
    CURRENT.with(|p| p.borrow_mut().charge(stack, cost));
}

/// Drains and returns this thread's accumulated profile.
pub fn take() -> Profile {
    CURRENT.with(|p| std::mem::take(&mut *p.borrow_mut()))
}

/// Runs `f` and returns its result alongside the profile of exactly the
/// charges made during `f`. Charges accumulated before the call are
/// preserved, and `f`'s charges remain in the thread total afterwards —
/// so a caller can carve out a per-step profile without losing the
/// run-wide aggregate.
pub fn capture<T>(f: impl FnOnce() -> T) -> (T, Profile) {
    let before = take();
    let out = f();
    let delta = CURRENT.with(|p| {
        let mut cur = p.borrow_mut();
        let delta = cur.clone();
        let mut restored = before;
        restored.merge(&delta);
        *cur = restored;
        delta
    });
    (out, delta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_additively() {
        let mut p = Profile::new();
        p.charge(
            "prime;order",
            PhaseCost {
                time_us: 10,
                events: 1,
                ..PhaseCost::default()
            },
        );
        p.charge(
            "prime;order",
            PhaseCost {
                time_us: 5,
                sign: 2,
                ..PhaseCost::default()
            },
        );
        let rows: Vec<_> = p.rows().collect();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1.time_us, 15);
        assert_eq!(rows[0].1.events, 1);
        assert_eq!(rows[0].1.sign, 2);
        assert_eq!(p.total_time_us(), 15);
    }

    #[test]
    fn merge_commutes() {
        let mk = |stack: &str, us: u64| {
            let mut p = Profile::new();
            p.charge(
                stack,
                PhaseCost {
                    time_us: us,
                    ..PhaseCost::default()
                },
            );
            p
        };
        let (a, b) = (mk("x", 3), mk("y", 7));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.total_time_us(), 10);
    }

    #[test]
    fn folded_output_is_canonical_and_parseable() {
        let mut p = Profile::new();
        p.charge(
            "b;leaf",
            PhaseCost {
                time_us: 2,
                ..PhaseCost::default()
            },
        );
        p.charge(
            "a;leaf",
            PhaseCost {
                time_us: 1,
                ..PhaseCost::default()
            },
        );
        assert_eq!(p.folded(), "a;leaf 1\nb;leaf 2\n");
    }

    #[test]
    fn thread_local_capture_preserves_outer_charges() {
        set_enabled(true);
        let _ = take();
        charge_time("outer", 5);
        let ((), inner) = capture(|| charge_time("inner", 7));
        assert_eq!(inner.total_time_us(), 7);
        let all = take();
        assert_eq!(all.total_time_us(), 12);
        assert_eq!(all.len(), 2);
        set_enabled(false);
    }

    #[test]
    fn disabled_charges_are_dropped() {
        set_enabled(false);
        let _ = take();
        charge_time("x", 100);
        charge_msg("x", 1, 64);
        charge_crypto("x", CryptoOp::Sign, 1);
        assert!(take().is_empty());
    }
}
