//! Experiments E4 and E5: the power-plant test deployment (§V).

use diversity::recovery::RecoveryScheduler;
use plc::topology::Scenario;
use prime::application::Application;
use prime::replica::Timing;
use prime::types::Config as PrimeConfig;
use redteam::lab::CommercialLab;
use scada::commercial::CommercialHmi;
use simnet::time::SimDuration;
use spire::config::SpireConfig;
use spire::deploy::Deployment;
use spire::hardening::HardeningProfile;
use spire::latency::{measure_spire, summarize, LatencySummary, Sample};

fn fast_timing() -> Timing {
    Timing {
        aru_interval: SimDuration::from_millis(10),
        pp_interval: SimDuration::from_millis(10),
        suspect_timeout: SimDuration::from_millis(2_000),
        checkpoint_interval: 20,
        catchup_timeout: SimDuration::from_millis(300),
    }
}

/// E4 result: six (compressed) days of continuous plant operation.
#[derive(Clone, Debug)]
pub struct PlantRun {
    /// Simulated seconds per "deployment day" (time compression factor).
    pub seconds_per_day: u64,
    /// Days simulated.
    pub days: u64,
    /// Proactive recoveries completed.
    pub recoveries: u64,
    /// Minimum executed update count across healthy replicas at the end.
    pub min_executed: u64,
    /// HMI frames applied across all three HMIs.
    pub hmi_frames: u64,
    /// View changes observed (0 = leader never faltered).
    pub view_changes: u64,
    /// Longest interval between consecutive HMI-0 display updates.
    pub longest_display_gap: SimDuration,
    /// Whether all healthy replicas ended with identical state digests.
    pub replicas_consistent: bool,
    /// Full metrics/journal snapshot of the run.
    pub obs: obs::ObsReport,
}

/// E4 — the plant deployment: 6 replicas (f=1, k=1), the full 17-PLC
/// scenario set, breaker cycle running, periodic proactive recovery, six
/// compressed days of continuous operation.
///
/// Time compression: one deployment "day" is `seconds_per_day` simulated
/// seconds (the event patterns — polls, cycle flips, recoveries — keep
/// their relative cadence; see EXPERIMENTS.md).
pub fn e4_plant_deployment(seed: u64, days: u64, seconds_per_day: u64) -> PlantRun {
    e4_plant_deployment_traced(seed, days, seconds_per_day, false)
}

/// [`e4_plant_deployment`] with the journal optionally echoed live to
/// stdout (`spire-sim e4 --trace`).
pub fn e4_plant_deployment_traced(
    seed: u64,
    days: u64,
    seconds_per_day: u64,
    trace: bool,
) -> PlantRun {
    // Full plant configuration but with the emulated fleet reduced to two
    // distribution and two generation PLCs so six days stay tractable; the
    // real + emulated mix is preserved.
    let mut cfg = SpireConfig::plant();
    cfg.proxies.truncate(5);
    cfg.hmis = 3;
    // The deployment's LAN links are lossless with fixed latency, so the
    // seed must enter through the workload: a seed-derived sub-millisecond
    // phase on the cycle period makes distinct seeds produce distinct
    // event streams (and journal digests) while identical seeds reproduce
    // byte-identically.
    let period = SimDuration::from_micros(700_000 + seed % 1_000);
    let cfg = cfg.with_cycle(Scenario::PlantSubset, period, 0);
    let mut d = Deployment::build(cfg, HardeningProfile::deployed(), seed);
    d.obs.set_trace(trace);
    for i in 0..6 {
        d.replica_mut(i).set_timing(fast_timing());
    }
    // One proactive recovery per simulated "day-sixth", k = 1, downtime 2 s.
    let day = SimDuration::from_secs(seconds_per_day);
    let interval = SimDuration::from_secs((seconds_per_day / 6).max(4));
    let mut scheduler = RecoveryScheduler::new(6, 1, interval, SimDuration::from_secs(2));
    d.run_with_recovery(day.saturating_mul(days), &mut scheduler);
    d.run_for(SimDuration::from_secs(5));

    let min_executed = (0..6)
        .map(|i| d.replica(i).replica.exec_seq())
        .min()
        .unwrap_or(0);
    let hmi_frames: u64 = (0..3)
        .map(|h| d.obs.counter_value(&format!("hmi.{h}.frames_applied")))
        .sum();
    let view_changes =
        d.obs
            .journal_count(|e| matches!(e, obs::Event::ViewChange { .. })) as u64;
    let digests: Vec<_> = (0..6)
        .map(|i| {
            (
                d.replica(i).replica.exec_seq(),
                d.replica(i).replica.app().digest(),
            )
        })
        .collect();
    let max_exec = digests.iter().map(|(e, _)| *e).max().unwrap_or(0);
    let at_head: Vec<_> = digests.iter().filter(|(e, _)| *e == max_exec).collect();
    let replicas_consistent = at_head.windows(2).all(|w| w[0].1 == w[1].1);

    // Longest gap between display updates on HMI 0.
    let log = &d.hmi(0).hmi.update_log;
    let mut longest = SimDuration::ZERO;
    for w in log.windows(2) {
        let gap = w[1].0.since(w[0].0);
        if gap > longest {
            longest = gap;
        }
    }
    PlantRun {
        seconds_per_day,
        days,
        recoveries: scheduler.completed,
        min_executed,
        hmi_frames,
        view_changes,
        longest_display_gap: longest,
        replicas_consistent,
        obs: d.obs.report(),
    }
}

/// E5 result: Spire vs. commercial reaction-time distributions.
#[derive(Clone, Debug)]
pub struct ReactionTimes {
    /// Spire's distribution.
    pub spire: LatencySummary,
    /// The commercial system's distribution.
    pub commercial: LatencySummary,
    /// The plant's timing requirement used for the verdict (200 ms, a
    /// typical HMI-refresh requirement; the paper gives no number).
    pub requirement: SimDuration,
    /// Metrics snapshot of the Spire-side run, including the
    /// `e5.spire.reaction_us` and `e5.commercial.reaction_us` histograms.
    pub obs: obs::ObsReport,
}

impl ReactionTimes {
    /// Whether Spire met the requirement (the paper's reported outcome).
    pub fn spire_meets_requirement(&self) -> bool {
        self.spire.median <= self.requirement
    }

    /// Whether Spire beat the commercial system (the paper's headline).
    pub fn spire_faster(&self) -> bool {
        self.spire.median < self.commercial.median
    }
}

/// E5 — the measurement device: flip a breaker, time the HMI update, for
/// both systems.
pub fn e5_reaction_time(seed: u64, flips: usize) -> ReactionTimes {
    // Spire side: fast polling, plant subset.
    let cfg = SpireConfig::minimal(PrimeConfig::plant(), Scenario::PlantSubset);
    let mut d = Deployment::build(cfg, HardeningProfile::deployed(), seed);
    for i in 0..6 {
        d.replica_mut(i).set_timing(fast_timing());
    }
    // The §V measurement used a dedicated fast poll; 20 ms keeps the
    // proxy's detection latency small relative to ordering.
    d.proxy_mut(0)
        .set_poll_interval(SimDuration::from_millis(20));
    d.proxy_mut(0).verbose_updates = true;
    d.run_for(SimDuration::from_secs(3));
    let spire_samples = measure_spire(&mut d, 0, 1, 0, flips, SimDuration::from_secs(1));

    // Commercial side: same topology PLC, primary-backup master pair.
    let mut lab = CommercialLab::build(seed + 7, false);
    lab.sim.run_for(SimDuration::from_secs(2));
    let mut commercial_samples: Vec<Sample> = Vec::new();
    let mut state = true;
    for i in 0..flips {
        // Same deterministic phase jitter as the Spire side.
        lab.sim
            .run_for(SimDuration::from_micros((i as u64 * 7_919) % 100_000));
        state = !state;
        let flipped_at = lab.sim.now();
        let before = lab
            .sim
            .process_ref::<CommercialHmi>(lab.hmi)
            .expect("hmi")
            .box_transitions
            .len();
        lab.sim
            .process_mut::<plc::emulator::PlcEmulator>(lab.plc)
            .expect("plc")
            .force_breaker(0, state, flipped_at);
        lab.sim.run_for(SimDuration::from_secs(1));
        let hmi = lab.sim.process_ref::<CommercialHmi>(lab.hmi).expect("hmi");
        let displayed_at = hmi
            .box_transitions
            .get(before..)
            .and_then(|new| new.iter().find(|&&(_, closed)| closed == state))
            .map(|&(t, _)| t);
        let sample = Sample {
            flipped_at,
            displayed_at,
        };
        if let Some(reaction) = sample.reaction() {
            d.obs
                .histogram("e5.commercial.reaction_us")
                .record(reaction.as_micros());
        }
        commercial_samples.push(sample);
    }

    ReactionTimes {
        spire: summarize(&spire_samples),
        commercial: summarize(&commercial_samples),
        requirement: SimDuration::from_millis(200),
        obs: d.obs.report(),
    }
}

/// Renders E5 as the measured table.
pub fn render_reaction(r: &ReactionTimes) -> String {
    format!(
        "system      samples  missed  min      median   mean     max\n\
         spire       {:>7}  {:>6}  {:>7}  {:>7}  {:>7}  {:>7}\n\
         commercial  {:>7}  {:>6}  {:>7}  {:>7}  {:>7}  {:>7}\n\
         requirement: median <= {}   spire meets: {}   spire faster: {}\n",
        r.spire.samples,
        r.spire.missed,
        r.spire.min.to_string(),
        r.spire.median.to_string(),
        r.spire.mean.to_string(),
        r.spire.max.to_string(),
        r.commercial.samples,
        r.commercial.missed,
        r.commercial.min.to_string(),
        r.commercial.median.to_string(),
        r.commercial.mean.to_string(),
        r.commercial.max.to_string(),
        r.requirement,
        r.spire_meets_requirement(),
        r.spire_faster(),
    )
}
