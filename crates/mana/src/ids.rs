//! The MANA instance: train → monitor → correlate → alert.
//!
//! Figure 3 runs three independent instances (MANA 1–3), one per network,
//! "due to the distinct network characteristics of the three networks" —
//! each trains its own model on its own baseline.

use simnet::capture::PacketRecord;
use simnet::time::{SimDuration, SimTime};

use crate::features::{FeatureVector, WindowExtractor};
use crate::model::{GaussianModel, Score};

/// Classification of an alert, derived from the dominant feature.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AlertKind {
    /// Many distinct destination ports / SYNs: reconnaissance scan.
    PortScan,
    /// ARP reply/request surge: poisoning or MITM staging.
    ArpAnomaly,
    /// Packet/byte volume surge: denial-of-service flood.
    TrafficFlood,
    /// New sources or flows that the baseline never saw.
    UnknownTalker,
    /// Anomalous but not matching a known pattern.
    Unclassified,
}

impl AlertKind {
    /// Classifies an anomalous window from its per-feature z-scores.
    /// Specific signatures take precedence over generic volume: an ARP
    /// surge or a port scan also inflates packet counts, but the operator
    /// needs the specific cause.
    fn classify(score: &Score, threshold: f64) -> Self {
        // Feature indexes per FEATURE_NAMES.
        let over = |i: usize| score.z[i] >= threshold;
        if over(5) || over(6) {
            AlertKind::ArpAnomaly
        } else if over(3) || over(4) {
            AlertKind::PortScan
        } else if over(2) || over(9) {
            AlertKind::UnknownTalker
        } else if over(0) || over(1) || over(7) {
            AlertKind::TrafficFlood
        } else {
            AlertKind::Unclassified
        }
    }

    /// Operator-facing description.
    pub fn describe(self) -> &'static str {
        match self {
            AlertKind::PortScan => "port scan / reconnaissance activity",
            AlertKind::ArpAnomaly => "ARP anomaly (possible poisoning / man-in-the-middle)",
            AlertKind::TrafficFlood => "traffic flood (possible denial of service)",
            AlertKind::UnknownTalker => "unknown host or flow on the network",
            AlertKind::Unclassified => "anomalous activity (unclassified)",
        }
    }
}

/// A correlated incident shown to the operator.
#[derive(Clone, Debug)]
pub struct Alert {
    /// When the incident started.
    pub start: SimTime,
    /// When the last anomalous window was observed.
    pub last_seen: SimTime,
    /// Classification.
    pub kind: AlertKind,
    /// Anomalous windows correlated into this incident.
    pub windows: u32,
    /// Peak per-feature z-score observed.
    pub peak_z: f64,
}

/// One scored monitoring window, buffered for machine consumption
/// (the response controller polls these instead of parsing alerts).
#[derive(Clone, Copy, Debug)]
pub struct WindowScore {
    /// Window start time.
    pub start: SimTime,
    /// Peak per-feature z-score of the window.
    pub max_z: f64,
    /// Whether the model flagged the window anomalous.
    pub flagged: bool,
}

/// One MANA deployment (out-of-band, per network).
pub struct ManaInstance {
    /// Instance name ("MANA 1", ...).
    pub name: String,
    extractor: WindowExtractor,
    window: SimDuration,
    training_windows: Vec<FeatureVector>,
    model: Option<GaussianModel>,
    /// All raised alerts (correlated incidents).
    pub alerts: Vec<Alert>,
    /// Windows scored since training.
    pub windows_scored: u64,
    /// Windows flagged anomalous.
    pub windows_flagged: u64,
    /// When armed via [`ManaInstance::journal_scores`]: the hub every
    /// scored window is journaled to, and the subject id it is
    /// attributed to.
    journal: Option<(obs::ObsHub, u32)>,
    /// Scored windows buffered since the last
    /// [`ManaInstance::take_window_scores`] (only while armed).
    window_scores: Vec<WindowScore>,
}

impl ManaInstance {
    /// Creates an untrained instance with the given analysis window.
    pub fn new(name: impl Into<String>, window: SimDuration) -> Self {
        ManaInstance {
            name: name.into(),
            extractor: WindowExtractor::new(window),
            window,
            training_windows: Vec::new(),
            model: None,
            alerts: Vec::new(),
            windows_scored: 0,
            windows_flagged: 0,
            journal: None,
            window_scores: Vec::new(),
        }
    }

    /// Arms per-window score journaling: every window scored after
    /// training lands in `hub`'s journal as [`obs::Event::AnomalyScore`]
    /// attributed to `subject` (replica index, or `1000 + p` for proxy
    /// `p`), and is buffered for [`ManaInstance::take_window_scores`].
    /// Off by default so historical digests are untouched; when armed the
    /// scores fold into the digest, making detector output replayable.
    pub fn journal_scores(&mut self, hub: obs::ObsHub, subject: u32) {
        self.journal = Some((hub, subject));
    }

    /// Drains the scored-window buffer (empty unless
    /// [`ManaInstance::journal_scores`] armed the instance).
    pub fn take_window_scores(&mut self) -> Vec<WindowScore> {
        std::mem::take(&mut self.window_scores)
    }

    /// Whether the baseline has been fitted.
    pub fn is_trained(&self) -> bool {
        self.model.is_some()
    }

    /// Feeds captured records. Before [`ManaInstance::finish_training`]
    /// they accumulate as baseline; afterwards they are scored.
    pub fn ingest(&mut self, records: impl IntoIterator<Item = PacketRecord>) {
        let windows = self.extractor.push(records);
        self.consume_windows(windows);
    }

    /// Closes out idle windows up to `now` and scores them.
    pub fn advance_to(&mut self, now: SimTime) {
        let windows = self.extractor.flush_until(now);
        self.consume_windows(windows);
    }

    fn consume_windows(&mut self, windows: Vec<FeatureVector>) {
        for w in windows {
            match &self.model {
                None => self.training_windows.push(w),
                Some(model) => {
                    self.windows_scored += 1;
                    let score = model.score(&w);
                    let flagged = model.is_anomalous(&score);
                    if let Some((hub, subject)) = &self.journal {
                        // Quantize to thousandths so the f64 score has a
                        // fixed byte encoding in the digest.
                        let score_milli = (score.max_z.clamp(0.0, 1e12) * 1000.0).round() as u64;
                        hub.journal(obs::Event::AnomalyScore {
                            replica: *subject,
                            score_milli,
                        });
                        self.window_scores.push(WindowScore {
                            start: w.window_start,
                            max_z: score.max_z,
                            flagged,
                        });
                    }
                    if flagged {
                        self.windows_flagged += 1;
                        self.raise(w.window_start, &score);
                    }
                }
            }
        }
    }

    /// Fits the model on everything ingested so far (the end of the
    /// baseline capture period).
    ///
    /// # Panics
    ///
    /// Panics if no baseline windows were ingested.
    pub fn finish_training(&mut self) {
        let model = GaussianModel::train(&self.training_windows);
        self.model = Some(model);
    }

    /// The fitted model, if trained.
    pub fn model(&self) -> Option<&GaussianModel> {
        self.model.as_ref()
    }

    fn raise(&mut self, at: SimTime, score: &Score) {
        let threshold = self.model.as_ref().map_or(6.0, |m| m.z_threshold);
        let kind = AlertKind::classify(score, threshold);
        // Correlate: extend the previous incident if same kind and the gap
        // is at most two windows.
        if let Some(last) = self.alerts.last_mut() {
            if last.kind == kind && at.since(last.last_seen) <= self.window.saturating_mul(3) {
                last.windows += 1;
                last.last_seen = at;
                last.peak_z = last.peak_z.max(score.max_z);
                return;
            }
        }
        self.alerts.push(Alert {
            start: at,
            last_seen: at,
            kind,
            windows: 1,
            peak_z: score.max_z,
        });
    }

    /// False-positive rate since training (flagged / scored).
    pub fn flag_rate(&self) -> f64 {
        if self.windows_scored == 0 {
            0.0
        } else {
            self.windows_flagged as f64 / self.windows_scored as f64
        }
    }
}

impl std::fmt::Debug for ManaInstance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ManaInstance")
            .field("name", &self.name)
            .field("trained", &self.is_trained())
            .field("alerts", &self.alerts.len())
            .field("windows_scored", &self.windows_scored)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::capture::PacketRecord;
    use simnet::packet::{ArpBody, ArpOp, EtherPayload, Frame, Packet};
    use simnet::switch::SwitchId;
    use simnet::types::{IpAddr, MacAddr, NodeId, Port};

    const MS: u64 = 1_000;

    fn poll_record(t: u64, src: u8) -> PacketRecord {
        let pkt = Packet::udp(
            IpAddr::new(10, 0, 0, src),
            IpAddr::new(10, 0, 0, 99),
            Port(1000),
            Port(502),
            bytes::Bytes::from(vec![0u8; 48]),
        );
        let frame = Frame {
            src_mac: MacAddr::derived(NodeId(src as u32), 0),
            dst_mac: MacAddr::derived(NodeId(99), 0),
            payload: EtherPayload::Ip(pkt),
        };
        PacketRecord::from_frame(SimTime(t), SwitchId(0), &frame)
    }

    fn syn_record(t: u64, dport: u16) -> PacketRecord {
        let pkt = Packet::syn(
            IpAddr::new(10, 0, 0, 66),
            IpAddr::new(10, 0, 0, 99),
            Port(666),
            Port(dport),
        );
        let frame = Frame {
            src_mac: MacAddr::derived(NodeId(66), 0),
            dst_mac: MacAddr::derived(NodeId(99), 0),
            payload: EtherPayload::Ip(pkt),
        };
        PacketRecord::from_frame(SimTime(t), SwitchId(0), &frame)
    }

    fn arp_reply_record(t: u64) -> PacketRecord {
        let frame = Frame {
            src_mac: MacAddr::derived(NodeId(66), 0),
            dst_mac: MacAddr::BROADCAST,
            payload: EtherPayload::Arp(ArpBody {
                op: ArpOp::Reply,
                sender_ip: IpAddr::new(10, 0, 0, 2),
                sender_mac: MacAddr::derived(NodeId(66), 0),
                target_ip: IpAddr::new(10, 0, 0, 1),
            }),
        };
        PacketRecord::from_frame(SimTime(t), SwitchId(0), &frame)
    }

    /// Regular SCADA polling: 4 hosts, one poll each per 100 ms window.
    fn baseline_traffic(from_ms: u64, to_ms: u64) -> Vec<PacketRecord> {
        let mut out = Vec::new();
        let mut t = from_ms;
        while t < to_ms {
            for src in 1..=4u8 {
                out.push(poll_record((t + src as u64 * 3) * MS, src));
            }
            t += 100;
        }
        out
    }

    fn trained_instance() -> ManaInstance {
        let mut mana = ManaInstance::new("MANA 1", SimDuration::from_millis(100));
        // "Train" on a baseline capture (here 60 s of steady polling).
        mana.ingest(baseline_traffic(0, 60_000));
        mana.advance_to(SimTime(60_000 * MS));
        mana.finish_training();
        assert!(mana.is_trained());
        mana
    }

    #[test]
    fn clean_traffic_raises_no_alerts() {
        let mut mana = trained_instance();
        mana.ingest(baseline_traffic(60_000, 120_000));
        mana.advance_to(SimTime(120_000 * MS));
        assert!(mana.alerts.is_empty(), "false positives: {:?}", mana.alerts);
        assert!(mana.windows_scored > 500);
        assert_eq!(mana.flag_rate(), 0.0);
    }

    #[test]
    fn port_scan_detected_and_classified() {
        let mut mana = trained_instance();
        let mut traffic = baseline_traffic(60_000, 70_000);
        // Scan 300 ports over ~200 ms starting at 65 s.
        for (i, port) in (2000u16..2300).enumerate() {
            traffic.push(syn_record((65_000 + (i as u64 * 200) / 300) * MS, port));
        }
        traffic.sort_by_key(|r| r.time);
        mana.ingest(traffic);
        mana.advance_to(SimTime(70_000 * MS));
        assert!(!mana.alerts.is_empty(), "scan not detected");
        assert!(mana.alerts.iter().any(|a| a.kind == AlertKind::PortScan));
    }

    #[test]
    fn arp_poisoning_detected() {
        let mut mana = trained_instance();
        let mut traffic = baseline_traffic(60_000, 70_000);
        for i in 0..120u64 {
            traffic.push(arp_reply_record((64_000 + i * 10) * MS));
        }
        traffic.sort_by_key(|r| r.time);
        mana.ingest(traffic);
        mana.advance_to(SimTime(70_000 * MS));
        assert!(mana.alerts.iter().any(|a| a.kind == AlertKind::ArpAnomaly));
    }

    #[test]
    fn dos_flood_detected() {
        let mut mana = trained_instance();
        let mut traffic = baseline_traffic(60_000, 70_000);
        for i in 0..5_000u64 {
            traffic.push(poll_record(65_000 * MS + i * 20, 1));
        }
        traffic.sort_by_key(|r| r.time);
        mana.ingest(traffic);
        mana.advance_to(SimTime(70_000 * MS));
        assert!(mana
            .alerts
            .iter()
            .any(|a| a.kind == AlertKind::TrafficFlood));
    }

    #[test]
    fn consecutive_windows_correlate_into_one_incident() {
        let mut mana = trained_instance();
        // Normal polling continues while a sustained flood runs on top of
        // it across ~10 windows.
        let mut traffic = baseline_traffic(60_000, 63_000);
        for i in 0..10_000u64 {
            traffic.push(poll_record(61_000 * MS + i * 100, 1));
        }
        traffic.sort_by_key(|r| r.time);
        mana.ingest(traffic);
        mana.advance_to(SimTime(63_000 * MS));
        let floods: Vec<&Alert> = mana
            .alerts
            .iter()
            .filter(|a| a.kind == AlertKind::TrafficFlood)
            .collect();
        assert_eq!(
            floods.len(),
            1,
            "one correlated incident, got {:?}",
            mana.alerts
        );
        assert!(floods[0].windows >= 5);
    }

    #[test]
    fn detection_latency_within_two_windows() {
        let mut mana = trained_instance();
        let mut traffic = baseline_traffic(60_000, 62_000);
        let attack_start = 61_000u64;
        for (i, port) in (2000u16..2400).enumerate() {
            traffic.push(syn_record(
                (attack_start + (i as u64 * 100) / 400) * MS,
                port,
            ));
        }
        traffic.sort_by_key(|r| r.time);
        mana.ingest(traffic);
        mana.advance_to(SimTime(62_000 * MS));
        let alert = mana
            .alerts
            .iter()
            .find(|a| a.kind == AlertKind::PortScan)
            .expect("detected");
        let latency_ms = alert.start.as_millis().saturating_sub(attack_start);
        assert!(
            latency_ms <= 200,
            "near-real-time detection, got {latency_ms} ms"
        );
    }

    #[test]
    fn armed_instance_journals_and_buffers_window_scores() {
        let mut mana = trained_instance();
        let hub = obs::ObsHub::new();
        mana.journal_scores(hub.clone(), 3);
        mana.ingest(baseline_traffic(60_000, 61_000));
        mana.advance_to(SimTime(61_000 * MS));
        let scores = mana.take_window_scores();
        assert!(!scores.is_empty());
        assert!(scores.iter().all(|s| !s.flagged), "clean traffic");
        let journaled =
            hub.journal_count(|e| matches!(e, obs::Event::AnomalyScore { replica: 3, .. }));
        assert_eq!(journaled, scores.len());
        // Drained: a second take returns nothing until more windows score.
        assert!(mana.take_window_scores().is_empty());
    }

    #[test]
    fn unarmed_instance_journals_nothing() {
        let mut mana = trained_instance();
        mana.ingest(baseline_traffic(60_000, 61_000));
        mana.advance_to(SimTime(61_000 * MS));
        assert!(mana.windows_scored > 0);
        assert!(mana.take_window_scores().is_empty());
    }

    #[test]
    fn alert_kind_descriptions() {
        assert!(AlertKind::PortScan.describe().contains("scan"));
        assert!(AlertKind::ArpAnomaly.describe().contains("ARP"));
        assert!(AlertKind::TrafficFlood.describe().contains("flood"));
        assert!(AlertKind::UnknownTalker.describe().contains("unknown"));
    }
}
