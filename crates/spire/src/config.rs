//! Deployment configuration: identities, keys, overlays, scenarios.

use itcrypto::keys::{KeyPair, KeyRegistry, Principal};
use plc::topology::Scenario;
use prime::types::Config as PrimeConfig;
use simnet::types::{IpAddr, Port};
use spines::config::{SpinesConfig, SpinesMode};
use spines::wan::{Overlay, WanLink, WanSite, WanTopology};

use crate::site::SiteTopology;

/// Spines port of the isolated internal (replication) network.
pub const INTERNAL_SPINES_PORT: Port = Port(8100);
/// Spines port of the external network.
pub const EXTERNAL_SPINES_PORT: Port = Port(8120);

/// Spines group carrying Prime protocol messages (internal network).
pub const GROUP_PRIME: u16 = 1;
/// Spines group carrying client updates to the masters (external).
pub const GROUP_MASTERS: u16 = 2;
/// Base group for per-proxy command delivery: proxy `p` listens on
/// `GROUP_PROXY_BASE + p`.
pub const GROUP_PROXY_BASE: u16 = 100;
/// Base group for per-HMI frame delivery.
pub const GROUP_HMI_BASE: u16 = 300;

/// Key-generation seed bases (distinct namespaces).
const REPLICA_SEED: u64 = 0xAA00;
const PROXY_SEED: u64 = 0xBB00;
const HMI_SEED: u64 = 0xCC00;

/// One proxied field device.
#[derive(Clone, Debug)]
pub struct ProxyAssignment {
    /// Proxy index (0-based).
    pub index: u32,
    /// The scenario/PLC this proxy fronts.
    pub scenario: Scenario,
}

/// Full Spire deployment configuration.
#[derive(Clone, Debug)]
pub struct SpireConfig {
    /// Prime fault configuration.
    pub prime: PrimeConfig,
    /// Proxied scenarios, one proxy per PLC.
    pub proxies: Vec<ProxyAssignment>,
    /// Number of HMIs (the plant deployment had three locations).
    pub hmis: u32,
    /// Master secret of the internal Spines network.
    pub internal_secret: [u8; 32],
    /// Master secret of the external Spines network.
    pub external_secret: [u8; 32],
    /// Breaker-flip cycle armed on HMI 0 at start (§IV-A's "automatic
    /// update generation tool"): `(scenario, period, max_flips)`.
    pub cycle: Option<(Scenario, simnet::time::SimDuration, u64)>,
    /// Multi-site placement. `None` keeps the single-LAN deployments of
    /// §IV/§V exactly as before; `Some` spreads replicas over sites
    /// joined by Spines WAN overlays.
    pub sites: Option<SiteTopology>,
}

impl SpireConfig {
    /// The §IV red-team deployment: 4 replicas, the Figure 4 PLC plus ten
    /// emulated distribution PLCs, one HMI.
    pub fn red_team() -> Self {
        let mut proxies = vec![ProxyAssignment {
            index: 0,
            scenario: Scenario::RedTeamDistribution,
        }];
        for i in 0..10u8 {
            proxies.push(ProxyAssignment {
                index: 1 + i as u32,
                scenario: Scenario::EmulatedDistribution(i),
            });
        }
        SpireConfig {
            prime: PrimeConfig::red_team(),
            proxies,
            hmis: 1,
            internal_secret: [0x1A; 32],
            external_secret: [0x2B; 32],
            cycle: None,
            sites: None,
        }
    }

    /// The §V plant deployment: 6 replicas, the plant's three real
    /// breakers plus ten distribution and six generation PLCs, three HMIs.
    pub fn plant() -> Self {
        let mut proxies = vec![ProxyAssignment {
            index: 0,
            scenario: Scenario::PlantSubset,
        }];
        for i in 0..10u8 {
            proxies.push(ProxyAssignment {
                index: 1 + i as u32,
                scenario: Scenario::EmulatedDistribution(i),
            });
        }
        for i in 0..6u8 {
            proxies.push(ProxyAssignment {
                index: 11 + i as u32,
                scenario: Scenario::EmulatedGeneration(i),
            });
        }
        SpireConfig {
            prime: PrimeConfig::plant(),
            proxies,
            hmis: 3,
            internal_secret: [0x3C; 32],
            external_secret: [0x4D; 32],
            cycle: None,
            sites: None,
        }
    }

    /// A minimal configuration for tests: `n` per `prime_config`, one
    /// proxied scenario, one HMI.
    pub fn minimal(prime: PrimeConfig, scenario: Scenario) -> Self {
        SpireConfig {
            prime,
            proxies: vec![ProxyAssignment { index: 0, scenario }],
            hmis: 1,
            internal_secret: [0x5E; 32],
            external_secret: [0x6F; 32],
            cycle: None,
            sites: None,
        }
    }

    /// Arms the breaker-flip cycle on HMI 0.
    pub fn with_cycle(
        mut self,
        scenario: Scenario,
        period: simnet::time::SimDuration,
        max_flips: u64,
    ) -> Self {
        self.cycle = Some((scenario, period, max_flips));
        self
    }

    /// Spreads the deployment over `sites` (a wide-area configuration).
    ///
    /// # Panics
    ///
    /// Panics when the placement's replica count differs from `n`.
    pub fn with_sites(mut self, sites: SiteTopology) -> Self {
        assert_eq!(
            sites.replica_count(),
            self.n(),
            "site placement must cover exactly the configured replicas"
        );
        self.sites = Some(sites);
        self
    }

    /// Replica count.
    pub fn n(&self) -> u32 {
        self.prime.n()
    }

    /// Internal-network IP of replica `i`.
    pub fn internal_ip(&self, replica: u32) -> IpAddr {
        IpAddr::new(10, 10, 0, 1 + replica as u8)
    }

    /// External-network IP of replica `i`.
    pub fn replica_external_ip(&self, replica: u32) -> IpAddr {
        IpAddr::new(10, 20, 0, 1 + replica as u8)
    }

    /// External-network IP of proxy `p`.
    pub fn proxy_ip(&self, proxy: u32) -> IpAddr {
        IpAddr::new(10, 20, 0, 51 + proxy as u8)
    }

    /// External-network IP of HMI `h`.
    pub fn hmi_ip(&self, hmi: u32) -> IpAddr {
        IpAddr::new(10, 20, 0, 101 + hmi as u8)
    }

    /// Cable-side IP of proxy `p` (proxy end of the PLC wire).
    pub fn proxy_cable_ip(&self, proxy: u32) -> IpAddr {
        IpAddr::new(192, 168, 1 + proxy as u8, 1)
    }

    /// Cable-side IP of the PLC behind proxy `p`.
    pub fn plc_cable_ip(&self, proxy: u32) -> IpAddr {
        IpAddr::new(192, 168, 1 + proxy as u8, 2)
    }

    /// External-daemon id of replica `i` (internal ids equal replica ids).
    pub fn ext_daemon_of_replica(&self, replica: u32) -> u32 {
        replica
    }

    /// External-daemon id of proxy `p`.
    pub fn ext_daemon_of_proxy(&self, proxy: u32) -> u32 {
        self.n() + proxy
    }

    /// External-daemon id of HMI `h`.
    pub fn ext_daemon_of_hmi(&self, hmi: u32) -> u32 {
        self.n() + self.proxies.len() as u32 + hmi
    }

    /// Client principal id of proxy `p` (signs RTU updates).
    pub fn client_of_proxy(&self, proxy: u32) -> u32 {
        proxy
    }

    /// Client principal id of HMI `h` (signs supervisory commands).
    pub fn client_of_hmi(&self, hmi: u32) -> u32 {
        1000 + hmi
    }

    /// Signing key pair of replica `i` (deterministic from the config).
    pub fn replica_keypair(&self, replica: u32) -> KeyPair {
        KeyPair::generate(REPLICA_SEED + replica as u64)
    }

    /// Signing key pair of proxy `p`'s client identity.
    pub fn proxy_keypair(&self, proxy: u32) -> KeyPair {
        KeyPair::generate(PROXY_SEED + proxy as u64)
    }

    /// Signing key pair of HMI `h`'s client identity.
    pub fn hmi_keypair(&self, hmi: u32) -> KeyPair {
        KeyPair::generate(HMI_SEED + hmi as u64)
    }

    /// The complete public-key registry all components are provisioned
    /// with.
    pub fn registry(&self) -> KeyRegistry {
        let mut reg = KeyRegistry::new();
        for i in 0..self.n() {
            reg.register(Principal::Replica(i), self.replica_keypair(i).public_key());
        }
        for p in &self.proxies {
            reg.register(
                Principal::Client(self.client_of_proxy(p.index)),
                self.proxy_keypair(p.index).public_key(),
            );
        }
        for h in 0..self.hmis {
            reg.register(
                Principal::Client(self.client_of_hmi(h)),
                self.hmi_keypair(h).public_key(),
            );
        }
        reg
    }

    /// The control-center site homing proxy `p` (multi-site only).
    pub fn home_site_of_proxy(&self, proxy: u32) -> Option<usize> {
        self.sites.as_ref().map(|s| s.home_of_proxy(proxy))
    }

    /// The control-center site homing HMI `h` (multi-site only).
    pub fn home_site_of_hmi(&self, hmi: u32) -> Option<usize> {
        self.sites.as_ref().map(|s| s.home_of_hmi(hmi))
    }

    /// The Spines wide-area overlay description of a multi-site
    /// deployment (`None` for single-LAN configurations).
    ///
    /// Each site homes its replicas' internal daemons, plus the external
    /// daemons of its replicas and of the proxies/HMIs it hosts. Between
    /// every pair of sites, each overlay gets up to two inter-site links
    /// on *distinct* gateway replicas — so WAN routes between sites with
    /// two or more replicas are node-disjoint — with the latency/loss
    /// profile combining both sites' uplinks.
    pub fn wan_topology(&self) -> Option<WanTopology> {
        let topo = self.sites.as_ref()?;
        let mut sites = Vec::new();
        for (idx, site) in topo.sites.iter().enumerate() {
            let mut external: Vec<u32> = site
                .replicas
                .iter()
                .map(|&r| self.ext_daemon_of_replica(r))
                .collect();
            for p in &self.proxies {
                if topo.home_of_proxy(p.index) == idx {
                    external.push(self.ext_daemon_of_proxy(p.index));
                }
            }
            for h in 0..self.hmis {
                if topo.home_of_hmi(h) == idx {
                    external.push(self.ext_daemon_of_hmi(h));
                }
            }
            sites.push(WanSite {
                name: site.name.clone(),
                internal_daemons: site.replicas.clone(),
                external_daemons: external,
            });
        }
        let mut links = Vec::new();
        for (i, a) in topo.sites.iter().enumerate() {
            for b in &topo.sites[i + 1..] {
                let latency_us = (a.wan_latency + b.wan_latency).as_micros();
                let loss = (a.wan_loss + b.wan_loss).min(1.0);
                let redundancy = 2.min(a.replicas.len()).min(b.replicas.len());
                for g in 0..redundancy {
                    links.push(WanLink {
                        a: a.replicas[g],
                        b: b.replicas[g],
                        overlay: Overlay::Internal,
                        latency_us,
                        loss,
                    });
                    links.push(WanLink {
                        a: self.ext_daemon_of_replica(a.replicas[g]),
                        b: self.ext_daemon_of_replica(b.replicas[g]),
                        overlay: Overlay::External,
                        latency_us,
                        loss,
                    });
                }
            }
        }
        Some(WanTopology { sites, links })
    }

    /// The isolated internal Spines overlay: replicas only — a full mesh
    /// in the single-LAN deployments, per-site meshes joined by redundant
    /// WAN links in multi-site ones.
    pub fn internal_spines(&self) -> SpinesConfig {
        let daemons = (0..self.n()).map(|i| (i, self.internal_ip(i)));
        match self.wan_topology() {
            Some(wan) => wan.overlay_config(
                Overlay::Internal,
                daemons,
                INTERNAL_SPINES_PORT,
                self.internal_secret,
                SpinesMode::IntrusionTolerant,
            ),
            None => SpinesConfig::full_mesh(
                daemons,
                INTERNAL_SPINES_PORT,
                self.internal_secret,
                SpinesMode::IntrusionTolerant,
            ),
        }
    }

    /// The external Spines overlay (replicas + proxies + HMIs): a full
    /// mesh in the single-LAN deployments, per-site meshes joined by
    /// redundant WAN links in multi-site ones.
    pub fn external_spines(&self) -> SpinesConfig {
        let mut daemons: Vec<(u32, IpAddr)> = (0..self.n())
            .map(|i| (self.ext_daemon_of_replica(i), self.replica_external_ip(i)))
            .collect();
        for p in &self.proxies {
            daemons.push((self.ext_daemon_of_proxy(p.index), self.proxy_ip(p.index)));
        }
        for h in 0..self.hmis {
            daemons.push((self.ext_daemon_of_hmi(h), self.hmi_ip(h)));
        }
        match self.wan_topology() {
            Some(wan) => wan.overlay_config(
                Overlay::External,
                daemons,
                EXTERNAL_SPINES_PORT,
                self.external_secret,
                SpinesMode::IntrusionTolerant,
            ),
            None => SpinesConfig::full_mesh(
                daemons,
                EXTERNAL_SPINES_PORT,
                self.external_secret,
                SpinesMode::IntrusionTolerant,
            ),
        }
    }

    /// The group a proxy listens on for master commands.
    pub fn proxy_group(&self, proxy: u32) -> u16 {
        GROUP_PROXY_BASE + proxy as u16
    }

    /// The group an HMI listens on for display frames.
    pub fn hmi_group(&self, hmi: u32) -> u16 {
        GROUP_HMI_BASE + hmi as u16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn red_team_shape_matches_paper() {
        let c = SpireConfig::red_team();
        assert_eq!(c.n(), 4);
        assert_eq!(c.proxies.len(), 11, "one physical + ten emulated");
        assert_eq!(c.hmis, 1);
        assert_eq!(c.proxies[0].scenario, Scenario::RedTeamDistribution);
    }

    #[test]
    fn plant_shape_matches_paper() {
        let c = SpireConfig::plant();
        assert_eq!(c.n(), 6);
        assert_eq!(c.proxies.len(), 17, "plant subset + 10 dist + 6 gen");
        assert_eq!(c.hmis, 3, "HMIs in three locations throughout the plant");
    }

    #[test]
    fn addressing_is_collision_free() {
        let c = SpireConfig::plant();
        let mut ips = std::collections::BTreeSet::new();
        for i in 0..c.n() {
            assert!(ips.insert(c.internal_ip(i)));
            assert!(ips.insert(c.replica_external_ip(i)));
        }
        for p in 0..c.proxies.len() as u32 {
            assert!(ips.insert(c.proxy_ip(p)));
            assert!(ips.insert(c.proxy_cable_ip(p)));
            assert!(ips.insert(c.plc_cable_ip(p)));
        }
        for h in 0..c.hmis {
            assert!(ips.insert(c.hmi_ip(h)));
        }
    }

    #[test]
    fn daemon_ids_are_disjoint() {
        let c = SpireConfig::plant();
        let mut ids = std::collections::BTreeSet::new();
        for i in 0..c.n() {
            assert!(ids.insert(c.ext_daemon_of_replica(i)));
        }
        for p in 0..c.proxies.len() as u32 {
            assert!(ids.insert(c.ext_daemon_of_proxy(p)));
        }
        for h in 0..c.hmis {
            assert!(ids.insert(c.ext_daemon_of_hmi(h)));
        }
    }

    #[test]
    fn registry_covers_all_principals() {
        let c = SpireConfig::plant();
        let reg = c.registry();
        assert_eq!(reg.len() as u32, c.n() + c.proxies.len() as u32 + c.hmis);
    }

    #[test]
    fn multi_site_overlays_use_redundant_disjoint_wan_links() {
        let cfg = SpireConfig::plant().with_sites(SiteTopology::three_plus_three());
        let wan = cfg.wan_topology().expect("multi-site");
        let internal = wan.overlay_edges(Overlay::Internal);
        // Per-site meshes plus exactly two WAN links on distinct gateways.
        assert!(internal.contains(&(0, 1)) && internal.contains(&(3, 4)));
        assert!(internal.contains(&(0, 3)) && internal.contains(&(1, 4)));
        assert!(!internal.contains(&(2, 5)), "only two gateway pairs");
        assert!(!internal.contains(&(0, 4)), "gateway pairing is aligned");
        // Cross-site routes are redundant and node-disjoint.
        let routes = wan.select_routes(Overlay::Internal, 0, 5);
        assert_eq!(routes.len(), 2, "two node-disjoint WAN routes");
        // The overlay configs carry the restricted edge sets (no longer a
        // full mesh), and every daemon still appears.
        let spines = cfg.internal_spines();
        assert_eq!(spines.daemon_count(), 6);
        assert_eq!(spines.edges.len(), 3 + 3 + 2);
        let ext = cfg.external_spines();
        assert_eq!(ext.daemon_count(), 6 + 17 + 3);
        assert!(ext
            .edges
            .contains(&(cfg.ext_daemon_of_replica(0), cfg.ext_daemon_of_replica(3))));
    }

    #[test]
    fn multi_site_homes_clients_at_control_centers_only() {
        let cfg = SpireConfig::plant().with_sites(SiteTopology::two_two_one_one());
        let wan = cfg.wan_topology().expect("multi-site");
        for p in 0..cfg.proxies.len() as u32 {
            let home = cfg.home_site_of_proxy(p).expect("homed");
            assert!(home < 2, "proxies only at the two control centers");
            assert!(wan.sites[home]
                .external_daemons
                .contains(&cfg.ext_daemon_of_proxy(p)));
        }
        for h in 0..cfg.hmis {
            assert!(cfg.home_site_of_hmi(h).expect("homed") < 2);
        }
        // Data-center sites host replica daemons only.
        assert_eq!(wan.sites[2].internal_daemons, vec![4]);
        assert_eq!(wan.sites[2].external_daemons, vec![4]);
    }

    #[test]
    fn overlays_have_expected_membership() {
        let c = SpireConfig::red_team();
        assert_eq!(c.internal_spines().daemon_count(), 4);
        assert_eq!(c.external_spines().daemon_count(), 4 + 11 + 1);
        assert_ne!(
            c.internal_spines().link_key(0, 1),
            c.external_spines().link_key(0, 1)
        );
    }
}
