//! The simulation engine: world state, event queue, and delivery semantics.

use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

use bytes::Bytes;
use obs::event::DropKind;
use obs::{Event as ObsEvent, ObsHub};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::arp::{ArpMode, ArpTable};
use crate::capture::{PacketRecord, Tap, TapId};
use crate::firewall::{Direction, Firewall};
use crate::link::{Link, LinkId, LinkSpec};
use crate::packet::{ArpBody, ArpOp, EtherPayload, Frame, Packet, TransportKind};
use crate::process::{Action, Context, Process};
use crate::switch::{Forward, Switch, SwitchId, SwitchMode};
use crate::time::{SimDuration, SimTime};
use crate::types::{IpAddr, MacAddr, NodeId, Port};

/// How long a host waits on an unanswered ARP request before
/// re-broadcasting it (see [`EventKind::ArpRetry`]).
const ARP_RETRY_INTERVAL: SimDuration = SimDuration::from_millis(250);

/// Where a link terminates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EndpointRef {
    /// A node interface.
    Nic {
        /// The node.
        node: NodeId,
        /// Interface index on the node.
        ifidx: usize,
    },
    /// A switch port.
    SwitchPort {
        /// The switch.
        switch: SwitchId,
        /// Port index on the switch.
        port: usize,
    },
}

/// Configuration for one interface of a new node.
#[derive(Clone, Debug)]
pub struct InterfaceSpec {
    /// The interface's IP address.
    pub ip: IpAddr,
    /// Static (hardened) or dynamic (poisonable) ARP.
    pub arp_mode: ArpMode,
}

impl InterfaceSpec {
    /// Convenience: an interface with dynamic ARP.
    pub fn dynamic(ip: IpAddr) -> Self {
        InterfaceSpec {
            ip,
            arp_mode: ArpMode::Dynamic,
        }
    }

    /// Convenience: an interface with static ARP.
    pub fn static_arp(ip: IpAddr) -> Self {
        InterfaceSpec {
            ip,
            arp_mode: ArpMode::Static,
        }
    }
}

/// Configuration for a new node.
pub struct NodeSpec {
    /// Human-readable name (diagnostics only).
    pub name: String,
    /// Host firewall.
    pub firewall: Firewall,
    /// Interfaces to create.
    pub interfaces: Vec<InterfaceSpec>,
    /// The hosted process.
    pub process: Box<dyn Process>,
    /// Whether the NIC delivers frames not addressed to it (attacker boxes).
    pub promiscuous: bool,
    /// The misfeature §III-B disables: answer ARP requests for IPs that
    /// belong to *other* NICs on this machine.
    pub answers_arp_for_other_ifaces: bool,
    /// Strong-host model (strict reverse-path/interface binding): accept a
    /// packet only if its destination IP belongs to the *arrival*
    /// interface. Part of the §III-B host hardening; commodity hosts run
    /// the weak-host model (false).
    pub strict_interface_binding: bool,
}

impl NodeSpec {
    /// A standard host: given interfaces, open firewall, not promiscuous,
    /// with the ARP cross-answer misfeature *enabled* (the OS default the
    /// paper had to turn off).
    pub fn new(
        name: impl Into<String>,
        interfaces: Vec<InterfaceSpec>,
        process: Box<dyn Process>,
    ) -> Self {
        NodeSpec {
            name: name.into(),
            firewall: Firewall::open(),
            interfaces,
            process,
            promiscuous: false,
            answers_arp_for_other_ifaces: true,
            strict_interface_binding: false,
        }
    }

    /// Applies the full §III-B host hardening: locked-down firewall (caller
    /// adds allow rules), static ARP, no cross-interface ARP answers.
    pub fn hardened(mut self) -> Self {
        self.firewall = Firewall::locked_down();
        self.answers_arp_for_other_ifaces = false;
        self.strict_interface_binding = true;
        for i in &mut self.interfaces {
            i.arp_mode = ArpMode::Static;
        }
        self
    }
}

struct Interface {
    mac: MacAddr,
    ip: IpAddr,
    arp: ArpTable,
    link: Option<LinkId>,
    /// Packets parked while dynamic ARP resolves their next hop.
    pending: BTreeMap<IpAddr, Vec<Packet>>,
}

struct Node {
    #[allow(dead_code)]
    name: String,
    firewall: Firewall,
    interfaces: Vec<Interface>,
    listeners: BTreeSet<Port>,
    process: Option<Box<dyn Process>>,
    promiscuous: bool,
    answers_arp_for_other_ifaces: bool,
    strict_interface_binding: bool,
    up: bool,
    /// Bumped on process replacement; stale Start/Timer events are dropped.
    generation: u32,
    /// Inbound packets the firewall silently dropped.
    pub firewall_drops: u64,
}

#[derive(Debug)]
enum EventKind {
    FrameAt {
        to: EndpointRef,
        frame: Frame,
        /// The link the frame is in flight on; if that link goes down
        /// before the arrival time, the frame is lost (no ghost
        /// deliveries after a flap heals).
        via: LinkId,
    },
    Timer {
        node: NodeId,
        timer: u64,
        generation: u32,
    },
    Start {
        node: NodeId,
        generation: u32,
    },
    /// Re-sends an ARP request if a resolution is still outstanding;
    /// without this, one lost request/reply frame on a lossy link would
    /// park the destination's packets forever.
    ArpRetry {
        node: NodeId,
        ifidx: usize,
        dst_ip: IpAddr,
        generation: u32,
    },
}

struct Event {
    at: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

/// Aggregate counters for a run, derived from the [`ObsHub`] registry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Frames handed to links.
    pub frames_sent: u64,
    /// Frames delivered to an endpoint.
    pub frames_delivered: u64,
    /// Frames dropped (loss, queues, down links/nodes, switch drops).
    pub frames_dropped: u64,
    /// Packets delivered to processes.
    pub packets_to_process: u64,
    /// Inbound packets dropped by host firewalls.
    pub firewall_drops: u64,
    /// ARP learn attempts rejected by static tables.
    pub arp_rejected: u64,
}

/// Cached handles for the engine's hot-path counters, re-registered
/// whenever the hub changes (see [`Simulation::attach_obs`]).
struct NetCounters {
    frames_sent: obs::Counter,
    frames_delivered: obs::Counter,
    frames_dropped: obs::Counter,
    packets_to_process: obs::Counter,
    firewall_drops: obs::Counter,
    arp_rejected: obs::Counter,
}

impl NetCounters {
    fn from_hub(hub: &ObsHub) -> Self {
        NetCounters {
            frames_sent: hub.counter("net.frames_sent"),
            frames_delivered: hub.counter("net.frames_delivered"),
            frames_dropped: hub.counter("net.frames_dropped"),
            packets_to_process: hub.counter("net.packets_to_process"),
            firewall_drops: hub.counter("net.firewall_drops"),
            arp_rejected: hub.counter("net.arp_rejected"),
        }
    }
}

/// The simulation world and scheduler.
pub struct Simulation {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Event>,
    nodes: Vec<Node>,
    switches: Vec<Switch>,
    links: Vec<(Link, EndpointRef, EndpointRef)>,
    taps: Vec<(Tap, SwitchId)>,
    rng: StdRng,
    logs: Vec<(SimTime, NodeId, String)>,
    obs: ObsHub,
    net: NetCounters,
    events_processed: u64,
}

impl Simulation {
    /// Creates an empty simulation with a deterministic RNG seed. Metrics
    /// land on a private [`ObsHub`] until [`Simulation::attach_obs`]
    /// replaces it with a deployment-wide one.
    pub fn new(seed: u64) -> Self {
        let obs = ObsHub::new();
        let net = NetCounters::from_hub(&obs);
        Simulation {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            nodes: Vec::new(),
            switches: Vec::new(),
            links: Vec::new(),
            taps: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            logs: Vec::new(),
            obs,
            net,
            events_processed: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed since construction (the denominator for
    /// sim-events/sec throughput in `spire-sim bench`).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The observability hub this engine stamps and counts into.
    pub fn obs(&self) -> &ObsHub {
        &self.obs
    }

    /// Redirects all engine metrics and journal records to `hub` (a
    /// deployment shares one hub across the engine and every host
    /// process). Values already accumulated carry over.
    pub fn attach_obs(&mut self, hub: &ObsHub) {
        let fresh = NetCounters::from_hub(hub);
        fresh.frames_sent.add(self.net.frames_sent.get());
        fresh.frames_delivered.add(self.net.frames_delivered.get());
        fresh.frames_dropped.add(self.net.frames_dropped.get());
        fresh
            .packets_to_process
            .add(self.net.packets_to_process.get());
        fresh.firewall_drops.add(self.net.firewall_drops.get());
        fresh.arp_rejected.add(self.net.arp_rejected.get());
        hub.set_now_us(self.now.as_micros());
        self.obs = hub.clone();
        self.net = fresh;
    }

    /// Aggregate counters (a registry snapshot, kept for API stability).
    pub fn stats(&self) -> SimStats {
        SimStats {
            frames_sent: self.net.frames_sent.get(),
            frames_delivered: self.net.frames_delivered.get(),
            frames_dropped: self.net.frames_dropped.get(),
            packets_to_process: self.net.packets_to_process.get(),
            firewall_drops: self.net.firewall_drops.get(),
            arp_rejected: self.net.arp_rejected.get(),
        }
    }

    /// All log lines emitted so far as `(time, node, line)`.
    pub fn logs(&self) -> &[(SimTime, NodeId, String)] {
        &self.logs
    }

    /// Adds a node; MACs are derived deterministically. Schedules its
    /// `on_start` at the current time.
    pub fn add_node(&mut self, spec: NodeSpec) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        let interfaces = spec
            .interfaces
            .into_iter()
            .enumerate()
            .map(|(i, ispec)| Interface {
                mac: MacAddr::derived(id, i as u8),
                ip: ispec.ip,
                arp: ArpTable::new(ispec.arp_mode),
                link: None,
                pending: BTreeMap::new(),
            })
            .collect();
        self.nodes.push(Node {
            name: spec.name,
            firewall: spec.firewall,
            interfaces,
            listeners: BTreeSet::new(),
            process: Some(spec.process),
            promiscuous: spec.promiscuous,
            answers_arp_for_other_ifaces: spec.answers_arp_for_other_ifaces,
            strict_interface_binding: spec.strict_interface_binding,
            up: true,
            generation: 0,
            firewall_drops: 0,
        });
        self.push_event(
            self.now,
            EventKind::Start {
                node: id,
                generation: 0,
            },
        );
        id
    }

    /// Adds a switch.
    pub fn add_switch(&mut self, port_count: usize, mode: SwitchMode) -> SwitchId {
        let id = SwitchId(self.switches.len() as u32);
        self.switches.push(Switch::new(id, port_count, mode));
        id
    }

    /// Attaches a capture tap (span port) to a switch.
    pub fn add_tap(&mut self, switch: SwitchId) -> TapId {
        let id = TapId(self.taps.len() as u32);
        self.taps.push((Tap::new(), switch));
        self.switches[switch.0 as usize].taps.push(id);
        id
    }

    /// Read access to a tap's records.
    pub fn tap(&self, tap: TapId) -> &Tap {
        &self.taps[tap.0 as usize].0
    }

    /// Drains a tap's buffered records.
    pub fn drain_tap(&mut self, tap: TapId) -> Vec<PacketRecord> {
        self.taps[tap.0 as usize].0.drain()
    }

    /// Connects a node interface to a switch port.
    ///
    /// # Panics
    ///
    /// Panics if either side is already connected or indices are invalid.
    pub fn connect(
        &mut self,
        node: NodeId,
        ifidx: usize,
        switch: SwitchId,
        port: usize,
        spec: LinkSpec,
    ) -> LinkId {
        assert!(
            self.nodes[node.0 as usize].interfaces[ifidx].link.is_none(),
            "interface already connected"
        );
        assert!(
            self.switches[switch.0 as usize].ports[port].is_none(),
            "switch port already connected"
        );
        let id = LinkId(self.links.len() as u32);
        let a = EndpointRef::Nic { node, ifidx };
        let b = EndpointRef::SwitchPort { switch, port };
        self.links.push((Link::new(spec), a, b));
        self.nodes[node.0 as usize].interfaces[ifidx].link = Some(id);
        self.switches[switch.0 as usize].ports[port] = Some(id);
        id
    }

    /// Connects two node interfaces with a direct cable (no switch) — the
    /// paper's PLC-to-proxy wire.
    pub fn connect_direct(
        &mut self,
        a: (NodeId, usize),
        b: (NodeId, usize),
        spec: LinkSpec,
    ) -> LinkId {
        assert!(
            self.nodes[a.0 .0 as usize].interfaces[a.1].link.is_none(),
            "interface already connected"
        );
        assert!(
            self.nodes[b.0 .0 as usize].interfaces[b.1].link.is_none(),
            "interface already connected"
        );
        let id = LinkId(self.links.len() as u32);
        let ea = EndpointRef::Nic {
            node: a.0,
            ifidx: a.1,
        };
        let eb = EndpointRef::Nic {
            node: b.0,
            ifidx: b.1,
        };
        self.links.push((Link::new(spec), ea, eb));
        self.nodes[a.0 .0 as usize].interfaces[a.1].link = Some(id);
        self.nodes[b.0 .0 as usize].interfaces[b.1].link = Some(id);
        id
    }

    /// Connects two switches (inter-switch trunk, e.g. through a router
    /// modeled as a plain link between enterprise and operations networks).
    pub fn connect_switches(
        &mut self,
        a: (SwitchId, usize),
        b: (SwitchId, usize),
        spec: LinkSpec,
    ) -> LinkId {
        assert!(
            self.switches[a.0 .0 as usize].ports[a.1].is_none(),
            "switch port already connected"
        );
        assert!(
            self.switches[b.0 .0 as usize].ports[b.1].is_none(),
            "switch port already connected"
        );
        let id = LinkId(self.links.len() as u32);
        let ea = EndpointRef::SwitchPort {
            switch: a.0,
            port: a.1,
        };
        let eb = EndpointRef::SwitchPort {
            switch: b.0,
            port: b.1,
        };
        self.links.push((Link::new(spec), ea, eb));
        self.switches[a.0 .0 as usize].ports[a.1] = Some(id);
        self.switches[b.0 .0 as usize].ports[b.1] = Some(id);
        id
    }

    /// Installs a static ARP entry on a node interface.
    pub fn install_arp(&mut self, node: NodeId, ifidx: usize, ip: IpAddr, mac: MacAddr) {
        self.nodes[node.0 as usize].interfaces[ifidx]
            .arp
            .install(ip, mac);
    }

    /// The derived MAC of a node interface.
    pub fn mac_of(&self, node: NodeId, ifidx: usize) -> MacAddr {
        self.nodes[node.0 as usize].interfaces[ifidx].mac
    }

    /// The IP of a node interface.
    pub fn ip_of(&self, node: NodeId, ifidx: usize) -> IpAddr {
        self.nodes[node.0 as usize].interfaces[ifidx].ip
    }

    /// Takes a node up or down (crash / power off). Down nodes drop all
    /// frames and timers.
    pub fn set_node_up(&mut self, node: NodeId, up: bool) {
        self.nodes[node.0 as usize].up = up;
    }

    /// Whether a node is up.
    pub fn node_up(&self, node: NodeId) -> bool {
        self.nodes[node.0 as usize].up
    }

    /// Takes a link up or down. Taking a link down also loses every frame
    /// already in flight on it (see `EventKind::FrameAt`).
    pub fn set_link_up(&mut self, link: LinkId, up: bool) {
        self.links[link.0 as usize].0.up = up;
    }

    /// Whether a link is up.
    pub fn link_up(&self, link: LinkId) -> bool {
        self.links[link.0 as usize].0.up
    }

    /// A link's current spec (chaos windows save it before mutating).
    pub fn link_spec(&self, link: LinkId) -> LinkSpec {
        self.links[link.0 as usize].0.spec
    }

    /// Sets a link's random-loss probability (loss-burst injection).
    pub fn set_link_loss(&mut self, link: LinkId, loss: f64) {
        self.links[link.0 as usize].0.spec.loss = loss;
    }

    /// Sets a link's one-way latency (latency-spike injection).
    pub fn set_link_latency(&mut self, link: LinkId, latency: SimDuration) {
        self.links[link.0 as usize].0.spec.latency = latency;
    }

    /// The link attached to a node interface, if connected.
    pub fn link_of(&self, node: NodeId, ifidx: usize) -> Option<LinkId> {
        self.nodes[node.0 as usize].interfaces[ifidx].link
    }

    /// Partitions a switch: ports are assigned to groups (unlisted ports
    /// are group 0) and frames only forward between ports of the same
    /// group. Inert until set; [`Simulation::clear_switch_partition`]
    /// heals.
    pub fn set_switch_partition(&mut self, id: SwitchId, assignment: BTreeMap<usize, u32>) {
        self.switches[id.0 as usize].set_partition(assignment);
    }

    /// Heals a switch partition.
    pub fn clear_switch_partition(&mut self, id: SwitchId) {
        self.switches[id.0 as usize].clear_partition();
    }

    /// Replaces a node's process (proactive recovery installs a fresh,
    /// rediversified replica). Schedules `on_start` for the new process.
    pub fn replace_process(&mut self, node: NodeId, process: Box<dyn Process>) {
        let n = &mut self.nodes[node.0 as usize];
        n.process = Some(process);
        n.generation += 1;
        let generation = n.generation;
        self.push_event(self.now, EventKind::Start { node, generation });
    }

    /// Immutable access to a node's process, downcast to `T`.
    pub fn process_ref<T: Process>(&self, node: NodeId) -> Option<&T> {
        let p = self.nodes[node.0 as usize].process.as_deref()?;
        (p as &dyn std::any::Any).downcast_ref::<T>()
    }

    /// Mutable access to a node's process, downcast to `T`.
    ///
    /// Mutating process state from outside the event loop is reserved for
    /// test setup and attacker "hands-on-keyboard" actions.
    pub fn process_mut<T: Process>(&mut self, node: NodeId) -> Option<&mut T> {
        let p = self.nodes[node.0 as usize].process.as_deref_mut()?;
        (p as &mut dyn std::any::Any).downcast_mut::<T>()
    }

    /// A node's static switch-facing state: count of inbound firewall drops.
    pub fn firewall_drops(&self, node: NodeId) -> u64 {
        self.nodes[node.0 as usize].firewall_drops
    }

    /// Count of ARP learn attempts rejected by a node interface (evidence
    /// of poisoning attempts bouncing off static tables).
    pub fn arp_rejections(&self, node: NodeId, ifidx: usize) -> u64 {
        self.nodes[node.0 as usize].interfaces[ifidx]
            .arp
            .rejected_updates
    }

    /// Resolves an IP in a node interface's ARP table (diagnostics: lets
    /// experiments check what a host — or an attacker — has learned).
    pub fn arp_entry(&self, node: NodeId, ifidx: usize, ip: IpAddr) -> Option<MacAddr> {
        self.nodes[node.0 as usize].interfaces[ifidx]
            .arp
            .resolve(ip)
    }

    /// Reads a switch's counters.
    pub fn switch(&self, id: SwitchId) -> &Switch {
        &self.switches[id.0 as usize]
    }

    /// Authorizes `mac` on `port` of a static switch (the operator — or an
    /// attacker with physical access to patch panels — amending the static
    /// MAC-to-port map). No-op for learning switches.
    pub fn authorize_switch_port(&mut self, id: SwitchId, mac: MacAddr, port: usize) {
        if let SwitchMode::Static { map, .. } = &mut self.switches[id.0 as usize].mode {
            map.insert(mac, port);
        }
    }

    /// Runs until the event queue is empty or `deadline` is passed.
    /// Returns the number of events processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut n = 0;
        while let Some(ev) = self.queue.peek() {
            if ev.at > deadline {
                break;
            }
            let ev = self.queue.pop().expect("peeked");
            self.now = ev.at;
            self.obs.set_now_us(self.now.as_micros());
            self.dispatch(ev.kind);
            n += 1;
        }
        self.events_processed += n;
        // Time always advances to the deadline even if the queue drained.
        if self.now < deadline {
            self.now = deadline;
            self.obs.set_now_us(self.now.as_micros());
        }
        n
    }

    /// Runs for `dur` beyond the current time.
    pub fn run_for(&mut self, dur: SimDuration) -> u64 {
        let deadline = self.now + dur;
        self.run_until(deadline)
    }

    fn push_event(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Event { at, seq, kind });
    }

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::Start { node, generation } => {
                if self.nodes[node.0 as usize].generation == generation {
                    self.call_process(node, |p, ctx| p.on_start(ctx));
                }
            }
            EventKind::Timer {
                node,
                timer,
                generation,
            } => {
                let n = &self.nodes[node.0 as usize];
                if n.up && n.generation == generation {
                    self.call_process(node, |p, ctx| p.on_timer(ctx, timer));
                }
            }
            EventKind::FrameAt { to, frame, via } => {
                // Frames queued on a link that has since gone down are
                // lost, not delivered on heal.
                if !self.links[via.0 as usize].0.up {
                    self.net.frames_dropped.inc();
                    return;
                }
                match to {
                    EndpointRef::SwitchPort { switch, port } => {
                        self.frame_at_switch(switch, port, frame)
                    }
                    EndpointRef::Nic { node, ifidx } => self.frame_at_nic(node, ifidx, frame),
                }
            }
            EventKind::ArpRetry {
                node,
                ifidx,
                dst_ip,
                generation,
            } => {
                self.arp_retry(node, ifidx, dst_ip, generation);
            }
        }
    }

    /// Invokes a process callback with a fresh [`Context`], then applies the
    /// buffered actions.
    fn call_process<F>(&mut self, node: NodeId, f: F)
    where
        F: FnOnce(&mut dyn Process, &mut Context<'_>),
    {
        let Some(mut process) = self.nodes[node.0 as usize].process.take() else {
            return;
        };
        let interfaces: Vec<(MacAddr, IpAddr)> = self.nodes[node.0 as usize]
            .interfaces
            .iter()
            .map(|i| (i.mac, i.ip))
            .collect();
        let mut actions = Vec::new();
        {
            let mut ctx = Context {
                node,
                now: self.now,
                interfaces: &interfaces,
                actions: &mut actions,
                rng: &mut self.rng,
                trace: None,
            };
            f(process.as_mut(), &mut ctx);
        }
        // Only put the process back if nothing replaced it meanwhile
        // (replace_process cannot run during dispatch, so this is safe).
        self.nodes[node.0 as usize].process = Some(process);
        self.apply_actions(node, actions);
    }

    fn apply_actions(&mut self, node: NodeId, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::SendPacket { ifidx, packet } => self.host_send(node, ifidx, packet),
                Action::SendRawFrame { ifidx, frame } => {
                    self.transmit_from_nic(node, ifidx, frame);
                }
                Action::SetTimer { delay, timer } => {
                    let at = self.now + delay;
                    let generation = self.nodes[node.0 as usize].generation;
                    self.push_event(
                        at,
                        EventKind::Timer {
                            node,
                            timer,
                            generation,
                        },
                    );
                }
                Action::Listen(port) => {
                    self.nodes[node.0 as usize].listeners.insert(port);
                }
                Action::Unlisten(port) => {
                    self.nodes[node.0 as usize].listeners.remove(&port);
                }
                Action::Log(line) => {
                    self.logs.push((self.now, node, line));
                }
            }
        }
    }

    /// The normal host send path: outbound firewall, ARP resolution, frame
    /// construction, transmission.
    fn host_send(&mut self, node: NodeId, ifidx: usize, packet: Packet) {
        {
            let n = &mut self.nodes[node.0 as usize];
            if !n.up {
                return;
            }
            if !n.firewall.permits(Direction::Outbound, &packet) {
                n.firewall_drops += 1;
                self.net.firewall_drops.inc();
                self.obs.journal(ObsEvent::PacketDrop {
                    node: node.0,
                    kind: DropKind::Firewall,
                });
                return;
            }
        }
        let dst_ip = packet.dst_ip;
        if dst_ip == IpAddr::BROADCAST {
            let src_mac = self.nodes[node.0 as usize].interfaces[ifidx].mac;
            let frame = Frame {
                src_mac,
                dst_mac: MacAddr::BROADCAST,
                payload: EtherPayload::Ip(packet),
            };
            self.transmit_from_nic(node, ifidx, frame);
            return;
        }
        let (resolved, src_mac, src_ip) = {
            let iface = &self.nodes[node.0 as usize].interfaces[ifidx];
            (iface.arp.resolve(dst_ip), iface.mac, iface.ip)
        };
        match resolved {
            Some(dst_mac) => {
                let frame = Frame {
                    src_mac,
                    dst_mac,
                    payload: EtherPayload::Ip(packet),
                };
                self.transmit_from_nic(node, ifidx, frame);
            }
            None => {
                let iface = &mut self.nodes[node.0 as usize].interfaces[ifidx];
                if iface.arp.mode() == ArpMode::Static {
                    // Hardened host: unknown peers are unreachable, full stop.
                    self.net.frames_dropped.inc();
                    return;
                }
                // One in-flight ARP resolution per destination: further
                // packets just park on the pending queue (hosts do not
                // emit one ARP request per queued datagram).
                let resolution_in_flight = iface.pending.contains_key(&dst_ip);
                iface.pending.entry(dst_ip).or_default().push(packet);
                if resolution_in_flight {
                    return;
                }
                let frame = Frame {
                    src_mac,
                    dst_mac: MacAddr::BROADCAST,
                    payload: EtherPayload::Arp(ArpBody {
                        op: ArpOp::Request,
                        sender_ip: src_ip,
                        sender_mac: src_mac,
                        target_ip: dst_ip,
                    }),
                };
                self.transmit_from_nic(node, ifidx, frame);
                let generation = self.nodes[node.0 as usize].generation;
                let at = self.now + ARP_RETRY_INTERVAL;
                self.push_event(
                    at,
                    EventKind::ArpRetry {
                        node,
                        ifidx,
                        dst_ip,
                        generation,
                    },
                );
            }
        }
    }

    /// Fires while an ARP resolution is outstanding: re-broadcasts the
    /// request (the first one may have been lost) or, if the mapping
    /// arrived through an opportunistic learn that bypassed the reply
    /// path, flushes the parked packets directly.
    fn arp_retry(&mut self, node: NodeId, ifidx: usize, dst_ip: IpAddr, generation: u32) {
        let (still_pending, resolved, src_mac, src_ip) = {
            let n = &self.nodes[node.0 as usize];
            if !n.up || n.generation != generation {
                return;
            }
            let iface = &n.interfaces[ifidx];
            (
                iface.pending.contains_key(&dst_ip),
                iface.arp.resolve(dst_ip).is_some(),
                iface.mac,
                iface.ip,
            )
        };
        if !still_pending {
            return;
        }
        if resolved {
            let ready = self.nodes[node.0 as usize].interfaces[ifidx]
                .pending
                .remove(&dst_ip)
                .unwrap_or_default();
            for pkt in ready {
                self.host_send(node, ifidx, pkt);
            }
            return;
        }
        let frame = Frame {
            src_mac,
            dst_mac: MacAddr::BROADCAST,
            payload: EtherPayload::Arp(ArpBody {
                op: ArpOp::Request,
                sender_ip: src_ip,
                sender_mac: src_mac,
                target_ip: dst_ip,
            }),
        };
        self.transmit_from_nic(node, ifidx, frame);
        let at = self.now + ARP_RETRY_INTERVAL;
        self.push_event(
            at,
            EventKind::ArpRetry {
                node,
                ifidx,
                dst_ip,
                generation,
            },
        );
    }

    fn transmit_from_nic(&mut self, node: NodeId, ifidx: usize, frame: Frame) {
        if !self.nodes[node.0 as usize].up {
            return;
        }
        let Some(link_id) = self.nodes[node.0 as usize].interfaces[ifidx].link else {
            self.net.frames_dropped.inc();
            return;
        };
        let from = EndpointRef::Nic { node, ifidx };
        self.transmit(link_id, from, frame);
    }

    fn transmit(&mut self, link_id: LinkId, from: EndpointRef, frame: Frame) {
        self.net.frames_sent.inc();
        let (link, a, b) = &mut self.links[link_id.0 as usize];
        let a_to_b = *a == from;
        debug_assert!(a_to_b || *b == from, "endpoint not on link");
        let to = if a_to_b { *b } else { *a };
        let loss = link.spec.loss;
        if loss > 0.0 && self.rng.gen::<f64>() < loss {
            link.loss_drops += 1;
            self.net.frames_dropped.inc();
            return;
        }
        match link.schedule(a_to_b, frame.wire_size(), self.now) {
            Some(arrive) => self.push_event(
                arrive,
                EventKind::FrameAt {
                    to,
                    frame,
                    via: link_id,
                },
            ),
            None => self.net.frames_dropped.inc(),
        }
    }

    fn frame_at_switch(&mut self, switch: SwitchId, ingress: usize, frame: Frame) {
        // Span-port capture sees every frame entering the switch.
        let tap_ids = self.switches[switch.0 as usize].taps.clone();
        for tap_id in tap_ids {
            let rec = PacketRecord::from_frame(self.now, switch, &frame);
            self.taps[tap_id.0 as usize].0.record(rec);
        }
        let decision =
            self.switches[switch.0 as usize].forward(ingress, frame.src_mac, frame.dst_mac);
        match decision {
            Forward::Ports(ports) => {
                for port in ports {
                    // An active partition confines frames to the ingress
                    // port's group.
                    if !self.switches[switch.0 as usize].same_partition_group(ingress, port) {
                        self.switches[switch.0 as usize].partition_drops += 1;
                        self.net.frames_dropped.inc();
                        continue;
                    }
                    if let Some(link_id) = self.switches[switch.0 as usize].ports[port] {
                        let from = EndpointRef::SwitchPort { switch, port };
                        self.transmit(link_id, from, frame.clone());
                    }
                }
            }
            Forward::Drop(_) => {
                self.net.frames_dropped.inc();
            }
        }
    }

    fn frame_at_nic(&mut self, node: NodeId, ifidx: usize, frame: Frame) {
        if !self.nodes[node.0 as usize].up {
            self.net.frames_dropped.inc();
            return;
        }
        self.net.frames_delivered.inc();
        let (my_mac, my_ip) = {
            let iface = &self.nodes[node.0 as usize].interfaces[ifidx];
            (iface.mac, iface.ip)
        };
        let addressed_to_me = frame.dst_mac == my_mac || frame.dst_mac.is_broadcast();
        if !addressed_to_me {
            if self.nodes[node.0 as usize].promiscuous {
                self.call_process(node, |p, ctx| p.on_promiscuous(ctx, ifidx, &frame));
            }
            return;
        }
        match frame.payload {
            EtherPayload::Arp(arp) => self.handle_arp(node, ifidx, my_mac, my_ip, arp),
            EtherPayload::Ip(packet) => self.handle_ip(node, ifidx, my_mac, my_ip, packet),
        }
    }

    fn handle_arp(
        &mut self,
        node: NodeId,
        ifidx: usize,
        my_mac: MacAddr,
        my_ip: IpAddr,
        arp: ArpBody,
    ) {
        match arp.op {
            ArpOp::Request => {
                // Opportunistic learn of the requester (dynamic mode only).
                {
                    let iface = &mut self.nodes[node.0 as usize].interfaces[ifidx];
                    if iface.arp.mode() == ArpMode::Dynamic {
                        iface.arp.learn(arp.sender_ip, arp.sender_mac);
                    }
                }
                let answers_cross = self.nodes[node.0 as usize].answers_arp_for_other_ifaces;
                let owns_target = arp.target_ip == my_ip
                    || (answers_cross
                        && self.nodes[node.0 as usize]
                            .interfaces
                            .iter()
                            .any(|i| i.ip == arp.target_ip));
                if owns_target {
                    let reply = Frame {
                        src_mac: my_mac,
                        dst_mac: arp.sender_mac,
                        payload: EtherPayload::Arp(ArpBody {
                            op: ArpOp::Reply,
                            sender_ip: arp.target_ip,
                            sender_mac: my_mac,
                            target_ip: arp.sender_ip,
                        }),
                    };
                    self.transmit_from_nic(node, ifidx, reply);
                }
            }
            ArpOp::Reply => {
                let learned = {
                    let iface = &mut self.nodes[node.0 as usize].interfaces[ifidx];
                    let before = iface.arp.rejected_updates;
                    let ok = iface.arp.learn(arp.sender_ip, arp.sender_mac);
                    let rejected = iface.arp.rejected_updates - before;
                    if !ok && rejected > 0 {
                        self.net.arp_rejected.add(rejected);
                        self.obs.journal(ObsEvent::PacketDrop {
                            node: node.0,
                            kind: DropKind::Arp,
                        });
                    }
                    ok
                };
                if learned {
                    // Flush packets that were waiting for this resolution.
                    let ready = self.nodes[node.0 as usize].interfaces[ifidx]
                        .pending
                        .remove(&arp.sender_ip)
                        .unwrap_or_default();
                    for pkt in ready {
                        self.host_send(node, ifidx, pkt);
                    }
                }
            }
        }
    }

    fn handle_ip(
        &mut self,
        node: NodeId,
        ifidx: usize,
        _my_mac: MacAddr,
        my_ip: IpAddr,
        packet: Packet,
    ) {
        let is_mine = if self.nodes[node.0 as usize].strict_interface_binding {
            // Strong-host model: only the arrival interface's own address.
            packet.dst_ip == my_ip || packet.dst_ip == IpAddr::BROADCAST
        } else {
            packet.dst_ip == my_ip
                || packet.dst_ip == IpAddr::BROADCAST
                || self.nodes[node.0 as usize]
                    .interfaces
                    .iter()
                    .any(|i| i.ip == packet.dst_ip)
        };
        if !is_mine {
            // Steered here by a poisoned ARP entry: transit traffic.
            let trace = packet.trace;
            self.call_process(node, move |p, ctx| {
                ctx.trace = trace;
                p.on_transit(ctx, ifidx, packet);
            });
            return;
        }
        let permitted = self.nodes[node.0 as usize]
            .firewall
            .permits(Direction::Inbound, &packet);
        if !permitted {
            let n = &mut self.nodes[node.0 as usize];
            n.firewall_drops += 1;
            self.net.firewall_drops.inc();
            self.obs.journal(ObsEvent::PacketDrop {
                node: node.0,
                kind: DropKind::Firewall,
            });
            if packet.kind == TransportKind::TcpSyn && n.firewall.responds_to_blocked_syn() {
                self.respond(node, ifidx, &packet, TransportKind::TcpRst);
            }
            return;
        }
        match packet.kind {
            TransportKind::TcpSyn => {
                let open = self.nodes[node.0 as usize]
                    .listeners
                    .contains(&packet.dst_port);
                let kind = if open {
                    TransportKind::TcpSynAck
                } else {
                    TransportKind::TcpRst
                };
                self.respond(node, ifidx, &packet, kind);
                if open {
                    self.net.packets_to_process.inc();
                    let trace = packet.trace;
                    self.call_process(node, move |p, ctx| {
                        ctx.trace = trace;
                        p.on_packet(ctx, packet);
                    });
                }
            }
            TransportKind::Ping => {
                self.respond(node, ifidx, &packet, TransportKind::Pong);
            }
            _ => {
                self.net.packets_to_process.inc();
                let trace = packet.trace;
                self.call_process(node, move |p, ctx| {
                    ctx.trace = trace;
                    p.on_packet(ctx, packet);
                });
            }
        }
    }

    fn respond(&mut self, node: NodeId, ifidx: usize, to: &Packet, kind: TransportKind) {
        let my_ip = self.nodes[node.0 as usize].interfaces[ifidx].ip;
        let reply = Packet {
            src_ip: my_ip,
            dst_ip: to.src_ip,
            src_port: to.dst_port,
            dst_port: to.src_port,
            kind,
            payload: Bytes::new(),
            trace: to.trace,
        };
        self.host_send(node, ifidx, reply);
    }
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("nodes", &self.nodes.len())
            .field("switches", &self.switches.len())
            .field("links", &self.links.len())
            .field("queued_events", &self.queue.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sends one datagram to a peer on start; records everything received.
    struct Chatter {
        peer: IpAddr,
        received: Vec<Packet>,
        send_on_start: bool,
    }

    impl Chatter {
        fn new(peer: IpAddr, send_on_start: bool) -> Box<Self> {
            Box::new(Chatter {
                peer,
                received: Vec::new(),
                send_on_start,
            })
        }
    }

    impl Process for Chatter {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            if self.send_on_start {
                let pkt = Packet::udp(
                    ctx.ip(0),
                    self.peer,
                    Port(1000),
                    Port(2000),
                    Bytes::from_static(b"hi"),
                );
                ctx.send(0, pkt);
            }
            ctx.listen(Port(2000));
        }

        fn on_packet(&mut self, _ctx: &mut Context<'_>, pkt: Packet) {
            self.received.push(pkt);
        }
    }

    const IP_A: IpAddr = IpAddr::new(10, 0, 0, 1);
    const IP_B: IpAddr = IpAddr::new(10, 0, 0, 2);

    fn two_hosts_on_switch(arp: ArpMode) -> (Simulation, NodeId, NodeId) {
        let mut sim = Simulation::new(1);
        let spec_a = InterfaceSpec {
            ip: IP_A,
            arp_mode: arp,
        };
        let spec_b = InterfaceSpec {
            ip: IP_B,
            arp_mode: arp,
        };
        let a = sim.add_node(NodeSpec::new("a", vec![spec_a], Chatter::new(IP_B, true)));
        let b = sim.add_node(NodeSpec::new("b", vec![spec_b], Chatter::new(IP_A, false)));
        let sw = sim.add_switch(4, SwitchMode::Learning);
        sim.connect(a, 0, sw, 0, LinkSpec::lan());
        sim.connect(b, 0, sw, 1, LinkSpec::lan());
        (sim, a, b)
    }

    #[test]
    fn datagram_delivered_via_dynamic_arp() {
        let (mut sim, _a, b) = two_hosts_on_switch(ArpMode::Dynamic);
        sim.run_for(SimDuration::from_millis(10));
        let recv = &sim.process_ref::<Chatter>(b).expect("chatter").received;
        assert_eq!(recv.len(), 1);
        assert_eq!(recv[0].payload.as_ref(), b"hi");
        assert_eq!(recv[0].src_ip, IP_A);
    }

    #[test]
    fn static_arp_without_entry_cannot_send() {
        let (mut sim, _a, b) = two_hosts_on_switch(ArpMode::Static);
        sim.run_for(SimDuration::from_millis(10));
        assert!(sim
            .process_ref::<Chatter>(b)
            .expect("chatter")
            .received
            .is_empty());
    }

    #[test]
    fn static_arp_with_installed_entries_works() {
        let (mut sim, a, b) = two_hosts_on_switch(ArpMode::Static);
        let mac_b = sim.mac_of(b, 0);
        sim.install_arp(a, 0, IP_B, mac_b);
        // Restart a's process behaviour by re-running start via replace.
        sim.replace_process(a, Chatter::new(IP_B, true));
        sim.run_for(SimDuration::from_millis(10));
        assert_eq!(
            sim.process_ref::<Chatter>(b)
                .expect("chatter")
                .received
                .len(),
            1
        );
    }

    #[test]
    fn down_node_receives_nothing() {
        let (mut sim, _a, b) = two_hosts_on_switch(ArpMode::Dynamic);
        sim.set_node_up(b, false);
        sim.run_for(SimDuration::from_millis(10));
        assert!(sim
            .process_ref::<Chatter>(b)
            .expect("chatter")
            .received
            .is_empty());
        sim.set_node_up(b, true);
        assert!(sim.node_up(b));
    }

    #[test]
    fn firewall_blocks_inbound() {
        let mut sim = Simulation::new(2);
        let a = sim.add_node(NodeSpec::new(
            "a",
            vec![InterfaceSpec::dynamic(IP_A)],
            Chatter::new(IP_B, true),
        ));
        let mut spec_b = NodeSpec::new(
            "b",
            vec![InterfaceSpec::dynamic(IP_B)],
            Chatter::new(IP_A, false),
        );
        spec_b.firewall = Firewall::locked_down();
        let b = sim.add_node(spec_b);
        let sw = sim.add_switch(2, SwitchMode::Learning);
        sim.connect(a, 0, sw, 0, LinkSpec::lan());
        sim.connect(b, 0, sw, 1, LinkSpec::lan());
        sim.run_for(SimDuration::from_millis(10));
        assert!(sim
            .process_ref::<Chatter>(b)
            .expect("chatter")
            .received
            .is_empty());
        assert_eq!(sim.firewall_drops(b), 1);
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerProc {
            fired: Vec<u64>,
        }
        impl Process for TimerProc {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(SimDuration::from_millis(5), 2);
                ctx.set_timer(SimDuration::from_millis(1), 1);
                ctx.set_timer(SimDuration::from_millis(9), 3);
            }
            fn on_timer(&mut self, _ctx: &mut Context<'_>, timer: u64) {
                self.fired.push(timer);
            }
        }
        let mut sim = Simulation::new(3);
        let n = sim.add_node(NodeSpec::new(
            "t",
            vec![InterfaceSpec::dynamic(IP_A)],
            Box::new(TimerProc { fired: vec![] }),
        ));
        sim.run_for(SimDuration::from_millis(20));
        assert_eq!(
            sim.process_ref::<TimerProc>(n).expect("proc").fired,
            vec![1, 2, 3]
        );
    }

    #[test]
    fn determinism_same_seed_same_logs() {
        let run = |seed| {
            let (mut sim, _a, _b) = two_hosts_on_switch(ArpMode::Dynamic);
            let _ = seed;
            sim.run_for(SimDuration::from_millis(10));
            sim.stats()
        };
        assert_eq!(run(1), run(1));
    }

    #[test]
    fn direct_cable_bypasses_switch() {
        let mut sim = Simulation::new(4);
        let a = sim.add_node(NodeSpec::new(
            "plc",
            vec![InterfaceSpec::dynamic(IP_A)],
            Chatter::new(IP_B, true),
        ));
        let b = sim.add_node(NodeSpec::new(
            "proxy",
            vec![InterfaceSpec::dynamic(IP_B)],
            Chatter::new(IP_A, false),
        ));
        sim.connect_direct((a, 0), (b, 0), LinkSpec::cable());
        sim.run_for(SimDuration::from_millis(10));
        assert_eq!(
            sim.process_ref::<Chatter>(b)
                .expect("chatter")
                .received
                .len(),
            1
        );
    }

    #[test]
    fn tap_records_switch_traffic() {
        let mut sim = Simulation::new(5);
        let a = sim.add_node(NodeSpec::new(
            "a",
            vec![InterfaceSpec::dynamic(IP_A)],
            Chatter::new(IP_B, true),
        ));
        let b = sim.add_node(NodeSpec::new(
            "b",
            vec![InterfaceSpec::dynamic(IP_B)],
            Chatter::new(IP_A, false),
        ));
        let sw = sim.add_switch(4, SwitchMode::Learning);
        sim.connect(a, 0, sw, 0, LinkSpec::lan());
        sim.connect(b, 0, sw, 1, LinkSpec::lan());
        let tap = sim.add_tap(sw);
        sim.run_for(SimDuration::from_millis(10));
        assert!(sim.tap(tap).len() >= 3, "ARP request + reply + data");
        let drained = sim.drain_tap(tap);
        assert!(!drained.is_empty());
        assert!(sim.tap(tap).is_empty());
    }

    #[test]
    fn ping_gets_pong() {
        struct Pinger {
            peer: IpAddr,
            pongs: u32,
        }
        impl Process for Pinger {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                let pkt = Packet {
                    src_ip: ctx.ip(0),
                    dst_ip: self.peer,
                    src_port: Port(0),
                    dst_port: Port(0),
                    kind: TransportKind::Ping,
                    payload: Bytes::new(),
                    trace: None,
                };
                ctx.send(0, pkt);
            }
            fn on_packet(&mut self, _ctx: &mut Context<'_>, pkt: Packet) {
                if pkt.kind == TransportKind::Pong {
                    self.pongs += 1;
                }
            }
        }
        let mut sim = Simulation::new(6);
        let a = sim.add_node(NodeSpec::new(
            "a",
            vec![InterfaceSpec::dynamic(IP_A)],
            Box::new(Pinger {
                peer: IP_B,
                pongs: 0,
            }),
        ));
        let b = sim.add_node(NodeSpec::new(
            "b",
            vec![InterfaceSpec::dynamic(IP_B)],
            Chatter::new(IP_A, false),
        ));
        let sw = sim.add_switch(2, SwitchMode::Learning);
        sim.connect(a, 0, sw, 0, LinkSpec::lan());
        sim.connect(b, 0, sw, 1, LinkSpec::lan());
        sim.run_for(SimDuration::from_millis(10));
        assert_eq!(sim.process_ref::<Pinger>(a).expect("pinger").pongs, 1);
    }

    #[test]
    fn syn_to_open_port_synack_closed_rst() {
        struct Scanner {
            peer: IpAddr,
            results: Vec<(Port, TransportKind)>,
        }
        impl Process for Scanner {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                for port in [2000u16, 2001] {
                    let pkt = Packet::syn(ctx.ip(0), self.peer, Port(40000), Port(port));
                    ctx.send(0, pkt);
                }
            }
            fn on_packet(&mut self, _ctx: &mut Context<'_>, pkt: Packet) {
                self.results.push((pkt.src_port, pkt.kind));
            }
        }
        let mut sim = Simulation::new(7);
        let a = sim.add_node(NodeSpec::new(
            "scanner",
            vec![InterfaceSpec::dynamic(IP_A)],
            Box::new(Scanner {
                peer: IP_B,
                results: vec![],
            }),
        ));
        let b = sim.add_node(NodeSpec::new(
            "b",
            vec![InterfaceSpec::dynamic(IP_B)],
            Chatter::new(IP_A, false),
        ));
        let sw = sim.add_switch(2, SwitchMode::Learning);
        sim.connect(a, 0, sw, 0, LinkSpec::lan());
        sim.connect(b, 0, sw, 1, LinkSpec::lan());
        sim.run_for(SimDuration::from_millis(10));
        let results = &sim.process_ref::<Scanner>(a).expect("scanner").results;
        assert_eq!(results.len(), 2);
        let mut sorted = results.clone();
        sorted.sort_by_key(|(p, _)| p.0);
        assert_eq!(sorted[0], (Port(2000), TransportKind::TcpSynAck));
        assert_eq!(sorted[1], (Port(2001), TransportKind::TcpRst));
    }

    #[test]
    fn strict_interface_binding_drops_cross_interface_packets() {
        // Node B has two interfaces; a packet addressed to interface 1's
        // IP but delivered (via broadcast) to interface 0 is dropped under
        // the strong-host model and accepted under the weak-host model.
        struct RawSender {
            target_ip: IpAddr,
        }
        impl Process for RawSender {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                let pkt = Packet::udp(ctx.ip(0), self.target_ip, Port(5), Port(2000), Bytes::new());
                let frame = crate::packet::Frame {
                    src_mac: ctx.mac(0),
                    dst_mac: MacAddr::BROADCAST,
                    payload: crate::packet::EtherPayload::Ip(pkt),
                };
                ctx.send_raw(0, frame);
            }
        }
        let other_ip = IpAddr::new(172, 16, 0, 1);
        for (strict, expect_delivered) in [(true, 0usize), (false, 1usize)] {
            let mut sim = Simulation::new(31);
            let a = sim.add_node(NodeSpec::new(
                "a",
                vec![InterfaceSpec::dynamic(IP_A)],
                Box::new(RawSender {
                    target_ip: other_ip,
                }),
            ));
            let mut spec_b = NodeSpec::new(
                "b",
                vec![
                    InterfaceSpec::dynamic(IP_B),
                    InterfaceSpec::dynamic(other_ip),
                ],
                Chatter::new(IP_A, false),
            );
            spec_b.strict_interface_binding = strict;
            let b = sim.add_node(spec_b);
            let sw = sim.add_switch(2, SwitchMode::Learning);
            sim.connect(a, 0, sw, 0, LinkSpec::lan());
            sim.connect(b, 0, sw, 1, LinkSpec::lan());
            sim.run_for(SimDuration::from_millis(10));
            let got = sim
                .process_ref::<Chatter>(b)
                .expect("chatter")
                .received
                .len();
            assert_eq!(got, expect_delivered, "strict={strict}");
        }
    }

    #[test]
    fn locked_down_target_gives_scanner_nothing() {
        struct Scanner {
            peer: IpAddr,
            responses: u32,
        }
        impl Process for Scanner {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                for port in 2000u16..2010 {
                    ctx.send(
                        0,
                        Packet::syn(ctx.ip(0), self.peer, Port(40000), Port(port)),
                    );
                }
            }
            fn on_packet(&mut self, _ctx: &mut Context<'_>, _pkt: Packet) {
                self.responses += 1;
            }
        }
        let mut sim = Simulation::new(8);
        let a = sim.add_node(NodeSpec::new(
            "scanner",
            vec![InterfaceSpec::dynamic(IP_A)],
            Box::new(Scanner {
                peer: IP_B,
                responses: 0,
            }),
        ));
        let mut spec_b = NodeSpec::new(
            "b",
            vec![InterfaceSpec::dynamic(IP_B)],
            Chatter::new(IP_A, false),
        );
        spec_b.firewall = Firewall::locked_down();
        let b = sim.add_node(spec_b);
        let sw = sim.add_switch(2, SwitchMode::Learning);
        sim.connect(a, 0, sw, 0, LinkSpec::lan());
        sim.connect(b, 0, sw, 1, LinkSpec::lan());
        sim.run_for(SimDuration::from_millis(10));
        // The red team saw *nothing*: no SYN-ACK, no RST.
        assert_eq!(sim.process_ref::<Scanner>(a).expect("scanner").responses, 0);
        assert_eq!(sim.firewall_drops(b), 10);
    }

    /// Two chatters on a direct link with ARP already warm; returns the
    /// link so tests can flap or reshape it.
    fn warm_direct_pair() -> (Simulation, NodeId, NodeId, LinkId) {
        let mut sim = Simulation::new(3);
        let a = sim.add_node(NodeSpec::new(
            "a",
            vec![InterfaceSpec::dynamic(IP_A)],
            Chatter::new(IP_B, true),
        ));
        let b = sim.add_node(NodeSpec::new(
            "b",
            vec![InterfaceSpec::dynamic(IP_B)],
            Chatter::new(IP_A, false),
        ));
        let link = sim.connect_direct((a, 0), (b, 0), LinkSpec::lan());
        sim.run_for(SimDuration::from_millis(1));
        assert_eq!(
            sim.process_ref::<Chatter>(b)
                .expect("chatter")
                .received
                .len(),
            1
        );
        (sim, a, b, link)
    }

    #[test]
    fn downed_link_drops_in_flight_frames() {
        let (mut sim, a, b, link) = warm_direct_pair();
        // Re-send, then take the link down while the frame is in flight:
        // the frame must be lost, not delivered when the link heals.
        sim.replace_process(a, Chatter::new(IP_B, true));
        sim.run_for(SimDuration::from_micros(10));
        sim.set_link_up(link, false);
        assert!(!sim.link_up(link));
        sim.run_for(SimDuration::from_millis(1));
        sim.set_link_up(link, true);
        sim.run_for(SimDuration::from_millis(5));
        assert_eq!(
            sim.process_ref::<Chatter>(b)
                .expect("chatter")
                .received
                .len(),
            1,
            "ghost frame delivered after link heal"
        );
    }

    #[test]
    fn link_loss_and_latency_windows_apply() {
        let (mut sim, a, b, link) = warm_direct_pair();
        // Total loss: nothing new arrives.
        sim.set_link_loss(link, 1.0);
        sim.replace_process(a, Chatter::new(IP_B, true));
        sim.run_for(SimDuration::from_millis(5));
        assert_eq!(
            sim.process_ref::<Chatter>(b)
                .expect("chatter")
                .received
                .len(),
            1
        );
        // Heal the loss, spike the latency: delivery happens, but late.
        sim.set_link_loss(link, 0.0);
        sim.set_link_latency(link, SimDuration::from_millis(2));
        assert_eq!(sim.link_spec(link).latency, SimDuration::from_millis(2));
        sim.replace_process(a, Chatter::new(IP_B, true));
        sim.run_for(SimDuration::from_millis(1));
        assert_eq!(
            sim.process_ref::<Chatter>(b)
                .expect("chatter")
                .received
                .len(),
            1,
            "frame arrived before the spiked latency elapsed"
        );
        sim.run_for(SimDuration::from_millis(5));
        assert_eq!(
            sim.process_ref::<Chatter>(b)
                .expect("chatter")
                .received
                .len(),
            2
        );
    }

    #[test]
    fn switch_partition_confines_frames_to_groups() {
        let (mut sim, a, b) = two_hosts_on_switch(ArpMode::Dynamic);
        let sw = SwitchId(0);
        let mut groups = BTreeMap::new();
        groups.insert(1usize, 1u32); // b's port in group 1, a's in group 0
        sim.set_switch_partition(sw, groups);
        sim.run_for(SimDuration::from_millis(10));
        assert!(sim
            .process_ref::<Chatter>(b)
            .expect("chatter")
            .received
            .is_empty());
        assert!(sim.switch(sw).partition_drops > 0);
        assert!(sim.switch(sw).partition_active());
        // Heal: the ARP retry re-broadcasts, resolution completes, and the
        // packet parked during the partition finally delivers.
        sim.clear_switch_partition(sw);
        sim.run_for(SimDuration::from_millis(600));
        assert!(!sim
            .process_ref::<Chatter>(b)
            .expect("chatter")
            .received
            .is_empty());
        let _ = a;
    }
}
