//! Wide-area multi-site overlay topology.
//!
//! The deployed Spire configurations span several sites — control centers
//! and data centers — connected by a Spines wide-area overlay. Each site
//! runs its own daemons; inter-site links have distinct latency/loss
//! profiles and are provisioned redundantly so that node-disjoint WAN
//! routes exist between any two sites. Spire keeps *two* such overlays
//! with disjoint roles: the **internal** (replication) overlay carries
//! only Prime traffic between SCADA-master replicas, while the
//! **external** (client) overlay connects replicas to PLC/RTU proxies and
//! HMIs. A message belonging to one overlay must never traverse a link of
//! the other — the overlays are separate networks with separate master
//! secrets, not one network with two traffic classes.
//!
//! [`WanTopology`] is the declarative description: sites with per-overlay
//! daemon homes, plus tagged inter-site links. From it the deployment
//! derives each overlay's [`SpinesConfig`] (intra-site full mesh plus
//! that overlay's WAN links only) and selects redundant node-disjoint
//! routes via [`crate::routing::disjoint_routes`].

use std::collections::BTreeSet;

use simnet::types::{IpAddr, Port};

use crate::config::{SpinesConfig, SpinesMode};
use crate::routing;

/// Which of Spire's two Spines networks a daemon or link belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Overlay {
    /// The replication overlay: replicas only, Prime traffic only.
    Internal,
    /// The client overlay: replicas, proxies, and HMIs.
    External,
}

/// One site of the wide-area deployment.
#[derive(Clone, Debug)]
pub struct WanSite {
    /// Human-readable site name (e.g. `"cc-a"`, `"dc-1"`).
    pub name: String,
    /// Internal-overlay daemon ids homed at this site.
    pub internal_daemons: Vec<u32>,
    /// External-overlay daemon ids homed at this site.
    pub external_daemons: Vec<u32>,
}

/// An inter-site WAN link between two daemons of one overlay.
#[derive(Clone, Copy, Debug)]
pub struct WanLink {
    /// One endpoint daemon id.
    pub a: u32,
    /// The other endpoint daemon id.
    pub b: u32,
    /// The overlay the link belongs to.
    pub overlay: Overlay,
    /// One-way propagation delay in microseconds.
    pub latency_us: u64,
    /// Independent frame-loss probability in `[0, 1]`.
    pub loss: f64,
}

/// A multi-site wide-area overlay description.
#[derive(Clone, Debug, Default)]
pub struct WanTopology {
    /// The sites.
    pub sites: Vec<WanSite>,
    /// Inter-site links (both overlays, tagged).
    pub links: Vec<WanLink>,
}

impl WanTopology {
    /// Index of the site homing `daemon` on `overlay`, if any.
    pub fn site_of(&self, overlay: Overlay, daemon: u32) -> Option<usize> {
        self.sites.iter().position(|s| match overlay {
            Overlay::Internal => s.internal_daemons.contains(&daemon),
            Overlay::External => s.external_daemons.contains(&daemon),
        })
    }

    /// The edge set of one overlay: a full mesh within each site (site
    /// LANs are cheap and richly connected) plus exactly the inter-site
    /// links tagged for that overlay. Links of the *other* overlay never
    /// appear — this is what keeps internal traffic off external links.
    pub fn overlay_edges(&self, overlay: Overlay) -> BTreeSet<(u32, u32)> {
        let mut edges = BTreeSet::new();
        for site in &self.sites {
            let daemons = match overlay {
                Overlay::Internal => &site.internal_daemons,
                Overlay::External => &site.external_daemons,
            };
            for (i, &a) in daemons.iter().enumerate() {
                for &b in &daemons[i + 1..] {
                    edges.insert(if a <= b { (a, b) } else { (b, a) });
                }
            }
        }
        for link in &self.links {
            if link.overlay == overlay {
                edges.insert(if link.a <= link.b {
                    (link.a, link.b)
                } else {
                    (link.b, link.a)
                });
            }
        }
        edges
    }

    /// Builds the [`SpinesConfig`] of one overlay from this topology.
    pub fn overlay_config(
        &self,
        overlay: Overlay,
        daemons: impl IntoIterator<Item = (u32, IpAddr)>,
        port: Port,
        master_secret: [u8; 32],
        mode: SpinesMode,
    ) -> SpinesConfig {
        SpinesConfig::with_edges(
            daemons,
            self.overlay_edges(overlay),
            port,
            master_secret,
            mode,
        )
    }

    /// WAN route selection: the node-disjoint routes from `s` to `t`
    /// using only `overlay`'s links. Pure topology analysis (IPs do not
    /// influence routing), so daemon addresses are synthesized.
    pub fn select_routes(&self, overlay: Overlay, s: u32, t: u32) -> Vec<Vec<u32>> {
        let daemons: BTreeSet<u32> = self
            .sites
            .iter()
            .flat_map(|site| match overlay {
                Overlay::Internal => site.internal_daemons.iter().copied(),
                Overlay::External => site.external_daemons.iter().copied(),
            })
            .collect();
        let cfg = SpinesConfig::with_edges(
            daemons
                .into_iter()
                .map(|d| (d, IpAddr::new(10, 99, (d >> 8) as u8, d as u8))),
            self.overlay_edges(overlay),
            Port(0),
            [0; 32],
            SpinesMode::IntrusionTolerant,
        );
        routing::disjoint_routes(&cfg, s, t)
    }

    /// The WAN link between `a` and `b` on `overlay`, if one is declared
    /// (order-free). Used by the deployment to pick per-hop link specs.
    pub fn link_between(&self, overlay: Overlay, a: u32, b: u32) -> Option<&WanLink> {
        self.links
            .iter()
            .find(|l| l.overlay == overlay && ((l.a == a && l.b == b) || (l.a == b && l.b == a)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two sites, two replicas each; two redundant internal WAN links and
    /// one external WAN link.
    fn two_site() -> WanTopology {
        WanTopology {
            sites: vec![
                WanSite {
                    name: "cc-a".into(),
                    internal_daemons: vec![0, 1],
                    external_daemons: vec![0, 1, 10],
                },
                WanSite {
                    name: "cc-b".into(),
                    internal_daemons: vec![2, 3],
                    external_daemons: vec![2, 3, 11],
                },
            ],
            links: vec![
                WanLink {
                    a: 0,
                    b: 2,
                    overlay: Overlay::Internal,
                    latency_us: 2_000,
                    loss: 0.0,
                },
                WanLink {
                    a: 1,
                    b: 3,
                    overlay: Overlay::Internal,
                    latency_us: 3_000,
                    loss: 0.0,
                },
                WanLink {
                    a: 10,
                    b: 11,
                    overlay: Overlay::External,
                    latency_us: 5_000,
                    loss: 0.0,
                },
            ],
        }
    }

    #[test]
    fn overlay_edges_are_disjoint_across_overlays() {
        let t = two_site();
        let internal = t.overlay_edges(Overlay::Internal);
        assert!(internal.contains(&(0, 1)), "intra-site mesh");
        assert!(internal.contains(&(0, 2)), "WAN link");
        assert!(!internal.contains(&(10, 11)), "external WAN link excluded");
        let external = t.overlay_edges(Overlay::External);
        assert!(external.contains(&(10, 11)));
        assert!(!external.contains(&(0, 2)), "internal WAN link excluded");
    }

    #[test]
    fn select_routes_returns_disjoint_cross_site_routes() {
        let t = two_site();
        let routes = t.select_routes(Overlay::Internal, 0, 3);
        // Two node-disjoint routes: 0-2-3 and 0-1-3 (via the 1↔3 link).
        assert_eq!(routes.len(), 2);
        let mut middles = BTreeSet::new();
        for r in &routes {
            assert_eq!(r.first(), Some(&0));
            assert_eq!(r.last(), Some(&3));
            for m in &r[1..r.len() - 1] {
                assert!(middles.insert(*m), "routes share intermediate {m}");
            }
        }
    }

    #[test]
    fn internal_routes_never_use_external_links() {
        let t = two_site();
        let internal_edges = t.overlay_edges(Overlay::Internal);
        for route in t.select_routes(Overlay::Internal, 1, 2) {
            for hop in route.windows(2) {
                let e = if hop[0] <= hop[1] {
                    (hop[0], hop[1])
                } else {
                    (hop[1], hop[0])
                };
                assert!(internal_edges.contains(&e), "hop {e:?} not internal");
            }
        }
    }

    #[test]
    fn site_and_link_lookup() {
        let t = two_site();
        assert_eq!(t.site_of(Overlay::Internal, 3), Some(1));
        assert_eq!(t.site_of(Overlay::External, 10), Some(0));
        assert_eq!(t.site_of(Overlay::Internal, 10), None);
        let l = t.link_between(Overlay::Internal, 2, 0).expect("declared");
        assert_eq!(l.latency_us, 2_000);
        assert!(t.link_between(Overlay::External, 0, 2).is_none());
    }

    #[test]
    fn overlay_config_carries_edges() {
        let t = two_site();
        let cfg = t.overlay_config(
            Overlay::Internal,
            (0..4u32).map(|d| (d, IpAddr::new(10, 10, 0, (d + 1) as u8))),
            Port(8100),
            [7; 32],
            SpinesMode::IntrusionTolerant,
        );
        assert_eq!(cfg.edges, t.overlay_edges(Overlay::Internal));
        assert_eq!(cfg.daemon_count(), 4);
    }
}
