//! Offline stand-in for the `rand` crate.
//!
//! Only the API surface this workspace uses is provided: `StdRng`
//! seeded via `SeedableRng::seed_from_u64`, and the [`Rng`] methods
//! `gen`, `gen_range`, and `gen_bool`. The generator is xoshiro256++
//! seeded through SplitMix64 — deterministic, high-quality, and stable
//! across platforms, which is all the simulation needs. Streams differ
//! from the real crate's ChaCha12 `StdRng`; nothing here depends on the
//! specific stream, only on determinism for a given seed.

use std::ops::Range;

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types a generator can produce uniformly at random via [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample(rng: &mut rngs::StdRng) -> Self;
}

/// Ranges that [`Rng::gen_range`] can sample from uniformly. Generic
/// over the output type (rather than an associated type) so that the
/// expected result type drives inference of unsuffixed range literals,
/// matching the real crate.
pub trait SampleRange<T> {
    /// Samples one value in the range from `rng`.
    fn sample_range(self, rng: &mut rngs::StdRng) -> T;
}

/// The user-facing generator interface.
pub trait Rng {
    /// Returns the next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` uniformly (integers over their full
    /// range, `f64` in `[0, 1)`, `bool` fair).
    fn gen<T: Standard>(&mut self) -> T;

    /// Samples uniformly from `range` (half-open, like the real crate).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SampleRange, SeedableRng, Standard};

    /// The standard deterministic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }

        pub(crate) fn raw_next(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per the xoshiro authors' seeding advice.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.raw_next()
        }

        fn gen<T: Standard>(&mut self) -> T {
            T::sample(self)
        }

        fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
            range.sample_range(self)
        }

        fn gen_bool(&mut self, p: f64) -> bool {
            let v: f64 = self.gen();
            v < p
        }
    }
}

use rngs::StdRng;

impl Standard for u64 {
    fn sample(rng: &mut StdRng) -> u64 {
        rng.raw_next()
    }
}

impl Standard for u32 {
    fn sample(rng: &mut StdRng) -> u32 {
        (rng.raw_next() >> 32) as u32
    }
}

impl Standard for u16 {
    fn sample(rng: &mut StdRng) -> u16 {
        (rng.raw_next() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample(rng: &mut StdRng) -> u8 {
        (rng.raw_next() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample(rng: &mut StdRng) -> usize {
        rng.raw_next() as usize
    }
}

impl Standard for bool {
    fn sample(rng: &mut StdRng) -> bool {
        rng.raw_next() >> 63 == 1
    }
}

impl Standard for f64 {
    fn sample(rng: &mut StdRng) -> f64 {
        // 53 uniform bits into [0, 1).
        (rng.raw_next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample(rng: &mut StdRng) -> [u8; N] {
        let mut out = [0u8; N];
        for chunk in out.chunks_mut(8) {
            let bytes = rng.raw_next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        out
    }
}

/// Uniform integer in `[0, bound)` by rejection sampling (unbiased).
fn uniform_below(rng: &mut StdRng, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.raw_next();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample_range(self, rng: &mut StdRng) -> $t {
                    assert!(self.start < self.end, "cannot sample from an empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    let off = uniform_below(rng, span);
                    (self.start as i128 + off as i128) as $t
                }
            }
        )*
    };
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_range(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let unit: f64 = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17u64);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.05..1.0);
            assert!((0.05..1.0).contains(&f));
            let i = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn unit_f64_in_range_and_varied() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        // Mean of 1000 uniform draws is near 0.5.
        assert!((sum / 1000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn byte_arrays_fill_every_lane() {
        let mut rng = StdRng::seed_from_u64(3);
        let a: [u8; 32] = rng.gen();
        assert!(a.iter().any(|&b| b != 0));
        let b: [u8; 5] = rng.gen();
        assert_eq!(b.len(), 5);
    }
}
