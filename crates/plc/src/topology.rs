//! Electrical topology models and the energization solver.
//!
//! A topology is a graph of sources, buses, and loads whose edges are
//! guarded by breakers. A load is energized iff some path of *closed*
//! breakers connects it to a source. This is the physical ground truth the
//! SCADA masters can always re-poll (§III-A) — the property that lets
//! Spire recover from temporary assumption breaches.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// A vertex in the electrical graph.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum BusNode {
    /// A power source (the grid tie, or a generator).
    Source(u16),
    /// An internal bus.
    Bus(u16),
    /// A load (a building, substation, or remote site).
    Load(u16),
}

/// One breaker-guarded edge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BreakerEdge {
    /// Breaker index (coil/discrete-input address on the owning PLC).
    pub breaker: u16,
    /// Human name as shown on the HMI (e.g. `B10-1`).
    pub name: String,
    /// One endpoint.
    pub a: BusNode,
    /// Other endpoint.
    pub b: BusNode,
}

/// An electrical topology with named loads.
#[derive(Clone, Debug, Default)]
pub struct PowerTopology {
    edges: Vec<BreakerEdge>,
    load_names: BTreeMap<u16, String>,
    source_count: u16,
}

impl PowerTopology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a source and returns its node.
    pub fn add_source(&mut self) -> BusNode {
        let id = self.source_count;
        self.source_count += 1;
        BusNode::Source(id)
    }

    /// Registers a named load and returns its node.
    pub fn add_load(&mut self, id: u16, name: impl Into<String>) -> BusNode {
        self.load_names.insert(id, name.into());
        BusNode::Load(id)
    }

    /// Adds a breaker-guarded edge.
    pub fn add_breaker(&mut self, breaker: u16, name: impl Into<String>, a: BusNode, b: BusNode) {
        self.edges.push(BreakerEdge {
            breaker,
            name: name.into(),
            a,
            b,
        });
    }

    /// All breaker edges.
    pub fn breakers(&self) -> &[BreakerEdge] {
        &self.edges
    }

    /// Number of breakers.
    pub fn breaker_count(&self) -> usize {
        self.edges.len()
    }

    /// The breaker index for a named breaker, if present.
    pub fn breaker_by_name(&self, name: &str) -> Option<u16> {
        self.edges
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.breaker)
    }

    /// Breaker name for an index.
    pub fn breaker_name(&self, breaker: u16) -> Option<&str> {
        self.edges
            .iter()
            .find(|e| e.breaker == breaker)
            .map(|e| e.name.as_str())
    }

    /// Named loads as `(id, name)` pairs.
    pub fn loads(&self) -> impl Iterator<Item = (u16, &str)> {
        self.load_names.iter().map(|(id, n)| (*id, n.as_str()))
    }

    /// Computes which loads are energized given `closed[i]` = breaker `i`
    /// closed. Breakers beyond `closed.len()` are treated as open.
    pub fn energized_loads(&self, closed: &[bool]) -> BTreeMap<u16, bool> {
        let mut adj: BTreeMap<BusNode, Vec<BusNode>> = BTreeMap::new();
        for e in &self.edges {
            if closed.get(e.breaker as usize).copied().unwrap_or(false) {
                adj.entry(e.a).or_default().push(e.b);
                adj.entry(e.b).or_default().push(e.a);
            }
        }
        let mut reached: BTreeMap<BusNode, bool> = BTreeMap::new();
        let mut queue: VecDeque<BusNode> = (0..self.source_count).map(BusNode::Source).collect();
        for s in &queue {
            reached.insert(*s, true);
        }
        while let Some(n) = queue.pop_front() {
            if let Some(neigh) = adj.get(&n) {
                for &m in neigh {
                    if reached.insert(m, true).is_none() {
                        queue.push_back(m);
                    }
                }
            }
        }
        self.load_names
            .keys()
            .map(|&id| (id, reached.contains_key(&BusNode::Load(id))))
            .collect()
    }

    /// Count of energized loads.
    pub fn energized_count(&self, closed: &[bool]) -> usize {
        self.energized_loads(closed)
            .values()
            .filter(|&&v| v)
            .count()
    }

    /// A nominal current (amps) per closed source-side breaker: proportional
    /// to the number of loads it currently feeds. Simple but state-dependent,
    /// so MANA and the HMI have live analog values to display.
    pub fn breaker_current(&self, breaker: u16, closed: &[bool]) -> u16 {
        if !closed.get(breaker as usize).copied().unwrap_or(false) {
            return 0;
        }
        // Current through a breaker ~ loads energized with it closed minus
        // loads energized with it open, times a nominal 100 A.
        let with = self.energized_count(closed);
        let mut open_variant = closed.to_vec();
        if (breaker as usize) < open_variant.len() {
            open_variant[breaker as usize] = false;
        }
        let without = self.energized_count(&open_variant);
        ((with - without) as u16) * 100
    }
}

impl fmt::Display for PowerTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "topology: {} breakers, {} loads",
            self.edges.len(),
            self.load_names.len()
        )?;
        for e in &self.edges {
            writeln!(f, "  {} [{}]: {:?} -- {:?}", e.name, e.breaker, e.a, e.b)?;
        }
        Ok(())
    }
}

/// The scenarios deployed in the paper.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scenario {
    /// Figure 4: the red-team topology — seven breakers, four buildings,
    /// controlled by the one physical PLC.
    RedTeamDistribution,
    /// §V: the plant subset — the three left-hand breakers of Figure 4
    /// (B10-1, B57, B56) wired to real breakers.
    PlantSubset,
    /// The ten emulated PLCs "modeling power distribution to several
    /// substations and remote sites" (§IV-A), indexed 0..10.
    EmulatedDistribution(u8),
    /// The six emulated PLCs of the power-generation scenario created with
    /// the plant engineers (§V), indexed 0..6.
    EmulatedGeneration(u8),
}

impl Scenario {
    /// Builds the topology for this scenario.
    pub fn topology(self) -> PowerTopology {
        match self {
            Scenario::RedTeamDistribution => fig4_topology(),
            Scenario::PlantSubset => plant_subset_topology(),
            Scenario::EmulatedDistribution(i) => substation_topology(i),
            Scenario::EmulatedGeneration(i) => generation_topology(i),
        }
    }

    /// A short identifier used in HMI labels and SCADA state keys.
    pub fn tag(self) -> String {
        match self {
            Scenario::RedTeamDistribution => "jhu".to_string(),
            Scenario::PlantSubset => "plant".to_string(),
            Scenario::EmulatedDistribution(i) => format!("dist{i}"),
            Scenario::EmulatedGeneration(i) => format!("gen{i}"),
        }
    }
}

/// The Figure 4 topology: grid source feeds a main bus through `B10-1`;
/// `B57` and `B56` split it onto two feeder buses; four building breakers
/// (`B3`, `B4`, `B8`, `B9`) hang off the feeders.
pub fn fig4_topology() -> PowerTopology {
    let mut t = PowerTopology::new();
    let grid = t.add_source();
    let main = BusNode::Bus(0);
    let feeder_a = BusNode::Bus(1);
    let feeder_b = BusNode::Bus(2);
    let b1 = t.add_load(0, "Building 1");
    let b2 = t.add_load(1, "Building 2");
    let b3 = t.add_load(2, "Building 3");
    let b4 = t.add_load(3, "Building 4");
    t.add_breaker(0, "B10-1", grid, main);
    t.add_breaker(1, "B57", main, feeder_a);
    t.add_breaker(2, "B56", main, feeder_b);
    t.add_breaker(3, "B3", feeder_a, b1);
    t.add_breaker(4, "B4", feeder_a, b2);
    t.add_breaker(5, "B8", feeder_b, b3);
    t.add_breaker(6, "B9", feeder_b, b4);
    t
}

/// §V plant subset: the three left-hand breakers of Figure 4 in series
/// from the grid tie to one feeder (B10-1 → B57, with B56 as the parallel
/// tie the engineers included).
pub fn plant_subset_topology() -> PowerTopology {
    let mut t = PowerTopology::new();
    let grid = t.add_source();
    let main = BusNode::Bus(0);
    let feeder = t.add_load(0, "Plant feeder");
    let tie = t.add_load(1, "Tie feeder");
    t.add_breaker(0, "B10-1", grid, main);
    t.add_breaker(1, "B57", main, feeder);
    t.add_breaker(2, "B56", main, tie);
    t
}

/// One of the ten emulated distribution PLCs: a substation with a grid
/// tie, two feeder breakers, and three remote-site loads.
pub fn substation_topology(index: u8) -> PowerTopology {
    let mut t = PowerTopology::new();
    let grid = t.add_source();
    let station = BusNode::Bus(0);
    let feeder = BusNode::Bus(1);
    let l0 = t.add_load(0, format!("Substation {index} site A"));
    let l1 = t.add_load(1, format!("Substation {index} site B"));
    let l2 = t.add_load(2, format!("Substation {index} remote"));
    t.add_breaker(0, format!("S{index}-MAIN"), grid, station);
    t.add_breaker(1, format!("S{index}-F1"), station, feeder);
    t.add_breaker(2, format!("S{index}-L1"), feeder, l0);
    t.add_breaker(3, format!("S{index}-L2"), feeder, l1);
    t.add_breaker(4, format!("S{index}-R1"), station, l2);
    t
}

/// One of the six emulated generation PLCs: a generator, its step-up bus,
/// and the tie to the transmission load.
pub fn generation_topology(index: u8) -> PowerTopology {
    let mut t = PowerTopology::new();
    let gen = t.add_source();
    let stepup = BusNode::Bus(0);
    let grid_tie = t.add_load(0, format!("Unit {index} grid tie"));
    let aux = t.add_load(1, format!("Unit {index} auxiliaries"));
    t.add_breaker(0, format!("G{index}-GCB"), gen, stepup);
    t.add_breaker(1, format!("G{index}-TIE"), stepup, grid_tie);
    t.add_breaker(2, format!("G{index}-AUX"), stepup, aux);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_has_seven_breakers_four_buildings() {
        let t = fig4_topology();
        assert_eq!(t.breaker_count(), 7);
        assert_eq!(t.loads().count(), 4);
        assert_eq!(t.breaker_by_name("B10-1"), Some(0));
        assert_eq!(t.breaker_by_name("B57"), Some(1));
        assert_eq!(t.breaker_by_name("B56"), Some(2));
        assert_eq!(t.breaker_name(6), Some("B9"));
        assert_eq!(t.breaker_by_name("NOPE"), None);
    }

    #[test]
    fn all_closed_energizes_all_buildings() {
        let t = fig4_topology();
        let closed = vec![true; 7];
        assert_eq!(t.energized_count(&closed), 4);
    }

    #[test]
    fn opening_main_kills_everything() {
        let t = fig4_topology();
        let mut closed = vec![true; 7];
        closed[0] = false; // B10-1
        assert_eq!(t.energized_count(&closed), 0);
    }

    #[test]
    fn opening_feeder_kills_its_side_only() {
        let t = fig4_topology();
        let mut closed = vec![true; 7];
        closed[1] = false; // B57: feeder A → buildings 1,2 dark
        let energized = t.energized_loads(&closed);
        assert!(!energized[&0]);
        assert!(!energized[&1]);
        assert!(energized[&2]);
        assert!(energized[&3]);
    }

    #[test]
    fn building_breaker_affects_single_load() {
        let t = fig4_topology();
        let mut closed = vec![true; 7];
        closed[3] = false; // B3
        let energized = t.energized_loads(&closed);
        assert!(!energized[&0]);
        assert_eq!(energized.values().filter(|&&v| v).count(), 3);
    }

    #[test]
    fn all_open_nothing_energized() {
        let t = fig4_topology();
        assert_eq!(t.energized_count(&[false; 7]), 0);
        // Short state vectors are treated as open.
        assert_eq!(t.energized_count(&[]), 0);
    }

    #[test]
    fn breaker_current_proportional_to_served_loads() {
        let t = fig4_topology();
        let closed = vec![true; 7];
        // Main breaker carries all four buildings.
        assert_eq!(t.breaker_current(0, &closed), 400);
        // Each feeder carries two.
        assert_eq!(t.breaker_current(1, &closed), 200);
        // A building breaker carries one.
        assert_eq!(t.breaker_current(3, &closed), 100);
        // Open breaker carries nothing.
        let mut open_main = closed.clone();
        open_main[0] = false;
        assert_eq!(t.breaker_current(0, &open_main), 0);
        // And downstream of an open main, feeders carry nothing.
        assert_eq!(t.breaker_current(1, &open_main), 0);
    }

    #[test]
    fn plant_subset_three_breakers() {
        let t = plant_subset_topology();
        assert_eq!(t.breaker_count(), 3);
        let all = vec![true; 3];
        assert_eq!(t.energized_count(&all), 2);
        let mut b57_open = all.clone();
        b57_open[1] = false;
        let e = t.energized_loads(&b57_open);
        assert!(!e[&0]);
        assert!(e[&1]);
    }

    #[test]
    fn scenario_builders() {
        assert_eq!(Scenario::RedTeamDistribution.topology().breaker_count(), 7);
        assert_eq!(Scenario::PlantSubset.topology().breaker_count(), 3);
        assert_eq!(
            Scenario::EmulatedDistribution(3).topology().breaker_count(),
            5
        );
        assert_eq!(
            Scenario::EmulatedGeneration(5).topology().breaker_count(),
            3
        );
        assert_eq!(Scenario::RedTeamDistribution.tag(), "jhu");
        assert_eq!(Scenario::EmulatedDistribution(7).tag(), "dist7");
        assert_eq!(Scenario::EmulatedGeneration(2).tag(), "gen2");
        assert_eq!(Scenario::PlantSubset.tag(), "plant");
    }

    #[test]
    fn substation_remote_fed_from_station_bus() {
        let t = substation_topology(0);
        // Closing MAIN + R1 but not F1 energizes only the remote.
        let closed = vec![true, false, false, false, true];
        let e = t.energized_loads(&closed);
        assert!(!e[&0]);
        assert!(!e[&1]);
        assert!(e[&2]);
    }

    #[test]
    fn display_renders() {
        let s = fig4_topology().to_string();
        assert!(s.contains("7 breakers"));
        assert!(s.contains("B10-1"));
    }
}
