//! External-network message vocabulary (what flows inside Spines
//! payloads between replicas, proxies, and HMIs).

use prime::types::SignedUpdate;
use simnet::wire::{DecodeError, Reader, Wire, Writer};

/// A message on the external Spines network.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ExternalMsg {
    /// A client update (RTU status or HMI command) toward the masters.
    /// The inner update is client-signed; Prime verifies it.
    ClientUpdate(SignedUpdate),
    /// A replica-issued breaker command toward a proxy. Proxies act on
    /// `f+1` matching copies from distinct replicas (matched on all
    /// fields, including `exec_seq`).
    PlcCommand {
        /// Sending replica.
        replica: u32,
        /// Scenario tag.
        scenario: String,
        /// Breaker index.
        breaker: u16,
        /// Desired state.
        close: bool,
        /// Execution sequence of the ordered command.
        exec_seq: u64,
    },
    /// A replica-issued display frame toward an HMI (also `f+1` gated).
    HmiFrame {
        /// Sending replica.
        replica: u32,
        /// Scenario tag.
        scenario: String,
        /// Breaker positions.
        positions: Vec<bool>,
        /// Currents.
        currents: Vec<u16>,
        /// Execution sequence of the status that produced this frame.
        exec_seq: u64,
    },
}

impl Wire for ExternalMsg {
    fn encode(&self, w: &mut Writer) {
        match self {
            ExternalMsg::ClientUpdate(u) => {
                w.put_u8(0);
                u.encode(w);
            }
            ExternalMsg::PlcCommand {
                replica,
                scenario,
                breaker,
                close,
                exec_seq,
            } => {
                w.put_u8(1).put_u32(*replica);
                w.put_bytes(scenario.as_bytes());
                w.put_u16(*breaker).put_bool(*close).put_u64(*exec_seq);
            }
            ExternalMsg::HmiFrame {
                replica,
                scenario,
                positions,
                currents,
                exec_seq,
            } => {
                w.put_u8(2).put_u32(*replica);
                w.put_bytes(scenario.as_bytes());
                w.put_u32(positions.len() as u32);
                for &p in positions {
                    w.put_bool(p);
                }
                w.put_u32(currents.len() as u32);
                for &c in currents {
                    w.put_u16(c);
                }
                w.put_u64(*exec_seq);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let get_str = |r: &mut Reader<'_>| -> Result<String, DecodeError> {
            String::from_utf8(r.get_bytes()?).map_err(|_| DecodeError::new("utf8"))
        };
        Ok(match r.get_u8()? {
            0 => ExternalMsg::ClientUpdate(SignedUpdate::decode(r)?),
            1 => ExternalMsg::PlcCommand {
                replica: r.get_u32()?,
                scenario: get_str(r)?,
                breaker: r.get_u16()?,
                close: r.get_bool()?,
                exec_seq: r.get_u64()?,
            },
            2 => {
                let replica = r.get_u32()?;
                let scenario = get_str(r)?;
                let np = r.get_u32()? as usize;
                if np > 4096 {
                    return Err(DecodeError::new("positions length"));
                }
                let positions = (0..np).map(|_| r.get_bool()).collect::<Result<_, _>>()?;
                let nc = r.get_u32()? as usize;
                if nc > 4096 {
                    return Err(DecodeError::new("currents length"));
                }
                let currents = (0..nc).map(|_| r.get_u16()).collect::<Result<_, _>>()?;
                let exec_seq = r.get_u64()?;
                ExternalMsg::HmiFrame {
                    replica,
                    scenario,
                    positions,
                    currents,
                    exec_seq,
                }
            }
            _ => return Err(DecodeError::new("external message tag")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use itcrypto::keys::KeyPair;
    use prime::types::Update;

    fn signed_update() -> SignedUpdate {
        let mut kp = KeyPair::generate(1);
        let update = Update::new(0, 1, Bytes::from_static(b"payload"));
        let sig = kp.sign(&update.to_wire());
        SignedUpdate { update, sig }
    }

    #[test]
    fn roundtrips() {
        let msgs = [
            ExternalMsg::ClientUpdate(signed_update()),
            ExternalMsg::PlcCommand {
                replica: 2,
                scenario: "jhu".into(),
                breaker: 3,
                close: true,
                exec_seq: 42,
            },
            ExternalMsg::HmiFrame {
                replica: 1,
                scenario: "plant".into(),
                positions: vec![true, false],
                currents: vec![100, 0],
                exec_seq: 7,
            },
        ];
        for m in msgs {
            assert_eq!(ExternalMsg::from_wire(&m.to_wire()).expect("roundtrip"), m);
        }
    }

    #[test]
    fn malformed_rejected() {
        assert!(ExternalMsg::from_wire(&[9]).is_err());
        let good = ExternalMsg::PlcCommand {
            replica: 0,
            scenario: "x".into(),
            breaker: 0,
            close: false,
            exec_seq: 0,
        }
        .to_wire();
        assert!(ExternalMsg::from_wire(&good[..good.len() - 2]).is_err());
    }
}
