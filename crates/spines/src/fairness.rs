//! Per-source fair queuing for overlay forwarding.
//!
//! Spines' intrusion-tolerant mode guarantees that a malicious daemon
//! flooding traffic cannot starve other sources: each forwarding
//! opportunity drains per-source queues round-robin. The red team spent
//! their root-and-source-access phase "attempting ... to break the
//! fairness properties of the intrusion-tolerant network" (§IV-B) — this
//! module is the mechanism that held.

use std::collections::{BTreeMap, VecDeque};

/// A queued item tagged with its source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueuedItem<T> {
    /// Source daemon id.
    pub src: u32,
    /// The queued value.
    pub value: T,
}

/// Round-robin fair queue over sources, with a per-source depth cap.
#[derive(Clone, Debug)]
pub struct FairQueue<T> {
    queues: BTreeMap<u32, VecDeque<T>>,
    /// Sources in round-robin order; index of the next source to serve.
    order: Vec<u32>,
    cursor: usize,
    per_source_cap: usize,
    /// Items dropped because a source exceeded its cap (flooders lose
    /// their *own* traffic, nobody else's).
    pub cap_drops: u64,
}

impl<T> FairQueue<T> {
    /// Creates a queue bounding each source to `per_source_cap` entries.
    pub fn new(per_source_cap: usize) -> Self {
        FairQueue {
            queues: BTreeMap::new(),
            order: Vec::new(),
            cursor: 0,
            per_source_cap,
            cap_drops: 0,
        }
    }

    /// Enqueues an item from `src`. Returns false (and counts a drop) if
    /// the source is at its cap.
    pub fn push(&mut self, src: u32, value: T) -> bool {
        let q = self.queues.entry(src).or_insert_with(|| {
            self.order.push(src);
            VecDeque::new()
        });
        if q.len() >= self.per_source_cap {
            self.cap_drops += 1;
            return false;
        }
        q.push_back(value);
        true
    }

    /// Dequeues up to `budget` items, serving sources round-robin.
    pub fn drain(&mut self, budget: usize) -> Vec<QueuedItem<T>> {
        let mut out = Vec::new();
        if self.order.is_empty() {
            return out;
        }
        let mut idle_rounds = 0;
        while out.len() < budget && idle_rounds < self.order.len() {
            if self.cursor >= self.order.len() {
                self.cursor = 0;
            }
            let src = self.order[self.cursor];
            self.cursor += 1;
            match self.queues.get_mut(&src).and_then(|q| q.pop_front()) {
                Some(value) => {
                    idle_rounds = 0;
                    out.push(QueuedItem { src, value });
                }
                None => idle_rounds += 1,
            }
        }
        out
    }

    /// Total queued items across all sources.
    pub fn len(&self) -> usize {
        self.queues.values().map(|q| q.len()).sum()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Queued depth for one source.
    pub fn depth(&self, src: u32) -> usize {
        self.queues.get(&src).map_or(0, |q| q.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_source_fifo() {
        let mut q = FairQueue::new(10);
        for i in 0..5 {
            assert!(q.push(1, i));
        }
        let out = q.drain(10);
        assert_eq!(
            out.iter().map(|i| i.value).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        assert!(q.is_empty());
    }

    #[test]
    fn round_robin_across_sources() {
        let mut q = FairQueue::new(10);
        for i in 0..3 {
            q.push(1, format!("a{i}"));
            q.push(2, format!("b{i}"));
        }
        let out = q.drain(4);
        let srcs: Vec<u32> = out.iter().map(|i| i.src).collect();
        assert_eq!(srcs, vec![1, 2, 1, 2]);
    }

    #[test]
    fn flooder_cannot_starve_others() {
        let mut q = FairQueue::new(1000);
        // Source 66 floods 900 items; source 1 has 10.
        for i in 0..900 {
            q.push(66, i);
        }
        for i in 0..10 {
            q.push(1, 10_000 + i);
        }
        // With a budget of 20, source 1 still gets ~half the service.
        let out = q.drain(20);
        let from_1 = out.iter().filter(|i| i.src == 1).count();
        assert_eq!(
            from_1, 10,
            "legitimate source fully served within one drain"
        );
        let from_66 = out.iter().filter(|i| i.src == 66).count();
        assert_eq!(from_66, 10);
    }

    #[test]
    fn per_source_cap_drops_only_flooder() {
        let mut q = FairQueue::new(5);
        for i in 0..10 {
            q.push(66, i);
        }
        assert_eq!(q.depth(66), 5);
        assert_eq!(q.cap_drops, 5);
        assert!(q.push(1, 0), "other sources unaffected");
    }

    #[test]
    fn drain_respects_budget_and_empties() {
        let mut q = FairQueue::new(10);
        for i in 0..7 {
            q.push(1, i);
        }
        assert_eq!(q.drain(3).len(), 3);
        assert_eq!(q.len(), 4);
        assert_eq!(q.drain(100).len(), 4);
        assert_eq!(q.drain(100).len(), 0);
    }

    #[test]
    fn empty_drain() {
        let mut q: FairQueue<u8> = FairQueue::new(4);
        assert!(q.drain(5).is_empty());
        assert_eq!(q.depth(3), 0);
    }
}
