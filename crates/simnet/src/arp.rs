//! ARP tables — the man-in-the-middle battleground.
//!
//! §III-B: "on each machine, we set up a static mapping of MAC addresses to
//! IP addresses and turned off the default ability for a NIC to answer ARP
//! requests for an IP address assigned to another NIC on the same machine."
//!
//! [`ArpMode::Dynamic`] tables learn from any reply (including gratuitous
//! ones — the poisoning vector the red team used against the commercial
//! system). [`ArpMode::Static`] tables ignore network input entirely.

use std::collections::BTreeMap;

use crate::types::{IpAddr, MacAddr};

/// How the table treats ARP traffic.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArpMode {
    /// Learn mappings from replies (and opportunistically from requests),
    /// including unsolicited/gratuitous replies. Poisonable.
    Dynamic,
    /// Only entries installed by the operator are used; all learned input is
    /// ignored. This is the hardened deployment profile.
    Static,
}

/// A per-interface ARP table.
#[derive(Clone, Debug)]
pub struct ArpTable {
    mode: ArpMode,
    entries: BTreeMap<IpAddr, MacAddr>,
    /// Count of ignored update attempts (useful to observe poisoning
    /// attempts that bounced off a static table).
    pub rejected_updates: u64,
}

impl ArpTable {
    /// Creates an empty table in the given mode.
    pub fn new(mode: ArpMode) -> Self {
        ArpTable {
            mode,
            entries: BTreeMap::new(),
            rejected_updates: 0,
        }
    }

    /// The table's mode.
    pub fn mode(&self) -> ArpMode {
        self.mode
    }

    /// Installs a mapping administratively (always allowed; this is the
    /// operator seeding static entries, or a host's own configuration).
    pub fn install(&mut self, ip: IpAddr, mac: MacAddr) {
        self.entries.insert(ip, mac);
    }

    /// Applies a mapping learned from the network. In static mode this is
    /// rejected and counted.
    pub fn learn(&mut self, ip: IpAddr, mac: MacAddr) -> bool {
        match self.mode {
            ArpMode::Dynamic => {
                self.entries.insert(ip, mac);
                true
            }
            ArpMode::Static => {
                self.rejected_updates += 1;
                false
            }
        }
    }

    /// Resolves an IP to a MAC, if known.
    pub fn resolve(&self, ip: IpAddr) -> Option<MacAddr> {
        self.entries.get(&ip).copied()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over entries (for diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = (&IpAddr, &MacAddr)> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::NodeId;

    const IP_A: IpAddr = IpAddr::new(10, 0, 0, 1);
    const IP_B: IpAddr = IpAddr::new(10, 0, 0, 2);

    fn mac(n: u32) -> MacAddr {
        MacAddr::derived(NodeId(n), 0)
    }

    #[test]
    fn dynamic_learns_and_overwrites() {
        let mut t = ArpTable::new(ArpMode::Dynamic);
        assert!(t.learn(IP_A, mac(1)));
        assert_eq!(t.resolve(IP_A), Some(mac(1)));
        // Gratuitous reply overwrites — the poisoning primitive.
        assert!(t.learn(IP_A, mac(66)));
        assert_eq!(t.resolve(IP_A), Some(mac(66)));
        assert_eq!(t.rejected_updates, 0);
    }

    #[test]
    fn static_rejects_learning_but_accepts_install() {
        let mut t = ArpTable::new(ArpMode::Static);
        t.install(IP_A, mac(1));
        assert!(!t.learn(IP_A, mac(66)));
        assert_eq!(t.resolve(IP_A), Some(mac(1)));
        assert_eq!(t.rejected_updates, 1);
        // Unknown IPs simply don't resolve.
        assert_eq!(t.resolve(IP_B), None);
    }

    #[test]
    fn len_and_iter() {
        let mut t = ArpTable::new(ArpMode::Dynamic);
        assert!(t.is_empty());
        t.install(IP_A, mac(1));
        t.install(IP_B, mac(2));
        assert_eq!(t.len(), 2);
        assert_eq!(t.iter().count(), 2);
        assert_eq!(t.mode(), ArpMode::Dynamic);
    }
}
