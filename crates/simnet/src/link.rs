//! Point-to-point links with latency, bandwidth, loss, and up/down state.
//!
//! Every attachment in the simulation — NIC to switch port, switch to
//! switch, or the direct PLC-to-proxy cable from §III-B — is a link. The
//! bandwidth model (serialization delay plus a bounded transmit queue) is
//! what makes denial-of-service bursts *mean* something: a flooded link
//! delays and then drops legitimate frames.

use crate::time::{SimDuration, SimTime};

/// Static link parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkSpec {
    /// One-way propagation delay.
    pub latency: SimDuration,
    /// Capacity in bits per second. `u64::MAX` disables serialization delay.
    pub bandwidth_bps: u64,
    /// Independent drop probability per frame in `[0, 1]`.
    pub loss: f64,
    /// Maximum backlog (in frames) the transmit queue holds before tail-drop.
    pub queue_frames: u32,
}

impl LinkSpec {
    /// A LAN-like default: 50us latency, 1 Gbps, lossless, 256-frame queue.
    pub fn lan() -> Self {
        LinkSpec {
            latency: SimDuration::from_micros(50),
            bandwidth_bps: 1_000_000_000,
            loss: 0.0,
            queue_frames: 256,
        }
    }

    /// A direct physical cable (the PLC-to-proxy wire): 5us, 100 Mbps.
    pub fn cable() -> Self {
        LinkSpec {
            latency: SimDuration::from_micros(5),
            bandwidth_bps: 100_000_000,
            loss: 0.0,
            queue_frames: 64,
        }
    }

    /// A WAN-ish link for the enterprise/ISP boundary: 5ms, 100 Mbps.
    pub fn wan() -> Self {
        LinkSpec {
            latency: SimDuration::from_millis(5),
            bandwidth_bps: 100_000_000,
            loss: 0.0,
            queue_frames: 256,
        }
    }

    /// Serialization delay for a frame of `bytes` length.
    pub fn serialization(&self, bytes: usize) -> SimDuration {
        if self.bandwidth_bps == u64::MAX {
            return SimDuration::ZERO;
        }
        let bits = bytes as u64 * 8;
        SimDuration::from_micros(bits.saturating_mul(1_000_000) / self.bandwidth_bps)
    }
}

impl Default for LinkSpec {
    fn default() -> Self {
        LinkSpec::lan()
    }
}

/// Identifies a link in the simulation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct LinkId(pub u32);

/// Per-direction transmit state.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct TxState {
    /// Time at which the transmitter becomes free.
    pub busy_until: SimTime,
    /// Frames currently queued (including the one in flight).
    pub queued: u32,
}

/// Runtime state of a link.
#[derive(Clone, Debug)]
pub struct Link {
    /// Static parameters.
    pub spec: LinkSpec,
    /// Whether the link is passing traffic.
    pub up: bool,
    pub(crate) tx_ab: TxState,
    pub(crate) tx_ba: TxState,
    /// Frames dropped due to queue overflow (per link, both directions).
    pub overflow_drops: u64,
    /// Frames dropped by random loss.
    pub loss_drops: u64,
}

impl Link {
    /// Creates an idle link from a spec.
    pub fn new(spec: LinkSpec) -> Self {
        Link {
            spec,
            up: true,
            tx_ab: TxState::default(),
            tx_ba: TxState::default(),
            overflow_drops: 0,
            loss_drops: 0,
        }
    }

    /// Computes the arrival time for a frame of `bytes` entering the given
    /// direction at `now`, updating queue state. Returns `None` if the frame
    /// is tail-dropped.
    pub(crate) fn schedule(&mut self, a_to_b: bool, bytes: usize, now: SimTime) -> Option<SimTime> {
        if !self.up {
            return None;
        }
        let spec = self.spec;
        let tx = if a_to_b {
            &mut self.tx_ab
        } else {
            &mut self.tx_ba
        };
        // Drain logically completed transmissions.
        if tx.busy_until <= now {
            tx.queued = 0;
        }
        if tx.queued >= spec.queue_frames {
            self.overflow_drops += 1;
            return None;
        }
        let start = tx.busy_until.max(now);
        let done = start + spec.serialization(bytes);
        tx.busy_until = done;
        tx.queued += 1;
        Some(done + spec.latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_delay() {
        let spec = LinkSpec {
            bandwidth_bps: 1_000_000,
            ..LinkSpec::lan()
        };
        // 125 bytes = 1000 bits at 1 Mbps = 1000us.
        assert_eq!(spec.serialization(125), SimDuration::from_micros(1000));
        let inf = LinkSpec {
            bandwidth_bps: u64::MAX,
            ..LinkSpec::lan()
        };
        assert_eq!(inf.serialization(1_000_000), SimDuration::ZERO);
    }

    #[test]
    fn idle_link_delivers_after_latency_plus_serialization() {
        let mut link = Link::new(LinkSpec {
            latency: SimDuration::from_micros(100),
            bandwidth_bps: 8_000_000, // 1 byte/us
            loss: 0.0,
            queue_frames: 4,
        });
        let arrive = link.schedule(true, 50, SimTime(1000)).expect("delivered");
        assert_eq!(arrive, SimTime(1000 + 50 + 100));
    }

    #[test]
    fn back_to_back_frames_queue() {
        let mut link = Link::new(LinkSpec {
            latency: SimDuration::ZERO,
            bandwidth_bps: 8_000_000,
            loss: 0.0,
            queue_frames: 4,
        });
        let t1 = link.schedule(true, 100, SimTime(0)).expect("first");
        let t2 = link.schedule(true, 100, SimTime(0)).expect("second");
        assert_eq!(t1, SimTime(100));
        assert_eq!(t2, SimTime(200));
    }

    #[test]
    fn queue_overflow_drops() {
        let mut link = Link::new(LinkSpec {
            latency: SimDuration::ZERO,
            bandwidth_bps: 8_000_000,
            loss: 0.0,
            queue_frames: 2,
        });
        assert!(link.schedule(true, 1000, SimTime(0)).is_some());
        assert!(link.schedule(true, 1000, SimTime(0)).is_some());
        assert!(link.schedule(true, 1000, SimTime(0)).is_none());
        assert_eq!(link.overflow_drops, 1);
        // After the backlog clears, new frames pass again.
        assert!(link.schedule(true, 1000, SimTime(10_000)).is_some());
    }

    #[test]
    fn directions_are_independent() {
        let mut link = Link::new(LinkSpec {
            latency: SimDuration::ZERO,
            bandwidth_bps: 8_000_000,
            loss: 0.0,
            queue_frames: 1,
        });
        assert!(link.schedule(true, 1000, SimTime(0)).is_some());
        // Opposite direction has its own queue.
        assert!(link.schedule(false, 1000, SimTime(0)).is_some());
        assert!(link.schedule(true, 1000, SimTime(0)).is_none());
    }

    #[test]
    fn down_link_drops_everything() {
        let mut link = Link::new(LinkSpec::lan());
        link.up = false;
        assert!(link.schedule(true, 10, SimTime(0)).is_none());
    }
}
