//! Overlay network configuration.

use std::collections::{BTreeMap, BTreeSet};

use simnet::types::{IpAddr, Port};

/// Operating mode of a Spines network.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpinesMode {
    /// Open-source default: no link crypto, legacy diagnostic path active.
    /// This is the configuration whose vulnerability the red team found.
    Legacy,
    /// The deployment configuration: per-link authenticated encryption and
    /// the legacy code paths disabled.
    IntrusionTolerant,
}

/// Static configuration shared by all daemons of one overlay network.
#[derive(Clone, Debug)]
pub struct SpinesConfig {
    /// Daemon id → IP address on this network.
    pub daemons: BTreeMap<u32, IpAddr>,
    /// Overlay edges (unordered daemon-id pairs).
    pub edges: BTreeSet<(u32, u32)>,
    /// UDP port all daemons use on this network.
    pub port: Port,
    /// Network master secret; per-link keys are derived from it. In the
    /// real system this is provisioned out-of-band at configuration time.
    pub master_secret: [u8; 32],
    /// Operating mode.
    pub mode: SpinesMode,
}

impl SpinesConfig {
    /// Builds a full-mesh overlay over the given daemons.
    pub fn full_mesh(
        daemons: impl IntoIterator<Item = (u32, IpAddr)>,
        port: Port,
        master_secret: [u8; 32],
        mode: SpinesMode,
    ) -> Self {
        let daemons: BTreeMap<u32, IpAddr> = daemons.into_iter().collect();
        let ids: Vec<u32> = daemons.keys().copied().collect();
        let mut edges = BTreeSet::new();
        for (i, &a) in ids.iter().enumerate() {
            for &b in &ids[i + 1..] {
                edges.insert((a, b));
            }
        }
        SpinesConfig {
            daemons,
            edges,
            port,
            master_secret,
            mode,
        }
    }

    /// Builds an overlay with explicit edges.
    pub fn with_edges(
        daemons: impl IntoIterator<Item = (u32, IpAddr)>,
        edges: impl IntoIterator<Item = (u32, u32)>,
        port: Port,
        master_secret: [u8; 32],
        mode: SpinesMode,
    ) -> Self {
        let edges = edges
            .into_iter()
            .map(|(a, b)| if a <= b { (a, b) } else { (b, a) })
            .collect();
        SpinesConfig {
            daemons: daemons.into_iter().collect(),
            edges,
            port,
            master_secret,
            mode,
        }
    }

    /// The neighbors of a daemon in the overlay.
    pub fn neighbors(&self, id: u32) -> Vec<u32> {
        self.edges
            .iter()
            .filter_map(|&(a, b)| {
                if a == id {
                    Some(b)
                } else if b == id {
                    Some(a)
                } else {
                    None
                }
            })
            .collect()
    }

    /// The derived key for the link between `a` and `b` (order-free).
    pub fn link_key(&self, a: u32, b: u32) -> [u8; 32] {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let label = format!("spines-link-{lo}-{hi}");
        itcrypto::hmac::derive_key(&self.master_secret, label.as_bytes())
    }

    /// IP address of a daemon.
    pub fn addr_of(&self, id: u32) -> Option<IpAddr> {
        self.daemons.get(&id).copied()
    }

    /// Daemon id for an IP address, if the address belongs to the overlay.
    pub fn id_of(&self, addr: IpAddr) -> Option<u32> {
        self.daemons
            .iter()
            .find(|(_, &a)| a == addr)
            .map(|(&id, _)| id)
    }

    /// Number of daemons.
    pub fn daemon_count(&self) -> usize {
        self.daemons.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: u32) -> Vec<(u32, IpAddr)> {
        (0..n)
            .map(|i| (i, IpAddr::new(10, 1, 0, (i + 1) as u8)))
            .collect()
    }

    #[test]
    fn full_mesh_edges() {
        let cfg =
            SpinesConfig::full_mesh(addrs(4), Port(8100), [0; 32], SpinesMode::IntrusionTolerant);
        assert_eq!(cfg.edges.len(), 6);
        assert_eq!(cfg.neighbors(0), vec![1, 2, 3]);
        assert_eq!(cfg.daemon_count(), 4);
    }

    #[test]
    fn explicit_edges_normalized() {
        let cfg = SpinesConfig::with_edges(
            addrs(3),
            [(2, 0), (1, 2)],
            Port(8100),
            [0; 32],
            SpinesMode::Legacy,
        );
        assert!(cfg.edges.contains(&(0, 2)));
        assert!(cfg.edges.contains(&(1, 2)));
        assert_eq!(cfg.neighbors(2), vec![0, 1]);
        assert_eq!(cfg.neighbors(0), vec![2]);
    }

    #[test]
    fn link_keys_symmetric_and_distinct() {
        let cfg =
            SpinesConfig::full_mesh(addrs(3), Port(8100), [7; 32], SpinesMode::IntrusionTolerant);
        assert_eq!(cfg.link_key(0, 1), cfg.link_key(1, 0));
        assert_ne!(cfg.link_key(0, 1), cfg.link_key(0, 2));
        // Different master secret → different keys.
        let other =
            SpinesConfig::full_mesh(addrs(3), Port(8100), [8; 32], SpinesMode::IntrusionTolerant);
        assert_ne!(cfg.link_key(0, 1), other.link_key(0, 1));
    }

    #[test]
    fn addr_and_id_lookup() {
        let cfg = SpinesConfig::full_mesh(addrs(2), Port(8100), [0; 32], SpinesMode::Legacy);
        assert_eq!(cfg.addr_of(1), Some(IpAddr::new(10, 1, 0, 2)));
        assert_eq!(cfg.id_of(IpAddr::new(10, 1, 0, 1)), Some(0));
        assert_eq!(cfg.addr_of(9), None);
        assert_eq!(cfg.id_of(IpAddr::new(9, 9, 9, 9)), None);
    }
}
