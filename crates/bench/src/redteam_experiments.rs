//! Experiments E1–E3 and E10: the red-team exercise (§IV) and the
//! hardening ablation (§VI-A).

use crate::harness::RunMeta;
use plc::emulator::PlcEmulator;
use plc::logic::LogicConfig;
use plc::topology::Scenario;
use prime::replica::Timing;
use prime::types::Config as PrimeConfig;
use redteam::attacker::{AttackStep, Attacker, MitmConfig};
use redteam::excursion::{run_excursion, ExcursionReport};
use redteam::lab::{addr, CommercialLab};
use redteam::report::{AttackOutcome, AttackReport};
use scada::commercial::CommercialHmi;
use simnet::sim::{InterfaceSpec, NodeSpec};
use simnet::time::{SimDuration, SimTime};
use simnet::types::{IpAddr, Port};
use spire::config::{SpireConfig, EXTERNAL_SPINES_PORT, INTERNAL_SPINES_PORT};
use spire::deploy::Deployment;
use spire::hardening::HardeningProfile;

/// Attacker address on the Spire operations network.
const SPIRE_ATTACKER_IP: IpAddr = IpAddr::new(10, 20, 0, 66);

fn fast_timing() -> Timing {
    Timing {
        aru_interval: SimDuration::from_millis(10),
        pp_interval: SimDuration::from_millis(10),
        suspect_timeout: SimDuration::from_millis(2_000),
        checkpoint_interval: 20,
        catchup_timeout: SimDuration::from_millis(300),
    }
}

/// Builds the standard Spire target: red-team prime config, Figure 4
/// scenario, breaker cycle running.
fn spire_target(hardening: HardeningProfile, seed: u64) -> Deployment {
    let cfg = SpireConfig::minimal(PrimeConfig::red_team(), Scenario::RedTeamDistribution)
        .with_cycle(
            Scenario::RedTeamDistribution,
            SimDuration::from_millis(500),
            0,
        );
    let mut d = Deployment::build(cfg, hardening, seed);
    for i in 0..4 {
        d.replica_mut(i).set_timing(fast_timing());
    }
    d
}

/// E1 — the red team against the commercial system: every attack from
/// §IV-B's first two paragraphs, executed and verified.
pub fn e1_commercial_attacks(seed: u64) -> AttackReport {
    e1_commercial_attacks_meta(seed).0
}

/// [`e1_commercial_attacks`] plus the determinism captures of both labs
/// (the golden-digest and bench inputs).
pub fn e1_commercial_attacks_meta(seed: u64) -> (AttackReport, Vec<RunMeta>) {
    let mut report = AttackReport::new();

    // Phase 1: from the enterprise network — dump, then re-upload PLC
    // configuration through the weak boundary.
    let mut lab = CommercialLab::build(seed, true);
    let mut attacker = Attacker::new();
    attacker.schedule(SimTime(500_000), AttackStep::ModbusDump { plc: addr::PLC });
    let node = lab.attach_enterprise_attacker(CommercialLab::attacker_spec(
        addr::ENTERPRISE_ATTACKER,
        attacker,
    ));
    lab.sim.run_for(SimDuration::from_secs(2));
    let dumped = lab
        .sim
        .process_ref::<Attacker>(node)
        .expect("attacker")
        .observed
        .dumped_config
        .clone();
    report.add(
        "PLC memory dump (enterprise net)",
        "commercial",
        if dumped.is_some() {
            AttackOutcome::Succeeded
        } else {
            AttackOutcome::Defeated
        },
        "unauthenticated Modbus through the boundary firewall",
    );
    if let Some(image) = dumped {
        let mut cfg = LogicConfig::from_image(&image).expect("factory image parses");
        cfg.force_open_mask = 0x7F;
        let mut uploader = Attacker::new();
        uploader.schedule(
            SimTime(2_100_000),
            AttackStep::ModbusUpload {
                plc: addr::PLC,
                image: cfg.to_image(),
            },
        );
        let n2 = lab.attach_enterprise_attacker(CommercialLab::attacker_spec(
            IpAddr::new(10, 40, 0, 67),
            uploader,
        ));
        lab.sim.run_for(SimDuration::from_secs(3));
        let acked = lab
            .sim
            .process_ref::<Attacker>(n2)
            .expect("attacker")
            .observed
            .upload_acked;
        let plc_taken = lab
            .sim
            .process_ref::<PlcEmulator>(lab.plc)
            .expect("plc")
            .energized_loads()
            == 0;
        report.add(
            "PLC config upload → control device",
            "commercial",
            if acked && plc_taken {
                AttackOutcome::Succeeded
            } else {
                AttackOutcome::Defeated
            },
            "modified configuration forced every breaker open",
        );
    }

    // Phase 2: on the operations network — MITM the HMI and inject
    // commands while hiding the evidence.
    let mut lab2 = CommercialLab::build(seed + 1, true);
    lab2.sim.run_for(SimDuration::from_secs(1));
    let mut mitm = Attacker::new();
    mitm.schedule(
        SimTime(1_100_000),
        AttackStep::ArpPoison {
            victim: addr::PRIMARY,
            claim_ip: addr::HMI,
            count: 5,
        },
    );
    mitm.schedule(
        SimTime(1_500_000),
        AttackStep::InjectCommercialCommand {
            master: addr::PRIMARY,
            breaker: 0,
            close: false,
        },
    );
    mitm.mitm = Some(MitmConfig {
        rewrite_status_all_closed: true,
        forward: true,
    });
    let node = lab2.attach_ops_attacker(CommercialLab::attacker_spec(addr::OPS_ATTACKER, mitm));
    lab2.sim.run_for(SimDuration::from_secs(4));
    let plc_open = !lab2
        .sim
        .process_ref::<PlcEmulator>(lab2.plc)
        .expect("plc")
        .positions()[0];
    let hmi = lab2
        .sim
        .process_ref::<CommercialHmi>(lab2.hmi)
        .expect("hmi");
    let operator_blind = hmi.positions == vec![true; 7];
    let obs = &lab2
        .sim
        .process_ref::<Attacker>(node)
        .expect("attacker")
        .observed;
    report.add(
        "unauthenticated command injection",
        "commercial",
        if plc_open {
            AttackOutcome::Succeeded
        } else {
            AttackOutcome::Defeated
        },
        "master accepts supervisory commands from anyone",
    );
    report.add(
        "ARP MITM: forge HMI updates",
        "commercial",
        if operator_blind && obs.rewritten >= 1 {
            AttackOutcome::Succeeded
        } else {
            AttackOutcome::Defeated
        },
        "operator display shows forged all-closed state",
    );
    let metas = vec![
        RunMeta::capture("e1.enterprise-lab", &lab.obs, &lab.sim),
        RunMeta::capture("e1.ops-lab", &lab2.obs, &lab2.sim),
    ];
    (report, metas)
}

/// Result of E2 including service-continuity evidence.
#[derive(Clone, Debug)]
pub struct E2Result {
    /// The attack matrix.
    pub report: AttackReport,
    /// HMI frames applied before attacks began.
    pub frames_before: u64,
    /// HMI frames applied after all attacks.
    pub frames_after: u64,
    /// ARP poisoning attempts rejected by static tables.
    pub arp_rejections: u64,
    /// Spoofed/keyless frames rejected by Spines link crypto.
    pub spines_auth_failures: u64,
    /// Determinism capture of the deployment (digest + event count).
    pub meta: RunMeta,
}

/// E2 — the same network attacks against Spire: port scan, ARP poisoning,
/// IP spoofing, DoS bursts. All fail; the breaker cycle never stops.
pub fn e2_spire_network_attacks(seed: u64) -> E2Result {
    let mut d = spire_target(HardeningProfile::deployed(), seed);
    d.run_for(SimDuration::from_secs(4));
    let frames_before = d.hmi(0).stats.frames_applied;

    let t0 = d.now();
    let mut attacker = Attacker::new();
    let replica_ext = d.cfg.replica_external_ip(0);
    let hmi_ip = d.cfg.hmi_ip(0);
    attacker.schedule(
        t0 + SimDuration::from_millis(100),
        AttackStep::PortScan {
            target: replica_ext,
            from_port: 8000,
            to_port: 8300,
        },
    );
    attacker.schedule(
        t0 + SimDuration::from_millis(600),
        AttackStep::ArpPoison {
            victim: hmi_ip,
            claim_ip: replica_ext,
            count: 20,
        },
    );
    attacker.schedule(
        t0 + SimDuration::from_millis(1_200),
        AttackStep::SpinesProbe {
            target: replica_ext,
            port: EXTERNAL_SPINES_PORT,
            payload: vec![1; 200],
        },
    );
    // IP-spoofed injection: forge an allowed peer's source address.
    attacker.schedule(
        t0 + SimDuration::from_millis(1_500),
        AttackStep::DosBurst {
            target: replica_ext,
            port: EXTERNAL_SPINES_PORT,
            pps: 2_000,
            duration: SimDuration::from_secs(2),
            spoof_src: Some(d.cfg.proxy_ip(0)),
            payload: 400,
        },
    );
    let node = d.attach_external_attacker(attacker_spec(attacker));
    d.run_for(SimDuration::from_secs(6));
    let frames_after = d.hmi(0).stats.frames_applied;

    let obs = d
        .sim
        .process_ref::<Attacker>(node)
        .expect("attacker")
        .observed
        .clone();
    let arp_rejections: u64 = (0..d.cfg.n())
        .map(|i| d.sim.arp_rejections(d.replica_nodes[i as usize], 1))
        .chain(std::iter::once(d.sim.arp_rejections(d.hmi_nodes[0], 0)))
        .sum();
    let spines_auth_failures: u64 = (0..d.cfg.n())
        .map(|i| d.replica(i).external.stats.auth_failures)
        .sum();

    let mut report = AttackReport::new();
    report.add(
        "port scan (300 ports)",
        "spire",
        if obs.scan_results.is_empty() {
            AttackOutcome::NoVisibility
        } else {
            AttackOutcome::Succeeded
        },
        format!(
            "{} SYNs sent, {} responses — default-deny drops silently",
            obs.syns_sent,
            obs.scan_results.len()
        ),
    );
    report.add(
        "ARP poisoning",
        "spire",
        if arp_rejections > 0 {
            AttackOutcome::Defeated
        } else {
            AttackOutcome::Succeeded
        },
        format!("static ARP tables rejected {arp_rejections} gratuitous replies"),
    );
    report.add(
        "unauthenticated Spines injection",
        "spire",
        if obs.spines_probes_sent > 0 && frames_after > frames_before {
            AttackOutcome::Defeated
        } else {
            AttackOutcome::Succeeded
        },
        "link authentication rejects outsider frames",
    );
    report.add(
        "DoS burst (spoofed source)",
        "spire",
        if frames_after > frames_before {
            AttackOutcome::Defeated
        } else {
            AttackOutcome::Succeeded
        },
        format!(
            "{} packets sent; breaker cycle continued",
            obs.dos_packets_sent
        ),
    );
    E2Result {
        report,
        frames_before,
        frames_after,
        arp_rejections,
        spines_auth_failures,
        meta: RunMeta::capture("e2.deployment", &d.obs, &d.sim),
    }
}

fn attacker_spec(attacker: Attacker) -> NodeSpec {
    let mut spec = NodeSpec::new(
        "red-team",
        vec![InterfaceSpec::dynamic(SPIRE_ATTACKER_IP)],
        Box::new(attacker),
    );
    spec.promiscuous = true;
    spec
}

/// E3 — the compromised-replica excursion (§IV-B, day 3).
pub fn e3_replica_excursion(seed: u64) -> ExcursionReport {
    e3_replica_excursion_meta(seed).0
}

/// [`e3_replica_excursion`] plus the deployment's determinism capture.
pub fn e3_replica_excursion_meta(seed: u64) -> (ExcursionReport, RunMeta) {
    let mut d = spire_target(HardeningProfile::deployed(), seed);
    d.run_for(SimDuration::from_secs(4));
    let report = run_excursion(&mut d, 3);
    let meta = RunMeta::capture("e3.deployment", &d.obs, &d.sim);
    (report, meta)
}

/// One row of the E10 hardening-ablation matrix.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Which switch was turned off ("(full)" = nothing).
    pub disabled: String,
    /// Whether the port scan gained visibility (any response came back).
    pub scan_visible: bool,
    /// Whether ARP poisoning took effect on a victim's table.
    pub arp_poisoned: bool,
    /// Whether claiming another device's MAC captured its traffic path
    /// (learning-switch CAM takeover).
    pub mac_spoof_accepted: bool,
    /// Whether the replication (internal Spines) traffic path was
    /// reachable by the attacker at all.
    pub internal_reachable: bool,
    /// Whether internal addressing leaked via cross-interface ARP answers.
    pub internal_addr_leaked: bool,
    /// Whether the PLC answered attacker Modbus directly.
    pub plc_exposed: bool,
    /// Whether known kernel/sshd escalation works on this OS profile.
    pub root_escalation: bool,
    /// Whether the breaker cycle kept making progress regardless.
    pub service_progressed: bool,
}

/// E10 — re-run the attack suite with each §III-B hardening switch turned
/// off, one at a time.
pub fn e10_hardening_ablation(seed: u64) -> Vec<AblationRow> {
    e10_hardening_ablation_meta(seed).0
}

/// [`e10_hardening_ablation`] plus one determinism capture per ablation
/// case (each case is its own deployment).
pub fn e10_hardening_ablation_meta(seed: u64) -> (Vec<AblationRow>, Vec<RunMeta>) {
    let mut rows = Vec::new();
    let mut metas = Vec::new();
    let mut configs: Vec<(String, HardeningProfile)> =
        vec![("(full hardening)".into(), HardeningProfile::deployed())];
    for &name in HardeningProfile::switch_names() {
        configs.push((format!("-{name}"), HardeningProfile::without(name)));
    }
    for (i, (label, profile)) in configs.into_iter().enumerate() {
        let (row, meta) = run_ablation_case(label, profile, seed + i as u64);
        rows.push(row);
        metas.push(meta);
    }
    (rows, metas)
}

fn run_ablation_case(
    label: String,
    profile: HardeningProfile,
    seed: u64,
) -> (AblationRow, RunMeta) {
    let mut d = spire_target(profile, seed);
    d.run_for(SimDuration::from_secs(3));
    let frames_before = d.hmi(0).stats.frames_applied;
    let t0 = d.now();

    let replica_ext = d.cfg.replica_external_ip(0);
    let replica_int = d.cfg.internal_ip(0);
    let peer_int = d.cfg.internal_ip(1);
    let proxy_ip = d.cfg.proxy_ip(0);
    let plc_cable = d.cfg.plc_cable_ip(0);
    let proxy_mac = simnet::types::MacAddr::derived(d.proxy_nodes[0], 0);

    let mut attacker = Attacker::new();
    // Scan a range spanning the Spines ports.
    attacker.schedule(
        t0 + SimDuration::from_millis(100),
        AttackStep::PortScan {
            target: replica_ext,
            from_port: 8110,
            to_port: 8150,
        },
    );
    // Poison the proxy's view of replica 0 (would reroute its updates).
    attacker.schedule(
        t0 + SimDuration::from_millis(400),
        AttackStep::ArpPoison {
            victim: proxy_ip,
            claim_ip: replica_ext,
            count: 10,
        },
    );
    // Claim the proxy's MAC (CAM takeover on a learning switch).
    attacker.schedule(
        t0 + SimDuration::from_millis(600),
        AttackStep::MacSpoof {
            impersonate: proxy_mac,
            count: 5,
        },
    );
    // Probe the replication network with a forged internal-peer source:
    // the firewall trusts the peer, so only physical isolation (or the
    // strong-host model) keeps this away from the internal daemon.
    attacker.schedule(
        t0 + SimDuration::from_millis(800),
        AttackStep::SpoofedProbe {
            target: replica_int,
            port: INTERNAL_SPINES_PORT,
            spoof_src: peer_int,
            payload: vec![2; 64],
        },
    );
    // Ask who owns the internal address (cross-interface ARP leak).
    attacker.schedule(
        t0 + SimDuration::from_millis(1_000),
        AttackStep::Ping {
            target: replica_int,
        },
    );
    // Try the PLC directly (only reachable when not behind the proxy).
    attacker.schedule(
        t0 + SimDuration::from_millis(1_200),
        AttackStep::ModbusDump { plc: plc_cable },
    );
    let node = d.attach_external_attacker(attacker_spec(attacker));
    d.run_for(SimDuration::from_secs(4));

    let obs = d
        .sim
        .process_ref::<Attacker>(node)
        .expect("attacker")
        .observed
        .clone();
    let internal_auth_failures: u64 = (0..d.cfg.n())
        .map(|i| d.replica(i).internal.stats.auth_failures + d.replica(i).internal.stats.malformed)
        .sum();
    // Poison success: the attacker's forged mapping stuck in the proxy's table.
    let atk_mac = simnet::types::MacAddr::derived(node, 0);
    let arp_poisoned = d.sim.arp_entry(d.proxy_nodes[0], 0, replica_ext) == Some(atk_mac);
    // CAM takeover: the switch now maps the proxy's MAC to a different port.
    let mac_spoof_accepted = match &d.sim.switch(d.external_switch).mode {
        simnet::switch::SwitchMode::Learning => {
            d.sim
                .switch(d.external_switch)
                .cam_entry(proxy_mac)
                .is_some()
                && d.sim.switch(d.external_switch).ingress_violations == 0
        }
        simnet::switch::SwitchMode::Static { .. } => false,
    };
    // Cross-interface ARP leak: the attacker resolved an internal address
    // on the external network.
    let internal_addr_leaked = d.sim.arp_entry(node, 0, replica_int).is_some();
    let row = AblationRow {
        disabled: label,
        scan_visible: !obs.scan_results.is_empty(),
        arp_poisoned,
        mac_spoof_accepted,
        internal_reachable: internal_auth_failures > 0,
        internal_addr_leaked,
        plc_exposed: obs.device_id.is_some(),
        root_escalation: d
            .hardening
            .os
            .vulnerable_to(diversity::os::CveClass::DirtyCow),
        service_progressed: d.hmi(0).stats.frames_applied > frames_before,
    };
    let meta = RunMeta::capture(&format!("e10.{}", row.disabled), &d.obs, &d.sim);
    (row, meta)
}

/// Renders the ablation matrix.
pub fn render_ablation(rows: &[AblationRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22} {:>6} {:>7} {:>9} {:>9} {:>9} {:>7} {:>6} {:>8}\n",
        "disabled switch",
        "scan",
        "poison",
        "mac-spoof",
        "int-reach",
        "addr-leak",
        "plc",
        "root",
        "svc-ok"
    ));
    out.push_str(&format!("{}\n", "-".repeat(94)));
    for r in rows {
        out.push_str(&format!(
            "{:<22} {:>6} {:>7} {:>9} {:>9} {:>9} {:>7} {:>6} {:>8}\n",
            r.disabled,
            r.scan_visible,
            r.arp_poisoned,
            r.mac_spoof_accepted,
            r.internal_reachable,
            r.internal_addr_leaked,
            r.plc_exposed,
            r.root_escalation,
            r.service_progressed
        ));
    }
    out
}

/// The port the attacker scans from (exported for tests).
pub const SCAN_SOURCE_PORT: Port = Port(31337);
