//! The proactive-recovery scheduler.
//!
//! §II: "we use proactive recovery to periodically take each replica down
//! and restore it to a known clean state with a new diverse variant of the
//! code. ... to withstand f intrusions when k replicas may be
//! simultaneously undergoing proactive recovery, a total of 3f + 2k + 1
//! replicas are needed."

use simnet::time::{SimDuration, SimTime};

use crate::variant::{MultiCompiler, Variant};

/// A scheduled recovery action.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RecoveryEvent {
    /// Which replica goes down.
    pub replica: u32,
    /// When it goes down.
    pub start: SimTime,
    /// When it comes back (clean, with `new_variant`).
    pub finish: SimTime,
    /// The fresh variant it returns with.
    pub new_variant: Variant,
}

/// Round-robin proactive-recovery scheduler: every `interval`, the next
/// replica (at most `k` simultaneously) is rejuvenated; each rejuvenation
/// takes `downtime` and installs a newly compiled variant.
#[derive(Clone, Debug)]
pub struct RecoveryScheduler {
    n: u32,
    k: u32,
    interval: SimDuration,
    downtime: SimDuration,
    next_replica: u32,
    next_start: SimTime,
    seed_counter: u64,
    in_flight: Vec<RecoveryEvent>,
    /// Completed recoveries.
    pub completed: u64,
}

impl RecoveryScheduler {
    /// Creates a scheduler for `n` replicas, at most `k` down at once,
    /// starting one recovery every `interval`, each lasting `downtime`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` (use no scheduler instead) or `n == 0`.
    pub fn new(n: u32, k: u32, interval: SimDuration, downtime: SimDuration) -> Self {
        assert!(n > 0 && k > 0, "scheduler requires n > 0 and k > 0");
        RecoveryScheduler {
            n,
            k,
            interval,
            downtime,
            next_replica: 0,
            next_start: SimTime::ZERO + interval,
            seed_counter: 1000,
            in_flight: Vec::new(),
            completed: 0,
        }
    }

    /// Advances to `now`, returning newly started recovery events. The
    /// caller takes the replica down, and at `finish` brings it back with
    /// `new_variant` and triggers Prime's recovery/state-transfer path.
    pub fn poll(&mut self, now: SimTime) -> Vec<RecoveryEvent> {
        // Retire finished recoveries.
        let before = self.in_flight.len();
        self.in_flight.retain(|e| e.finish > now);
        self.completed += (before - self.in_flight.len()) as u64;
        let mut started = Vec::new();
        while self.next_start <= now && (self.in_flight.len() as u32) < self.k {
            self.seed_counter += 1;
            let event = RecoveryEvent {
                replica: self.next_replica,
                start: self.next_start,
                finish: self.next_start + self.downtime,
                new_variant: MultiCompiler::compile(self.seed_counter),
            };
            self.next_replica = (self.next_replica + 1) % self.n;
            self.next_start += self.interval;
            self.in_flight.push(event);
            started.push(event);
        }
        started
    }

    /// Starts an immediate, out-of-band recovery of `replica` (the
    /// response controller's feedback path: a *suspected* replica jumps
    /// the round-robin queue). Returns `None` — and schedules nothing —
    /// if the `k` budget is already spent or the replica is already down,
    /// so a triggered recovery can never overdraw the budget the periodic
    /// path respects. A fresh diverse variant is compiled exactly as for
    /// periodic rejuvenations.
    pub fn trigger(&mut self, replica: u32, now: SimTime) -> Option<RecoveryEvent> {
        let before = self.in_flight.len();
        self.in_flight.retain(|e| e.finish > now);
        self.completed += (before - self.in_flight.len()) as u64;
        if (self.in_flight.len() as u32) >= self.k
            || self.in_flight.iter().any(|e| e.replica == replica)
        {
            return None;
        }
        self.seed_counter += 1;
        let event = RecoveryEvent {
            replica,
            start: now,
            finish: now + self.downtime,
            new_variant: MultiCompiler::compile(self.seed_counter),
        };
        self.in_flight.push(event);
        Some(event)
    }

    /// Re-anchors the periodic clock so the first rejuvenation fires one
    /// interval after `now`. Deployments that spend a warm-up or training
    /// phase before the recovery policy goes live call this once at
    /// go-live; otherwise the first [`RecoveryScheduler::poll`] would
    /// back-fill every interval elapsed since sim-zero as an immediate
    /// burst of recoveries.
    pub fn align(&mut self, now: SimTime) {
        self.next_start = now + self.interval;
    }

    /// Replicas currently down for recovery at `now`.
    pub fn down_at(&self, now: SimTime) -> Vec<u32> {
        self.in_flight
            .iter()
            .filter(|e| e.start <= now && now < e.finish)
            .map(|e| e.replica)
            .collect()
    }

    /// The rejuvenation period for a full cycle over all replicas.
    pub fn full_cycle(&self) -> SimDuration {
        self.interval.saturating_mul(self.n as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> RecoveryScheduler {
        RecoveryScheduler::new(6, 1, SimDuration::from_secs(60), SimDuration::from_secs(20))
    }

    #[test]
    fn round_robin_order() {
        let mut s = sched();
        let mut order = Vec::new();
        for minute in 1..=7 {
            for e in s.poll(SimTime(minute * 60_000_000)) {
                order.push(e.replica);
            }
        }
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5, 0]);
    }

    #[test]
    fn at_most_k_simultaneous() {
        let mut s =
            RecoveryScheduler::new(6, 1, SimDuration::from_secs(10), SimDuration::from_secs(60));
        // Downtime exceeds interval: recoveries would overlap; k=1 blocks.
        let first = s.poll(SimTime(10_000_000));
        assert_eq!(first.len(), 1);
        let blocked = s.poll(SimTime(20_000_000));
        assert!(
            blocked.is_empty(),
            "second recovery deferred while first is down"
        );
        assert_eq!(s.down_at(SimTime(30_000_000)), vec![0]);
        // After the first finishes, the next can start.
        let resumed = s.poll(SimTime(75_000_000));
        assert_eq!(resumed.len(), 1);
        assert_eq!(resumed[0].replica, 1);
        assert_eq!(s.completed, 1);
    }

    #[test]
    fn triggered_recovery_respects_k_and_rotates_variants() {
        let mut s = sched();
        let e = s.trigger(4, SimTime(5_000_000)).expect("budget free");
        assert_eq!(e.replica, 4);
        assert_eq!(e.finish, SimTime(25_000_000));
        // k = 1: a second trigger while the first is down is refused,
        // as is re-triggering the same replica.
        assert!(s.trigger(2, SimTime(6_000_000)).is_none());
        assert!(s.trigger(4, SimTime(6_000_000)).is_none());
        // After it finishes, the budget frees up and variants rotate.
        let e2 = s
            .trigger(4, SimTime(30_000_000))
            .expect("budget free again");
        assert_ne!(e.new_variant.layout, e2.new_variant.layout);
        assert_eq!(s.completed, 1);
    }

    #[test]
    fn fresh_variant_each_recovery() {
        let mut s = sched();
        let a = s.poll(SimTime(60_000_000));
        let b = s.poll(SimTime(120_000_000));
        assert_ne!(a[0].new_variant.layout, b[0].new_variant.layout);
    }

    #[test]
    fn down_at_window() {
        let mut s = sched();
        let events = s.poll(SimTime(60_000_000));
        let e = events[0];
        assert_eq!(s.down_at(e.start), vec![e.replica]);
        assert_eq!(s.down_at(SimTime(e.finish.0 - 1)), vec![e.replica]);
        assert!(s.down_at(e.finish).is_empty());
    }

    #[test]
    fn full_cycle_length() {
        assert_eq!(sched().full_cycle(), SimDuration::from_secs(360));
    }

    #[test]
    #[should_panic(expected = "n > 0 and k > 0")]
    fn zero_k_panics() {
        let _ = RecoveryScheduler::new(6, 0, SimDuration::from_secs(1), SimDuration::from_secs(1));
    }
}
