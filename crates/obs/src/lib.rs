//! Deterministic observability for the simulated Spire deployment.
//!
//! The paper's evidence is observational — view-change counts over six
//! days, auth-failure tallies during the red-team excursion, reaction
//! latency distributions — so the reproduction needs one source of
//! truth for telemetry instead of ad-hoc counters scattered per crate.
//! This crate provides it:
//!
//! * a metrics registry ([`ObsHub`]) of named counters, gauges, and
//!   log-scale latency [`Histogram`]s, stamped with **simulated** time;
//! * an append-only structured [`Event`] journal whose byte encoding is
//!   deterministic for a given seed and hashable into a single run
//!   digest ([`ObsHub::journal_digest`]);
//! * a renderable per-run snapshot ([`ObsReport`]).
//!
//! Components hold a private hub by default, so unit tests need no
//! wiring; a deployment replaces it with one shared hub via each
//! component's `attach_obs`, making every counter and journal record
//! land in the same registry. Handles are `Arc`-shared so the parallel
//! scheduler's worker threads can increment them directly, and hot
//! paths (per-frame drop accounting) cache a `Counter` rather than
//! re-resolving the name. Journal appends made inside a parallel shard
//! window detour through a thread-local [`sink::ShardSink`] so the
//! merged journal stays byte-identical to a sequential run.

pub mod event;
pub mod hist;
pub mod prof;
pub mod report;
pub mod sink;
pub mod trace;

pub use event::{Event, TimedEvent};
pub use hist::{Histogram, HistogramSummary};
pub use report::ObsReport;
pub use trace::{SpanId, Stage, TraceCtx, TraceId};

use itcrypto::sha256::{Digest, Sha256};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A named monotone counter. Cloning shares the underlying cell, so
/// hot paths cache the handle instead of re-resolving the name.
///
/// Backed by a relaxed atomic: increments commute, and the parallel
/// scheduler only *reads* counters at window barriers, so the final
/// value is exact regardless of which worker thread incremented.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A named instantaneous value (last write wins).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A shared histogram handle (see [`Histogram`] for the bucketing).
///
/// Bucket increments commute, so concurrent recording from worker
/// threads yields the same histogram as any sequential interleaving.
#[derive(Clone, Debug, Default)]
pub struct HistogramHandle(Arc<Mutex<Histogram>>);

impl HistogramHandle {
    fn lock(&self) -> std::sync::MutexGuard<'_, Histogram> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Records one sample (typically microseconds of simulated time).
    pub fn record(&self, value: u64) {
        self.lock().record(value);
    }

    /// Snapshot of count/min/p50/p99/max/mean.
    pub fn summary(&self) -> HistogramSummary {
        self.lock().summary()
    }

    /// Value at quantile `q` in `[0, 1]` (clamped to observed min/max).
    pub fn quantile(&self, q: f64) -> u64 {
        self.lock().quantile(q)
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.lock().count()
    }
}

#[derive(Default)]
struct Inner {
    /// Simulated time in microseconds, advanced by the scheduler.
    now_us: AtomicU64,
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, HistogramHandle>>,
    journal: Mutex<Vec<TimedEvent>>,
    /// When set, journal appends are echoed to stdout (`--trace`).
    trace: AtomicBool,
    /// When set, span APIs allocate ids and journal start/end records.
    tracing: AtomicBool,
    /// Last allocated trace id (ids start at 1).
    last_trace: AtomicU64,
    /// Last allocated span id (ids start at 1; 0 encodes "root").
    last_span: AtomicU64,
}

/// Locks `m`, shrugging off poison: every guarded structure stays
/// internally consistent even if an unrelated panic unwound mid-hold.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The observability hub: metrics registry + event journal, stamped
/// with simulated time. Cheap to clone; clones share all state.
#[derive(Clone, Default)]
pub struct ObsHub {
    inner: Arc<Inner>,
}

impl ObsHub {
    /// Creates an empty hub at simulated time zero.
    pub fn new() -> Self {
        ObsHub::default()
    }

    /// Whether two handles share the same underlying registry.
    pub fn same_hub(&self, other: &ObsHub) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    // ---- simulated clock ----

    /// Advances the simulated clock; called by the scheduler on
    /// dispatch. The clock is clamped to monotonic: a caller handing
    /// in an earlier time (e.g. a component attached from a second,
    /// younger simulation) is journaled as a [`Event::ClockSkew`] and
    /// otherwise ignored, so span durations can never underflow.
    pub fn set_now_us(&self, now_us: u64) {
        if let Some(cur) = sink::now_us() {
            // A shard sink is installed on this thread: the clock (and
            // any skew record) belongs to the shard, not the shared hub.
            if now_us < cur {
                self.journal(Event::ClockSkew {
                    from_us: cur,
                    to_us: now_us,
                });
                return;
            }
            sink::set_now_us(now_us);
            return;
        }
        let cur = self.inner.now_us.load(Ordering::Relaxed);
        if now_us < cur {
            self.journal(Event::ClockSkew {
                from_us: cur,
                to_us: now_us,
            });
            return;
        }
        self.inner.now_us.store(now_us, Ordering::Relaxed);
    }

    /// Current simulated time in microseconds. Inside a parallel shard
    /// window this is the shard's clock, so in-dispatch readers observe
    /// per-event time exactly as under the sequential scheduler.
    pub fn now_us(&self) -> u64 {
        sink::now_us().unwrap_or_else(|| self.inner.now_us.load(Ordering::Relaxed))
    }

    // ---- metrics registry ----

    /// Returns the counter registered under `name`, creating it at zero.
    pub fn counter(&self, name: &str) -> Counter {
        let mut reg = lock(&self.inner.counters);
        if let Some(c) = reg.get(name) {
            return c.clone();
        }
        let c = Counter::default();
        reg.insert(name.to_string(), c.clone());
        c
    }

    /// Current value of counter `name` (zero if never registered).
    pub fn counter_value(&self, name: &str) -> u64 {
        lock(&self.inner.counters).get(name).map_or(0, Counter::get)
    }

    /// Sum of all counters whose name starts with `prefix`.
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        lock(&self.inner.counters)
            .iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .map(|(_, c)| c.get())
            .sum()
    }

    /// Returns the gauge registered under `name`, creating it at zero.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut reg = lock(&self.inner.gauges);
        if let Some(g) = reg.get(name) {
            return g.clone();
        }
        let g = Gauge::default();
        reg.insert(name.to_string(), g.clone());
        g
    }

    /// Returns the histogram registered under `name`, creating it empty.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        let mut reg = lock(&self.inner.histograms);
        if let Some(h) = reg.get(name) {
            return h.clone();
        }
        let h = HistogramHandle::default();
        reg.insert(name.to_string(), h.clone());
        h
    }

    // ---- event journal ----

    /// Enables/disables echoing journal records to stdout as they land.
    pub fn set_trace(&self, on: bool) {
        self.inner.trace.store(on, Ordering::Relaxed);
    }

    /// Whether journal records are echoed to stdout as they land.
    pub fn trace_echo(&self) -> bool {
        self.inner.trace.load(Ordering::Relaxed)
    }

    /// Appends `event` to the journal at the current simulated time.
    /// Inside a parallel shard window the record lands in the thread's
    /// [`sink::ShardSink`] instead, stamped with the shard's clock; the
    /// coordinator splices the per-shard runs back into this journal in
    /// sequential order at the window barrier. (Stdout echo only exists
    /// on the shared path — echoing forces the sequential scheduler.)
    pub fn journal(&self, event: Event) {
        let Some(event) = sink::append(event) else {
            return;
        };
        let rec = TimedEvent {
            at_us: self.inner.now_us.load(Ordering::Relaxed),
            event,
        };
        if self.trace_echo() {
            println!("[{:>12.6}s] {}", rec.at_us as f64 / 1e6, rec.event);
        }
        lock(&self.inner.journal).push(rec);
    }

    /// Appends pre-stamped records (a merged shard window) verbatim.
    pub fn journal_extend(&self, records: impl IntoIterator<Item = TimedEvent>) {
        lock(&self.inner.journal).extend(records);
    }

    /// Number of journal records.
    pub fn journal_len(&self) -> usize {
        lock(&self.inner.journal).len()
    }

    /// A copy of the journal (tests and report rendering).
    pub fn journal_records(&self) -> Vec<TimedEvent> {
        lock(&self.inner.journal).clone()
    }

    /// Number of journal records matching `pred`.
    pub fn journal_count(&self, pred: impl Fn(&Event) -> bool) -> usize {
        lock(&self.inner.journal)
            .iter()
            .filter(|r| pred(&r.event))
            .count()
    }

    /// SHA-256 over the canonical byte encoding of every journal
    /// record, in order: the run's identity. Two runs with the same
    /// seed must produce byte-identical digests.
    pub fn journal_digest(&self) -> Digest {
        let mut h = Sha256::new();
        let mut buf = Vec::with_capacity(64);
        for rec in lock(&self.inner.journal).iter() {
            buf.clear();
            rec.encode_into(&mut buf);
            h.update(&buf);
        }
        h.finalize()
    }

    // ---- causal tracing ----

    /// Enables/disables causal tracing. Off by default: untraced runs
    /// journal no span records and keep their historical digests.
    pub fn set_tracing(&self, on: bool) {
        self.inner.tracing.store(on, Ordering::Relaxed);
    }

    /// Whether span APIs are live.
    pub fn tracing(&self) -> bool {
        self.inner.tracing.load(Ordering::Relaxed)
    }

    /// Opens a new trace: allocates a trace id, journals the root
    /// span's start at the current simulated time, and returns the
    /// context to propagate. `None` while tracing is disabled.
    pub fn start_root(&self, stage: trace::Stage, node: u32) -> Option<TraceCtx> {
        if !self.tracing() {
            return None;
        }
        let trace = TraceId(self.inner.last_trace.fetch_add(1, Ordering::Relaxed) + 1);
        Some(self.open_span(trace, None, stage, node))
    }

    /// Opens a child span under `parent`. `None` when tracing is
    /// disabled or the causal context was lost (`parent` is `None`) —
    /// spans never start mid-air.
    pub fn start_span(
        &self,
        parent: Option<TraceCtx>,
        stage: trace::Stage,
        node: u32,
    ) -> Option<TraceCtx> {
        if !self.tracing() {
            return None;
        }
        let parent = parent?;
        Some(self.open_span(parent.trace, Some(parent.span), stage, node))
    }

    /// Opens and immediately closes a child span: a zero-duration
    /// milestone that still anchors further children (overlay hops,
    /// executes, renders).
    pub fn instant_span(
        &self,
        parent: Option<TraceCtx>,
        stage: trace::Stage,
        node: u32,
    ) -> Option<TraceCtx> {
        let ctx = self.start_span(parent, stage, node);
        self.end_span(ctx);
        ctx
    }

    /// Journals the end of `ctx`'s span at the current simulated time.
    /// No-op for `None` or while tracing is disabled.
    pub fn end_span(&self, ctx: Option<TraceCtx>) {
        if !self.tracing() {
            return;
        }
        if let Some(ctx) = ctx {
            self.journal(Event::SpanEnd {
                trace: ctx.trace,
                span: ctx.span,
            });
        }
    }

    fn open_span(
        &self,
        trace: TraceId,
        parent: Option<SpanId>,
        stage: trace::Stage,
        node: u32,
    ) -> TraceCtx {
        let span = SpanId(self.inner.last_span.fetch_add(1, Ordering::Relaxed) + 1);
        self.journal(Event::SpanStart {
            trace,
            span,
            parent,
            stage,
            node,
        });
        TraceCtx { trace, span }
    }

    // ---- reporting ----

    /// Snapshot of every metric plus the journal digest.
    pub fn report(&self) -> ObsReport {
        // Snapshot the journal once up front: the std Mutex is not
        // reentrant, so the digest/len helpers below must not run while
        // a guard temporary from this expression is still alive.
        let journal = self.journal_records();
        ObsReport {
            counters: lock(&self.inner.counters)
                .iter()
                .map(|(name, c)| (name.clone(), c.get()))
                .collect(),
            gauges: lock(&self.inner.gauges)
                .iter()
                .map(|(name, g)| (name.clone(), g.get()))
                .collect(),
            histograms: lock(&self.inner.histograms)
                .iter()
                .filter(|(_, h)| h.count() > 0)
                .map(|(name, h)| (name.clone(), h.summary()))
                .collect(),
            critical_paths: trace::critical_paths(&journal),
            journal_len: journal.len(),
            journal_digest: self.journal_digest().to_hex(),
            journal,
        }
    }
}

impl std::fmt::Debug for ObsHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsHub")
            .field("now_us", &self.now_us())
            .field("counters", &lock(&self.inner.counters).len())
            .field("journal_len", &self.journal_len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_state_across_handles() {
        let hub = ObsHub::new();
        let a = hub.counter("net.drops");
        let b = hub.counter("net.drops");
        a.inc();
        b.add(2);
        assert_eq!(hub.counter_value("net.drops"), 3);
        assert_eq!(hub.counter_value("unregistered"), 0);
    }

    #[test]
    fn counter_sum_matches_prefix() {
        let hub = ObsHub::new();
        hub.counter("spines.0.sealed").add(5);
        hub.counter("spines.1.sealed").add(7);
        hub.counter("prime.0.ordered").add(100);
        assert_eq!(hub.counter_sum("spines."), 12);
        assert_eq!(hub.counter_sum("prime."), 100);
        assert_eq!(hub.counter_sum("nothing."), 0);
    }

    #[test]
    fn journal_stamps_simulated_time_and_digests_deterministically() {
        let make = || {
            let hub = ObsHub::new();
            hub.set_now_us(1_000);
            hub.journal(Event::ViewChange {
                replica: 1,
                view: 2,
            });
            hub.set_now_us(2_500);
            hub.journal(Event::AuthFailure { daemon: 3 });
            hub
        };
        let a = make();
        let b = make();
        assert_eq!(a.journal_digest(), b.journal_digest());
        assert_eq!(a.journal_records()[0].at_us, 1_000);
        assert_eq!(a.journal_records()[1].at_us, 2_500);

        // Any difference — order, payload, or timestamp — changes the digest.
        let c = ObsHub::new();
        c.set_now_us(1_000);
        c.journal(Event::ViewChange {
            replica: 1,
            view: 3,
        });
        c.set_now_us(2_500);
        c.journal(Event::AuthFailure { daemon: 3 });
        assert_ne!(a.journal_digest(), c.journal_digest());
    }

    #[test]
    fn journal_count_filters_by_kind() {
        let hub = ObsHub::new();
        hub.journal(Event::ViewChange {
            replica: 0,
            view: 1,
        });
        hub.journal(Event::RecoveryStart { replica: 2 });
        hub.journal(Event::ViewChange {
            replica: 1,
            view: 1,
        });
        assert_eq!(
            hub.journal_count(|e| matches!(e, Event::ViewChange { .. })),
            2
        );
        assert_eq!(
            hub.journal_count(|e| matches!(e, Event::RecoveryEnd { .. })),
            0
        );
    }

    #[test]
    fn report_snapshots_metrics_and_renders() {
        let hub = ObsHub::new();
        hub.counter("a.count").add(4);
        hub.gauge("b.level").set(-2);
        hub.histogram("c.latency_us").record(150);
        hub.journal(Event::PacketDrop {
            node: 1,
            kind: event::DropKind::Loss,
        });
        let r = hub.report();
        assert_eq!(r.counters, vec![("a.count".to_string(), 4)]);
        assert_eq!(r.gauges, vec![("b.level".to_string(), -2)]);
        assert_eq!(r.histograms.len(), 1);
        assert_eq!(r.journal_len, 1);
        let text = r.render();
        assert!(text.contains("a.count"));
        assert!(text.contains("c.latency_us"));
        assert!(text.contains(&r.journal_digest[..16]));
    }

    #[test]
    fn clock_never_moves_backwards() {
        let hub = ObsHub::new();
        hub.set_now_us(5_000);
        hub.set_now_us(1_200); // rejected: journaled, clock kept
        assert_eq!(hub.now_us(), 5_000);
        assert_eq!(
            hub.journal_records(),
            vec![TimedEvent {
                at_us: 5_000,
                event: Event::ClockSkew {
                    from_us: 5_000,
                    to_us: 1_200,
                },
            }]
        );
        hub.set_now_us(6_000); // forward motion still works
        assert_eq!(hub.now_us(), 6_000);
    }

    #[test]
    fn clones_share_hub_identity() {
        let hub = ObsHub::new();
        let clone = hub.clone();
        assert!(hub.same_hub(&clone));
        assert!(!hub.same_hub(&ObsHub::new()));
        clone.counter("x").inc();
        assert_eq!(hub.counter_value("x"), 1);
    }
}
