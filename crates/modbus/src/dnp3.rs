//! A DNP3 subset — the other insecure field protocol the paper names
//! (§II: "their typical, insecure industrial communication protocols,
//! such as Modbus or DNP3").
//!
//! Implemented at the fidelity the proxy/RTU pairing needs: the data-link
//! frame (0x0564 start, length, control, destination/source addresses,
//! CRC-16 over the header and over every 16-byte body block) and an
//! application layer with READ (class 0 static data) and DIRECT OPERATE
//! (control relay output block) — the poll and breaker-trip operations a
//! SCADA master issues. Like Modbus, there is no authentication: anyone
//! who can reach the device can operate it.

use crate::crc::crc16;

/// DNP3 start bytes.
const START: [u8; 2] = [0x05, 0x64];
/// Maximum user-data length per frame body.
const MAX_BODY: usize = 250;

/// Data-link frame header control byte roles (simplified: DIR/PRM bits).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LinkControl {
    /// Master → outstation request.
    Request,
    /// Outstation → master response.
    Response,
}

impl LinkControl {
    fn byte(self) -> u8 {
        match self {
            // DIR=1 PRM=1 FC=4 (unconfirmed user data) for requests.
            LinkControl::Request => 0b1100_0100,
            // DIR=0 PRM=1 FC=4 for responses.
            LinkControl::Response => 0b0100_0100,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            0b1100_0100 => Some(LinkControl::Request),
            0b0100_0100 => Some(LinkControl::Response),
            _ => None,
        }
    }
}

/// A DNP3 data-link frame.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LinkFrame {
    /// Direction/role.
    pub control: LinkControl,
    /// Destination address.
    pub destination: u16,
    /// Source address.
    pub source: u16,
    /// Transport+application user data.
    pub body: Vec<u8>,
}

impl LinkFrame {
    /// Serializes with header CRC and per-16-byte-block body CRCs.
    ///
    /// # Panics
    ///
    /// Panics if the body exceeds 250 bytes (fragmentation is out of
    /// scope for this subset).
    pub fn encode(&self) -> Vec<u8> {
        assert!(self.body.len() <= MAX_BODY, "body exceeds one frame");
        let mut out = Vec::with_capacity(10 + self.body.len() + 2 * self.body.len().div_ceil(16));
        out.extend_from_slice(&START);
        out.push((5 + self.body.len()) as u8); // LEN counts ctrl+dst+src+body
        out.push(self.control.byte());
        out.extend_from_slice(&self.destination.to_le_bytes());
        out.extend_from_slice(&self.source.to_le_bytes());
        let header_crc = crc16(&out[..8]);
        out.extend_from_slice(&header_crc.to_le_bytes());
        for block in self.body.chunks(16) {
            out.extend_from_slice(block);
            out.extend_from_slice(&crc16(block).to_le_bytes());
        }
        out
    }

    /// Parses and CRC-checks a frame.
    pub fn decode(data: &[u8]) -> Option<LinkFrame> {
        if data.len() < 10 || data[0..2] != START {
            return None;
        }
        let len = data[2] as usize;
        if len < 5 {
            return None;
        }
        let header_crc = u16::from_le_bytes([data[8], data[9]]);
        if crc16(&data[..8]) != header_crc {
            return None;
        }
        let control = LinkControl::from_byte(data[3])?;
        let destination = u16::from_le_bytes([data[4], data[5]]);
        let source = u16::from_le_bytes([data[6], data[7]]);
        let body_len = len - 5;
        let mut body = Vec::with_capacity(body_len);
        let mut pos = 10;
        let mut remaining = body_len;
        while remaining > 0 {
            let take = remaining.min(16);
            let block = data.get(pos..pos + take)?;
            let crc_bytes = data.get(pos + take..pos + take + 2)?;
            if crc16(block) != u16::from_le_bytes([crc_bytes[0], crc_bytes[1]]) {
                return None;
            }
            body.extend_from_slice(block);
            pos += take + 2;
            remaining -= take;
        }
        if pos != data.len() {
            return None;
        }
        Some(LinkFrame {
            control,
            destination,
            source,
            body,
        })
    }
}

/// Application-layer requests (the subset a SCADA master needs).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AppRequest {
    /// READ class 0 (all static data): the integrity poll.
    IntegrityPoll,
    /// DIRECT OPERATE on a control relay output block.
    DirectOperate {
        /// Point index (breaker number).
        index: u16,
        /// Trip (open) or close.
        trip: bool,
    },
}

impl AppRequest {
    /// Serializes into a frame body (simplified object headers).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            // FC 0x01 READ, object group 60 var 1 (class 0).
            AppRequest::IntegrityPoll => vec![0xC0, 0x01, 60, 1],
            // FC 0x05 DIRECT OPERATE, group 12 var 1, index, code.
            AppRequest::DirectOperate { index, trip } => {
                let mut v = vec![0xC0, 0x05, 12, 1];
                v.extend_from_slice(&index.to_le_bytes());
                v.push(if *trip { 0x81 } else { 0x41 }); // TRIP / CLOSE pulse
                v
            }
        }
    }

    /// Parses a request body.
    pub fn decode(body: &[u8]) -> Option<AppRequest> {
        match body {
            [0xC0, 0x01, 60, 1] => Some(AppRequest::IntegrityPoll),
            [0xC0, 0x05, 12, 1, i0, i1, code] => Some(AppRequest::DirectOperate {
                index: u16::from_le_bytes([*i0, *i1]),
                trip: *code == 0x81,
            }),
            _ => None,
        }
    }
}

/// Application-layer responses.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AppResponse {
    /// Static data: binary input states (breaker positions).
    StaticData {
        /// Point states.
        points: Vec<bool>,
    },
    /// Operate acknowledgement (echoes the control).
    OperateAck {
        /// Point index.
        index: u16,
        /// Whether the operation was accepted.
        success: bool,
    },
}

impl AppResponse {
    /// Serializes into a frame body.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            AppResponse::StaticData { points } => {
                // FC 0x81 RESPONSE, group 1 var 1 (binary input), count,
                // packed bits.
                let mut v = vec![0xC0, 0x81, 1, 1, points.len() as u8];
                let mut packed = vec![0u8; points.len().div_ceil(8)];
                for (i, &p) in points.iter().enumerate() {
                    if p {
                        packed[i / 8] |= 1 << (i % 8);
                    }
                }
                v.extend_from_slice(&packed);
                v
            }
            AppResponse::OperateAck { index, success } => {
                let mut v = vec![0xC0, 0x81, 12, 1];
                v.extend_from_slice(&index.to_le_bytes());
                v.push(u8::from(*success));
                v
            }
        }
    }

    /// Parses a response body.
    pub fn decode(body: &[u8]) -> Option<AppResponse> {
        match body {
            [0xC0, 0x81, 1, 1, count, rest @ ..] => {
                let n = *count as usize;
                if rest.len() != n.div_ceil(8) {
                    return None;
                }
                let points = (0..n).map(|i| rest[i / 8] & (1 << (i % 8)) != 0).collect();
                Some(AppResponse::StaticData { points })
            }
            [0xC0, 0x81, 12, 1, i0, i1, ok] => Some(AppResponse::OperateAck {
                index: u16::from_le_bytes([*i0, *i1]),
                success: *ok == 1,
            }),
            _ => None,
        }
    }
}

/// Serves DNP3 requests against a Modbus-style [`crate::DataStore`]
/// (binary inputs ↔ discrete inputs, operates ↔ coil writes) so the same
/// emulated device can speak either protocol.
pub fn serve(req: &AppRequest, store: &mut crate::DataStore) -> AppResponse {
    match req {
        AppRequest::IntegrityPoll => {
            let points = (0..store.coil_count() as u16)
                .map(|i| store.discrete_input(i).unwrap_or(false))
                .collect();
            AppResponse::StaticData { points }
        }
        AppRequest::DirectOperate { index, trip } => {
            let success = store.set_coil(*index, !trip);
            AppResponse::OperateAck {
                index: *index,
                success,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DataStore;

    fn roundtrip_frame(body: Vec<u8>) {
        let f = LinkFrame {
            control: LinkControl::Request,
            destination: 10,
            source: 1,
            body,
        };
        let bytes = f.encode();
        assert_eq!(LinkFrame::decode(&bytes), Some(f));
    }

    #[test]
    fn link_frame_roundtrips_various_sizes() {
        roundtrip_frame(vec![]);
        roundtrip_frame(vec![1; 1]);
        roundtrip_frame(vec![2; 16]);
        roundtrip_frame(vec![3; 17]);
        roundtrip_frame(vec![4; 100]);
        roundtrip_frame(vec![5; 250]);
    }

    #[test]
    fn corrupted_header_or_block_rejected() {
        let f = LinkFrame {
            control: LinkControl::Response,
            destination: 2,
            source: 10,
            body: vec![7; 40],
        };
        let bytes = f.encode();
        for idx in [0usize, 3, 5, 12, 30] {
            let mut bad = bytes.clone();
            bad[idx] ^= 0xFF;
            assert_eq!(LinkFrame::decode(&bad), None, "flip at {idx}");
        }
        assert_eq!(LinkFrame::decode(&bytes[..bytes.len() - 1]), None);
    }

    #[test]
    fn app_requests_roundtrip() {
        for req in [
            AppRequest::IntegrityPoll,
            AppRequest::DirectOperate {
                index: 3,
                trip: true,
            },
            AppRequest::DirectOperate {
                index: 300,
                trip: false,
            },
        ] {
            assert_eq!(AppRequest::decode(&req.encode()), Some(req));
        }
    }

    #[test]
    fn app_responses_roundtrip() {
        for resp in [
            AppResponse::StaticData {
                points: vec![true, false, true, true, false, false, true],
            },
            AppResponse::StaticData { points: vec![] },
            AppResponse::OperateAck {
                index: 2,
                success: true,
            },
            AppResponse::OperateAck {
                index: 9,
                success: false,
            },
        ] {
            assert_eq!(AppResponse::decode(&resp.encode()), Some(resp));
        }
    }

    #[test]
    fn serve_integrity_poll_reads_positions() {
        let mut store = DataStore::new(7, 7);
        store.set_discrete_input(1, true);
        store.set_discrete_input(4, true);
        let resp = serve(&AppRequest::IntegrityPoll, &mut store);
        assert_eq!(
            resp,
            AppResponse::StaticData {
                points: vec![false, true, false, false, true, false, false]
            }
        );
    }

    #[test]
    fn serve_direct_operate_trips_breaker() {
        let mut store = DataStore::new(7, 7);
        store.set_coil(2, true);
        let resp = serve(
            &AppRequest::DirectOperate {
                index: 2,
                trip: true,
            },
            &mut store,
        );
        assert_eq!(
            resp,
            AppResponse::OperateAck {
                index: 2,
                success: true
            }
        );
        assert_eq!(store.coil(2), Some(false), "trip opened the breaker");
        // Out-of-range operate fails but does not panic.
        let resp = serve(
            &AppRequest::DirectOperate {
                index: 99,
                trip: true,
            },
            &mut store,
        );
        assert_eq!(
            resp,
            AppResponse::OperateAck {
                index: 99,
                success: false
            }
        );
    }

    #[test]
    fn unauthenticated_like_modbus() {
        // The security property (or lack of it): any well-formed frame is
        // served — there is no authentication field anywhere to check.
        let mut store = DataStore::new(2, 2);
        let attacker_frame = LinkFrame {
            control: LinkControl::Request,
            destination: 10,
            source: 0xFFFF, // arbitrary claimed source
            body: AppRequest::DirectOperate {
                index: 0,
                trip: true,
            }
            .encode(),
        };
        let decoded = LinkFrame::decode(&attacker_frame.encode()).expect("valid");
        let req = AppRequest::decode(&decoded.body).expect("valid");
        let resp = serve(&req, &mut store);
        assert_eq!(
            resp,
            AppResponse::OperateAck {
                index: 0,
                success: true
            }
        );
    }

    #[test]
    fn malformed_bodies_rejected() {
        assert_eq!(AppRequest::decode(&[]), None);
        assert_eq!(AppRequest::decode(&[0xC0, 0x01, 60]), None);
        assert_eq!(AppResponse::decode(&[0xC0, 0x81, 1, 1, 9, 0]), None); // count/bytes mismatch
    }
}
