//! Experiments E6, E8, E9: ground-truth recovery, the 3f+2k+1 ablation,
//! and the diversity/recovery race.

use crate::harness::RunMeta;
use diversity::economics::{race, RaceConfig, RaceOutcome};
use diversity::variant::BinaryHardening;
use plc::topology::Scenario;
use prime::byzantine::ByzMode;
use prime::harness::Cluster;
use prime::replica::Timing;
use prime::types::{Config as PrimeConfig, ReplicaId};
use scada::ground_truth::{assess, rebuild_from_field};
use scada::historian::Historian;
use simnet::time::{SimDuration, SimTime};
use spire::config::SpireConfig;
use spire::deploy::Deployment;
use spire::hardening::HardeningProfile;

fn fast_timing() -> Timing {
    Timing {
        aru_interval: SimDuration::from_millis(10),
        pp_interval: SimDuration::from_millis(10),
        suspect_timeout: SimDuration::from_millis(2_000),
        checkpoint_interval: 20,
        catchup_timeout: SimDuration::from_millis(300),
    }
}

/// E6 result.
#[derive(Clone, Debug)]
pub struct GroundTruthRun {
    /// Replicas crashed in the breach.
    pub crashed: u32,
    /// Replicas left with intact state.
    pub intact: u32,
    /// The `f+1` bound needed for replica-based recovery.
    pub needed_for_replica_recovery: u32,
    /// Whether replica-based recovery was safe.
    pub replica_recovery_possible: bool,
    /// Whether the rebuilt state matched the true field positions.
    pub field_rebuild_correct: bool,
    /// Historian records lost in the breach (unrecoverable, §III-A).
    pub historian_records_lost: usize,
    /// Historian records reconstructed from the field (present state only).
    pub historian_records_recovered: usize,
    /// Determinism capture of the deployment (digest + event count).
    pub meta: RunMeta,
}

/// E6 — assumption breach and ground-truth recovery: crash five of six
/// replicas (beyond any BFT bound), show that replica-based recovery is
/// impossible, then rebuild the master state by polling the field devices.
pub fn e6_ground_truth(seed: u64) -> GroundTruthRun {
    let cfg = SpireConfig::minimal(PrimeConfig::plant(), Scenario::RedTeamDistribution).with_cycle(
        Scenario::RedTeamDistribution,
        SimDuration::from_millis(500),
        6,
    );
    let mut d = Deployment::build(cfg, HardeningProfile::deployed(), seed);
    for i in 0..6 {
        d.replica_mut(i).set_timing(fast_timing());
    }
    // Run a workload so there is real state (breakers moved, historian fed).
    let mut historian = Historian::new();
    d.run_for(SimDuration::from_secs(6));
    for (i, &(t, _, closed)) in d.plc(0).position_log.iter().enumerate() {
        historian.archive(t, "jhu", format!("breaker event {i}: closed={closed}"));
    }
    let records_before = historian.len();
    assert!(records_before > 0, "workload produced history");

    // The breach: 5 of 6 replicas crash and lose their state.
    let crashed = 5u32;
    for i in 0..crashed {
        d.take_replica_down(i);
    }
    historian.breach_wipe();

    let intact = 6 - crashed;
    let assessment = assess(PrimeConfig::plant(), intact);

    // Ground-truth rebuild: poll every field device through its proxy.
    let field_polls: Vec<(String, Vec<bool>)> = (0..d.cfg.proxies.len() as u32)
        .map(|p| (d.proxy(p).scenario().tag(), d.plc(p).positions()))
        .collect();
    let rebuilt = rebuild_from_field(&field_polls);
    let field_rebuild_correct = field_polls
        .iter()
        .all(|(tag, positions)| rebuilt.scenario(tag).map(|s| &s.positions) == Some(positions));
    let recovery = historian.recover_from_field(d.now(), &field_polls);

    GroundTruthRun {
        crashed,
        intact,
        needed_for_replica_recovery: assessment.needed,
        replica_recovery_possible: assessment.recoverable_from_replicas,
        field_rebuild_correct,
        historian_records_lost: recovery.lost_records,
        historian_records_recovered: recovery.recovered_records,
        meta: RunMeta::capture("e6.deployment", &d.obs, &d.sim),
    }
}

/// One arm of the E8 ablation.
#[derive(Clone, Debug)]
pub struct RecoveryArm {
    /// The configuration label.
    pub label: String,
    /// Replica count.
    pub n: u32,
    /// Updates executed (minimum over healthy replicas) during the window.
    pub executed_during_window: u64,
    /// Whether ordering continued while one replica was crashed *and* one
    /// was recovering.
    pub stayed_live: bool,
}

/// E8 — why six replicas: 3f+1 vs 3f+2k+1 under one intrusion plus one
/// concurrent proactive recovery.
pub fn e8_recovery_ablation(_seed: u64) -> Vec<RecoveryArm> {
    let mut arms = Vec::new();
    for (label, config) in [
        (
            "3f+1 (n=4, no recovery margin)".to_string(),
            PrimeConfig::new(1, 0),
        ),
        ("3f+2k+1 (n=6, k=1)".to_string(), PrimeConfig::plant()),
    ] {
        let mut c = Cluster::new(config, 1);
        c.set_timing(fast_timing());
        // Warm up.
        for i in 0..5 {
            c.submit(0, format!("warm{i}=1"));
        }
        c.run_for(SimDuration::from_secs(1));
        // One intrusion (crash) + one replica into proactive recovery.
        c.replicas[1].byz = ByzMode::Crashed;
        let n = config.n();
        c.partitioned.insert(n - 1); // recovering: down, state wiped below
        c.recover_replica(ReplicaId(n - 1));
        let before = healthy_min_exec(&c, &[1, n - 1]);
        for i in 0..10 {
            c.submit(0, format!("window{i}=1"));
            c.run_for(SimDuration::from_millis(100));
        }
        c.run_for(SimDuration::from_secs(2));
        let after = healthy_min_exec(&c, &[1, n - 1]);
        arms.push(RecoveryArm {
            label,
            n,
            executed_during_window: after.saturating_sub(before),
            stayed_live: after.saturating_sub(before) >= 10,
        });
    }
    arms
}

fn healthy_min_exec(c: &Cluster, excluded: &[u32]) -> u64 {
    c.replicas
        .iter()
        .enumerate()
        .filter(|(i, _)| !excluded.contains(&(*i as u32)))
        .map(|(_, r)| r.exec_seq())
        .min()
        .unwrap_or(0)
}

/// One row of the E9 diversity table.
#[derive(Clone, Debug)]
pub struct DiversityRow {
    /// Defense configuration.
    pub defense: String,
    /// Mean attacker hours per exploit.
    pub exploit_hours: f64,
    /// Median time-to-breach over the trials (None = survived horizon).
    pub median_breach_hours: Option<f64>,
    /// Fraction of trials breached within the two-week horizon.
    pub breach_fraction: f64,
}

/// E9 — the diversity/recovery race: identical vs. diversified vs.
/// diversified + proactive recovery, across attacker skill levels.
pub fn e9_diversity_ablation(seed: u64, trials: u64) -> Vec<DiversityRow> {
    let mut rows = Vec::new();
    let horizon = SimDuration::from_secs(14 * 24 * 3600);
    for &exploit_hours in &[2.0f64, 8.0, 24.0] {
        for (defense, diversity, recovery) in [
            ("identical replicas", false, None),
            ("diversity only", true, None),
            (
                "diversity + recovery (30 min cycle)",
                true,
                Some((SimDuration::from_secs(1800), SimDuration::from_secs(300), 1)),
            ),
        ] {
            let cfg = RaceConfig {
                n: 6,
                f: 1,
                diversity,
                recovery,
                exploit_hours_mean: exploit_hours,
                hardening: BinaryHardening::deployed_2017(),
                horizon,
            };
            let outcomes: Vec<RaceOutcome> = (0..trials).map(|t| race(cfg, seed + t)).collect();
            let mut breach_hours: Vec<f64> = outcomes
                .iter()
                .filter_map(|o| o.breach_at.map(|t| t.as_secs_f64() / 3600.0))
                .collect();
            breach_hours.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let breach_fraction = breach_hours.len() as f64 / trials as f64;
            // The median exists only when more than half the trials
            // breached; otherwise the median outcome is "survived".
            let median_breach_hours = if breach_hours.len() as u64 * 2 > trials {
                Some(breach_hours[breach_hours.len() / 2])
            } else {
                None
            };
            rows.push(DiversityRow {
                defense: defense.to_string(),
                exploit_hours,
                median_breach_hours,
                breach_fraction,
            });
        }
    }
    rows
}

/// Renders the E9 table.
pub fn render_diversity(rows: &[DiversityRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<38} {:>14} {:>20} {:>16}\n",
        "defense", "exploit-hours", "median-breach (h)", "breach-fraction"
    ));
    out.push_str(&format!("{}\n", "-".repeat(92)));
    for r in rows {
        out.push_str(&format!(
            "{:<38} {:>14.1} {:>20} {:>16.2}\n",
            r.defense,
            r.exploit_hours,
            r.median_breach_hours
                .map_or("> horizon".to_string(), |h| format!("{h:.1}")),
            r.breach_fraction
        ));
    }
    out
}

/// The horizon used by E9 (exported for documentation).
pub const E9_HORIZON_DAYS: u64 = 14;

/// A tiny helper for tests: the time at which E6 polls the field.
pub fn e6_poll_time() -> SimTime {
    SimTime::ZERO
}
