//! The deterministic feedback controller.
//!
//! Inputs are *observations* a real deployment could make — detector
//! scores, protocol health gauges, reachability, and the typed chaos
//! signal feed. The controller never reads fault schedules or any other
//! oracle: a compromised replica is found because spoofed traffic lights
//! up its MANA instance or its gauges degrade, not because the harness
//! whispered the injection.
//!
//! Safety argument (the budget guard): the controller initiates at most
//! `k` concurrent recoveries, refuses to start one while any replica is
//! unreachable for reasons it did not cause, and serializes its own
//! disruptive windows with a global cool-down plus a per-replica
//! re-recovery cool-down. With at most `f` intrusions assumed, the
//! live-fault set it can add to never exceeds the `3f + 2k + 1` sizing
//! the deployment was built for — mirroring the discipline
//! `ChaosPlan::within_budget` applies to fault schedules.

use chaos::signal::{ChaosSignal, SignalKind};
use simnet::time::{SimDuration, SimTime};

/// Degraded-mode states, ordered by severity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ResponseState {
    /// All quiet; no suspicion outstanding.
    Normal,
    /// At least one replica has accumulated (unconfirmed) suspicion.
    Suspicious,
    /// A proxy update-rate cap is in force.
    Throttled,
    /// A controller-initiated recovery has the suspect down.
    Isolating,
    /// A restored replica is still catching back up.
    Recovering,
}

impl ResponseState {
    /// Journal tag.
    pub fn tag(self) -> u8 {
        match self {
            ResponseState::Normal => 0,
            ResponseState::Suspicious => 1,
            ResponseState::Throttled => 2,
            ResponseState::Isolating => 3,
            ResponseState::Recovering => 4,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ResponseState::Normal => "normal",
            ResponseState::Suspicious => "suspicious",
            ResponseState::Throttled => "throttled",
            ResponseState::Isolating => "isolating",
            ResponseState::Recovering => "recovering",
        }
    }
}

/// Transition/actuation cause tags (journaled in
/// [`obs::Event::ResponseTransition`]).
pub const REASON_ANOMALY: u8 = 0;
/// Health-gauge degradation (PO queue / TAT over the red line).
pub const REASON_HEALTH: u8 = 1;
/// View churn implicating an abandoned leader.
pub const REASON_VIEW_CHURN: u8 = 2;
/// Proxy flooding.
pub const REASON_FLOOD: u8 = 3;
/// A scheduled restore came due.
pub const REASON_RESTORE: u8 = 4;
/// The calm hysteresis window elapsed.
pub const REASON_CALM: u8 = 5;

/// One replica's observation for a controller tick.
#[derive(Clone, Copy, Debug)]
pub struct ReplicaObservation {
    /// Replica index.
    pub replica: u32,
    /// Whether the replica's node is reachable.
    pub up: bool,
    /// Latest MANA peak z-score attributed to this replica's traffic
    /// (0.0 when no window scored recently).
    pub anomaly_z: f64,
    /// Flight-recorder PO-queue depth.
    pub po_queue: u32,
    /// Flight-recorder turnaround-time estimate, microseconds.
    pub tat_us: u64,
    /// Current view number.
    pub view: u64,
    /// Whether a catch-up (state transfer) is in progress.
    pub catching_up: bool,
}

/// One proxy's observation for a controller tick.
#[derive(Clone, Copy, Debug)]
pub struct ProxyObservation {
    /// Proxy index.
    pub proxy: u32,
    /// Latest MANA peak z-score attributed to this proxy's traffic.
    pub anomaly_z: f64,
}

/// Everything the controller sees in one tick.
#[derive(Clone, Debug, Default)]
pub struct ControllerInput {
    /// Simulated time of the tick.
    pub now: SimTime,
    /// Per-replica observations, in replica-index order.
    pub replicas: Vec<ReplicaObservation>,
    /// Per-proxy observations, in proxy-index order.
    pub proxies: Vec<ProxyObservation>,
    /// Chaos signals published since the previous tick.
    pub signals: Vec<ChaosSignal>,
}

impl Default for ReplicaObservation {
    fn default() -> Self {
        ReplicaObservation {
            replica: 0,
            up: true,
            anomaly_z: 0.0,
            po_queue: 0,
            tat_us: 0,
            view: 0,
            catching_up: false,
        }
    }
}

/// An actuator command the caller must apply to the deployment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Actuation {
    /// Take `replica` down for an immediate clean-image recovery.
    TakeDown {
        /// Suspect replica.
        replica: u32,
    },
    /// Restore `replica` (its recovery downtime elapsed).
    Restore {
        /// Recovering replica.
        replica: u32,
    },
    /// Cap proxy `proxy`'s status-update rate.
    Throttle {
        /// Flooding proxy.
        proxy: u32,
        /// Minimum spacing between updates.
        min_interval: SimDuration,
    },
    /// Lift the cap on proxy `proxy`.
    Unthrottle {
        /// Calmed proxy.
        proxy: u32,
    },
}

impl Actuation {
    /// Journal actuator tag.
    pub fn tag(self) -> u8 {
        match self {
            Actuation::TakeDown { .. } => 0,
            Actuation::Restore { .. } => 1,
            Actuation::Throttle { .. } => 2,
            Actuation::Unthrottle { .. } => 3,
        }
    }

    /// Target component.
    pub fn target(self) -> u32 {
        match self {
            Actuation::TakeDown { replica } | Actuation::Restore { replica } => replica,
            Actuation::Throttle { proxy, .. } | Actuation::Unthrottle { proxy } => proxy,
        }
    }

    /// Journal parameter (throttle interval in µs, else 0).
    pub fn param(self) -> u64 {
        match self {
            Actuation::Throttle { min_interval, .. } => min_interval.as_micros(),
            _ => 0,
        }
    }
}

/// Controller tuning knobs and the budget it must respect.
#[derive(Clone, Copy, Debug)]
pub struct ResponseConfig {
    /// Replica count.
    pub n: u32,
    /// Intrusion budget (informational; sizing assumption).
    pub f: u32,
    /// Concurrent-recovery budget the controller must respect.
    pub k: u32,
    /// Per-replica z-score at/above which a tick counts anomalous.
    pub suspect_z: f64,
    /// Per-proxy z-score at/above which a throttle engages.
    pub flood_z: f64,
    /// Consecutive anomalous ticks before a recovery is triggered.
    pub confirm_ticks: u32,
    /// Consecutive calm ticks before de-escalating to Normal (and before
    /// a throttle lifts) — the hysteresis that prevents flapping.
    pub calm_ticks: u32,
    /// TAT red line, microseconds.
    pub tat_red_us: u64,
    /// PO-queue red line.
    pub po_queue_red: u32,
    /// How long a triggered recovery keeps the replica down.
    pub recovery_downtime: SimDuration,
    /// Minimum spacing between controller-initiated disruptive windows
    /// (measured restore-to-next-takedown).
    pub cooldown: SimDuration,
    /// Minimum spacing between recoveries of the *same* replica.
    pub replica_cooldown: SimDuration,
    /// Update cap pushed into a throttled proxy.
    pub throttle_interval: SimDuration,
}

impl ResponseConfig {
    /// Defaults for an `n = 3f + 2k + 1` deployment.
    pub fn for_budget(n: u32, f: u32, k: u32) -> Self {
        ResponseConfig {
            n,
            f,
            k,
            suspect_z: 6.0,
            flood_z: 8.0,
            confirm_ticks: 3,
            calm_ticks: 30,
            tat_red_us: 3_000_000,
            po_queue_red: 500,
            recovery_downtime: SimDuration::from_millis(1_200),
            cooldown: SimDuration::from_secs(3),
            replica_cooldown: SimDuration::from_secs(10),
            throttle_interval: SimDuration::from_millis(400),
        }
    }
}

/// Controller counters for reporting.
#[derive(Clone, Copy, Debug, Default)]
pub struct ResponseStats {
    /// Feedback recoveries triggered.
    pub recoveries_started: u64,
    /// Restores issued.
    pub recoveries_completed: u64,
    /// Reconvergence confirmations consumed from the signal feed.
    pub reconvergences_confirmed: u64,
    /// Throttles engaged.
    pub throttles: u64,
    /// Throttles lifted.
    pub unthrottles: u64,
    /// State transitions journaled.
    pub transitions: u64,
}

/// The feedback controller. Pure state machine: [`Controller::step`] is
/// deterministic in (config, observation stream); all time comes from
/// the input.
pub struct Controller {
    cfg: ResponseConfig,
    state: ResponseState,
    obs: Option<obs::ObsHub>,
    /// Per-replica consecutive-anomalous-tick counters.
    suspicion: Vec<u32>,
    /// Cause tag of each replica's latest suspicion increment.
    suspect_reason: Vec<u8>,
    /// Highest view observed so far.
    last_view: u64,
    /// Controller-initiated downs: (replica, restore due).
    down: Vec<(u32, SimTime)>,
    /// Restored replicas not yet confirmed reconverged, with a
    /// consecutive-healthy-tick streak as the signal-less fallback.
    awaiting: Vec<(u32, u32)>,
    /// When the controller's last disruptive window ended.
    last_window_end: SimTime,
    /// Per-replica last restore time.
    last_recovered: Vec<Option<SimTime>>,
    /// Per-proxy throttle flags and calm streaks.
    throttled: Vec<bool>,
    proxy_calm: Vec<u32>,
    /// Consecutive globally-calm ticks (hysteresis toward Normal).
    calm_streak: u32,
    /// Every actuation emitted, with its tick time (test/report surface).
    actions: Vec<(SimTime, Actuation)>,
    /// Every state transition: (at, from, to, reason).
    transitions: Vec<(SimTime, u8, u8, u8)>,
    /// Counters.
    pub stats: ResponseStats,
}

impl Controller {
    /// A controller in `Normal` state.
    pub fn new(cfg: ResponseConfig) -> Self {
        let n = cfg.n as usize;
        Controller {
            cfg,
            state: ResponseState::Normal,
            obs: None,
            suspicion: vec![0; n],
            suspect_reason: vec![REASON_ANOMALY; n],
            last_view: 0,
            down: Vec::new(),
            awaiting: Vec::new(),
            last_window_end: SimTime::ZERO,
            last_recovered: vec![None; n],
            throttled: Vec::new(),
            proxy_calm: Vec::new(),
            calm_streak: 0,
            actions: Vec::new(),
            transitions: Vec::new(),
            stats: ResponseStats::default(),
        }
    }

    /// Attaches a hub: every actuation and state transition is journaled
    /// as [`obs::Event::ResponseActuation`] / [`ResponseTransition`],
    /// folding the controller's behavior into the run digest.
    ///
    /// [`ResponseTransition`]: obs::Event::ResponseTransition
    pub fn attach_obs(&mut self, hub: obs::ObsHub) {
        self.obs = Some(hub);
    }

    /// Current degraded-mode state.
    pub fn state(&self) -> ResponseState {
        self.state
    }

    /// Replicas currently down on the controller's initiative.
    pub fn isolated(&self) -> Vec<u32> {
        self.down.iter().map(|(r, _)| *r).collect()
    }

    /// Every actuation emitted so far, with tick times.
    pub fn actions(&self) -> &[(SimTime, Actuation)] {
        &self.actions
    }

    /// Every state transition journaled so far: (at, from, to, reason).
    pub fn transitions(&self) -> &[(SimTime, u8, u8, u8)] {
        &self.transitions
    }

    fn emit(&mut self, now: SimTime, act: Actuation) {
        if let Some(hub) = &self.obs {
            hub.journal(obs::Event::ResponseActuation {
                actuator: act.tag(),
                target: act.target(),
                param: act.param(),
            });
        }
        self.actions.push((now, act));
    }

    fn transition(&mut self, now: SimTime, to: ResponseState, reason: u8) {
        if to == self.state {
            return;
        }
        let from = self.state;
        self.state = to;
        self.stats.transitions += 1;
        if let Some(hub) = &self.obs {
            hub.journal(obs::Event::ResponseTransition {
                from: from.tag(),
                to: to.tag(),
                reason,
            });
        }
        self.transitions.push((now, from.tag(), to.tag(), reason));
    }

    /// One controller tick: consumes the observations, returns the
    /// actuations the caller must apply. Call at a fixed cadence.
    pub fn step(&mut self, input: &ControllerInput) -> Vec<Actuation> {
        let now = input.now;
        let n = self.cfg.n as usize;
        self.throttled
            .resize(input.proxies.len().max(self.throttled.len()), false);
        self.proxy_calm.resize(self.throttled.len(), 0);
        let mut out = Vec::new();

        // 1. Signal feed: recovery confirmations and violation evidence.
        //    Injection signals are deliberately ignored — detection must
        //    come from observable behavior, not the fault schedule.
        let mut violation_seen = false;
        for sig in &input.signals {
            match sig.kind {
                SignalKind::ReconvergenceDone => {
                    let before = self.awaiting.len();
                    self.awaiting.retain(|(r, _)| *r != sig.target);
                    if self.awaiting.len() < before {
                        self.stats.reconvergences_confirmed += 1;
                    }
                }
                SignalKind::ReconvergenceTimeout => {
                    // A failed catch-up keeps the replica suspect; the
                    // per-replica cool-down spaces any re-recovery.
                    self.awaiting.retain(|(r, _)| *r != sig.target);
                    if (sig.target as usize) < n {
                        self.suspicion[sig.target as usize] = self.cfg.confirm_ticks;
                        self.suspect_reason[sig.target as usize] = REASON_HEALTH;
                    }
                }
                SignalKind::Violation => violation_seen = true,
                SignalKind::Injected | SignalKind::Healed => {}
            }
        }

        // 2. Restores that came due.
        let due: Vec<u32> = self
            .down
            .iter()
            .filter(|(_, t)| now >= *t)
            .map(|(r, _)| *r)
            .collect();
        for r in due {
            self.down.retain(|(dr, _)| *dr != r);
            self.last_window_end = now;
            self.last_recovered[r as usize] = Some(now);
            self.awaiting.push((r, 0));
            self.stats.recoveries_completed += 1;
            let act = Actuation::Restore { replica: r };
            self.emit(now, act);
            out.push(act);
            self.transition(now, ResponseState::Recovering, REASON_RESTORE);
        }

        // 3. View churn: a view change abandons a leader; the abandoned
        //    leader earns suspicion (classic BFT forensics heuristic).
        let max_view = input
            .replicas
            .iter()
            .map(|r| r.view)
            .max()
            .unwrap_or(self.last_view);
        if max_view > self.last_view {
            let suspect = (self.last_view % self.cfg.n as u64) as usize;
            if suspect < n {
                self.suspicion[suspect] = self.suspicion[suspect].saturating_add(1);
                self.suspect_reason[suspect] = REASON_VIEW_CHURN;
            }
            self.last_view = max_view;
        }

        // 4. Per-replica suspicion from detector scores and gauges.
        let mut external_down = false;
        for ob in &input.replicas {
            let r = ob.replica as usize;
            if r >= n {
                continue;
            }
            let ours = self.down.iter().any(|(dr, _)| *dr == ob.replica);
            if !ob.up && !ours {
                external_down = true;
            }
            if !ob.up || ob.catching_up || ours {
                continue;
            }
            let anomalous_det = ob.anomaly_z >= self.cfg.suspect_z;
            let anomalous_health =
                ob.tat_us >= self.cfg.tat_red_us || ob.po_queue >= self.cfg.po_queue_red;
            if anomalous_det || anomalous_health {
                self.suspicion[r] = self.suspicion[r].saturating_add(1);
                self.suspect_reason[r] = if anomalous_det {
                    REASON_ANOMALY
                } else {
                    REASON_HEALTH
                };
            } else {
                self.suspicion[r] = self.suspicion[r].saturating_sub(1);
            }
            // A restored replica that looks healthy for a confirmation
            // streak counts as reconverged even without the signal feed.
            if let Some(entry) = self.awaiting.iter_mut().find(|(ar, _)| *ar == ob.replica) {
                if !ob.catching_up && self.suspicion[r] == 0 {
                    entry.1 += 1;
                } else {
                    entry.1 = 0;
                }
            }
        }
        let confirm = self.cfg.confirm_ticks;
        self.awaiting.retain(|(_, streak)| *streak < confirm);

        // 5. Proxy throttling.
        for ob in &input.proxies {
            let p = ob.proxy as usize;
            if p >= self.throttled.len() {
                continue;
            }
            if !self.throttled[p] && ob.anomaly_z >= self.cfg.flood_z {
                self.throttled[p] = true;
                self.proxy_calm[p] = 0;
                self.stats.throttles += 1;
                let act = Actuation::Throttle {
                    proxy: ob.proxy,
                    min_interval: self.cfg.throttle_interval,
                };
                self.emit(now, act);
                out.push(act);
                self.transition(now, ResponseState::Throttled, REASON_FLOOD);
            } else if self.throttled[p] {
                if ob.anomaly_z < self.cfg.suspect_z {
                    self.proxy_calm[p] += 1;
                } else {
                    self.proxy_calm[p] = 0;
                }
                if self.proxy_calm[p] >= self.cfg.calm_ticks {
                    self.throttled[p] = false;
                    self.stats.unthrottles += 1;
                    let act = Actuation::Unthrottle { proxy: ob.proxy };
                    self.emit(now, act);
                    out.push(act);
                }
            }
        }

        // 6. The budget-guarded recovery trigger: pick the most-suspect
        //    confirmed replica, if any, and only when a new disruptive
        //    window is safe to open.
        let budget_free = (self.down.len() as u32) < self.cfg.k
            && !external_down
            && now.since(self.last_window_end) >= self.cfg.cooldown;
        if budget_free {
            let mut best: Option<(u32, u32)> = None; // (suspicion, replica)
            for ob in &input.replicas {
                let r = ob.replica as usize;
                if r >= n || !ob.up || ob.catching_up {
                    continue;
                }
                if self.down.iter().any(|(dr, _)| *dr == ob.replica) {
                    continue;
                }
                if self.suspicion[r] < self.cfg.confirm_ticks {
                    continue;
                }
                if let Some(at) = self.last_recovered[r] {
                    if now.since(at) < self.cfg.replica_cooldown {
                        continue;
                    }
                }
                let candidate = (self.suspicion[r], ob.replica);
                // Highest suspicion wins; ties go to the lowest index.
                let better = match best {
                    None => true,
                    Some((s, r0)) => candidate.0 > s || (candidate.0 == s && candidate.1 < r0),
                };
                if better {
                    best = Some(candidate);
                }
            }
            if let Some((_, r)) = best {
                let reason = self.suspect_reason[r as usize];
                self.suspicion[r as usize] = 0;
                self.down.push((r, now + self.cfg.recovery_downtime));
                self.stats.recoveries_started += 1;
                let act = Actuation::TakeDown { replica: r };
                self.emit(now, act);
                out.push(act);
                self.transition(now, ResponseState::Isolating, reason);
            }
        }

        // 7. Resolve the degraded-mode state with hysteresis.
        let active = if !self.down.is_empty() {
            Some(ResponseState::Isolating)
        } else if !self.awaiting.is_empty() {
            Some(ResponseState::Recovering)
        } else if self.throttled.iter().any(|t| *t) {
            Some(ResponseState::Throttled)
        } else if self.suspicion.iter().any(|s| *s > 0) {
            Some(ResponseState::Suspicious)
        } else {
            None
        };
        match active {
            Some(state) => {
                self.calm_streak = 0;
                // Escalation is immediate; de-escalation between elevated
                // states also tracks the live condition (the calm window
                // only gates the final drop to Normal).
                let reason = match state {
                    ResponseState::Isolating => self
                        .suspect_reason
                        .iter()
                        .copied()
                        .max()
                        .unwrap_or(REASON_ANOMALY),
                    ResponseState::Recovering => REASON_RESTORE,
                    ResponseState::Throttled => REASON_FLOOD,
                    _ => self
                        .suspect_reason
                        .iter()
                        .copied()
                        .max()
                        .unwrap_or(REASON_ANOMALY),
                };
                self.transition(now, state, reason);
            }
            None => {
                if violation_seen {
                    self.calm_streak = 0;
                } else if self.state != ResponseState::Normal {
                    self.calm_streak += 1;
                    if self.calm_streak >= self.cfg.calm_ticks {
                        self.transition(now, ResponseState::Normal, REASON_CALM);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ResponseConfig {
        ResponseConfig::for_budget(6, 1, 1)
    }

    fn quiet_input(now_ms: u64, n: u32) -> ControllerInput {
        ControllerInput {
            now: SimTime(now_ms * 1_000),
            replicas: (0..n)
                .map(|r| ReplicaObservation {
                    replica: r,
                    ..ReplicaObservation::default()
                })
                .collect(),
            proxies: vec![ProxyObservation {
                proxy: 0,
                anomaly_z: 0.0,
            }],
            signals: Vec::new(),
        }
    }

    #[test]
    fn quiet_stream_stays_normal_and_silent() {
        let mut c = Controller::new(cfg());
        for t in 0..100 {
            let acts = c.step(&quiet_input(t * 100, 6));
            assert!(acts.is_empty());
        }
        assert_eq!(c.state(), ResponseState::Normal);
        assert!(c.transitions().is_empty());
    }

    #[test]
    fn confirmed_anomaly_triggers_one_bounded_recovery() {
        let mut c = Controller::new(cfg());
        // Past the initial cool-down, replica 4 scores hot every tick.
        let mut took_down_at = None;
        for t in 0..200u64 {
            let mut input = quiet_input(4000 + t * 100, 6);
            if c.isolated().is_empty() {
                input.replicas[4].anomaly_z = 9.0;
            } else {
                input.replicas[4].up = false;
            }
            for act in c.step(&input) {
                if let Actuation::TakeDown { replica } = act {
                    assert_eq!(replica, 4);
                    assert!(took_down_at.is_none() || c.stats.recoveries_started <= 2);
                    took_down_at.get_or_insert(t);
                }
            }
            assert!(c.isolated().len() <= 1, "k = 1 respected");
        }
        let first = took_down_at.expect("recovery triggered");
        assert!(first >= 2, "confirmation ticks enforced, got {first}");
        assert!(c.stats.recoveries_completed >= 1);
    }

    #[test]
    fn no_takedown_while_external_replica_down() {
        let mut c = Controller::new(cfg());
        for t in 0..100u64 {
            let mut input = quiet_input(10_000 + t * 100, 6);
            input.replicas[2].up = false; // externally down, not ours
            input.replicas[4].anomaly_z = 12.0;
            for act in c.step(&input) {
                assert!(
                    !matches!(act, Actuation::TakeDown { .. }),
                    "budget guard must refuse while replica 2 is down"
                );
            }
        }
        assert!(c.suspicion.iter().any(|s| *s > 0));
        assert_eq!(c.state(), ResponseState::Suspicious);
    }

    #[test]
    fn flood_throttles_then_calm_unthrottles_with_hysteresis() {
        let mut c = Controller::new(cfg());
        let mut throttle_at = None;
        let mut unthrottle_at = None;
        for t in 0..100u64 {
            let mut input = quiet_input(t * 100, 6);
            input.proxies[0].anomaly_z = if t < 10 { 11.0 } else { 0.0 };
            for act in c.step(&input) {
                match act {
                    Actuation::Throttle { proxy, .. } => {
                        assert_eq!(proxy, 0);
                        throttle_at.get_or_insert(t);
                    }
                    Actuation::Unthrottle { .. } => {
                        unthrottle_at.get_or_insert(t);
                    }
                    _ => panic!("unexpected {act:?}"),
                }
            }
        }
        assert_eq!(throttle_at, Some(0));
        let lifted = unthrottle_at.expect("throttle lifted");
        // Last hot tick is t = 9, so the calm streak completes no
        // earlier than 9 + calm_ticks.
        assert!(
            lifted >= 9 + cfg().calm_ticks as u64,
            "hysteresis: lifted at {lifted}"
        );
        assert_eq!(c.stats.throttles, 1);
        assert_eq!(c.stats.unthrottles, 1);
    }

    #[test]
    fn transitions_are_journaled_when_attached() {
        let hub = obs::ObsHub::new();
        let mut c = Controller::new(cfg());
        c.attach_obs(hub.clone());
        let mut input = quiet_input(0, 6);
        input.proxies[0].anomaly_z = 11.0;
        c.step(&input);
        assert_eq!(
            hub.journal_count(|e| matches!(e, obs::Event::ResponseTransition { .. })),
            1
        );
        assert_eq!(
            hub.journal_count(|e| matches!(e, obs::Event::ResponseActuation { actuator: 2, .. })),
            1
        );
    }
}
