//! Emulated PLCs and the physical power process they control.
//!
//! The paper prepared for both deployments by emulating PLCs with OpenPLC
//! on Linux (§VI-B) and then swapped in the real device "with only minimal
//! changes". This crate is that emulation layer, built on [`simnet`]:
//!
//! * [`topology`] — electrical topology models: sources, buses, breakers,
//!   loads, and an energization solver. Includes the exact Figure 4
//!   distribution topology (seven breakers feeding four buildings), the
//!   three-breaker subset the plant engineers wired to real breakers in
//!   §V, the ten-PLC distribution scenario, and the six-PLC generation
//!   scenario created with the plant engineers.
//! * [`breaker`] — the breaker bank: commanded state (coils), mechanical
//!   position feedback (discrete inputs) with operate delay, trip counters.
//! * [`logic`] — the PLC's configuration image: the ladder-logic
//!   parameters that vendor function codes dump and replace. Uploading a
//!   tampered image *changes device behaviour* (forced/inverted breakers),
//!   which is how the red team controlled the commercial PLC.
//! * [`emulator`] — the PLC as a [`simnet::Process`]: Modbus/RTU server on
//!   a direct cable or Modbus/TCP on a network, 10 ms scan cycle.
//! * [`measurement`] — the plant's end-to-end reaction-time device (§V):
//!   flips a breaker periodically and timestamps each flip.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breaker;
pub mod emulator;
pub mod logic;
pub mod measurement;
pub mod topology;

pub use breaker::BreakerBank;
pub use emulator::{PlcEmulator, PLC_MODBUS_PORT};
pub use logic::LogicConfig;
pub use topology::{PowerTopology, Scenario};
