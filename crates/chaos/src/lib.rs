//! Deterministic chaos engine for the Spire reproduction.
//!
//! The paper's deployments (DSN 2019, §V–§VI) survived a red team and six
//! days of continuous plant operation. This crate turns that survivability
//! claim into a *checked* property: seed-deterministic fault schedules
//! ([`plan`]) are executed against a full deployment ([`driver`]) while
//! the paper's guarantees are continuously asserted ([`invariants`]) —
//! safety always, liveness whenever the injected faults fit the `f`/`k`
//! budget the system was configured to tolerate.
//!
//! Everything is deterministic: plans are pure functions of a seed, every
//! injection/heal/violation is journaled into the run digest, and the same
//! seed replays the same soak byte-for-byte. See `EXPERIMENTS.md` (E12)
//! for the chaos-soak experiment built on this crate.

//! For consumers that must *react* to chaos rather than audit it after
//! the fact (the `response` controller, tests), [`signal`] adds a typed,
//! deterministic publish/subscribe feed of injections, heals,
//! reconvergence outcomes, and violations.

pub mod driver;
pub mod invariants;
pub mod plan;
pub mod signal;
