//! Fault-injection modes for replicas.
//!
//! These model the replica-level failures the paper's experiments exercise:
//! crashes (proactive recovery takes a replica down), mute leaders, and the
//! *performance-degradation* attack Prime exists to resist — a leader that
//! stays "correct enough" to avoid detection by classic BFT but delays
//! ordering as much as it can.

use simnet::time::SimDuration;

/// How a replica (mis)behaves.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ByzMode {
    /// Normal operation.
    #[default]
    Correct,
    /// Fail-stop: the replica neither sends nor processes anything.
    Crashed,
    /// A leader that never proposes (classic liveness attack).
    MuteLeader,
    /// A leader that delays every proposal by the given extra duration —
    /// the attack Prime's TAT mechanism detects and punishes.
    DelayLeader(SimDuration),
}

impl ByzMode {
    /// Whether the replica is crashed.
    pub fn is_crashed(self) -> bool {
        self == ByzMode::Crashed
    }

    /// Whether the replica is a mute leader.
    pub fn is_mute_leader(self) -> bool {
        self == ByzMode::MuteLeader
    }

    /// Whether this mode counts against the intrusion budget `f`.
    pub fn is_byzantine(self) -> bool {
        !matches!(self, ByzMode::Correct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates() {
        assert!(!ByzMode::Correct.is_byzantine());
        assert!(ByzMode::Crashed.is_crashed());
        assert!(ByzMode::MuteLeader.is_mute_leader());
        assert!(ByzMode::DelayLeader(SimDuration::from_millis(500)).is_byzantine());
        assert!(!ByzMode::Crashed.is_mute_leader());
        assert_eq!(ByzMode::default(), ByzMode::Correct);
    }
}
