//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the workspace's benches use — benchmark
//! groups, `Bencher::iter`/`iter_batched`, `criterion_group!` /
//! `criterion_main!` — backed by a simple wall-clock timer instead of
//! the real crate's statistical machinery. Each benchmark reports the
//! best-of-samples mean time per iteration to stdout. Good enough to
//! keep `cargo bench` working and relative costs visible without
//! crates.io access.

use std::time::Instant;

const DEFAULT_SAMPLES: usize = 20;

/// Benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\n== {name} ==");
        BenchmarkGroup {
            samples: DEFAULT_SAMPLES,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, DEFAULT_SAMPLES, f);
        self
    }
}

/// A named set of benchmarks sharing sample configuration.
pub struct BenchmarkGroup {
    samples: usize,
}

impl BenchmarkGroup {
    /// Sets how many timing samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Times `f` and prints the per-iteration cost.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.samples, f);
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut best_ns = f64::INFINITY;
    for _ in 0..samples {
        let mut b = Bencher {
            elapsed_ns: 0.0,
            iters: 0,
        };
        f(&mut b);
        if b.iters > 0 {
            best_ns = best_ns.min(b.elapsed_ns / b.iters as f64);
        }
    }
    if best_ns.is_finite() {
        println!("{name:<32} {}", format_ns(best_ns));
    } else {
        println!("{name:<32} (no iterations)");
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:10.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:10.2} µs/iter", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:10.2} ms/iter", ns / 1_000_000.0)
    } else {
        format!("{:10.2}  s/iter", ns / 1_000_000_000.0)
    }
}

/// How batched setup values are amortized. Only a hint here; all
/// variants behave identically in this stand-in.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Passed to each benchmark closure; runs and times the routine.
pub struct Bencher {
    elapsed_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        let once = start.elapsed().as_nanos() as f64;
        // Scale iteration count so each sample costs roughly a millisecond.
        let reps = if once > 0.0 {
            ((1_000_000.0 / once) as u64).clamp(1, 10_000)
        } else {
            1_000
        };
        std::hint::black_box(out);
        let start = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(routine());
        }
        self.elapsed_ns += start.elapsed().as_nanos() as f64;
        self.iters += reps + 1;
        self.elapsed_ns += once;
    }

    /// Times `routine` over inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        std::hint::black_box(routine(input));
        self.elapsed_ns += start.elapsed().as_nanos() as f64;
        self.iters += 1;
    }
}

/// Bundles benchmark functions into one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        let mut ran = 0u64;
        group.bench_function("add", |b| b.iter(|| ran += 1));
        group.bench_function("batched", |b| {
            b.iter_batched(|| 21u64, |x| x * 2, BatchSize::SmallInput)
        });
        group.finish();
        assert!(ran > 0);
    }
}
