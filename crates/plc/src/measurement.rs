//! The plant engineers' end-to-end reaction-time measurement device (§V).
//!
//! "The device periodically flipped a breaker and used two sensors to
//! detect when the HMI screens of the two systems updated to reflect the
//! change." Here the device is a Modbus client on the network that toggles
//! one breaker coil on a fixed cadence and timestamps each flip; the HMI
//! side records its own update timestamps, and the latency harness in the
//! `spire` crate pairs them up.

use bytes::Bytes;
use modbus::{Request, Response, TcpFrame};
use simnet::packet::Packet;
use simnet::process::{Context, Process};
use simnet::time::{SimDuration, SimTime};
use simnet::types::{IpAddr, Port};

use crate::emulator::PLC_MODBUS_PORT;

const FLIP_TIMER: u64 = 1;
const LOCAL_PORT: Port = Port(15_020);

/// A recorded flip event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Flip {
    /// When the command was sent.
    pub at: SimTime,
    /// The state commanded (true = close).
    pub closed: bool,
    /// Whether the PLC acknowledged the write.
    pub acked: bool,
}

/// The measurement device process.
pub struct MeasurementDevice {
    plc: IpAddr,
    breaker: u16,
    period: SimDuration,
    next_state: bool,
    transaction: u16,
    /// All flips issued so far.
    pub flips: Vec<Flip>,
    /// Maximum number of flips to perform (0 = unlimited).
    pub max_flips: usize,
}

impl MeasurementDevice {
    /// Creates a device that toggles `breaker` on `plc` every `period`.
    pub fn new(plc: IpAddr, breaker: u16, period: SimDuration, max_flips: usize) -> Self {
        MeasurementDevice {
            plc,
            breaker,
            period,
            next_state: false, // first action opens the (initially closed) breaker
            transaction: 0,
            flips: Vec::new(),
            max_flips,
        }
    }

    fn flip(&mut self, ctx: &mut Context<'_>) {
        let req = Request::WriteSingleCoil {
            address: self.breaker,
            value: self.next_state,
        };
        self.transaction = self.transaction.wrapping_add(1);
        let frame = TcpFrame::new(self.transaction, 1, req.encode());
        let pkt = Packet::udp(
            ctx.ip(0),
            self.plc,
            LOCAL_PORT,
            PLC_MODBUS_PORT,
            Bytes::from(frame.encode()),
        );
        ctx.send(0, pkt);
        self.flips.push(Flip {
            at: ctx.now(),
            closed: self.next_state,
            acked: false,
        });
        self.next_state = !self.next_state;
    }
}

impl Process for MeasurementDevice {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.listen(LOCAL_PORT);
        ctx.set_timer(self.period, FLIP_TIMER);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: u64) {
        if timer != FLIP_TIMER {
            return;
        }
        if self.max_flips > 0 && self.flips.len() >= self.max_flips {
            return;
        }
        self.flip(ctx);
        ctx.set_timer(self.period, FLIP_TIMER);
    }

    fn on_packet(&mut self, _ctx: &mut Context<'_>, pkt: Packet) {
        // Acknowledge the most recent flip when the echo arrives.
        let Some(frame) = TcpFrame::decode(&pkt.payload) else {
            return;
        };
        let last_req = match self.flips.last() {
            Some(f) => Request::WriteSingleCoil {
                address: self.breaker,
                value: f.closed,
            },
            None => return,
        };
        if let Some(Response::WriteSingleCoil { .. }) = Response::decode(&frame.pdu, &last_req) {
            if let Some(f) = self.flips.last_mut() {
                f.acked = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emulator::PlcEmulator;
    use crate::topology::Scenario;
    use simnet::{InterfaceSpec, LinkSpec, NodeSpec, Simulation, SwitchMode};

    #[test]
    fn device_flips_breaker_and_gets_acks() {
        let mut sim = Simulation::new(11);
        let plc_ip = IpAddr::new(10, 0, 9, 1);
        let dev_ip = IpAddr::new(10, 0, 9, 2);
        let plc = sim.add_node(NodeSpec::new(
            "plc",
            vec![InterfaceSpec::dynamic(plc_ip)],
            Box::new(PlcEmulator::new(Scenario::PlantSubset)),
        ));
        let dev = sim.add_node(NodeSpec::new(
            "meter",
            vec![InterfaceSpec::dynamic(dev_ip)],
            Box::new(MeasurementDevice::new(
                plc_ip,
                1,
                SimDuration::from_millis(500),
                6,
            )),
        ));
        let sw = sim.add_switch(2, SwitchMode::Learning);
        sim.connect(plc, 0, sw, 0, LinkSpec::lan());
        sim.connect(dev, 0, sw, 1, LinkSpec::lan());
        sim.run_for(SimDuration::from_secs(5));

        let device = sim.process_ref::<MeasurementDevice>(dev).expect("device");
        assert_eq!(device.flips.len(), 6);
        assert!(
            device.flips.iter().all(|f| f.acked),
            "all writes acknowledged"
        );
        // Alternating open/close starting with open.
        assert!(!device.flips[0].closed);
        assert!(device.flips[1].closed);

        let emu = sim.process_ref::<PlcEmulator>(plc).expect("plc");
        // Breaker 1 (B57) actually moved: six commands → six operations.
        assert!(emu.position_log.iter().filter(|(_, b, _)| *b == 1).count() >= 5);
    }
}
