//! Frames and packets.
//!
//! A [`Frame`] is the layer-2 unit (MAC addresses + an [`EtherPayload`]);
//! a [`Packet`] is the layer-3/4 unit carried inside a data frame. The
//! simulator routes frames; host firewalls and processes see packets.

use bytes::Bytes;
use obs::trace::TraceCtx;

use crate::types::{IpAddr, MacAddr, Port};

/// Transport-layer semantics of a packet.
///
/// The simulator models just enough of TCP to express the red team's port
/// scans (SYN probing, RST vs. silent drop) — everything else is datagrams.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TransportKind {
    /// Datagram traffic (all Spines / Prime / Modbus-TCP-ish traffic is
    /// modeled as datagrams with application-level reliability).
    Udp,
    /// TCP connection-probe (SYN) — used by port scanners.
    TcpSyn,
    /// TCP SYN-ACK — an open port's answer to a SYN.
    TcpSynAck,
    /// TCP RST — a closed-but-reachable port's answer to a SYN.
    TcpRst,
    /// ICMP echo request.
    Ping,
    /// ICMP echo reply.
    Pong,
}

/// A layer-3/4 packet.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Packet {
    /// Source IP (may be spoofed by adversaries).
    pub src_ip: IpAddr,
    /// Destination IP.
    pub dst_ip: IpAddr,
    /// Source port.
    pub src_port: Port,
    /// Destination port.
    pub dst_port: Port,
    /// Transport semantics.
    pub kind: TransportKind,
    /// Application payload (often ciphertext).
    pub payload: Bytes,
    /// Causal-tracing context riding along as metadata. Not part of the
    /// wire image: zero bytes of [`Packet::wire_size`], so traced and
    /// untraced runs have identical timing.
    pub trace: Option<TraceCtx>,
}

impl Packet {
    /// Builds a UDP-style datagram.
    pub fn udp(
        src_ip: IpAddr,
        dst_ip: IpAddr,
        src_port: Port,
        dst_port: Port,
        payload: Bytes,
    ) -> Self {
        Packet {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            kind: TransportKind::Udp,
            payload,
            trace: None,
        }
    }

    /// Builds a TCP SYN probe with an empty payload.
    pub fn syn(src_ip: IpAddr, dst_ip: IpAddr, src_port: Port, dst_port: Port) -> Self {
        Packet {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            kind: TransportKind::TcpSyn,
            payload: Bytes::new(),
            trace: None,
        }
    }

    /// Wire size in bytes: a nominal 42-byte header plus payload.
    pub fn wire_size(&self) -> usize {
        42 + self.payload.len()
    }
}

/// ARP operation carried by an ARP frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArpOp {
    /// "Who has `target_ip`? Tell `sender_ip`."
    Request,
    /// "`sender_ip` is at `sender_mac`." Unsolicited replies are gratuitous
    /// ARP — the poisoning vector.
    Reply,
}

/// An ARP frame body.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ArpBody {
    /// Request or reply.
    pub op: ArpOp,
    /// Sender protocol address.
    pub sender_ip: IpAddr,
    /// Sender hardware address (what poisoning forges).
    pub sender_mac: MacAddr,
    /// Target protocol address.
    pub target_ip: IpAddr,
}

/// What a frame carries.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EtherPayload {
    /// An IP packet.
    Ip(Packet),
    /// An ARP message.
    Arp(ArpBody),
}

/// A layer-2 frame.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Frame {
    /// Source MAC (spoofable by adversaries with raw access).
    pub src_mac: MacAddr,
    /// Destination MAC, possibly broadcast.
    pub dst_mac: MacAddr,
    /// The payload.
    pub payload: EtherPayload,
}

impl Frame {
    /// Wire size in bytes (14-byte Ethernet header + payload).
    pub fn wire_size(&self) -> usize {
        14 + match &self.payload {
            EtherPayload::Ip(p) => p.wire_size(),
            EtherPayload::Arp(_) => 28,
        }
    }

    /// Convenience accessor: the IP packet, if this is a data frame.
    pub fn packet(&self) -> Option<&Packet> {
        match &self.payload {
            EtherPayload::Ip(p) => Some(p),
            EtherPayload::Arp(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::NodeId;

    #[test]
    fn packet_constructors() {
        let p = Packet::udp(
            IpAddr::new(10, 0, 0, 1),
            IpAddr::new(10, 0, 0, 2),
            Port(100),
            Port(200),
            Bytes::from_static(b"hi"),
        );
        assert_eq!(p.kind, TransportKind::Udp);
        assert_eq!(p.wire_size(), 44);

        let s = Packet::syn(
            IpAddr::new(1, 1, 1, 1),
            IpAddr::new(2, 2, 2, 2),
            Port(5),
            Port(22),
        );
        assert_eq!(s.kind, TransportKind::TcpSyn);
        assert!(s.payload.is_empty());
    }

    #[test]
    fn frame_sizes_and_accessors() {
        let mac_a = MacAddr::derived(NodeId(1), 0);
        let mac_b = MacAddr::derived(NodeId(2), 0);
        let pkt = Packet::udp(
            IpAddr::new(10, 0, 0, 1),
            IpAddr::new(10, 0, 0, 2),
            Port(1),
            Port(2),
            Bytes::from_static(&[0u8; 10]),
        );
        let f = Frame {
            src_mac: mac_a,
            dst_mac: mac_b,
            payload: EtherPayload::Ip(pkt.clone()),
        };
        assert_eq!(f.wire_size(), 14 + 42 + 10);
        assert_eq!(f.packet(), Some(&pkt));

        let arp = Frame {
            src_mac: mac_a,
            dst_mac: MacAddr::BROADCAST,
            payload: EtherPayload::Arp(ArpBody {
                op: ArpOp::Request,
                sender_ip: IpAddr::new(10, 0, 0, 1),
                sender_mac: mac_a,
                target_ip: IpAddr::new(10, 0, 0, 2),
            }),
        };
        assert_eq!(arp.wire_size(), 42);
        assert!(arp.packet().is_none());
    }
}
