//! Overlay message format.

use bytes::Bytes;
use simnet::wire::{DecodeError, Reader, Wire, Writer};

/// Where an overlay message is going.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Destination {
    /// A specific daemon.
    Daemon(u32),
    /// All daemons subscribed to a group (Spines "virtual port").
    Group(u16),
}

/// Message kind.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MsgKind {
    /// Application data.
    Data,
    /// The legacy diagnostic/maintenance message — the code path in which
    /// the red team's exploit lived. Processing it in legacy mode executes
    /// an attacker-controlled command; in intrusion-tolerant mode the
    /// handler is compiled out.
    LegacyDiag,
}

/// An overlay message (the plaintext inside per-link encryption).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SpinesMsg {
    /// Originating daemon id.
    pub src: u32,
    /// Per-source sequence number (for flood deduplication).
    pub seq: u64,
    /// Destination.
    pub dst: Destination,
    /// Priority class (higher = more urgent); used by fair queuing.
    pub priority: u8,
    /// Message kind.
    pub kind: MsgKind,
    /// Application payload.
    pub payload: Bytes,
}

impl Wire for SpinesMsg {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.src).put_u64(self.seq);
        match self.dst {
            Destination::Daemon(d) => {
                w.put_u8(0).put_u32(d);
            }
            Destination::Group(g) => {
                w.put_u8(1).put_u32(g as u32);
            }
        }
        w.put_u8(self.priority);
        w.put_u8(match self.kind {
            MsgKind::Data => 0,
            MsgKind::LegacyDiag => 1,
        });
        w.put_bytes(&self.payload);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let src = r.get_u32()?;
        let seq = r.get_u64()?;
        let dst = match r.get_u8()? {
            0 => Destination::Daemon(r.get_u32()?),
            1 => Destination::Group(r.get_u32()? as u16),
            _ => return Err(DecodeError::new("destination tag")),
        };
        let priority = r.get_u8()?;
        let kind = match r.get_u8()? {
            0 => MsgKind::Data,
            1 => MsgKind::LegacyDiag,
            _ => return Err(DecodeError::new("message kind")),
        };
        let payload = Bytes::from(r.get_bytes()?);
        Ok(SpinesMsg {
            src,
            seq,
            dst,
            priority,
            kind,
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_daemon_dst() {
        let m = SpinesMsg {
            src: 3,
            seq: 42,
            dst: Destination::Daemon(7),
            priority: 2,
            kind: MsgKind::Data,
            payload: Bytes::from_static(b"update"),
        };
        assert_eq!(SpinesMsg::from_wire(&m.to_wire()).expect("roundtrip"), m);
    }

    #[test]
    fn roundtrip_group_dst_and_legacy_kind() {
        let m = SpinesMsg {
            src: 0,
            seq: u64::MAX,
            dst: Destination::Group(8101),
            priority: 0,
            kind: MsgKind::LegacyDiag,
            payload: Bytes::new(),
        };
        assert_eq!(SpinesMsg::from_wire(&m.to_wire()).expect("roundtrip"), m);
    }

    #[test]
    fn malformed_rejected() {
        let m = SpinesMsg {
            src: 1,
            seq: 1,
            dst: Destination::Daemon(2),
            priority: 1,
            kind: MsgKind::Data,
            payload: Bytes::from_static(b"x"),
        };
        let bytes = m.to_wire();
        assert!(SpinesMsg::from_wire(&bytes[..bytes.len() - 1]).is_err());
        let mut bad_tag = bytes.to_vec();
        bad_tag[12] = 9; // destination tag byte
        assert!(SpinesMsg::from_wire(&bad_tag).is_err());
    }
}
