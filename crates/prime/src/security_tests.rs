//! Security-focused unit tests on the replica's message validation: a
//! Byzantine replica must not be able to forge updates, bind foreign
//! pre-order slots, or impersonate peers.

#![cfg(test)]

use bytes::Bytes;
use itcrypto::keys::{KeyPair, KeyRegistry, Principal};
use simnet::time::SimTime;
use simnet::wire::Wire;

use crate::application::KvApp;
use crate::messages::{AruRow, PrimeMsg, SignedMsg};
use crate::replica::{po_compose, po_counter, po_incarnation, Replica};
use crate::types::{Config, ReplicaId, SignedUpdate, Update};

fn registry_and_keys(n: u32, clients: u32) -> (KeyRegistry, Vec<KeyPair>, Vec<KeyPair>) {
    let mut reg = KeyRegistry::new();
    let mut rkeys = Vec::new();
    for i in 0..n {
        let kp = KeyPair::generate(0x5250 + i as u64);
        reg.register(Principal::Replica(i), kp.public_key());
        rkeys.push(kp);
    }
    let mut ckeys = Vec::new();
    for c in 0..clients {
        let kp = KeyPair::generate(0x434C + c as u64);
        reg.register(Principal::Client(c), kp.public_key());
        ckeys.push(kp);
    }
    (reg, rkeys, ckeys)
}

fn replica(id: u32) -> (Replica<KvApp>, Vec<KeyPair>, Vec<KeyPair>) {
    let config = Config::red_team();
    let (reg, rkeys, ckeys) = registry_and_keys(config.n(), 2);
    let r = Replica::new(
        ReplicaId(id),
        config,
        rkeys[id as usize].clone(),
        reg,
        KvApp::new(),
    );
    (r, rkeys, ckeys)
}

fn signed_update(ckeys: &mut [KeyPair], client: u32, seq: u64) -> SignedUpdate {
    let update = Update::new(client, seq, Bytes::from_static(b"x=1"));
    let sig = ckeys[client as usize].sign(&update.to_wire());
    SignedUpdate { update, sig }
}

#[test]
fn po_composite_arithmetic() {
    let c = po_compose(3, 41);
    assert_eq!(po_incarnation(c), 3);
    assert_eq!(po_counter(c), 41);
    // Higher incarnation always dominates any counter of a lower one.
    assert!(po_compose(2, 0) > po_compose(1, (1 << 40) - 1));
}

#[test]
fn forged_client_signature_rejected() {
    let (mut r, _rk, mut ck) = replica(0);
    let mut bad = signed_update(&mut ck, 0, 1);
    bad.update.payload = Bytes::from_static(b"tampered=1");
    let out = r.submit(bad, SimTime(0));
    assert!(out.is_empty(), "tampered update must not be introduced");
    assert_eq!(r.stats.bad_sigs, 1);
}

#[test]
fn replica_message_with_wrong_envelope_key_rejected() {
    let (mut r0, mut rk, _ck) = replica(0);
    // Replica 2's message signed with replica 3's key.
    let msg = PrimeMsg::SuspectLeader { view: 0 };
    let forged = SignedMsg::sign(ReplicaId(2), msg, &mut rk[3]);
    let before = r0.stats.bad_sigs;
    let out = r0.on_message(forged, SimTime(0));
    assert!(out.is_empty());
    assert_eq!(r0.stats.bad_sigs, before + 1);
}

#[test]
fn po_request_relayed_by_non_origin_is_ignored() {
    // Replica 2 tries to bind a slot in replica 1's pre-order space.
    let (mut r0, mut rk, mut ck) = replica(0);
    let update = signed_update(&mut ck, 0, 1);
    let msg = PrimeMsg::PoRequest {
        origin: ReplicaId(1),
        po_seq: po_compose(0, 1),
        update,
    };
    let signed = SignedMsg::sign(ReplicaId(2), msg, &mut rk[2]);
    let _ = r0.on_message(signed, SimTime(0));
    // The slot must remain unbound: an honest fetch would find nothing.
    let fetch = PrimeMsg::PoFetch {
        origin: ReplicaId(1),
        po_seq: po_compose(0, 1),
    };
    let signed_fetch = SignedMsg::sign(ReplicaId(3), fetch, &mut rk[3]);
    let out = r0.on_message(signed_fetch, SimTime(1));
    assert!(out.is_empty(), "no PoData reply for an unbound slot");
}

#[test]
fn po_data_with_forged_inner_envelope_rejected() {
    let (mut r0, mut rk, mut ck) = replica(0);
    // Inner envelope claims origin replica 1 but is signed by replica 2.
    let update = signed_update(&mut ck, 0, 1);
    let inner = PrimeMsg::PoRequest {
        origin: ReplicaId(1),
        po_seq: po_compose(0, 1),
        update,
    };
    let forged_inner = SignedMsg::sign(ReplicaId(1), inner, &mut rk[2]); // wrong key
    let po_data = PrimeMsg::PoData {
        original: forged_inner.to_wire().to_vec(),
    };
    let outer = SignedMsg::sign(ReplicaId(2), po_data, &mut rk[2]);
    let before = r0.stats.bad_sigs;
    let _ = r0.on_message(outer, SimTime(0));
    assert!(r0.stats.bad_sigs > before, "forged inner envelope detected");
}

#[test]
fn pre_prepare_from_non_leader_ignored() {
    let (mut r1, mut rk, _ck) = replica(1);
    // View 0's leader is replica 0; replica 2 proposes anyway.
    let row_vec = vec![0u64; 4];
    let sig = rk[2].sign(&AruRow::signed_bytes(ReplicaId(2), &row_vec));
    let row = AruRow {
        replica: ReplicaId(2),
        vector: row_vec,
        sig,
    };
    let pp = PrimeMsg::PrePrepare {
        view: 0,
        seq: 1,
        matrix: vec![row.clone(), row.clone(), row.clone()],
    };
    let signed = SignedMsg::sign(ReplicaId(2), pp, &mut rk[2]);
    let out = r1.on_message(signed, SimTime(0));
    // No Prepare is emitted for a usurper's proposal.
    assert!(
        !out.iter().any(|e| matches!(
            e,
            crate::replica::OutEvent::Broadcast(m) if matches!(m.msg.msg, PrimeMsg::Prepare { .. })
        )),
        "prepared a non-leader's pre-prepare"
    );
}

#[test]
fn pre_prepare_with_undersized_matrix_ignored() {
    let (mut r1, mut rk, _ck) = replica(1);
    // Only 2 rows < ordering quorum (3 for n=4).
    let row_vec = vec![0u64; 4];
    let sig = rk[0].sign(&AruRow::signed_bytes(ReplicaId(0), &row_vec));
    let row = AruRow {
        replica: ReplicaId(0),
        vector: row_vec,
        sig,
    };
    let pp = PrimeMsg::PrePrepare {
        view: 0,
        seq: 1,
        matrix: vec![row.clone(), row],
    };
    let signed = SignedMsg::sign(ReplicaId(0), pp, &mut rk[0]);
    let out = r1.on_message(signed, SimTime(0));
    assert!(
        !out.iter().any(|e| matches!(
            e,
            crate::replica::OutEvent::Broadcast(m) if matches!(m.msg.msg, PrimeMsg::Prepare { .. })
        )),
        "prepared an undersized matrix"
    );
}

#[test]
fn duplicate_client_seq_not_reintroduced() {
    let (mut r0, _rk, mut ck) = replica(0);
    let u = signed_update(&mut ck, 0, 7);
    let first = r0.submit(u.clone(), SimTime(0));
    assert!(!first.is_empty());
    let second = r0.submit(u, SimTime(1));
    assert!(second.is_empty(), "same (client, seq) introduced twice");
    assert_eq!(r0.stats.po_introduced, 1);
}

#[test]
fn message_claiming_own_id_ignored() {
    let (mut r0, mut rk, _ck) = replica(0);
    // A message "from ourselves" arriving over the network is bogus.
    let msg = PrimeMsg::SuspectLeader { view: 0 };
    let spoofed = SignedMsg::sign(ReplicaId(0), msg, &mut rk[0]);
    let out = r0.on_message(spoofed, SimTime(0));
    assert!(out.is_empty());
}

#[test]
fn out_of_range_replica_id_ignored() {
    let (mut r0, mut rk, _ck) = replica(0);
    let msg = PrimeMsg::SuspectLeader { view: 0 };
    let alien = SignedMsg::sign(ReplicaId(99), msg, &mut rk[1]);
    let out = r0.on_message(alien, SimTime(0));
    assert!(out.is_empty());
}
