//! Core types: replica identifiers, configurations, and client updates.

use std::fmt;

use bytes::Bytes;
use itcrypto::keys::{KeyRegistry, Principal};
use itcrypto::schnorr::Signature;
use itcrypto::sha256::{sha256, Digest};
use simnet::time::SimDuration;
use simnet::wire::{DecodeError, Reader, Wire, Writer};

/// A replica index in `0..n`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ReplicaId(pub u32);

impl fmt::Debug for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Fault-tolerance configuration: `n = 3f + 2k + 1`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Config {
    /// Maximum simultaneous intrusions tolerated.
    pub f: u32,
    /// Maximum replicas simultaneously in proactive recovery.
    pub k: u32,
    /// When set, catch-up replies carry the sender's client dedup table
    /// so a recovering replica suppresses the same duplicate orderings
    /// its peers already executed. Without it, a recovered replica's
    /// execution numbering (and application digest) can permanently fork
    /// from the veterans' under duplicate introduction — a divergence the
    /// chaos invariant checker surfaced (see DESIGN.md, "Resilience &
    /// chaos"). Off by default to keep the legacy experiments' catch-up
    /// wire format (and their pinned digests) stable; chaos deployments
    /// arm it.
    pub transfer_dedup: bool,
    /// Maximum client updates packed into one `PoRequestBatch` before the
    /// batch closes and disseminates (0 = batching off: every update goes
    /// out as a legacy per-update `PoRequest`, byte-identical to the
    /// pre-batching wire format). Batching amortizes the per-message NIC
    /// cost of pre-order dissemination — the E11 saturation bottleneck —
    /// across many updates with a single Merkle-root signature.
    pub batch_max: u32,
    /// Time-trigger for batch close: a pending batch older than this
    /// disseminates even if below `batch_max`. The trigger is evaluated
    /// as a rate limiter — the first update after a quiet period ships
    /// immediately as a singleton batch — so pre-saturation latency
    /// matches the unbatched protocol.
    pub batch_delay: SimDuration,
    /// Ordering pipeline depth: how many Pre-Prepare sequences the leader
    /// may keep in flight at once (1 = the legacy serialized ordering,
    /// byte-identical wire behavior). Depths above 1 overlap ordering
    /// rounds with dissemination and switch view-change votes to the
    /// windowed `ViewChangeWindow` certificate carrier.
    pub pipeline: u32,
    /// Catch-up snapshot chunk size in bytes (0 = off: snapshots travel
    /// whole inside `CatchupReply`, the legacy wire format). When armed,
    /// snapshots larger than this split into `CatchupChunk` messages so a
    /// large state transfer does not occupy the sender's NIC lane in one
    /// long burst.
    pub transfer_chunk: u32,
}

impl Config {
    /// Creates a configuration.
    pub fn new(f: u32, k: u32) -> Self {
        Config {
            f,
            k,
            transfer_dedup: false,
            batch_max: 0,
            batch_delay: SimDuration::from_millis(5),
            pipeline: 1,
            transfer_chunk: 0,
        }
    }

    /// Arms Merkle-batched pre-order dissemination and pipelined
    /// sequencing on top of this configuration (builder-style).
    pub fn with_batching(mut self, batch_max: u32, pipeline: u32) -> Self {
        self.batch_max = batch_max;
        self.pipeline = pipeline.max(1);
        self
    }

    /// The red-team deployment: `f = 1, k = 0` → 4 replicas (§IV-A).
    pub fn red_team() -> Self {
        Config::new(1, 0)
    }

    /// The plant deployment: `f = 1, k = 1` → 6 replicas (§V).
    pub fn plant() -> Self {
        Config::new(1, 1)
    }

    /// Total replicas `n = 3f + 2k + 1`.
    pub fn n(&self) -> u32 {
        3 * self.f + 2 * self.k + 1
    }

    /// Quorum for prepare/commit certificates: `2f + k + 1`.
    pub fn ordering_quorum(&self) -> u32 {
        2 * self.f + self.k + 1
    }

    /// Rows of a pre-prepare matrix that must cover an update before it
    /// executes: `f + k + 1` (at least one correct, non-recovering row).
    pub fn coverage_threshold(&self) -> u32 {
        self.f + self.k + 1
    }

    /// Suspicions needed to depose a leader: `f + k + 1`.
    pub fn suspect_threshold(&self) -> u32 {
        self.f + self.k + 1
    }

    /// The leader of a view.
    pub fn leader_of(&self, view: u64) -> ReplicaId {
        ReplicaId((view % self.n() as u64) as u32)
    }

    /// All replica ids.
    pub fn replicas(&self) -> impl Iterator<Item = ReplicaId> {
        (0..self.n()).map(ReplicaId)
    }
}

/// A restricted membership epoch installed after losing an entire site.
///
/// When a wide-area deployment loses a site, the survivors may no longer
/// hold the static ordering quorum `2f + k + 1` of the full configuration.
/// If a majority of the original replicas survives, the management plane
/// installs a *degraded epoch*: ordering continues among the listed
/// `members` with reduced thresholds. Degraded epochs always run with
/// `f = 0` — a membership small enough to need one cannot simultaneously
/// mask an intrusion (quorum intersection `2q > m + f` would fail), which
/// is exactly what the chaos invariant checker's beyond-budget negative
/// control demonstrates. The quorum is a simple majority `⌊m/2⌋ + 1`,
/// expressed as `k = q - 1` so the familiar `2f + k + 1` formula still
/// yields it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Membership {
    /// The surviving replica ids, sorted ascending.
    members: Vec<u32>,
    /// Intrusions tolerated within the epoch (always 0 for degraded epochs).
    pub f: u32,
    /// Recovery budget within the epoch.
    pub k: u32,
}

impl Membership {
    /// Builds a degraded epoch over `members`: `f = 0`, majority quorum.
    ///
    /// Panics if fewer than two members are given — a singleton cannot
    /// form a meaningful ordering epoch.
    pub fn degraded(mut members: Vec<u32>) -> Self {
        assert!(
            members.len() >= 2,
            "a degraded epoch needs at least two members"
        );
        members.sort_unstable();
        members.dedup();
        let quorum = members.len() as u32 / 2 + 1;
        Membership {
            members,
            f: 0,
            k: quorum - 1,
        }
    }

    /// Number of members `m`.
    pub fn len(&self) -> u32 {
        self.members.len() as u32
    }

    /// Whether the membership is empty (never true for constructed epochs).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether `id` belongs to the epoch.
    pub fn contains(&self, id: ReplicaId) -> bool {
        self.members.binary_search(&id.0).is_ok()
    }

    /// The member ids, sorted ascending.
    pub fn members(&self) -> &[u32] {
        &self.members
    }

    /// Epoch ordering quorum `2f + k + 1`.
    pub fn ordering_quorum(&self) -> u32 {
        2 * self.f + self.k + 1
    }

    /// Epoch suspicion threshold `f + k + 1`.
    pub fn suspect_threshold(&self) -> u32 {
        self.f + self.k + 1
    }

    /// The epoch leader of a view: views rotate over the member list.
    pub fn leader_of(&self, view: u64) -> ReplicaId {
        ReplicaId(self.members[(view % self.members.len() as u64) as usize])
    }
}

/// A client update: the unit Prime orders and the SCADA master executes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Update {
    /// Originating client id (a proxy, HMI, or generator).
    pub client: u32,
    /// Client-local sequence number (for idempotence).
    pub client_seq: u64,
    /// Opaque application payload (a SCADA update).
    pub payload: Bytes,
}

impl Update {
    /// Creates an update.
    pub fn new(client: u32, client_seq: u64, payload: impl Into<Bytes>) -> Self {
        Update {
            client,
            client_seq,
            payload: payload.into(),
        }
    }

    /// Digest over the full update.
    pub fn digest(&self) -> Digest {
        sha256(&self.to_wire())
    }
}

impl Wire for Update {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.client)
            .put_u64(self.client_seq)
            .put_bytes(&self.payload);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Update {
            client: r.get_u32()?,
            client_seq: r.get_u64()?,
            payload: Bytes::from(r.get_bytes()?),
        })
    }
}

/// An update signed by its originating client.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SignedUpdate {
    /// The update.
    pub update: Update,
    /// Client signature over the update bytes.
    pub sig: Signature,
}

impl SignedUpdate {
    /// Verifies the client signature against the registry.
    pub fn verify(&self, registry: &KeyRegistry) -> bool {
        registry.verify(
            Principal::Client(self.update.client),
            &self.update.to_wire(),
            &self.sig,
        )
    }

    /// [`SignedUpdate::verify`] through a verdict cache: the same client
    /// signature is checked on submission and again inside every
    /// PO-Request that relays the update.
    pub fn verify_cached(
        &self,
        registry: &KeyRegistry,
        cache: &mut itcrypto::verify_cache::VerifyCache,
    ) -> bool {
        let bytes = self.update.to_wire();
        let key = itcrypto::verify_cache::VerifyCache::key(
            b"prime.update",
            self.update.client as u64,
            &bytes,
            &self.sig.to_bytes(),
        );
        cache.check(key, || {
            registry.verify(Principal::Client(self.update.client), &bytes, &self.sig)
        })
    }
}

impl Wire for SignedUpdate {
    fn encode(&self, w: &mut Writer) {
        self.update.encode(w);
        w.put_raw(&self.sig.to_bytes());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let update = Update::decode(r)?;
        let sig_bytes: [u8; 16] = r
            .get_raw(16)?
            .try_into()
            .map_err(|_| DecodeError::new("signature"))?;
        Ok(SignedUpdate {
            update,
            sig: Signature::from_bytes(&sig_bytes),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itcrypto::keys::KeyPair;

    #[test]
    fn replica_counts_match_paper() {
        assert_eq!(Config::red_team().n(), 4);
        assert_eq!(Config::plant().n(), 6);
        assert_eq!(Config::new(2, 0).n(), 7);
        assert_eq!(Config::new(2, 2).n(), 11);
    }

    #[test]
    fn quorum_sizes() {
        let c = Config::plant(); // f=1, k=1, n=6
        assert_eq!(c.ordering_quorum(), 4);
        assert_eq!(c.coverage_threshold(), 3);
        assert_eq!(c.suspect_threshold(), 3);
        let r = Config::red_team(); // f=1, k=0, n=4
        assert_eq!(r.ordering_quorum(), 3);
        assert_eq!(r.coverage_threshold(), 2);
    }

    #[test]
    fn leader_rotates() {
        let c = Config::red_team();
        assert_eq!(c.leader_of(0), ReplicaId(0));
        assert_eq!(c.leader_of(1), ReplicaId(1));
        assert_eq!(c.leader_of(4), ReplicaId(0));
        assert_eq!(c.replicas().count(), 4);
    }

    #[test]
    fn degraded_membership_quorums() {
        // 3+3 after losing one site: three survivors, majority quorum 2.
        let m = Membership::degraded(vec![2, 0, 1]);
        assert_eq!(m.members(), &[0, 1, 2]);
        assert_eq!((m.f, m.k), (0, 1));
        assert_eq!(m.ordering_quorum(), 2);
        assert_eq!(m.suspect_threshold(), 2);
        // Quorum intersection safety: 2q > m + f.
        assert!(2 * m.ordering_quorum() > m.len() + m.f);
        // Four survivors: majority quorum 3 — still safe.
        let m4 = Membership::degraded(vec![0, 1, 2, 3]);
        assert_eq!(m4.ordering_quorum(), 3);
        assert!(2 * m4.ordering_quorum() > m4.len() + m4.f);
    }

    #[test]
    fn degraded_membership_leader_rotates_over_members() {
        let m = Membership::degraded(vec![0, 1, 2]);
        assert_eq!(m.leader_of(0), ReplicaId(0));
        assert_eq!(m.leader_of(4), ReplicaId(1));
        // A gap-y membership still rotates over its own list.
        let m = Membership::degraded(vec![0, 4, 5]);
        assert_eq!(m.leader_of(1), ReplicaId(4));
        assert_eq!(m.leader_of(2), ReplicaId(5));
        assert!(m.contains(ReplicaId(4)));
        assert!(!m.contains(ReplicaId(3)));
    }

    #[test]
    #[should_panic(expected = "at least two members")]
    fn degraded_membership_rejects_singleton() {
        let _ = Membership::degraded(vec![3]);
    }

    #[test]
    fn update_wire_roundtrip_and_digest() {
        let u = Update::new(3, 99, Bytes::from_static(b"open B57"));
        let rt = Update::from_wire(&u.to_wire()).expect("roundtrip");
        assert_eq!(rt, u);
        assert_eq!(rt.digest(), u.digest());
        let u2 = Update::new(3, 100, Bytes::from_static(b"open B57"));
        assert_ne!(u.digest(), u2.digest());
    }

    #[test]
    fn signed_update_verify() {
        let mut kp = KeyPair::generate(77);
        let mut reg = KeyRegistry::new();
        reg.register(Principal::Client(5), kp.public_key());
        let update = Update::new(5, 1, Bytes::from_static(b"x"));
        let sig = kp.sign(&update.to_wire());
        let su = SignedUpdate { update, sig };
        assert!(su.verify(&reg));
        // Tampered payload fails.
        let mut bad = su.clone();
        bad.update.payload = Bytes::from_static(b"y");
        assert!(!bad.verify(&reg));
        // Unknown client fails.
        let mut unknown = su.clone();
        unknown.update.client = 6;
        assert!(!unknown.verify(&reg));
        // Wire roundtrip preserves the signature.
        let rt = SignedUpdate::from_wire(&su.to_wire()).expect("roundtrip");
        assert!(rt.verify(&reg));
    }

    #[test]
    fn display_forms() {
        assert_eq!(ReplicaId(3).to_string(), "r3");
        assert_eq!(format!("{:?}", ReplicaId(3)), "r3");
    }
}
