//! A reimplementation of the **Prime** Byzantine fault-tolerant replication
//! engine (Amir, Coan, Kirsch, Lane, *Prime: Byzantine Replication Under
//! Attack*, TDSC 2011) — the engine Spire uses to replicate its SCADA
//! master (§II of the DSN'19 paper).
//!
//! Prime's distinguishing property over classic BFT is *performance under
//! attack*: a malicious leader cannot silently throttle the system,
//! because replicas measure the leader's turnaround time (TAT) and replace
//! leaders that fail to order known updates promptly.
//!
//! # Protocol structure
//!
//! * **Pre-ordering** ([`replica`]): every replica disseminates client
//!   updates as numbered `PO-Request`s and continuously gossips a signed
//!   cumulative-acknowledgement vector (`PO-ARU`, "pre-order all received
//!   up to"). Pre-ordering is leader-free, so a faulty leader cannot
//!   suppress knowledge of updates.
//! * **Ordering**: the leader's `Pre-Prepare(view, seq)` carries a *matrix*
//!   of signed PO-ARU vectors. Agreement on the matrix (Prepare/Commit with
//!   `2f+k` and `2f+k+1` thresholds) yields a global execution order: an
//!   update `(origin, s)` becomes covered once `f+k+1` matrix rows
//!   acknowledge it, and newly covered updates execute in deterministic
//!   order. Reconciliation (`PO-Fetch`/`PO-Data`) retrieves any covered
//!   update a replica is missing.
//! * **Leader suspicion**: a replica that knows of eligible-but-unordered
//!   updates for longer than its TAT bound broadcasts `SuspectLeader`;
//!   `f+k+1` suspicions trigger a view change.
//! * **Checkpoints and state transfer**: periodic application digests form
//!   stable checkpoints; a replica that falls behind (partition, proactive
//!   recovery) runs replication-level catch-up and — the paper's §III-A
//!   lesson — *signals the application* to perform its own state transfer,
//!   because SCADA state cannot be rebuilt from the update log alone.
//!
//! # Replica count
//!
//! Tolerating `f` intrusions while `k` replicas are simultaneously down
//! for proactive recovery requires `n = 3f + 2k + 1` replicas
//! ([`Config::new`]): 4 for the red-team deployment (f=1, k=0) and 6 for
//! the power-plant deployment (f=1, k=1), matching the paper exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod application;
pub mod byzantine;
pub mod harness;
pub mod messages;
pub mod replica;
#[cfg(test)]
mod security_tests;
pub mod types;

pub use application::{Application, KvApp};
pub use byzantine::ByzMode;
pub use harness::Cluster;
pub use messages::{PrimeMsg, SignedMsg};
pub use replica::{OutEvent, Replica};
pub use types::{Config, Membership, ReplicaId, SignedUpdate, Update};
