#!/usr/bin/env bash
# Repository gate: formatting, lints, and the full test suite.
# Run from the repository root; exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (warnings denied)"
# Gate our own crates only; vendored/* are third-party code.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace \
    --exclude bytes --exclude criterion --exclude proptest --exclude rand

echo "==> cargo test --workspace"
cargo test -q --workspace

echo "==> trace determinism"
cargo test -q --test observability e5_same_seed_yields_identical_span_trees_and_digest

echo "==> bench smoke (one E11 ramp step + golden digest pin)"
# A single-step saturation run proves the bench/e11 CLI path works end
# to end; the golden-digest tests prove hot-path optimizations remain
# observationally invisible (byte-identical journals and reports).
cargo run -q --release --bin spire-sim -- e11 --steps 1 >/dev/null
cargo test -q --release --test golden_digests

echo "==> batched-E11 smoke (1 step with --batch/--pipeline + exact telescoping)"
# One batched ramp step through the CLI proves the Merkle-batched
# dissemination + pipelined sequencing path end to end, and its profiled
# attribution must still telescope exactly (batch_* stacks included).
batch_out=$(mktemp -d)
cargo run -q --release --bin spire-sim -- e11 --steps 1 --batch 16 --pipeline 4 \
    --prof "$batch_out/e11b.folded" > "$batch_out/e11b_prof.out"
test -s "$batch_out/e11b.folded"
grep -q "telescoping: exact" "$batch_out/e11b_prof.out"
rm -rf "$batch_out"

echo "==> batched ordering knee (>=5x move at equal pre-knee tail, <15% dissemination)"
cargo test -q --release --test batched_saturation

echo "==> profiler smoke (1-step E11 with --prof: folded stacks + exact telescoping)"
# The profiled run must write non-empty folded stacks and its per-step
# attribution table must telescope exactly — every simulated microsecond
# charged to exactly one phase.
prof_out=$(mktemp -d)
cargo run -q --release --bin spire-sim -- e11 --steps 1 --prof "$prof_out/e11.folded" \
    > "$prof_out/e11_prof.out"
test -s "$prof_out/e11.folded"
grep -q "telescoping: exact" "$prof_out/e11_prof.out"

echo "==> profiler digest invariance (prof on/off journals byte-identical)"
# The cost attribution engine must be observationally invisible: the same
# e4 run with and without --prof reports the identical journal record
# count and digest.
cargo run -q --release --bin spire-sim -- e4 --days 1 --metrics \
    > "$prof_out/e4_plain.out"
cargo run -q --release --bin spire-sim -- e4 --days 1 --metrics --prof "$prof_out/e4.folded" \
    > "$prof_out/e4_prof.out"
diff <(grep "^journal:" "$prof_out/e4_plain.out") <(grep "^journal:" "$prof_out/e4_prof.out")
rm -rf "$prof_out"

echo "==> parallel scheduler equivalence (sequential <-> threaded digests)"
# The conservative parallel core must be bit-for-bit digest-identical to
# the sequential engine at every thread count. A 4-thread E4 day through
# the CLI smokes the sharded path end to end; the release equivalence
# suite re-checks every fingerprinted experiment at threads {1,2,4} and
# seeds {42, 1111, 7} against the sequential reference, plus the
# 2-thread bench scaling-curve smoke (the curve asserts digest-identity
# at every point it times).
cargo run -q --release --bin spire-sim -- e4 --threads 4 --days 1 >/dev/null
cargo test -q --release --test parallel_equivalence

echo "==> chaos smoke (short E12 soak, digest-pinned, + negative controls)"
# One compressed day at seed 42 through the chaos CLI proves the E12
# path end to end; the chaos_engine suite re-checks the pinned soak,
# and proves deliberately over-budget plans DO trip the checker (the
# invariants are falsifiable, not vacuously green).
cargo run -q --release --bin spire-sim -- e12 --seed 42 --days 1 >/dev/null
cargo test -q --release --test chaos_engine

echo "==> site-failover smoke (E13, all three paper configs, digest-pinned)"
# The e13 CLI run proves the multi-site path end to end (6@1 loses
# liveness, 3+3 and 2+2+1+1 ride through); the site_failover suite
# re-checks the failover/negative-control contracts and the Prime
# liveness regressions E13 originally exposed.
cargo run -q --release --bin spire-sim -- e13 --seed 42 >/dev/null
cargo test -q --release --test site_failover

echo "==> intrusion-response smoke (E16 campaigns + feedback-beats-periodic contract)"
# One wave of both campaign shapes through the CLI proves the closed-loop
# path end to end; the response suite re-checks the periodic-vs-feedback
# contract at seeds {42, 1111} and the over-budget negative control.
cargo run -q --release --bin spire-sim -- e16 --seed 42 --days 1 >/dev/null
cargo test -q --release --test response

echo "==> line-coverage gate (skips when cargo-llvm-cov is unavailable)"
ci/coverage.sh

echo "All checks passed."
