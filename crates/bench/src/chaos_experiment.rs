//! Experiment E12: the chaos soak — compressed multi-day plant operation
//! under a randomized-but-seeded fault schedule with continuous invariant
//! checking (see EXPERIMENTS.md, "E12").

use chaos::driver::ChaosDriver;
use chaos::invariants::{CheckerConfig, InvariantChecker, InvariantReport};
use chaos::plan::ChaosPlan;
use plc::topology::Scenario;
use prime::types::Config as PrimeConfig;
use simnet::time::SimDuration;
use spire::config::SpireConfig;
use spire::deploy::Deployment;
use spire::hardening::HardeningProfile;

use crate::harness::RunMeta;
use crate::plant_experiments::fast_timing;

/// E12 result: the fault timeline's effect and every invariant's verdict.
#[derive(Clone, Debug)]
pub struct ChaosRun {
    /// Days simulated (compressed).
    pub days: u64,
    /// Simulated seconds per compressed "day".
    pub seconds_per_day: u64,
    /// Faults the plan scheduled.
    pub planned: usize,
    /// Faults actually injected, by kind name (tag order).
    pub injected: Vec<(&'static str, u64)>,
    /// Total injections.
    pub total_injected: u64,
    /// Distinct fault kinds injected.
    pub distinct_kinds: usize,
    /// Per-invariant verdicts (checks + violations).
    pub invariants: Vec<InvariantReport>,
    /// True when no invariant ever fired.
    pub all_green: bool,
    /// Catch-up latencies (microseconds) observed after heals.
    pub reconvergence_us: Vec<u64>,
    /// Minimum executed update count across replicas at the end.
    pub min_executed: u64,
    /// Determinism capture (journal digest + event count).
    pub meta: RunMeta,
}

/// E12 — the chaos soak. The E4 plant deployment (6 replicas, f=1, k=1,
/// fast timing, 100 ms polling) runs for `days * seconds_per_day`
/// simulated seconds while a [`ChaosPlan::within_budget`] schedule
/// injects partitions, loss bursts, latency spikes, link flaps, crashes,
/// Byzantine flips, clock skews, and unscheduled recoveries — and the
/// invariant checker samples the paper's guarantees every 100 ms. A
/// quiescence tail lets the last heals reconverge before the verdict.
pub fn e12_chaos_soak(seed: u64, days: u64, seconds_per_day: u64) -> ChaosRun {
    e12_chaos_soak_with(seed, days, seconds_per_day, PrimeConfig::plant())
}

/// E12 with an explicit Prime configuration — the regression harness for
/// running the soak with Merkle batching, pipelined sequencing, and
/// chunked state transfer armed (`Config::with_batching`): batches must
/// survive crash + restart and catch-up without duplicating or dropping
/// member updates, under the same invariant checker as the stock soak.
pub fn e12_chaos_soak_with(
    seed: u64,
    days: u64,
    seconds_per_day: u64,
    mut prime_cfg: PrimeConfig,
) -> ChaosRun {
    // Chaos deployments arm dedup-table transfer: without it, a replica
    // catching up after a crash/partition replays duplicate orderings its
    // peers suppressed, permanently forking its execution numbering — the
    // first bug the agreement invariant caught (see DESIGN.md).
    prime_cfg.transfer_dedup = true;
    let cfg = SpireConfig::minimal(prime_cfg, Scenario::PlantSubset);
    let mut d = Deployment::build(cfg, HardeningProfile::deployed(), seed);
    for i in 0..prime_cfg.n() {
        d.replica_mut(i).set_timing(fast_timing());
    }
    d.proxy_mut(0)
        .set_poll_interval(SimDuration::from_millis(100));
    d.proxy_mut(0).verbose_updates = true;
    // Warm up: ARP, overlay discovery, first ordered updates.
    d.run_for(SimDuration::from_secs(1));

    let horizon = SimDuration::from_secs(days * seconds_per_day);
    let plan = ChaosPlan::within_budget(seed, prime_cfg.n(), prime_cfg.ordering_quorum(), horizon);
    let planned = plan.faults.len();
    let mut checker = InvariantChecker::new(CheckerConfig::for_prime(&prime_cfg), &d);
    let mut driver = ChaosDriver::new(plan);
    let step = SimDuration::from_millis(100);
    driver.run_soak(&mut d, &mut checker, horizon, step);
    driver.heal_all(&mut d, &mut checker);
    driver.run_quiesce(&mut d, &mut checker, SimDuration::from_secs(8), step);

    let meta = RunMeta::capture("chaos", &d.obs, &d.sim);
    ChaosRun {
        days,
        seconds_per_day,
        planned,
        injected: driver
            .injected_counts()
            .into_iter()
            .map(|(k, c)| (k.name(), c))
            .collect(),
        total_injected: driver.total_injected(),
        distinct_kinds: driver.distinct_kinds(),
        invariants: checker.reports(),
        all_green: checker.all_green(),
        reconvergence_us: checker.reconvergence_us.clone(),
        min_executed: d.min_executed(),
        meta,
    }
}

/// Renders the E12 verdict table.
pub fn render_chaos(run: &ChaosRun) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "chaos soak: {} days x {} s/day   faults planned {} injected {} ({} kinds)\n",
        run.days, run.seconds_per_day, run.planned, run.total_injected, run.distinct_kinds
    ));
    out.push_str("  injected by kind:\n");
    for (name, count) in &run.injected {
        out.push_str(&format!("    {name:<14} {count}\n"));
    }
    out.push_str("  invariants:\n");
    for inv in &run.invariants {
        out.push_str(&format!(
            "    {:<18} checks {:>6}   violations {:>3}   {}\n",
            inv.name,
            inv.checks,
            inv.violations,
            if inv.violations == 0 { "GREEN" } else { "RED" }
        ));
    }
    if run.reconvergence_us.is_empty() {
        out.push_str("  reconvergence: no heal required catch-up\n");
    } else {
        let mut sorted = run.reconvergence_us.clone();
        sorted.sort_unstable();
        let p50 = sorted[sorted.len() / 2];
        let max = *sorted.last().expect("non-empty");
        out.push_str(&format!(
            "  reconvergence: {} heals, p50 {:.3}s, max {:.3}s\n",
            sorted.len(),
            p50 as f64 / 1e6,
            max as f64 / 1e6
        ));
    }
    out.push_str(&format!(
        "  min executed {}   all green: {}\n",
        run.min_executed, run.all_green
    ));
    out
}

/// E12 results as JSON (for `spire-sim e12 --json`).
pub fn chaos_json(run: &ChaosRun) -> String {
    let injected: Vec<String> = run
        .injected
        .iter()
        .map(|(name, count)| format!("{{\"kind\":\"{name}\",\"count\":{count}}}"))
        .collect();
    let invariants: Vec<String> = run
        .invariants
        .iter()
        .map(|inv| {
            format!(
                "{{\"name\":\"{}\",\"checks\":{},\"violations\":{}}}",
                inv.name, inv.checks, inv.violations
            )
        })
        .collect();
    let reconv: Vec<String> = run.reconvergence_us.iter().map(u64::to_string).collect();
    format!(
        "{{\n  \"days\": {},\n  \"seconds_per_day\": {},\n  \"planned\": {},\n  \
         \"total_injected\": {},\n  \"distinct_kinds\": {},\n  \"injected\": [{}],\n  \
         \"invariants\": [{}],\n  \"all_green\": {},\n  \"reconvergence_us\": [{}],\n  \
         \"min_executed\": {},\n  \"journal_digest\": \"{}\"\n}}\n",
        run.days,
        run.seconds_per_day,
        run.planned,
        run.total_injected,
        run.distinct_kinds,
        injected.join(","),
        invariants.join(","),
        run.all_green,
        reconv.join(","),
        run.min_executed,
        run.meta.journal_digest
    )
}
