//! Component micro-benchmarks: the building blocks whose costs determine
//! Spire's end-to-end latency (crypto, codecs, ordering, flooding,
//! anomaly scoring).

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use itcrypto::keys::KeyPair;
use itcrypto::merkle::MerkleTree;
use itcrypto::sha256::sha256;
use itcrypto::stream::{open, seal};
use mana::features::FeatureVector;
use mana::model::GaussianModel;
use modbus::{execute, DataStore, Request, RtuFrame, TcpFrame};
use prime::harness::Cluster;
use prime::replica::Timing;
use prime::types::Config as PrimeConfig;
use simnet::time::{SimDuration, SimTime};
use simnet::types::{IpAddr, Port};
use spines::config::{SpinesConfig, SpinesMode};
use spines::daemon::SpinesDaemon;

fn bench_crypto(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto");
    let msg = vec![0xABu8; 1024];
    group.bench_function("sha256_1k", |b| {
        b.iter(|| sha256(std::hint::black_box(&msg)))
    });
    group.bench_function("hmac_1k", |b| {
        b.iter(|| itcrypto::hmac::hmac_sha256(b"key", std::hint::black_box(&msg)))
    });
    let mut kp = KeyPair::generate(1);
    group.bench_function("schnorr_sign", |b| {
        b.iter(|| kp.sign(std::hint::black_box(&msg)))
    });
    let sig = kp.sign(&msg);
    let pk = kp.public_key();
    group.bench_function("schnorr_verify", |b| {
        b.iter(|| pk.verify(std::hint::black_box(&msg), &sig))
    });
    let key = [7u8; 32];
    group.bench_function("seal_open_1k", |b| {
        b.iter(|| {
            let boxed = seal(&key, 1, std::hint::black_box(&msg));
            open(&key, &boxed).expect("authentic")
        })
    });
    let leaves: Vec<Vec<u8>> = (0..64).map(|i| format!("point-{i}").into_bytes()).collect();
    group.bench_function("merkle_64_leaves", |b| {
        b.iter(|| MerkleTree::from_leaves(std::hint::black_box(&leaves)))
    });
    group.finish();
}

fn bench_modbus(c: &mut Criterion) {
    let mut group = c.benchmark_group("modbus");
    let req = Request::ReadDiscreteInputs {
        address: 0,
        count: 7,
    };
    group.bench_function("pdu_encode_decode", |b| {
        b.iter(|| {
            let bytes = std::hint::black_box(&req).encode();
            Request::decode(&bytes).expect("valid")
        })
    });
    let rtu = RtuFrame {
        unit: 1,
        pdu: req.encode(),
    };
    group.bench_function("rtu_frame_roundtrip", |b| {
        b.iter(|| {
            let bytes = std::hint::black_box(&rtu).encode();
            RtuFrame::decode(&bytes).expect("valid")
        })
    });
    let tcp = TcpFrame::new(1, 1, req.encode());
    group.bench_function("tcp_frame_roundtrip", |b| {
        b.iter(|| {
            let bytes = std::hint::black_box(&tcp).encode();
            TcpFrame::decode(&bytes).expect("valid")
        })
    });
    group.bench_function("server_execute_poll", |b| {
        let mut store = DataStore::new(16, 16);
        b.iter(|| execute(std::hint::black_box(&req), &mut store))
    });
    group.finish();
}

fn bench_spines(c: &mut Criterion) {
    let mut group = c.benchmark_group("spines");
    let daemons: Vec<(u32, IpAddr)> = (0..6)
        .map(|i| (i, IpAddr::new(10, 1, 0, (i + 1) as u8)))
        .collect();
    let cfg = SpinesConfig::full_mesh(daemons, Port(8100), [9; 32], SpinesMode::IntrusionTolerant);
    group.bench_function("multicast_6_mesh", |b| {
        b.iter_batched(
            || SpinesDaemon::new(0, cfg.clone()),
            |mut d| {
                d.multicast(
                    1,
                    1,
                    Bytes::from_static(b"update-payload-64-bytes........."),
                )
            },
            BatchSize::SmallInput,
        )
    });
    // Originate-and-receive: the per-hop cost including seal/open.
    group.bench_function("one_hop_seal_open", |b| {
        let mut sender = SpinesDaemon::new(0, cfg.clone());
        let mut receiver = SpinesDaemon::new(1, cfg.clone());
        receiver.subscribe(1);
        let from = cfg.addr_of(0).expect("addr");
        b.iter(|| {
            let sends = sender.multicast(1, 1, Bytes::from_static(b"payload"));
            for (to, bytes) in sends {
                if Some(to) == cfg.addr_of(1) {
                    receiver.on_wire(from, &bytes);
                }
            }
            receiver.take_deliveries()
        })
    });
    group.finish();
}

fn bench_prime(c: &mut Criterion) {
    let mut group = c.benchmark_group("prime");
    group.sample_size(10);
    let fast = Timing {
        aru_interval: SimDuration::from_millis(10),
        pp_interval: SimDuration::from_millis(10),
        suspect_timeout: SimDuration::from_millis(2_000),
        checkpoint_interval: 50,
        catchup_timeout: SimDuration::from_millis(500),
    };
    // End-to-end ordering: submit a batch, run to quiescence.
    group.bench_function("order_20_updates_n4", |b| {
        b.iter_batched(
            || {
                let mut cluster = Cluster::new(PrimeConfig::red_team(), 1);
                cluster.set_timing(fast);
                cluster
            },
            |mut cluster| {
                for i in 0..20 {
                    cluster.submit(0, format!("k{i}=v"));
                }
                cluster.run_for(SimDuration::from_secs(2));
                assert_eq!(cluster.min_executed(), 20);
                cluster
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("order_20_updates_n6", |b| {
        b.iter_batched(
            || {
                let mut cluster = Cluster::new(PrimeConfig::plant(), 1);
                cluster.set_timing(fast);
                cluster
            },
            |mut cluster| {
                for i in 0..20 {
                    cluster.submit(0, format!("k{i}=v"));
                }
                cluster.run_for(SimDuration::from_secs(3));
                assert_eq!(cluster.min_executed(), 20);
                cluster
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_mana(c: &mut Criterion) {
    let mut group = c.benchmark_group("mana");
    let windows: Vec<FeatureVector> = (0..500)
        .map(|i| FeatureVector {
            window_start: SimTime(i as u64 * 1_000),
            values: [20.0, 2_000.0, 4.0, 3.0, 0.0, 1.0, 1.0, 2.0, 100.0, 6.0],
        })
        .collect();
    group.bench_function("train_500_windows", |b| {
        b.iter(|| GaussianModel::train(std::hint::black_box(&windows)))
    });
    let model = GaussianModel::train(&windows);
    group.bench_function("score_window", |b| {
        b.iter(|| model.score(std::hint::black_box(&windows[0])))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_crypto,
    bench_modbus,
    bench_spines,
    bench_prime,
    bench_mana
);
criterion_main!(benches);
