//! The chaos driver: executes a [`ChaosPlan`] against a live deployment.
//!
//! The driver owns three responsibilities during a soak:
//!
//! 1. **Injection and healing.** It steps the simulation, injects every
//!    scheduled fault when its time arrives, and heals it when its window
//!    ends — mapping each declarative [`Fault`] onto the concrete
//!    deployment surface (switch partitions, link specs, node up/down,
//!    replica Byzantine modes, the observability clock).
//! 2. **Journaling.** Every injection and heal lands in the observability
//!    journal as [`obs::Event::ChaosInject`] / [`ChaosHeal`], so the full
//!    fault timeline is folded into the run digest and a chaos soak is as
//!    replay-checkable as any other experiment.
//! 3. **Ground truth.** It periodically flips a breaker on the field PLC
//!    (the physical process keeps moving while the system is under
//!    attack) and tells the invariant checker about each new ground-truth
//!    state, which is what makes the HMI-truth invariant meaningful.
//!
//! [`ChaosHeal`]: obs::Event::ChaosHeal

use std::collections::BTreeMap;

use prime::byzantine::ByzMode;
use simnet::link::{LinkId, LinkSpec};
use simnet::time::{SimDuration, SimTime};
use spire::deploy::Deployment;

use crate::invariants::InvariantChecker;
use crate::plan::{ChaosPlan, Fault, FaultKind, ScheduledFault};
use crate::signal::{ChaosSignal, SignalFeed, SignalKind};

/// A fault currently in force, with whatever must be restored at heal.
struct ActiveFault {
    heal_at: SimTime,
    fault: Fault,
    /// Original spec of a link the fault mutated (loss/latency windows).
    saved: Option<(LinkId, LinkSpec)>,
}

/// Executes a plan against a deployment while keeping an
/// [`InvariantChecker`] informed of the live fault set.
pub struct ChaosDriver {
    plan: Vec<ScheduledFault>,
    next: usize,
    start: Option<SimTime>,
    active: Vec<ActiveFault>,
    injected: BTreeMap<FaultKind, u64>,
    /// Ground-truth breaker flip cadence.
    flip_interval: SimDuration,
    next_flip: Option<SimTime>,
    breaker_closed: bool,
    /// Optional machine-readable inject/heal feed (`chaos::signal`).
    signals: Option<SignalFeed>,
}

impl ChaosDriver {
    /// Builds a driver for `plan`. Faults run in `at` order.
    pub fn new(plan: ChaosPlan) -> Self {
        let mut faults = plan.faults;
        faults.sort_by_key(|f| f.at.as_micros());
        ChaosDriver {
            plan: faults,
            next: 0,
            start: None,
            active: Vec::new(),
            injected: BTreeMap::new(),
            flip_interval: SimDuration::from_secs(2),
            next_flip: None,
            breaker_closed: true,
            signals: None,
        }
    }

    /// Attaches a signal feed: every injection and heal is published as a
    /// typed [`ChaosSignal`] in addition to being journaled. Publication
    /// is observation-only, so attaching a feed never changes the digest.
    pub fn attach_signals(&mut self, feed: SignalFeed) {
        self.signals = Some(feed);
    }

    /// Runs the soak for `dur`, stepping the deployment by `step` between
    /// injection/heal/ground-truth work and invariant samples.
    pub fn run_soak(
        &mut self,
        d: &mut Deployment,
        checker: &mut InvariantChecker,
        dur: SimDuration,
        step: SimDuration,
    ) {
        let start = *self.start.get_or_insert(d.now());
        if self.next_flip.is_none() {
            self.breaker_closed = d.plc(0).positions().first().copied().unwrap_or(true);
            self.next_flip = Some(d.now() + self.flip_interval);
        }
        let deadline = d.now() + dur;
        while d.now() < deadline {
            d.run_for(step);
            let now = d.now();
            self.heal_due(d, checker, now);
            while self.next < self.plan.len() && start + self.plan[self.next].at <= now {
                let scheduled = self.plan[self.next].clone();
                self.next += 1;
                self.inject(d, checker, scheduled, now);
            }
            if let Some(flip_at) = self.next_flip {
                if now >= flip_at {
                    self.flip_ground_truth(d, checker, now);
                }
            }
            checker.observe(d);
        }
    }

    /// Heals every still-active fault immediately (end of soak).
    pub fn heal_all(&mut self, d: &mut Deployment, checker: &mut InvariantChecker) {
        let now = d.now();
        for active in std::mem::take(&mut self.active) {
            self.heal(d, checker, active, now);
        }
    }

    /// Quiescence: keep stepping and sampling invariants with no further
    /// injections or ground-truth flips, letting reconvergence complete.
    pub fn run_quiesce(
        &mut self,
        d: &mut Deployment,
        checker: &mut InvariantChecker,
        dur: SimDuration,
        step: SimDuration,
    ) {
        let deadline = d.now() + dur;
        while d.now() < deadline {
            d.run_for(step);
            checker.observe(d);
        }
    }

    /// Injected-fault counts, in [`FaultKind`] tag order.
    pub fn injected_counts(&self) -> Vec<(FaultKind, u64)> {
        self.injected.iter().map(|(k, c)| (*k, *c)).collect()
    }

    /// Number of distinct fault kinds actually injected.
    pub fn distinct_kinds(&self) -> usize {
        self.injected.len()
    }

    /// Total faults injected.
    pub fn total_injected(&self) -> u64 {
        self.injected.values().sum()
    }

    fn flip_ground_truth(
        &mut self,
        d: &mut Deployment,
        checker: &mut InvariantChecker,
        now: SimTime,
    ) {
        self.breaker_closed = !self.breaker_closed;
        d.plc_mut(0).force_breaker(0, self.breaker_closed, now);
        checker.note_ground_truth(d);
        self.next_flip = Some(now + self.flip_interval);
    }

    fn heal_due(&mut self, d: &mut Deployment, checker: &mut InvariantChecker, now: SimTime) {
        let mut due = Vec::new();
        self.active.retain_mut(|a| {
            if a.heal_at <= now {
                due.push(ActiveFault {
                    heal_at: a.heal_at,
                    fault: a.fault.clone(),
                    saved: a.saved.take(),
                });
                false
            } else {
                true
            }
        });
        for active in due {
            self.heal(d, checker, active, now);
        }
    }

    fn inject(
        &mut self,
        d: &mut Deployment,
        checker: &mut InvariantChecker,
        scheduled: ScheduledFault,
        now: SimTime,
    ) {
        let kind = scheduled.fault.kind();
        *self.injected.entry(kind).or_insert(0) += 1;
        d.obs.journal(obs::Event::ChaosInject {
            kind: kind.tag(),
            target: scheduled.fault.target(),
        });
        if let Some(feed) = &self.signals {
            feed.publish(ChaosSignal {
                kind: SignalKind::Injected,
                code: kind.tag(),
                target: scheduled.fault.target(),
                value: scheduled.duration.as_micros(),
                at: now,
            });
        }
        let mut saved = None;
        match &scheduled.fault {
            Fault::Partition { isolated } => {
                d.partition_internal(isolated);
                checker.partition_started(isolated);
            }
            Fault::LinkLoss { replica, loss } => {
                if let Some(link) = d.replica_link(*replica, 0) {
                    saved = Some((link, d.sim.link_spec(link)));
                    d.sim.set_link_loss(link, *loss);
                }
            }
            Fault::LatencySpike { replica, latency } => {
                if let Some(link) = d.replica_link(*replica, 1) {
                    saved = Some((link, d.sim.link_spec(link)));
                    d.sim.set_link_latency(link, *latency);
                }
            }
            Fault::LinkFlap { replica } => {
                if let Some(link) = d.replica_link(*replica, 0) {
                    saved = Some((link, d.sim.link_spec(link)));
                    d.sim.set_link_up(link, false);
                }
            }
            Fault::NodeCrash { replica } | Fault::Recovery { replica } => {
                d.take_replica_down(*replica);
                checker.replica_down(*replica);
            }
            Fault::ByzFlip { replica, mode } => {
                d.replica_mut(*replica).replica.byz = *mode;
                checker.byz_started(*replica);
            }
            Fault::ClockSkew { behind } => {
                // The hub refuses to rewind and journals the skew instead;
                // monotonic digesting survives, the anomaly is recorded.
                let current = d.obs.now_us();
                d.obs.set_now_us(current.saturating_sub(behind.as_micros()));
            }
            Fault::SiteSever { site } => {
                let site = *site as usize;
                d.sever_site(site);
                let severed: Vec<u32> = d
                    .cfg
                    .sites
                    .as_ref()
                    .map(|t| t.replicas_of(site).to_vec())
                    .unwrap_or_default();
                checker.partition_started(&severed);
                // The management-plane failover runs immediately; when it
                // installs a degraded epoch, the checker judges budget and
                // progress against that epoch.
                if let Some(spire::site::SurvivalMode::DegradedEpoch(m)) =
                    d.failover_after_site_loss(site)
                {
                    checker.membership_changed(m.members().to_vec(), m.f, m.k, m.ordering_quorum());
                }
            }
        }
        if scheduled.duration > SimDuration::ZERO {
            self.active.push(ActiveFault {
                heal_at: now + scheduled.duration,
                fault: scheduled.fault,
                saved,
            });
        }
    }

    fn heal(
        &mut self,
        d: &mut Deployment,
        checker: &mut InvariantChecker,
        active: ActiveFault,
        now: SimTime,
    ) {
        let kind = active.fault.kind();
        d.obs.journal(obs::Event::ChaosHeal {
            kind: kind.tag(),
            target: active.fault.target(),
        });
        if let Some(feed) = &self.signals {
            feed.publish(ChaosSignal {
                kind: SignalKind::Healed,
                code: kind.tag(),
                target: active.fault.target(),
                value: 0,
                at: now,
            });
        }
        match &active.fault {
            Fault::Partition { .. } => {
                d.heal_internal_partition();
                checker.partition_healed(d);
            }
            Fault::LinkLoss { .. } => {
                if let Some((link, spec)) = active.saved {
                    d.sim.set_link_loss(link, spec.loss);
                }
            }
            Fault::LatencySpike { .. } => {
                if let Some((link, spec)) = active.saved {
                    d.sim.set_link_latency(link, spec.latency);
                }
            }
            Fault::LinkFlap { .. } => {
                if let Some((link, _)) = active.saved {
                    d.sim.set_link_up(link, true);
                }
            }
            Fault::NodeCrash { replica } | Fault::Recovery { replica } => {
                d.restore_replica(*replica);
                checker.replica_rejoined(*replica, d);
            }
            Fault::ByzFlip { replica, .. } => {
                d.replica_mut(*replica).replica.byz = ByzMode::Correct;
                checker.byz_healed(*replica);
            }
            Fault::ClockSkew { .. } => {}
            Fault::SiteSever { site } => {
                d.heal_site(*site as usize);
                d.failback_full_membership();
                checker.membership_restored();
                checker.partition_healed(d);
            }
        }
    }
}
