//! Bounded memoization of signature-verification verdicts.
//!
//! BFT replicas verify the same signed artifacts repeatedly: an ARU row
//! is re-verified inside every pre-prepare matrix that carries it, and a
//! client update signature is checked once on submission and again when
//! it arrives inside a PO-Request. The verdict is a pure function of
//! (principal, message bytes, signature bytes), so it can be cached under
//! a digest of exactly those inputs.
//!
//! The cache is observationally invisible by construction: the key
//! commits to every byte the verifier reads, so a tampered message or
//! signature hashes to a different key, misses, and gets a fresh
//! verification. A hit can only return the verdict of a byte-identical
//! earlier check (absent a SHA-256 collision). Eviction is FIFO and
//! deterministic; an evicted entry is simply re-verified on next use.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use crate::sha256::{Digest, Sha256};

/// A bounded FIFO cache of verification verdicts keyed by a digest of
/// the verified bytes.
#[derive(Clone, Debug, Default)]
pub struct VerifyCache {
    verdicts: BTreeMap<Digest, bool>,
    order: VecDeque<Digest>,
    cap: usize,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that ran the real verifier.
    pub misses: u64,
}

impl VerifyCache {
    /// Creates a cache holding at most `cap` verdicts (0 disables caching).
    pub fn new(cap: usize) -> Self {
        VerifyCache {
            verdicts: BTreeMap::new(),
            order: VecDeque::new(),
            cap,
            hits: 0,
            misses: 0,
        }
    }

    /// The cache key for a (domain, principal, message, signature)
    /// quadruple. Every part is length-prefixed so distinct part splits
    /// can never collide on the same concatenation.
    pub fn key(domain: &[u8], principal: u64, msg: &[u8], sig: &[u8]) -> Digest {
        let mut h = Sha256::new();
        h.update(&(domain.len() as u64).to_be_bytes());
        h.update(domain);
        h.update(&principal.to_be_bytes());
        h.update(&(msg.len() as u64).to_be_bytes());
        h.update(msg);
        h.update(&(sig.len() as u64).to_be_bytes());
        h.update(sig);
        h.finalize()
    }

    /// Returns the cached verdict for `key`, or runs `verify`, caches its
    /// result, and returns it.
    pub fn check(&mut self, key: Digest, verify: impl FnOnce() -> bool) -> bool {
        if self.cap == 0 {
            return verify();
        }
        if let Some(&verdict) = self.verdicts.get(&key) {
            self.hits += 1;
            return verdict;
        }
        self.misses += 1;
        let verdict = verify();
        if self.verdicts.insert(key, verdict).is_none() {
            self.order.push_back(key);
            if self.order.len() > self.cap {
                if let Some(old) = self.order.pop_front() {
                    self.verdicts.remove(&old);
                }
            }
        }
        verdict
    }

    /// Number of cached verdicts.
    pub fn len(&self) -> usize {
        self.verdicts.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.verdicts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_and_counts() {
        let mut c = VerifyCache::new(8);
        let k = VerifyCache::key(b"d", 1, b"m", b"s");
        assert!(c.check(k, || true));
        assert!(c.check(k, || panic!("must not re-verify")));
        assert_eq!((c.hits, c.misses), (1, 1));
    }

    #[test]
    fn negative_verdicts_cache_too() {
        let mut c = VerifyCache::new(8);
        let k = VerifyCache::key(b"d", 1, b"bad", b"s");
        assert!(!c.check(k, || false));
        assert!(!c.check(k, || panic!("must not re-verify")));
    }

    #[test]
    fn distinct_inputs_distinct_keys() {
        let base = VerifyCache::key(b"d", 1, b"m", b"s");
        assert_ne!(base, VerifyCache::key(b"e", 1, b"m", b"s"));
        assert_ne!(base, VerifyCache::key(b"d", 2, b"m", b"s"));
        assert_ne!(base, VerifyCache::key(b"d", 1, b"n", b"s"));
        assert_ne!(base, VerifyCache::key(b"d", 1, b"m", b"t"));
        // Length prefixes: moving a byte across a part boundary changes
        // the key even though the concatenation is identical.
        assert_ne!(
            VerifyCache::key(b"ab", 1, b"c", b"s"),
            VerifyCache::key(b"a", 1, b"bc", b"s")
        );
    }

    #[test]
    fn eviction_is_fifo_and_bounded() {
        let mut c = VerifyCache::new(2);
        let keys: Vec<Digest> = (0u64..4)
            .map(|i| VerifyCache::key(b"d", i, b"m", b"s"))
            .collect();
        for k in &keys {
            c.check(*k, || true);
        }
        assert_eq!(c.len(), 2);
        // Oldest evicted: re-checking key 0 re-runs the verifier.
        let mut ran = false;
        c.check(keys[0], || {
            ran = true;
            true
        });
        assert!(ran, "evicted entry re-verified");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = VerifyCache::new(0);
        let k = VerifyCache::key(b"d", 1, b"m", b"s");
        let mut runs = 0;
        for _ in 0..3 {
            c.check(k, || {
                runs += 1;
                true
            });
        }
        assert_eq!(runs, 3);
        assert!(c.is_empty());
    }
}
