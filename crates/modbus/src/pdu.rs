//! Modbus PDUs: requests, responses, exceptions, and their byte codecs.

use std::fmt;

/// Modbus exception codes (returned with function code | 0x80).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExceptionCode {
    /// 0x01 — function code not supported.
    IllegalFunction,
    /// 0x02 — address out of range.
    IllegalDataAddress,
    /// 0x03 — value not acceptable.
    IllegalDataValue,
    /// 0x04 — unrecoverable device failure.
    ServerDeviceFailure,
}

impl ExceptionCode {
    /// The wire byte.
    pub fn code(self) -> u8 {
        match self {
            ExceptionCode::IllegalFunction => 0x01,
            ExceptionCode::IllegalDataAddress => 0x02,
            ExceptionCode::IllegalDataValue => 0x03,
            ExceptionCode::ServerDeviceFailure => 0x04,
        }
    }

    /// Parses a wire byte.
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0x01 => ExceptionCode::IllegalFunction,
            0x02 => ExceptionCode::IllegalDataAddress,
            0x03 => ExceptionCode::IllegalDataValue,
            0x04 => ExceptionCode::ServerDeviceFailure,
            _ => return None,
        })
    }
}

impl fmt::Display for ExceptionCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ExceptionCode::IllegalFunction => "illegal function",
            ExceptionCode::IllegalDataAddress => "illegal data address",
            ExceptionCode::IllegalDataValue => "illegal data value",
            ExceptionCode::ServerDeviceFailure => "server device failure",
        };
        f.write_str(s)
    }
}

/// A Modbus request PDU.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Request {
    /// 0x01 — read `count` coils starting at `address`.
    ReadCoils {
        /// Starting coil address.
        address: u16,
        /// Number of coils (1..=2000).
        count: u16,
    },
    /// 0x02 — read discrete inputs.
    ReadDiscreteInputs {
        /// Starting input address.
        address: u16,
        /// Number of inputs (1..=2000).
        count: u16,
    },
    /// 0x03 — read holding registers.
    ReadHoldingRegisters {
        /// Starting register address.
        address: u16,
        /// Number of registers (1..=125).
        count: u16,
    },
    /// 0x04 — read input registers.
    ReadInputRegisters {
        /// Starting register address.
        address: u16,
        /// Number of registers (1..=125).
        count: u16,
    },
    /// 0x05 — write one coil.
    WriteSingleCoil {
        /// Coil address.
        address: u16,
        /// On (0xFF00) or off (0x0000).
        value: bool,
    },
    /// 0x06 — write one holding register.
    WriteSingleRegister {
        /// Register address.
        address: u16,
        /// New value.
        value: u16,
    },
    /// 0x0F — write multiple coils.
    WriteMultipleCoils {
        /// Starting coil address.
        address: u16,
        /// Values to write.
        values: Vec<bool>,
    },
    /// 0x10 — write multiple registers.
    WriteMultipleRegisters {
        /// Starting register address.
        address: u16,
        /// Values to write.
        values: Vec<u16>,
    },
    /// 0x2B — read device identification (vendor, product, firmware).
    /// This is the reconnaissance step of the red team's PLC memory dump.
    ReadDeviceId,
    /// 0x5A — vendor maintenance: download the full configuration image.
    /// Unauthenticated on real devices; the attack surface of §IV-B.
    ConfigDownload,
    /// 0x5B — vendor maintenance: upload (replace) the configuration image.
    ConfigUpload {
        /// The new configuration image.
        image: Vec<u8>,
    },
}

impl Request {
    /// The function code byte.
    pub fn function_code(&self) -> u8 {
        match self {
            Request::ReadCoils { .. } => 0x01,
            Request::ReadDiscreteInputs { .. } => 0x02,
            Request::ReadHoldingRegisters { .. } => 0x03,
            Request::ReadInputRegisters { .. } => 0x04,
            Request::WriteSingleCoil { .. } => 0x05,
            Request::WriteSingleRegister { .. } => 0x06,
            Request::WriteMultipleCoils { .. } => 0x0F,
            Request::WriteMultipleRegisters { .. } => 0x10,
            Request::ReadDeviceId => 0x2B,
            Request::ConfigDownload => 0x5A,
            Request::ConfigUpload { .. } => 0x5B,
        }
    }

    /// Serializes the PDU (function code + data).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![self.function_code()];
        match self {
            Request::ReadCoils { address, count }
            | Request::ReadDiscreteInputs { address, count }
            | Request::ReadHoldingRegisters { address, count }
            | Request::ReadInputRegisters { address, count } => {
                out.extend_from_slice(&address.to_be_bytes());
                out.extend_from_slice(&count.to_be_bytes());
            }
            Request::WriteSingleCoil { address, value } => {
                out.extend_from_slice(&address.to_be_bytes());
                out.extend_from_slice(&(if *value { 0xFF00u16 } else { 0x0000 }).to_be_bytes());
            }
            Request::WriteSingleRegister { address, value } => {
                out.extend_from_slice(&address.to_be_bytes());
                out.extend_from_slice(&value.to_be_bytes());
            }
            Request::WriteMultipleCoils { address, values } => {
                out.extend_from_slice(&address.to_be_bytes());
                out.extend_from_slice(&(values.len() as u16).to_be_bytes());
                let byte_count = values.len().div_ceil(8);
                out.push(byte_count as u8);
                let mut packed = vec![0u8; byte_count];
                for (i, &v) in values.iter().enumerate() {
                    if v {
                        packed[i / 8] |= 1 << (i % 8);
                    }
                }
                out.extend_from_slice(&packed);
            }
            Request::WriteMultipleRegisters { address, values } => {
                out.extend_from_slice(&address.to_be_bytes());
                out.extend_from_slice(&(values.len() as u16).to_be_bytes());
                out.push((values.len() * 2) as u8);
                for v in values {
                    out.extend_from_slice(&v.to_be_bytes());
                }
            }
            Request::ReadDeviceId => {
                // MEI type 0x0E, ReadDevId code 0x01, object id 0x00.
                out.extend_from_slice(&[0x0E, 0x01, 0x00]);
            }
            Request::ConfigDownload => {}
            Request::ConfigUpload { image } => {
                out.extend_from_slice(&(image.len() as u16).to_be_bytes());
                out.extend_from_slice(image);
            }
        }
        out
    }

    /// Parses a PDU. Returns `None` on malformed input.
    pub fn decode(data: &[u8]) -> Option<Request> {
        let (&fc, rest) = data.split_first()?;
        let rd = |rest: &[u8]| -> Option<(u16, u16)> {
            if rest.len() != 4 {
                return None;
            }
            Some((
                u16::from_be_bytes([rest[0], rest[1]]),
                u16::from_be_bytes([rest[2], rest[3]]),
            ))
        };
        Some(match fc {
            0x01 => {
                let (address, count) = rd(rest)?;
                Request::ReadCoils { address, count }
            }
            0x02 => {
                let (address, count) = rd(rest)?;
                Request::ReadDiscreteInputs { address, count }
            }
            0x03 => {
                let (address, count) = rd(rest)?;
                Request::ReadHoldingRegisters { address, count }
            }
            0x04 => {
                let (address, count) = rd(rest)?;
                Request::ReadInputRegisters { address, count }
            }
            0x05 => {
                let (address, raw) = rd(rest)?;
                let value = match raw {
                    0xFF00 => true,
                    0x0000 => false,
                    _ => return None,
                };
                Request::WriteSingleCoil { address, value }
            }
            0x06 => {
                let (address, value) = rd(rest)?;
                Request::WriteSingleRegister { address, value }
            }
            0x0F => {
                if rest.len() < 5 {
                    return None;
                }
                let address = u16::from_be_bytes([rest[0], rest[1]]);
                let count = u16::from_be_bytes([rest[2], rest[3]]) as usize;
                let byte_count = rest[4] as usize;
                if byte_count != count.div_ceil(8) || rest.len() != 5 + byte_count {
                    return None;
                }
                let values = (0..count)
                    .map(|i| rest[5 + i / 8] & (1 << (i % 8)) != 0)
                    .collect();
                Request::WriteMultipleCoils { address, values }
            }
            0x10 => {
                if rest.len() < 5 {
                    return None;
                }
                let address = u16::from_be_bytes([rest[0], rest[1]]);
                let count = u16::from_be_bytes([rest[2], rest[3]]) as usize;
                let byte_count = rest[4] as usize;
                if byte_count != count * 2 || rest.len() != 5 + byte_count {
                    return None;
                }
                let values = (0..count)
                    .map(|i| u16::from_be_bytes([rest[5 + i * 2], rest[6 + i * 2]]))
                    .collect();
                Request::WriteMultipleRegisters { address, values }
            }
            0x2B => {
                if rest != [0x0E, 0x01, 0x00] {
                    return None;
                }
                Request::ReadDeviceId
            }
            0x5A => {
                if !rest.is_empty() {
                    return None;
                }
                Request::ConfigDownload
            }
            0x5B => {
                if rest.len() < 2 {
                    return None;
                }
                let len = u16::from_be_bytes([rest[0], rest[1]]) as usize;
                if rest.len() != 2 + len {
                    return None;
                }
                Request::ConfigUpload {
                    image: rest[2..].to_vec(),
                }
            }
            _ => return None,
        })
    }
}

/// A Modbus response PDU.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Response {
    /// Bit values for 0x01/0x02.
    Bits {
        /// Echoed function code (0x01 or 0x02).
        function: u8,
        /// The bit values.
        values: Vec<bool>,
    },
    /// Register values for 0x03/0x04.
    Registers {
        /// Echoed function code (0x03 or 0x04).
        function: u8,
        /// The register values.
        values: Vec<u16>,
    },
    /// Echo for 0x05.
    WriteSingleCoil {
        /// Echoed address.
        address: u16,
        /// Echoed value.
        value: bool,
    },
    /// Echo for 0x06.
    WriteSingleRegister {
        /// Echoed address.
        address: u16,
        /// Echoed value.
        value: u16,
    },
    /// Echo for 0x0F.
    WriteMultipleCoils {
        /// Echoed address.
        address: u16,
        /// Number of coils written.
        count: u16,
    },
    /// Echo for 0x10.
    WriteMultipleRegisters {
        /// Echoed address.
        address: u16,
        /// Number of registers written.
        count: u16,
    },
    /// Device identification string for 0x2B.
    DeviceId {
        /// Vendor / product / firmware text.
        text: String,
    },
    /// Configuration image for 0x5A.
    ConfigImage {
        /// The raw configuration bytes.
        image: Vec<u8>,
    },
    /// Acknowledgement for 0x5B.
    ConfigAccepted,
    /// An exception response.
    Exception {
        /// The function code that failed (without the 0x80 bit).
        function: u8,
        /// The exception code.
        code: ExceptionCode,
    },
}

impl Response {
    /// Serializes the response PDU.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Bits { function, values } => {
                let byte_count = values.len().div_ceil(8);
                let mut out = vec![*function, byte_count as u8];
                let mut packed = vec![0u8; byte_count];
                for (i, &v) in values.iter().enumerate() {
                    if v {
                        packed[i / 8] |= 1 << (i % 8);
                    }
                }
                out.extend_from_slice(&packed);
                out
            }
            Response::Registers { function, values } => {
                let mut out = vec![*function, (values.len() * 2) as u8];
                for v in values {
                    out.extend_from_slice(&v.to_be_bytes());
                }
                out
            }
            Response::WriteSingleCoil { address, value } => {
                let mut out = vec![0x05];
                out.extend_from_slice(&address.to_be_bytes());
                out.extend_from_slice(&(if *value { 0xFF00u16 } else { 0 }).to_be_bytes());
                out
            }
            Response::WriteSingleRegister { address, value } => {
                let mut out = vec![0x06];
                out.extend_from_slice(&address.to_be_bytes());
                out.extend_from_slice(&value.to_be_bytes());
                out
            }
            Response::WriteMultipleCoils { address, count } => {
                let mut out = vec![0x0F];
                out.extend_from_slice(&address.to_be_bytes());
                out.extend_from_slice(&count.to_be_bytes());
                out
            }
            Response::WriteMultipleRegisters { address, count } => {
                let mut out = vec![0x10];
                out.extend_from_slice(&address.to_be_bytes());
                out.extend_from_slice(&count.to_be_bytes());
                out
            }
            Response::DeviceId { text } => {
                let mut out = vec![0x2B, text.len() as u8];
                out.extend_from_slice(text.as_bytes());
                out
            }
            Response::ConfigImage { image } => {
                let mut out = vec![0x5A];
                out.extend_from_slice(&(image.len() as u16).to_be_bytes());
                out.extend_from_slice(image);
                out
            }
            Response::ConfigAccepted => vec![0x5B, 0x00],
            Response::Exception { function, code } => vec![function | 0x80, code.code()],
        }
    }

    /// Parses a response PDU, given the function code of the request that
    /// elicited it (needed to size bit vectors correctly).
    pub fn decode(data: &[u8], request: &Request) -> Option<Response> {
        let (&fc, rest) = data.split_first()?;
        if fc & 0x80 != 0 {
            return Some(Response::Exception {
                function: fc & 0x7F,
                code: ExceptionCode::from_code(*rest.first()?)?,
            });
        }
        if fc != request.function_code() {
            return None;
        }
        Some(match (fc, request) {
            (0x01 | 0x02, Request::ReadCoils { count, .. })
            | (0x01 | 0x02, Request::ReadDiscreteInputs { count, .. }) => {
                let byte_count = *rest.first()? as usize;
                let body = rest.get(1..1 + byte_count)?;
                if rest.len() != 1 + byte_count {
                    return None;
                }
                let values = (0..*count as usize)
                    .map(|i| body.get(i / 8).is_some_and(|b| b & (1 << (i % 8)) != 0))
                    .collect();
                Response::Bits {
                    function: fc,
                    values,
                }
            }
            (0x03 | 0x04, _) => {
                let byte_count = *rest.first()? as usize;
                if !byte_count.is_multiple_of(2) || rest.len() != 1 + byte_count {
                    return None;
                }
                let values = rest[1..]
                    .chunks(2)
                    .map(|c| u16::from_be_bytes([c[0], c[1]]))
                    .collect();
                Response::Registers {
                    function: fc,
                    values,
                }
            }
            (0x05, _) => {
                if rest.len() != 4 {
                    return None;
                }
                Response::WriteSingleCoil {
                    address: u16::from_be_bytes([rest[0], rest[1]]),
                    value: u16::from_be_bytes([rest[2], rest[3]]) == 0xFF00,
                }
            }
            (0x06, _) => {
                if rest.len() != 4 {
                    return None;
                }
                Response::WriteSingleRegister {
                    address: u16::from_be_bytes([rest[0], rest[1]]),
                    value: u16::from_be_bytes([rest[2], rest[3]]),
                }
            }
            (0x0F, _) => {
                if rest.len() != 4 {
                    return None;
                }
                Response::WriteMultipleCoils {
                    address: u16::from_be_bytes([rest[0], rest[1]]),
                    count: u16::from_be_bytes([rest[2], rest[3]]),
                }
            }
            (0x10, _) => {
                if rest.len() != 4 {
                    return None;
                }
                Response::WriteMultipleRegisters {
                    address: u16::from_be_bytes([rest[0], rest[1]]),
                    count: u16::from_be_bytes([rest[2], rest[3]]),
                }
            }
            (0x2B, _) => {
                let len = *rest.first()? as usize;
                if rest.len() != 1 + len {
                    return None;
                }
                Response::DeviceId {
                    text: String::from_utf8(rest[1..].to_vec()).ok()?,
                }
            }
            (0x5A, _) => {
                if rest.len() < 2 {
                    return None;
                }
                let len = u16::from_be_bytes([rest[0], rest[1]]) as usize;
                if rest.len() != 2 + len {
                    return None;
                }
                Response::ConfigImage {
                    image: rest[2..].to_vec(),
                }
            }
            (0x5B, _) => {
                if rest != [0x00] {
                    return None;
                }
                Response::ConfigAccepted
            }
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let bytes = req.encode();
        assert_eq!(Request::decode(&bytes), Some(req));
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_req(Request::ReadCoils {
            address: 0,
            count: 7,
        });
        roundtrip_req(Request::ReadDiscreteInputs {
            address: 3,
            count: 16,
        });
        roundtrip_req(Request::ReadHoldingRegisters {
            address: 100,
            count: 10,
        });
        roundtrip_req(Request::ReadInputRegisters {
            address: 5,
            count: 1,
        });
        roundtrip_req(Request::WriteSingleCoil {
            address: 6,
            value: true,
        });
        roundtrip_req(Request::WriteSingleCoil {
            address: 6,
            value: false,
        });
        roundtrip_req(Request::WriteSingleRegister {
            address: 2,
            value: 0xBEEF,
        });
        roundtrip_req(Request::WriteMultipleCoils {
            address: 1,
            values: vec![true, false, true, true, false, true, false, false, true],
        });
        roundtrip_req(Request::WriteMultipleRegisters {
            address: 9,
            values: vec![1, 2, 3],
        });
        roundtrip_req(Request::ReadDeviceId);
        roundtrip_req(Request::ConfigDownload);
        roundtrip_req(Request::ConfigUpload {
            image: vec![9, 8, 7],
        });
    }

    fn roundtrip_resp(req: Request, resp: Response) {
        let bytes = resp.encode();
        assert_eq!(Response::decode(&bytes, &req), Some(resp));
    }

    #[test]
    fn response_roundtrips() {
        roundtrip_resp(
            Request::ReadCoils {
                address: 0,
                count: 3,
            },
            Response::Bits {
                function: 0x01,
                values: vec![true, false, true],
            },
        );
        roundtrip_resp(
            Request::ReadHoldingRegisters {
                address: 0,
                count: 2,
            },
            Response::Registers {
                function: 0x03,
                values: vec![0xAB, 0xCD],
            },
        );
        roundtrip_resp(
            Request::WriteSingleCoil {
                address: 4,
                value: true,
            },
            Response::WriteSingleCoil {
                address: 4,
                value: true,
            },
        );
        roundtrip_resp(
            Request::WriteMultipleRegisters {
                address: 1,
                values: vec![5, 6],
            },
            Response::WriteMultipleRegisters {
                address: 1,
                count: 2,
            },
        );
        roundtrip_resp(
            Request::ReadDeviceId,
            Response::DeviceId {
                text: "ACME BreakerMaster 9000 fw1.2".into(),
            },
        );
        roundtrip_resp(
            Request::ConfigDownload,
            Response::ConfigImage {
                image: vec![1, 2, 3, 4],
            },
        );
        roundtrip_resp(
            Request::ConfigUpload { image: vec![] },
            Response::ConfigAccepted,
        );
    }

    #[test]
    fn exception_roundtrip() {
        let resp = Response::Exception {
            function: 0x03,
            code: ExceptionCode::IllegalDataAddress,
        };
        let bytes = resp.encode();
        assert_eq!(bytes[0], 0x83);
        assert_eq!(
            Response::decode(
                &bytes,
                &Request::ReadHoldingRegisters {
                    address: 0,
                    count: 1
                }
            ),
            Some(resp)
        );
    }

    #[test]
    fn malformed_requests_rejected() {
        assert_eq!(Request::decode(&[]), None);
        assert_eq!(Request::decode(&[0x01, 0x00]), None); // truncated
        assert_eq!(Request::decode(&[0x63]), None); // unknown fc
                                                    // 0x05 with invalid coil value.
        assert_eq!(Request::decode(&[0x05, 0, 1, 0x12, 0x34]), None);
        // 0x0F with inconsistent byte count.
        assert_eq!(Request::decode(&[0x0F, 0, 0, 0, 8, 2, 0xFF, 0xFF]), None);
    }

    #[test]
    fn response_function_mismatch_rejected() {
        let resp = Response::Registers {
            function: 0x03,
            values: vec![1],
        };
        let bytes = resp.encode();
        assert_eq!(
            Response::decode(
                &bytes,
                &Request::ReadCoils {
                    address: 0,
                    count: 1
                }
            ),
            None
        );
    }

    #[test]
    fn exception_display() {
        assert_eq!(
            ExceptionCode::IllegalFunction.to_string(),
            "illegal function"
        );
        assert_eq!(
            ExceptionCode::from_code(0x02),
            Some(ExceptionCode::IllegalDataAddress)
        );
        assert_eq!(ExceptionCode::from_code(0x99), None);
    }

    #[test]
    fn coil_bit_packing_matches_spec() {
        // Spec example: coils 27-38 = CD 6B 05 pattern style check.
        let req = Request::WriteMultipleCoils {
            address: 27,
            values: vec![
                true, false, true, true, false, false, true, true, // 0xCD
                true, true, false, true,
            ],
        };
        let bytes = req.encode();
        // byte_count = 2, first data byte = 0xCD.
        assert_eq!(bytes[5], 2);
        assert_eq!(bytes[6], 0xCD);
        assert_eq!(bytes[7], 0x0B);
    }
}
