//! Property-based tests on the core data structures and invariants.

use proptest::prelude::*;

use itcrypto::merkle::MerkleTree;
use itcrypto::sha256::{sha256, Sha256};
use itcrypto::stream::{open, seal};
use modbus::crc::{check_and_strip, crc16};
use modbus::dnp3::{AppRequest, AppResponse, LinkControl, LinkFrame};
use modbus::{Request, Response};
use plc::logic::LogicConfig;
use plc::topology::fig4_topology;
use prime::types::{Config, Update};
use scada::state::ScadaState;
use scada::updates::ScadaUpdate;
use simnet::wire::Wire;
use spines::fairness::FairQueue;
use spines::message::{Destination, MsgKind, SpinesMsg};

proptest! {
    // ---- crypto ----

    #[test]
    fn sha256_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..4096), split in 0usize..4096) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    #[test]
    fn sealed_boxes_roundtrip_and_reject_tamper(
        key in any::<[u8; 32]>(),
        nonce in any::<u64>(),
        msg in proptest::collection::vec(any::<u8>(), 0..512),
        flip_byte in any::<u8>(),
        flip_at in any::<usize>(),
    ) {
        let sealed = seal(&key, nonce, &msg);
        prop_assert_eq!(open(&key, &sealed), Some(msg.clone()));
        if !sealed.ciphertext.is_empty() && flip_byte != 0 {
            let mut bad = sealed.clone();
            let i = flip_at % bad.ciphertext.len();
            bad.ciphertext[i] ^= flip_byte;
            prop_assert_eq!(open(&key, &bad), None);
        }
    }

    #[test]
    fn merkle_proofs_verify_and_bind(leaves in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..32), 1..40), idx in any::<usize>()) {
        let tree = MerkleTree::from_leaves(&leaves);
        let i = idx % leaves.len();
        let proof = tree.prove(i).expect("index in range");
        prop_assert!(MerkleTree::verify(tree.root(), &leaves[i], &proof));
        // The proof must not verify a different leaf value.
        let mut other = leaves[i].clone();
        other.push(0xAB);
        prop_assert!(!MerkleTree::verify(tree.root(), &other, &proof));
    }

    // ---- wire codecs: decoding arbitrary bytes must never panic ----

    #[test]
    fn spines_msg_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = SpinesMsg::from_wire(&data);
    }

    #[test]
    fn prime_msg_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = prime::messages::PrimeMsg::from_wire(&data);
    }

    #[test]
    fn scada_update_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = ScadaUpdate::from_wire(&data);
    }

    #[test]
    fn modbus_request_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Request::decode(&data);
    }

    #[test]
    fn modbus_response_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256), count in 1u16..50) {
        let req = Request::ReadCoils { address: 0, count };
        let _ = Response::decode(&data, &req);
    }

    #[test]
    fn plc_config_image_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = LogicConfig::from_image(&data);
    }

    #[test]
    fn spines_msg_roundtrip(
        src in any::<u32>(),
        seq in any::<u64>(),
        daemon_dst in any::<bool>(),
        dst_val in any::<u32>(),
        priority in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let msg = SpinesMsg {
            src,
            seq,
            dst: if daemon_dst { Destination::Daemon(dst_val) } else { Destination::Group(dst_val as u16) },
            priority,
            kind: MsgKind::Data,
            payload: bytes::Bytes::from(payload),
        };
        prop_assert_eq!(SpinesMsg::from_wire(&msg.to_wire()).expect("roundtrip"), msg);
    }

    #[test]
    fn prime_update_roundtrip(client in any::<u32>(), seq in any::<u64>(), payload in proptest::collection::vec(any::<u8>(), 0..128)) {
        let u = Update::new(client, seq, bytes::Bytes::from(payload));
        prop_assert_eq!(Update::from_wire(&u.to_wire()).expect("roundtrip"), u);
    }

    // ---- DNP3 ----

    #[test]
    fn dnp3_link_frame_roundtrip(
        is_request in any::<bool>(),
        destination in any::<u16>(),
        source in any::<u16>(),
        body in proptest::collection::vec(any::<u8>(), 0..251),
    ) {
        let frame = LinkFrame {
            control: if is_request { LinkControl::Request } else { LinkControl::Response },
            destination,
            source,
            body,
        };
        prop_assert_eq!(LinkFrame::decode(&frame.encode()).expect("roundtrip"), frame);
    }

    #[test]
    fn dnp3_link_frame_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = LinkFrame::decode(&data);
    }

    #[test]
    fn dnp3_app_request_roundtrip(poll in any::<bool>(), index in any::<u16>(), trip in any::<bool>()) {
        let req = if poll {
            AppRequest::IntegrityPoll
        } else {
            AppRequest::DirectOperate { index, trip }
        };
        prop_assert_eq!(AppRequest::decode(&req.encode()).expect("roundtrip"), req);
    }

    #[test]
    fn dnp3_app_response_roundtrip(
        static_data in any::<bool>(),
        points in proptest::collection::vec(any::<bool>(), 0..100),
        index in any::<u16>(),
        success in any::<bool>(),
    ) {
        let resp = if static_data {
            AppResponse::StaticData { points }
        } else {
            AppResponse::OperateAck { index, success }
        };
        prop_assert_eq!(AppResponse::decode(&resp.encode()).expect("roundtrip"), resp);
    }

    // ---- obs histograms ----

    #[test]
    fn histogram_quantiles_are_ordered_and_counts_conserved(
        values in proptest::collection::vec(0u64..10_000_000, 1..300),
    ) {
        let hub = obs::ObsHub::new();
        let h = hub.histogram("prop.test");
        for &v in &values {
            h.record(v);
        }
        let s = h.summary();
        prop_assert_eq!(s.count, values.len() as u64, "every sample counted");
        prop_assert!(s.min <= s.p50, "min <= p50 ({} <= {})", s.min, s.p50);
        prop_assert!(s.p50 <= s.p99, "p50 <= p99 ({} <= {})", s.p50, s.p99);
        prop_assert!(s.p99 <= s.max, "p99 <= max ({} <= {})", s.p99, s.max);
        let lo = *values.iter().min().expect("nonempty");
        let hi = *values.iter().max().expect("nonempty");
        prop_assert_eq!(s.min, lo, "min is exact");
        prop_assert_eq!(s.max, hi, "max is exact");
        prop_assert!(s.mean >= lo && s.mean <= hi, "mean within sample range");
        // Quantiles are monotone in q and clamped to the sample range.
        let mut prev = 0u64;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.quantile(q);
            prop_assert!(v >= prev, "quantile monotone at q={q}");
            prop_assert!(v >= lo && v <= hi, "quantile clamped at q={q}");
            prev = v;
        }
    }

    #[test]
    fn histogram_relative_error_bounded(value in 1u64..1_000_000_000) {
        // Log-linear buckets with 16 sub-buckets per power of two keep the
        // upper-edge estimate within ~6.25% of the true value. A far-out
        // second sample keeps the clamp-to-max from hiding the bucket edge.
        let hub = obs::ObsHub::new();
        let h = hub.histogram("prop.err");
        h.record(value);
        h.record(value.saturating_mul(1_000));
        let est = h.quantile(0.5);
        prop_assert!(est >= value, "upper edge never under-reports");
        let err = (est - value) as f64 / value as f64;
        prop_assert!(err <= 0.0625 + 1e-9, "relative error {err} at {value}");
    }

    // ---- causal span trees ----

    #[test]
    fn span_trees_well_formed_under_arbitrary_interleavings(
        ops in proptest::collection::vec((0u8..4, any::<usize>(), 1u64..5_000), 0..150),
    ) {
        // Drive the span API with an arbitrary interleaving of root
        // starts, child starts (under any live-or-dead span), instant
        // spans, and out-of-order ends, then reassemble the journal:
        // every end must match a start, every trace must have exactly
        // one root, and children must nest within their parents.
        let hub = obs::ObsHub::new();
        hub.set_tracing(true);
        let mut now = 0u64;
        let mut open: Vec<obs::TraceCtx> = Vec::new();
        let mut started: Vec<obs::TraceCtx> = Vec::new();
        let mut roots = 0u64;
        for &(op, idx, dt) in &ops {
            now += dt;
            hub.set_now_us(now);
            match op {
                0 => {
                    let ctx = hub
                        .start_root(obs::Stage::Command, (idx % 7) as u32)
                        .expect("tracing is on");
                    open.push(ctx);
                    started.push(ctx);
                    roots += 1;
                }
                1 if !started.is_empty() => {
                    let parent = started[idx % started.len()];
                    if let Some(ctx) =
                        hub.start_span(Some(parent), obs::Stage::SpinesHop, (idx % 7) as u32)
                    {
                        open.push(ctx);
                        started.push(ctx);
                    }
                }
                2 if !open.is_empty() => {
                    let ctx = open.swap_remove(idx % open.len());
                    hub.end_span(Some(ctx));
                }
                3 if !started.is_empty() => {
                    let parent = started[idx % started.len()];
                    hub.instant_span(Some(parent), obs::Stage::Deliver, (idx % 7) as u32);
                }
                _ => {}
            }
        }
        let asm = obs::trace::assemble(&hub.journal_records());
        prop_assert_eq!(asm.orphan_ends, 0, "every journaled end had a start");
        prop_assert_eq!(
            asm.traces.len() as u64,
            roots,
            "one assembled trace per injected root"
        );
        for trace in &asm.traces {
            let mut parentless = 0usize;
            for span in &trace.spans {
                prop_assert!(span.end_us >= span.start_us, "span ends after it starts");
                match span.parent {
                    None => parentless += 1,
                    Some(p) => {
                        let parent = trace.span(p).expect("parent assembled in the same trace");
                        prop_assert!(
                            span.start_us >= parent.start_us,
                            "child {:?} starts within its parent",
                            span.id
                        );
                        // The clamp prefers end >= start over nesting: a
                        // child started after its parent already ended
                        // collapses to zero duration instead.
                        prop_assert!(
                            span.end_us <= parent.end_us || span.end_us == span.start_us,
                            "child {:?} clamped into its parent",
                            span.id
                        );
                    }
                }
            }
            prop_assert_eq!(parentless, 1, "exactly one root per trace");
        }
    }

    // ---- CRC ----

    #[test]
    fn crc_roundtrip_and_single_bitflip_detected(mut body in proptest::collection::vec(any::<u8>(), 1..64), bit in any::<u8>(), at in any::<usize>()) {
        modbus::crc::append_crc(&mut body);
        prop_assert!(check_and_strip(&body).is_some());
        let i = at % body.len();
        let mask = 1u8 << (bit % 8);
        body[i] ^= mask;
        // A single bit flip is always detected by CRC-16.
        prop_assert!(check_and_strip(&body).is_none());
        let _ = crc16(&body);
    }

    // ---- power topology ----

    #[test]
    fn closing_breakers_is_monotone(closed in proptest::collection::vec(any::<bool>(), 7), extra in 0usize..7) {
        let topo = fig4_topology();
        let before = topo.energized_count(&closed);
        let mut more = closed.clone();
        more[extra] = true;
        let after = topo.energized_count(&more);
        prop_assert!(after >= before, "closing a breaker must never darken a load");
    }

    #[test]
    fn breaker_currents_zero_when_open(closed in proptest::collection::vec(any::<bool>(), 7)) {
        let topo = fig4_topology();
        for b in 0..7u16 {
            if !closed[b as usize] {
                prop_assert_eq!(topo.breaker_current(b, &closed), 0);
            }
        }
    }

    // ---- SCADA state ----

    #[test]
    fn scada_state_snapshot_roundtrip(polls in proptest::collection::vec((any::<u8>(), proptest::collection::vec(any::<bool>(), 0..8)), 0..10)) {
        let mut st = ScadaState::new();
        for (i, (tag, positions)) in polls.iter().enumerate() {
            let currents = positions.iter().map(|&p| u16::from(p) * 100).collect();
            st.apply(&ScadaUpdate::RtuStatus {
                scenario: format!("s{tag}"),
                poll_seq: i as u64 + 1,
                positions: positions.clone(),
                currents,
            });
        }
        let restored = ScadaState::restore(&st.snapshot());
        prop_assert_eq!(restored.digest(), st.digest());
        prop_assert_eq!(restored, st);
    }

    // ---- fairness queue ----

    #[test]
    fn fair_queue_conserves_items(pushes in proptest::collection::vec((0u32..8, any::<u16>()), 0..200), budget in 1usize..50) {
        let mut q = FairQueue::new(1_000);
        for &(src, v) in &pushes {
            q.push(src, v);
        }
        let mut drained = 0usize;
        loop {
            let batch = q.drain(budget);
            if batch.is_empty() {
                break;
            }
            drained += batch.len();
        }
        prop_assert_eq!(drained, pushes.len());
        prop_assert!(q.is_empty());
    }

    #[test]
    fn fair_queue_serves_all_sources_within_budget(n_per_src in 1usize..20) {
        // With k sources and budget >= k, every source is served each round.
        let mut q = FairQueue::new(1_000);
        for src in 0..5u32 {
            for i in 0..n_per_src {
                q.push(src, i);
            }
        }
        let batch = q.drain(5);
        let sources: std::collections::BTreeSet<u32> = batch.iter().map(|i| i.src).collect();
        prop_assert_eq!(sources.len(), 5, "one item from each source per round");
    }

    // ---- prime configuration arithmetic ----

    #[test]
    fn prime_quorums_intersect_in_a_correct_replica(f in 0u32..4, k in 0u32..4) {
        let c = Config::new(f, k);
        let n = c.n();
        let q = c.ordering_quorum();
        // Any two quorums intersect in at least f+1 replicas → ≥1 correct.
        prop_assert!(2 * q > n + f, "quorum intersection must beat f (n={n}, q={q})");
        // Coverage threshold guarantees at least one correct, non-recovering row.
        prop_assert!(c.coverage_threshold() > f + k);
        // Liveness: a quorum must survive f byzantine + k recovering.
        prop_assert!(n - f - k >= q, "quorum reachable with f+k unavailable");
    }
}

// ---- signature-verification memoization ----
//
// The verify cache must be observationally invisible: for any signed
// message — well-formed, corrupted, or outright forged — the cached
// verdict equals the uncached one, on the miss path, the hit path, and
// after eviction.

proptest! {
    #[test]
    fn verify_cache_agrees_with_uncached_for_arbitrary_messages(
        signer_seed in any::<u64>(),
        view in any::<u64>(),
        seq in any::<u64>(),
        digest in any::<[u8; 32]>(),
        flip_sig in any::<u8>(),
        wrong_sender in any::<bool>(),
    ) {
        use itcrypto::keys::{KeyPair, KeyRegistry, Principal};
        use itcrypto::verify_cache::VerifyCache;
        use prime::messages::{PrimeMsg, SignedMsg};
        use prime::types::ReplicaId;

        let mut kp = KeyPair::generate(signer_seed);
        let mut registry = KeyRegistry::new();
        registry.register(Principal::Replica(0), kp.public_key());
        registry.register(Principal::Replica(1), KeyPair::generate(signer_seed ^ 1).public_key());

        let msg = PrimeMsg::Prepare {
            view,
            seq,
            digest: itcrypto::Digest(digest),
        };
        let mut signed = SignedMsg::sign(ReplicaId(0), msg, &mut kp);
        // Corruptions: a flipped signature byte, or a claimed sender that
        // did not produce the signature.
        if flip_sig != 0 {
            let mut bytes = signed.sig.to_bytes();
            bytes[(flip_sig as usize) % bytes.len()] ^= flip_sig;
            signed.sig = itcrypto::Signature::from_bytes(&bytes);
        }
        if wrong_sender {
            signed.from = ReplicaId(1);
        }

        let mut cache = VerifyCache::new(16);
        let uncached = signed.verify(&registry);
        // Miss path, then hit path: both must agree with the uncached verdict.
        prop_assert_eq!(signed.verify_cached(&registry, &mut cache), uncached);
        prop_assert_eq!(signed.verify_cached(&registry, &mut cache), uncached);
        prop_assert_eq!((cache.hits, cache.misses), (1, 1));
    }

    #[test]
    fn verify_cache_eviction_never_flips_a_verdict(
        n_msgs in 3usize..20,
        cap in 1usize..4,
        tamper_mask in any::<u32>(),
    ) {
        use itcrypto::keys::{KeyPair, KeyRegistry, Principal};
        use itcrypto::verify_cache::VerifyCache;
        use prime::messages::{PrimeMsg, SignedMsg};
        use prime::types::ReplicaId;

        let mut kp = KeyPair::generate(7);
        let mut registry = KeyRegistry::new();
        registry.register(Principal::Replica(0), kp.public_key());

        let msgs: Vec<SignedMsg> = (0..n_msgs)
            .map(|i| {
                let mut m = SignedMsg::sign(
                    ReplicaId(0),
                    PrimeMsg::SuspectLeader { view: i as u64 },
                    &mut kp,
                );
                if tamper_mask & (1 << (i % 32)) != 0 {
                    let mut bytes = m.sig.to_bytes();
                    bytes[i % bytes.len()] ^= 0x5a;
                    m.sig = itcrypto::Signature::from_bytes(&bytes);
                }
                m
            })
            .collect();

        // A cache smaller than the message set forces evictions; cycling
        // through the set repeatedly exercises miss → hit → evict → miss.
        let mut cache = VerifyCache::new(cap);
        for round in 0..3 {
            for m in &msgs {
                prop_assert_eq!(
                    m.verify_cached(&registry, &mut cache),
                    m.verify(&registry),
                    "round {}: cached verdict diverged",
                    round
                );
            }
        }
        prop_assert!(cache.len() <= cap, "cache exceeded its bound");
    }
}

// ---- wide-area Spines overlays (E13 tentpole) ----
//
// The WAN route selector must deliver the redundancy the topology
// offers — k node-disjoint inter-site links yield at least k mutually
// node-disjoint routes — and the internal (replication) overlay must
// never route over links that belong only to the external (client)
// overlay, for ANY link tagging.

use spines::wan::{Overlay, WanLink, WanSite, WanTopology};

/// A two-site topology: `na`/`nb` internal daemons per site (site A ids
/// `0..na`, site B ids `10..10+nb`), the given internal WAN links, the
/// given external WAN links, and one proxy daemon per site (20, 21) on
/// the external overlay.
fn two_site_wan(
    na: u32,
    nb: u32,
    internal_links: &[(u32, u32)],
    external_links: &[(u32, u32)],
) -> WanTopology {
    let link = |&(a, b): &(u32, u32), overlay| WanLink {
        a,
        b,
        overlay,
        latency_us: 2_000,
        loss: 0.0,
    };
    WanTopology {
        sites: vec![
            WanSite {
                name: "cc-a".into(),
                internal_daemons: (0..na).collect(),
                external_daemons: (0..na).chain([20]).collect(),
            },
            WanSite {
                name: "cc-b".into(),
                internal_daemons: (10..10 + nb).collect(),
                external_daemons: (10..10 + nb).chain([21]).collect(),
            },
        ],
        links: internal_links
            .iter()
            .map(|l| link(l, Overlay::Internal))
            .chain(external_links.iter().map(|l| link(l, Overlay::External)))
            .collect(),
    }
}

/// Asserts the routes are internally node-disjoint `s → t` paths whose
/// every hop is an edge of `overlay`.
fn assert_routes_well_formed(
    t: &WanTopology,
    overlay: Overlay,
    routes: &[Vec<u32>],
    s: u32,
    d: u32,
) {
    let edges = t.overlay_edges(overlay);
    let mut middles = std::collections::BTreeSet::new();
    for route in routes {
        assert_eq!(route.first(), Some(&s));
        assert_eq!(route.last(), Some(&d));
        for m in &route[1..route.len() - 1] {
            assert!(middles.insert(*m), "routes share intermediate daemon {m}");
        }
        for hop in route.windows(2) {
            let e = if hop[0] <= hop[1] {
                (hop[0], hop[1])
            } else {
                (hop[1], hop[0])
            };
            assert!(
                edges.contains(&e),
                "hop {e:?} is not a link of the {overlay:?} overlay"
            );
        }
    }
}

proptest! {
    /// k parallel node-disjoint inter-site links (daemon i of site A to
    /// daemon i of site B) must yield at least k mutually node-disjoint
    /// internal routes between the sites — the redundancy the topology
    /// offers is the redundancy the selector delivers.
    #[test]
    fn wan_route_selection_is_node_disjoint_when_topology_offers(
        na in 1u32..4,
        nb in 1u32..4,
        k_seed in any::<u32>(),
    ) {
        let k = 1 + k_seed % na.min(nb);
        let internal: Vec<(u32, u32)> = (0..k).map(|i| (i, 10 + i)).collect();
        let t = two_site_wan(na, nb, &internal, &[(20, 21)]);
        let routes = t.select_routes(Overlay::Internal, 0, 10);
        prop_assert!(
            routes.len() as u32 >= k,
            "topology offers {} disjoint links but selector found {} routes",
            k,
            routes.len()
        );
        assert_routes_well_formed(&t, Overlay::Internal, &routes, 0, 10);
    }

    /// For ANY tagging of inter-site links — including external-only
    /// links whose endpoints are replica daemons — internal routes use
    /// only internal-overlay links, and vice versa. The overlays are
    /// separate networks, not traffic classes on one network.
    #[test]
    fn overlay_routes_never_cross_overlays(
        na in 1u32..4,
        nb in 1u32..4,
        internal_mask in any::<u16>(),
        external_mask in any::<u16>(),
    ) {
        // Candidate inter-site pairs (i, 10+j); each mask bit tags one
        // pair into an overlay. Both masks may select the same pair —
        // a link provisioned on both networks is legal.
        let pairs: Vec<(u32, u32)> = (0..na)
            .flat_map(|i| (0..nb).map(move |j| (i, 10 + j)))
            .collect();
        let pick = |mask: u16| -> Vec<(u32, u32)> {
            pairs
                .iter()
                .enumerate()
                .filter(|(idx, _)| mask & (1 << (idx % 16)) != 0)
                .map(|(_, &p)| p)
                .collect()
        };
        let mut internal = pick(internal_mask);
        if internal.is_empty() {
            internal.push((0, 10)); // keep the sites internally connected
        }
        let mut external = pick(external_mask);
        external.push((20, 21));
        let t = two_site_wan(na, nb, &internal, &external);

        let routes = t.select_routes(Overlay::Internal, 0, 10);
        prop_assert!(!routes.is_empty(), "sites are internally connected");
        assert_routes_well_formed(&t, Overlay::Internal, &routes, 0, 10);

        let ext_routes = t.select_routes(Overlay::External, 20, 21);
        prop_assert!(!ext_routes.is_empty());
        assert_routes_well_formed(&t, Overlay::External, &ext_routes, 20, 21);
    }
}

// ---- Modbus framing: round-trip and malformed-frame rejection ----

proptest! {
    /// RTU frames round-trip exactly for any unit id and PDU.
    #[test]
    fn rtu_frame_roundtrip(
        unit in any::<u8>(),
        pdu in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let f = modbus::frame::RtuFrame { unit, pdu };
        prop_assert_eq!(modbus::frame::RtuFrame::decode(&f.encode()), Some(f));
    }

    /// TCP frames round-trip exactly for any transaction, unit, and PDU.
    #[test]
    fn tcp_frame_roundtrip(
        transaction in any::<u16>(),
        unit in any::<u8>(),
        pdu in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let f = modbus::frame::TcpFrame::new(transaction, unit, pdu);
        prop_assert_eq!(modbus::frame::TcpFrame::decode(&f.encode()), Some(f));
    }

    /// Malformed TCP frames — truncated anywhere, or with an oversized
    /// declared length — are rejected with `None`, never a panic.
    #[test]
    fn malformed_tcp_frames_rejected(
        transaction in any::<u16>(),
        unit in any::<u8>(),
        pdu in proptest::collection::vec(any::<u8>(), 1..64),
        cut in any::<usize>(),
        inflate in 1u16..16,
    ) {
        let bytes = modbus::frame::TcpFrame::new(transaction, unit, pdu).encode();
        // Truncation: every strict prefix fails to parse.
        let cut = cut % bytes.len();
        prop_assert_eq!(modbus::frame::TcpFrame::decode(&bytes[..cut]), None);
        // Oversized declared length: header promises more than arrived.
        let mut oversized = bytes.clone();
        let declared = u16::from_be_bytes([bytes[4], bytes[5]]);
        oversized[4..6].copy_from_slice(&(declared.saturating_add(inflate)).to_be_bytes());
        prop_assert_eq!(modbus::frame::TcpFrame::decode(&oversized), None);
    }

    /// Truncated RTU frames are rejected (the CRC no longer matches, or
    /// the frame is below the minimum length), never a panic.
    #[test]
    fn truncated_rtu_frames_rejected(
        unit in any::<u8>(),
        pdu in proptest::collection::vec(any::<u8>(), 1..64),
        cut in any::<usize>(),
    ) {
        let bytes = modbus::frame::RtuFrame { unit, pdu }.encode();
        let cut = cut % bytes.len();
        prop_assert_eq!(modbus::frame::RtuFrame::decode(&bytes[..cut]), None);
    }

    /// A PDU whose function code is not one the reproduction's PLCs
    /// implement is rejected by `Request::decode` — error, never panic —
    /// even when the rest of the PDU is perfectly plausible.
    #[test]
    fn bad_function_codes_rejected(
        fc in any::<u8>(),
        body in proptest::collection::vec(any::<u8>(), 0..16),
    ) {
        const KNOWN: &[u8] = &[0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x0F, 0x10, 0x2B, 0x5A, 0x5B];
        if !KNOWN.contains(&fc) {
            let mut pdu = vec![fc];
            pdu.extend_from_slice(&body);
            prop_assert_eq!(Request::decode(&pdu), None);
        }
    }
}

// ---- simnet event queue: the parallel scheduler's ordering substrate ----

proptest! {
    /// The slab-backed indexed queue agrees with a naive model (a plain
    /// vector scanned for its minimum) under arbitrary interleavings of
    /// schedule, cancel, rekey, and pop — same liveness, same payloads,
    /// same total (time, key) pop order. This is the structure the
    /// parallel scheduler trusts for shard-local ordering and for
    /// rekeying provisional events to their barrier-assigned sequence
    /// numbers.
    #[test]
    fn event_queue_matches_naive_model(
        ops in proptest::collection::vec((any::<u8>(), any::<u16>()), 1..200),
    ) {
        let mut queue = simnet::queue::EventQueue::new();
        // Live events as (at, key, payload); minimum found by linear scan.
        let mut model: Vec<(u64, u64, u32)> = Vec::new();
        // Every handle ever issued, with the (at, key) it was issued for
        // (possibly stale after cancel/rekey/pop — exactly the point).
        let mut handles: Vec<(simnet::queue::EventHandle, u64, u64)> = Vec::new();
        let mut next_key = 0u64;
        for (i, &(sel, arg)) in ops.iter().enumerate() {
            let at = (arg % 64) as u64;
            match sel % 8 {
                0..=2 => {
                    let key = next_key;
                    next_key += 1;
                    let h = queue.insert(at, key, i as u32);
                    handles.push((h, at, key));
                    model.push((at, key, i as u32));
                }
                3 | 4 => {
                    let popped = queue.pop();
                    let min = model
                        .iter()
                        .enumerate()
                        .min_by_key(|&(_, &(a, k, _))| (a, k))
                        .map(|(mi, _)| mi);
                    match (popped, min) {
                        (Some(got), Some(mi)) => {
                            prop_assert_eq!(got, model.remove(mi));
                        }
                        (None, None) => {}
                        _ => prop_assert!(false, "pop emptiness diverged"),
                    }
                }
                5 | 6 => {
                    if handles.is_empty() {
                        continue;
                    }
                    let (h, hat, hkey) = handles[arg as usize % handles.len()];
                    let mi = model.iter().position(|&(a, k, _)| (a, k) == (hat, hkey));
                    match (queue.cancel(h), mi) {
                        (Some(p), Some(mi)) => {
                            let (_, _, mp) = model.remove(mi);
                            prop_assert_eq!(p, mp);
                        }
                        (None, None) => {}
                        _ => prop_assert!(false, "cancel liveness diverged"),
                    }
                }
                _ => {
                    if handles.is_empty() {
                        continue;
                    }
                    let idx = arg as usize % handles.len();
                    let (h, hat, hkey) = handles[idx];
                    let key = next_key;
                    next_key += 1;
                    let mi = model.iter().position(|&(a, k, _)| (a, k) == (hat, hkey));
                    match (queue.rekey(h, key), mi) {
                        (Some(nh), Some(mi)) => {
                            model[mi].1 = key;
                            handles[idx] = (nh, hat, key);
                        }
                        (None, None) => {}
                        _ => prop_assert!(false, "rekey liveness diverged"),
                    }
                }
            }
            prop_assert_eq!(queue.len(), model.len());
        }
        model.sort_unstable();
        for &expected in &model {
            prop_assert_eq!(queue.pop(), Some(expected));
        }
        prop_assert_eq!(queue.pop(), None);
    }

    /// Shard-merge ordering is total and deterministic: a mix of
    /// already-sequenced ("global") and provisional ("pending", high bit
    /// set) events pops in identical, fully sorted order no matter what
    /// permutation they were inserted in and no matter what order the
    /// pending ones were rekeyed to their assigned sequence numbers —
    /// the invariant the window-barrier replay relies on.
    #[test]
    fn queue_order_independent_of_insertion_and_rekey_permutation(
        ats in proptest::collection::vec(any::<u8>(), 2..50),
        perm_seed in any::<u64>(),
    ) {
        const PENDING: u64 = 1 << 63;
        let events: Vec<(u64, u64)> = ats
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                let key = if i % 2 == 0 { i as u64 } else { PENDING | i as u64 };
                ((a % 16) as u64, key)
            })
            .collect();
        // Deterministic Fisher-Yates permutation from the seed.
        let mut order: Vec<usize> = (0..events.len()).collect();
        let mut s = perm_seed | 1;
        for i in (1..order.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (s >> 33) as usize % (i + 1));
        }
        let mut q1 = simnet::queue::EventQueue::new();
        let mut q2 = simnet::queue::EventQueue::new();
        let mut h1 = vec![None; events.len()];
        let mut h2 = vec![None; events.len()];
        for (i, &(at, key)) in events.iter().enumerate() {
            h1[i] = Some(q1.insert(at, key, i as u32));
        }
        for &i in &order {
            let (at, key) = events[i];
            h2[i] = Some(q2.insert(at, key, i as u32));
        }
        // Rekey pending events to their "assigned" numbers — forward
        // order in one queue, reverse in the other.
        for (i, &(_, key)) in events.iter().enumerate() {
            if key & PENDING != 0 {
                prop_assert!(q1.rekey(h1[i].unwrap(), 1000 + i as u64).is_some());
            }
        }
        for &i in order.iter().rev() {
            if events[i].1 & PENDING != 0 {
                prop_assert!(q2.rekey(h2[i].unwrap(), 1000 + i as u64).is_some());
            }
        }
        let mut expect: Vec<(u64, u64, u32)> = events
            .iter()
            .enumerate()
            .map(|(i, &(at, key))| {
                let k = if key & PENDING != 0 { 1000 + i as u64 } else { key };
                (at, k, i as u32)
            })
            .collect();
        expect.sort_unstable();
        for &e in &expect {
            prop_assert_eq!(q1.pop(), Some(e));
            prop_assert_eq!(q2.pop(), Some(e));
        }
        prop_assert_eq!(q1.pop(), None);
        prop_assert_eq!(q2.pop(), None);
    }
}

// ---- Merkle-batched PO-Request dissemination (E11 tentpole) ----
//
// Batching must be a pure amortization of the pre-ordering hot path:
// the wire form must roundtrip for any member set, every member must
// carry a valid inclusion proof (and any corrupted leaf must fail),
// the root-signature verdict must be identical through the verify
// cache and without it, and a batched cluster must deliver the exact
// client update sequence of an unbatched one.

/// A batch signed by replica 2 over sequential client updates, plus a
/// registry holding the origin's and the client's keys.
fn batch_fixture(
    payloads: &[Vec<u8>],
    first_po_seq: u64,
) -> (prime::messages::PoBatch, itcrypto::keys::KeyRegistry) {
    use itcrypto::keys::{KeyPair, KeyRegistry, Principal};
    use prime::types::{ReplicaId, SignedUpdate};

    let mut okey = KeyPair::generate(11);
    let mut ckey = KeyPair::generate(12);
    let mut registry = KeyRegistry::new();
    registry.register(Principal::Replica(2), okey.public_key());
    registry.register(Principal::Client(0), ckey.public_key());
    let updates: Vec<SignedUpdate> = payloads
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let update = Update::new(0, i as u64 + 1, p.clone());
            let sig = ckey.sign(&update.to_wire());
            SignedUpdate { update, sig }
        })
        .collect();
    let batch = prime::messages::PoBatch::sign(ReplicaId(2), first_po_seq, updates, &mut okey);
    (batch, registry)
}

proptest! {
    #[test]
    fn po_batch_encoding_roundtrips_for_arbitrary_member_sets(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..24), 1..24),
        first_po_seq in 1u64..1_000_000_000,
    ) {
        use prime::messages::{PoBatch, PrimeMsg};

        let (batch, _) = batch_fixture(&payloads, first_po_seq);
        let decoded = PoBatch::from_wire(&batch.to_wire()).expect("batch decodes");
        prop_assert_eq!(&decoded, &batch);
        // And through the full protocol-message envelope.
        let msg = PrimeMsg::PoRequestBatch {
            batch: batch.clone(),
        };
        let rt = PrimeMsg::from_wire(&msg.to_wire()).expect("message decodes");
        prop_assert_eq!(rt, msg);
    }

    #[test]
    fn po_batch_inclusion_proofs_verify_every_member_and_reject_corruption(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..24), 1..24),
        corrupt_at in any::<usize>(),
        corrupt_byte in 1u8..255,
    ) {
        use prime::messages::PoBatch;

        let (batch, _) = batch_fixture(&payloads, 1);
        let tree = batch.tree();
        for (i, update) in batch.updates.iter().enumerate() {
            let leaf = PoBatch::leaf_bytes(batch.first_po_seq + i as u64, update);
            let proof = tree.prove(i).expect("index in range");
            prop_assert!(MerkleTree::verify(tree.root(), &leaf, &proof));
            prop_assert_eq!(proof.fold_root(&leaf), tree.root());
            // A leaf claiming a different slot must not verify.
            let wrong_slot = PoBatch::leaf_bytes(batch.first_po_seq + i as u64 + 1, update);
            prop_assert!(!MerkleTree::verify(tree.root(), &wrong_slot, &proof));
        }
        // A corrupted member's leaf must fail against the signed root.
        let i = corrupt_at % batch.updates.len();
        let mut bad = batch.updates[i].clone();
        if bad.update.payload.is_empty() {
            bad.update.client_seq ^= u64::from(corrupt_byte);
        } else {
            let mut p = bad.update.payload.to_vec();
            let at = corrupt_at % p.len();
            p[at] ^= corrupt_byte;
            bad.update.payload = p.into();
        }
        let bad_leaf = PoBatch::leaf_bytes(batch.first_po_seq + i as u64, &bad);
        let proof = tree.prove(i).expect("index in range");
        prop_assert!(!MerkleTree::verify(tree.root(), &bad_leaf, &proof));
    }

    #[test]
    fn po_batch_cached_verdict_equals_uncached_for_corrupted_members(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..24), 1..16),
        tamper in any::<bool>(),
        tamper_at in any::<usize>(),
        tamper_byte in 1u8..255,
    ) {
        use itcrypto::verify_cache::VerifyCache;
        use itcrypto::keys::Principal;
        use prime::messages::PoBatch;

        let (mut batch, registry) = batch_fixture(&payloads, 1);
        if tamper {
            let i = tamper_at % batch.updates.len();
            batch.updates[i].update.client_seq ^= u64::from(tamper_byte);
        }
        // The uncached verdict: the origin's signature over the batch
        // coordinates and the root recomputed from the (possibly
        // corrupted) members.
        let bytes = PoBatch::signed_root_bytes(
            batch.origin,
            batch.first_po_seq,
            batch.updates.len() as u32,
            batch.root(),
        );
        let uncached = registry.verify(
            Principal::Replica(batch.origin.0),
            &bytes,
            &batch.root_sig,
        );
        prop_assert_eq!(uncached, !tamper);
        // Miss path, then hit path: both must agree with the uncached
        // verdict (the cache keys on the recomputed root, so a corrupted
        // member can never hit a stale "valid" entry).
        let mut cache = VerifyCache::new(16);
        prop_assert_eq!(batch.verify_cached(&registry, &mut cache), uncached);
        prop_assert_eq!(batch.verify_cached(&registry, &mut cache), uncached);
        prop_assert_eq!((cache.hits, cache.misses), (1, 1));
    }
}

/// Batched and unbatched clusters must deliver the *identical* client
/// update sequence. A deterministic sweep (cluster runs are too heavy
/// for the 64-case proptest loop) over batch sizes, pipeline depths,
/// and submission burst shapes — bursts keep several updates inside one
/// batch window (the 5 ms default delay), singleton gaps exercise the
/// immediate-flush path.
#[test]
fn batched_cluster_delivers_identical_client_update_sequence() {
    use prime::harness::Cluster;
    use prime::replica::Timing;
    use simnet::time::SimDuration;

    let run = |cfg: Config, n_updates: usize, burst: usize| {
        let mut c = Cluster::new(cfg, 1);
        c.set_timing(Timing {
            aru_interval: SimDuration::from_millis(10),
            pp_interval: SimDuration::from_millis(10),
            suspect_timeout: SimDuration::from_millis(400),
            checkpoint_interval: 10,
            catchup_timeout: SimDuration::from_millis(200),
        });
        for i in 0..n_updates {
            c.submit(0, format!("k{i}=1"));
            if i % burst == burst - 1 {
                c.run_for(SimDuration::from_millis(7));
            }
        }
        c.run_for(SimDuration::from_secs(2));
        c.assert_consistent();
        c.exec_logs[0]
            .iter()
            .map(|&(_, client, client_seq)| (client, client_seq))
            .collect::<Vec<_>>()
    };
    for &(n_updates, batch_max, pipeline, burst) in &[
        (1usize, 1u32, 1u32, 1usize),
        (5, 2, 4, 2),
        (8, 16, 4, 3),
        (12, 4, 2, 3),
        (16, 8, 1, 2),
        (7, 3, 8, 1),
    ] {
        let legacy = run(Config::plant(), n_updates, burst);
        let batched = run(
            Config::plant().with_batching(batch_max, pipeline),
            n_updates,
            burst,
        );
        assert_eq!(
            legacy.len(),
            n_updates,
            "unbatched run executed everything (batch={batch_max} pipe={pipeline})"
        );
        assert_eq!(
            legacy, batched,
            "batching changed the delivered sequence \
             (n={n_updates} batch={batch_max} pipe={pipeline} burst={burst})"
        );
    }
}
