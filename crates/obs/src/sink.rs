//! Thread-local journal sinks for sharded (parallel) simulation.
//!
//! The run digest is a hash over the journal *in order*, so a parallel
//! scheduler cannot let worker threads append to the shared journal
//! directly — the interleaving would be nondeterministic. Instead, each
//! worker installs a [`ShardSink`] on its own thread for the duration of
//! a synchronization window: every [`crate::ObsHub::journal`] call made
//! from that thread (engine drop accounting, host-process events, chaos
//! records) lands in the sink, stamped with the *shard's* current
//! simulated time. At the window barrier the coordinator splices the
//! per-event record runs back together in the exact order the sequential
//! engine would have produced, so the merged journal — and therefore the
//! digest — is byte-identical to a single-threaded run.
//!
//! While no sink is installed (the sequential engine, test code, the
//! coordinator between windows), journal calls go straight to the hub as
//! they always have.

use std::cell::RefCell;

use crate::event::{Event, TimedEvent};

/// A per-thread journal buffer with its own simulated clock.
#[derive(Debug, Default)]
pub struct ShardSink {
    now_us: u64,
    records: Vec<TimedEvent>,
}

thread_local! {
    static ACTIVE: RefCell<Option<ShardSink>> = const { RefCell::new(None) };
}

/// Installs a sink on the current thread, starting at `now_us`. The
/// `records` buffer is reused across windows to avoid reallocation.
///
/// # Panics
///
/// Panics if a sink is already installed (windows never nest).
pub fn install(now_us: u64, records: Vec<TimedEvent>) {
    ACTIVE.with(|a| {
        let mut a = a.borrow_mut();
        assert!(a.is_none(), "shard sink already installed on this thread");
        *a = Some(ShardSink { now_us, records });
    });
}

/// Removes the current thread's sink and returns the buffered records.
///
/// # Panics
///
/// Panics if no sink is installed.
pub fn take() -> Vec<TimedEvent> {
    ACTIVE.with(|a| {
        a.borrow_mut()
            .take()
            .expect("no shard sink installed on this thread")
            .records
    })
}

/// Whether a sink is installed on the current thread.
pub fn is_active() -> bool {
    ACTIVE.with(|a| a.borrow().is_some())
}

/// Advances the sink's simulated clock (the engine calls this once per
/// dispatched event; shard-local event order keeps it monotone).
///
/// # Panics
///
/// Panics if no sink is installed.
pub fn set_now_us(now_us: u64) {
    ACTIVE.with(|a| {
        a.borrow_mut().as_mut().expect("no shard sink").now_us = now_us;
    });
}

/// Number of records buffered so far (the engine brackets each event
/// dispatch with this to attribute record runs to events).
pub fn len() -> usize {
    ACTIVE.with(|a| a.borrow().as_ref().map_or(0, |s| s.records.len()))
}

/// Appends `event` to the active sink, if any. Returns the event back
/// when no sink is installed (the hub then journals it itself).
pub(crate) fn append(event: Event) -> Option<Event> {
    ACTIVE.with(|a| {
        let mut a = a.borrow_mut();
        match a.as_mut() {
            Some(sink) => {
                sink.records.push(TimedEvent {
                    at_us: sink.now_us,
                    event,
                });
                None
            }
            None => Some(event),
        }
    })
}

/// The active sink's clock, if one is installed. [`crate::ObsHub::now_us`]
/// consults this so in-dispatch readers observe per-event time exactly as
/// they would under the sequential scheduler.
pub(crate) fn now_us() -> Option<u64> {
    ACTIVE.with(|a| a.borrow().as_ref().map(|s| s.now_us))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_captures_records_with_its_own_clock() {
        assert!(!is_active());
        install(10, Vec::new());
        assert!(is_active());
        assert!(append(Event::AuthFailure { daemon: 1 }).is_none());
        set_now_us(25);
        assert!(append(Event::AuthFailure { daemon: 2 }).is_none());
        assert_eq!(len(), 2);
        let records = take();
        assert_eq!(records[0].at_us, 10);
        assert_eq!(records[1].at_us, 25);
        assert!(!is_active());
        assert!(append(Event::AuthFailure { daemon: 3 }).is_some());
    }
}
