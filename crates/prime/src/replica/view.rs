//! Leader election: suspicion, view changes (single-certificate legacy
//! form and the pipelined certificate-window form), and view installation.

use super::*;

impl<A: Application> Replica<A> {
    pub(super) fn on_suspect(
        &mut self,
        from: ReplicaId,
        view: u64,
        now: SimTime,
        out: &mut Vec<OutEvent>,
    ) {
        if view < self.view {
            return;
        }
        self.suspects.entry(view).or_default().insert(from.0);
        let count =
            self.suspects[&view].len() as u32 + u32::from(self.sent_suspect.contains(&view));
        if view == self.view && count >= self.active_suspect_threshold() {
            self.start_view_change(view + 1, now, out);
        }
    }

    pub(super) fn start_view_change(&mut self, target: u64, now: SimTime, out: &mut Vec<OutEvent>) {
        if self.in_view_change && self.vc_target >= target {
            return;
        }
        self.in_view_change = true;
        self.vc_target = target;
        self.last_vc_broadcast_at = now;
        if self.config.pipeline > 1 {
            self.start_view_change_window(target, out);
            return;
        }
        let (prepared_seq, prepared_view, prepared_matrix) = match &self.prepared_cert {
            Some((s, v, m)) if *s > self.max_committed => (*s, *v, m.clone()),
            _ => (0, 0, Vec::new()),
        };
        let vc = PrimeMsg::ViewChange {
            new_view: target,
            max_committed: self.max_committed,
            prepared_seq,
            prepared_view,
            prepared_matrix: prepared_matrix.clone(),
        };
        // Record our own vote.
        self.view_changes.entry(target).or_default().insert(
            self.id.0,
            (
                self.max_committed,
                prepared_seq,
                prepared_view,
                prepared_matrix,
            ),
        );
        let vc = self.sign(vc);
        out.push(OutEvent::Broadcast(vc));
    }

    /// The pipelined vote form: every prepared-but-uncommitted
    /// certificate above the committed watermark travels in one
    /// `ViewChangeWindow`, so a view change cannot orphan the tail of an
    /// in-flight window the way a single-certificate vote would. The
    /// legacy vote table still counts this vote (keyed on its best
    /// certificate) so join and quorum logic is shared with the
    /// single-certificate form.
    fn start_view_change_window(&mut self, target: u64, out: &mut Vec<OutEvent>) {
        let certs: Vec<(u64, u64, Vec<AruRow>)> = self
            .prepared_certs
            .range(self.max_committed + 1..)
            .map(|(seq, (view, matrix))| (*seq, *view, matrix.clone()))
            .collect();
        let (ps, pv, pm) = certs
            .iter()
            .max_by_key(|(seq, view, _)| (*view, *seq))
            .map(|(seq, view, matrix)| (*seq, *view, matrix.clone()))
            .unwrap_or((0, 0, Vec::new()));
        self.view_changes
            .entry(target)
            .or_default()
            .insert(self.id.0, (self.max_committed, ps, pv, pm));
        self.vc_windows
            .entry(target)
            .or_default()
            .insert(self.id.0, certs.clone());
        let vc = self.sign(PrimeMsg::ViewChangeWindow {
            new_view: target,
            max_committed: self.max_committed,
            certs,
        });
        out.push(OutEvent::Broadcast(vc));
    }

    /// Receives a pipelined certificate-window vote. Feeds the shared
    /// vote table (via the window's best certificate) so the f+1 join
    /// and quorum install rules are identical to the legacy form, while
    /// the full window is retained for per-sequence re-proposal at
    /// install time.
    pub(super) fn on_view_change_window(
        &mut self,
        from: ReplicaId,
        new_view: u64,
        max_committed: u64,
        certs: Vec<(u64, u64, Vec<AruRow>)>,
        now: SimTime,
        out: &mut Vec<OutEvent>,
    ) {
        if new_view <= self.view {
            return;
        }
        // Certificates must be strictly ascending and above the voter's
        // own watermark; a malformed window is discarded whole.
        let mut last = max_committed;
        for (seq, _, _) in &certs {
            if *seq <= last {
                return;
            }
            last = *seq;
        }
        let (ps, pv, pm) = certs
            .iter()
            .max_by_key(|(seq, view, _)| (*view, *seq))
            .map(|(seq, view, matrix)| (*seq, *view, matrix.clone()))
            .unwrap_or((0, 0, Vec::new()));
        self.vc_windows
            .entry(new_view)
            .or_default()
            .insert(from.0, certs);
        self.view_changes
            .entry(new_view)
            .or_default()
            .insert(from.0, (max_committed, ps, pv, pm));
        let votes = self.view_changes[&new_view].len() as u32;
        if votes > self.active_f() && (!self.in_view_change || self.vc_target < new_view) {
            self.start_view_change(new_view, now, out);
        }
        if votes >= self.active_ordering_quorum()
            && self.active_leader_of(new_view) == self.id
            && self.view < new_view
        {
            self.install_view(new_view, now, out);
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn on_view_change(
        &mut self,
        from: ReplicaId,
        new_view: u64,
        max_committed: u64,
        prepared_seq: u64,
        prepared_view: u64,
        prepared_matrix: Vec<AruRow>,
        now: SimTime,
        out: &mut Vec<OutEvent>,
    ) {
        if new_view <= self.view {
            return;
        }
        self.view_changes.entry(new_view).or_default().insert(
            from.0,
            (max_committed, prepared_seq, prepared_view, prepared_matrix),
        );
        let votes = self.view_changes[&new_view].len() as u32;
        // Join a view change once f+1 replicas are moving (can't all be faulty).
        if votes > self.active_f() && (!self.in_view_change || self.vc_target < new_view) {
            self.start_view_change(new_view, now, out);
        }
        // As the new leader, install the view once a quorum has voted.
        if votes >= self.active_ordering_quorum()
            && self.active_leader_of(new_view) == self.id
            && self.view < new_view
        {
            self.install_view(new_view, now, out);
        }
    }

    pub(super) fn install_view(&mut self, new_view: u64, now: SimTime, out: &mut Vec<OutEvent>) {
        let votes = self
            .view_changes
            .get(&new_view)
            .cloned()
            .unwrap_or_default();
        let max_committed_any = votes
            .values()
            .map(|(mc, _, _, _)| *mc)
            .max()
            .unwrap_or(0)
            .max(self.max_committed);
        // Highest prepared certificate above the committed watermark, by
        // (prepared_view, seq).
        let best_prepared = votes
            .values()
            .filter(|(_, ps, _, _)| *ps > max_committed_any)
            .max_by_key(|(_, ps, pv, _)| (*pv, *ps))
            .cloned();
        // Pipelined votes carry whole certificate windows: collect, per
        // sequence above the watermark, the certificate with the highest
        // prepared view (a prepared certificate is unique per view, so
        // ties agree on the matrix). Empty unless peers sent
        // `ViewChangeWindow`, i.e. never on the legacy path.
        let mut window_certs: BTreeMap<u64, (u64, Vec<AruRow>)> = BTreeMap::new();
        for window in self
            .vc_windows
            .get(&new_view)
            .into_iter()
            .flat_map(|w| w.values())
        {
            for (seq, pv, matrix) in window {
                if *seq <= max_committed_any {
                    continue;
                }
                let entry = window_certs.entry(*seq).or_insert((*pv, matrix.clone()));
                if *pv > entry.0 {
                    *entry = (*pv, matrix.clone());
                }
            }
        }
        let start_seq = if let Some((&top, _)) = window_certs.iter().next_back() {
            top + 1
        } else {
            match &best_prepared {
                Some((_, ps, _, _)) => *ps + 1,
                None => max_committed_any + 1,
            }
        };
        self.view = new_view;
        self.in_view_change = false;
        self.unordered_since = None;
        self.stats.view_changes += 1;
        self.c_view_changes.inc();
        self.obs.journal(obs::Event::ViewChange {
            replica: self.id.0,
            view: new_view,
        });
        out.push(OutEvent::ViewChanged { view: new_view });
        let nv = self.sign(PrimeMsg::NewView {
            view: new_view,
            start_seq,
        });
        out.push(OutEvent::Broadcast(nv));
        // Re-propose surviving prepared matrices under the new view: the
        // whole per-sequence window when pipelined votes were collected,
        // the single best certificate otherwise.
        if window_certs.is_empty() {
            if let Some((_, ps, _, matrix)) = best_prepared {
                if !matrix.is_empty() {
                    self.propose_matrix(ps, matrix, now, out);
                }
            }
        } else {
            for (seq, (_, matrix)) in window_certs {
                if !matrix.is_empty() {
                    self.propose_matrix(seq, matrix, now, out);
                }
            }
        }
    }

    pub(super) fn on_new_view(
        &mut self,
        from: ReplicaId,
        view: u64,
        _start_seq: u64,
        now: SimTime,
        out: &mut Vec<OutEvent>,
    ) {
        if view <= self.view || from != self.active_leader_of(view) {
            return;
        }
        // Accept if we participated (sent or observed the view change).
        let votes = self.view_changes.get(&view).map_or(0, |m| m.len() as u32);
        if votes == 0 {
            return;
        }
        self.view = view;
        self.in_view_change = false;
        self.unordered_since = Some(now);
        self.stats.view_changes += 1;
        self.c_view_changes.inc();
        self.obs.journal(obs::Event::ViewChange {
            replica: self.id.0,
            view,
        });
        out.push(OutEvent::ViewChanged { view });
    }
}
