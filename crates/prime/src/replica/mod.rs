//! The Prime replica state machine.
//!
//! Transport-agnostic and fully deterministic: the owner injects client
//! updates ([`Replica::submit`]), peer messages ([`Replica::on_message`]),
//! and time ([`Replica::tick`]); the replica returns [`OutEvent`]s to act
//! on. In Spire the owner is a SCADA-master process that moves messages
//! over the internal Spines network; in tests it is [`crate::Cluster`].
//!
//! ## Simplifications relative to the C implementation (documented per
//! DESIGN.md)
//!
//! * Ordering is serialized: the leader proposes sequence `s+1` only after
//!   committing `s`. Prime's aggregation makes this cheap — one matrix
//!   orders every update accumulated since the last proposal — and it lets
//!   view changes carry a single prepared certificate instead of a window.
//! * Erasure-coded reconciliation is replaced by direct `PO-Fetch` /
//!   `PO-Data` retransmission.
//! * TAT measurement is simplified to a bound on *unordered eligible
//!   updates*: if this replica knows of pre-ordered updates that remain
//!   unordered past `suspect_timeout`, it suspects the leader. This keeps
//!   the property that matters (a delaying leader is replaced) without the
//!   RTT-estimation machinery.
//!
//! ## Incarnations
//!
//! Pre-order sequence numbers are *incarnation-tagged* composites
//! ([`po_compose`]): the high bits carry the origin's incarnation (bumped
//! on every proactive recovery, derived from the monotonic clock), the low
//! bits a per-incarnation counter. A recovered replica therefore never
//! collides with pre-order slots from its previous life, composite
//! ordering keeps ARU vectors monotone across recoveries, and peers reset
//! their per-origin contiguity tracking when they observe a new
//! incarnation.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use itcrypto::keys::{KeyPair, KeyRegistry};
use itcrypto::sha256::{sha256, Digest};
use simnet::time::{SimDuration, SimTime};
use simnet::wire::Wire;

use crate::application::Application;
use crate::byzantine::ByzMode;
use crate::messages::{AruRow, Envelope, PrimeMsg, SignedMsg};
use crate::types::{Config, Membership, ReplicaId, SignedUpdate, Update};
use itcrypto::verify_cache::VerifyCache;

mod batch;
mod log;
mod view;

pub use log::catchup_backoff;

/// Compact client duplicate-suppression table, one
/// `(client, contiguous_through, extras)` entry per client (see
/// [`PrimeMsg::CatchupDedup`]).
type DedupTable = Vec<(u32, u64, Vec<u64>)>;

/// Deterministic digest of a dedup table, folded into the catch-up offer
/// key so the f+1 matching rule covers the table.
fn dedup_digest(table: &[(u32, u64, Vec<u64>)]) -> Digest {
    let mut bytes = Vec::with_capacity(16 + table.len() * 24);
    bytes.extend_from_slice(&(table.len() as u64).to_be_bytes());
    for (client, through, extras) in table {
        bytes.extend_from_slice(&client.to_be_bytes());
        bytes.extend_from_slice(&through.to_be_bytes());
        bytes.extend_from_slice(&(extras.len() as u64).to_be_bytes());
        for e in extras {
            bytes.extend_from_slice(&e.to_be_bytes());
        }
    }
    sha256(&bytes)
}

/// Bits of a composite pre-order sequence reserved for the counter.
const PO_SEQ_BITS: u32 = 40;

/// Entries held by each replica's verification-verdict cache. Sized to
/// cover the working set of a busy window (rows from every peer across
/// several pre-prepare rounds plus in-flight client updates) while
/// keeping the worst case bounded.
const VERIFY_CACHE_CAP: usize = 4096;

/// Builds an incarnation-tagged pre-order sequence number.
pub fn po_compose(incarnation: u32, seq: u64) -> u64 {
    debug_assert!(seq < (1 << PO_SEQ_BITS));
    ((incarnation as u64) << PO_SEQ_BITS) | seq
}

/// Extracts the incarnation from a composite pre-order sequence.
pub fn po_incarnation(composite: u64) -> u32 {
    (composite >> PO_SEQ_BITS) as u32
}

/// Extracts the counter from a composite pre-order sequence.
pub fn po_counter(composite: u64) -> u64 {
    composite & ((1 << PO_SEQ_BITS) - 1)
}

/// Protocol timing knobs.
#[derive(Clone, Copy, Debug)]
pub struct Timing {
    /// How often PO-ARU vectors are gossiped.
    pub aru_interval: SimDuration,
    /// Leader's minimum spacing between pre-prepares.
    pub pp_interval: SimDuration,
    /// How long eligible updates may sit unordered before suspicion.
    pub suspect_timeout: SimDuration,
    /// Executions between checkpoints.
    pub checkpoint_interval: u64,
    /// How long an execution stall may last before catch-up.
    pub catchup_timeout: SimDuration,
}

impl Default for Timing {
    fn default() -> Self {
        Timing {
            aru_interval: SimDuration::from_millis(20),
            pp_interval: SimDuration::from_millis(30),
            suspect_timeout: SimDuration::from_millis(2_000),
            checkpoint_interval: 50,
            catchup_timeout: SimDuration::from_millis(500),
        }
    }
}

/// Events a replica asks its owner to act on.
#[derive(Clone, Debug)]
pub enum OutEvent {
    /// Send to every other replica. The envelope carries the wire bytes
    /// produced at signing time, so hosts fan out without re-encoding.
    Broadcast(Envelope),
    /// Send to one replica.
    Send(ReplicaId, Envelope),
    /// An update reached its global execution point.
    Execute {
        /// 1-based global execution sequence.
        exec_seq: u64,
        /// The update.
        update: Update,
        /// Causal-trace context of the execution (the instant
        /// `prime.execute` span), for the host to stamp on outgoing
        /// application messages. `None` for untraced updates.
        trace: Option<obs::TraceCtx>,
    },
    /// The replica moved to a new view.
    ViewChanged {
        /// The new view.
        view: u64,
    },
    /// The replication layer determined that application-level state
    /// transfer is required (§III-A signaling).
    StateTransferRequested,
    /// A peer snapshot was installed into the application.
    StateTransferInstalled {
        /// Executed count after installation.
        exec_seq: u64,
    },
    /// A checkpoint became stable (quorum of matching digests).
    CheckpointStable {
        /// Executed count at the checkpoint.
        exec_seq: u64,
    },
}

/// Counters for experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplicaStats {
    /// Updates introduced into pre-ordering by this replica.
    pub po_introduced: u64,
    /// Updates executed.
    pub executed: u64,
    /// Duplicate executions suppressed (same client seq via another origin).
    pub dup_suppressed: u64,
    /// Pre-prepares proposed (as leader).
    pub proposals: u64,
    /// Suspect messages sent.
    pub suspects_sent: u64,
    /// View changes completed.
    pub view_changes: u64,
    /// Catch-ups performed.
    pub catchups: u64,
    /// Catch-up requests retransmitted after an unanswered round.
    pub catchup_retransmits: u64,
    /// Messages rejected for bad signatures.
    pub bad_sigs: u64,
    /// Reconciliation fetches sent.
    pub fetches: u64,
    /// Pre-order batches closed and broadcast (batching on).
    pub batches_sent: u64,
    /// Pre-order batches accepted from peers (batching on).
    pub batches_accepted: u64,
}

/// One flight-recorder health snapshot, as computed by
/// [`Replica::health_sample`]. Field meanings match
/// [`obs::Event::ReplicaHealth`], which journals the same gauges.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HealthSample {
    /// Snapshotting replica id.
    pub replica: u32,
    /// Current view number.
    pub view: u64,
    /// Sum of per-origin pre-ordering ARU counters.
    pub aru: u64,
    /// PO-queue depth (received into pre-ordering, not yet executed).
    pub po_queue: u32,
    /// Ordering sequences proposed but not yet committed here.
    pub in_flight: u32,
    /// Age of the oldest known unordered update, microseconds.
    pub tat_us: u64,
    /// Whether a catch-up (state transfer) is in progress.
    pub catching_up: bool,
}

/// Per-view votes: sender → (max committed, prepared seq, prepared view,
/// prepared matrix).
type ViewChangeVotes = BTreeMap<u32, (u64, u64, u64, Vec<AruRow>)>;

/// Catch-up offer groups, keyed by (exec_seq, app digest, dedup-table
/// digest): offering senders, the offer, and its dedup table.
type CatchupOffers = BTreeMap<(u64, Digest, Digest), (BTreeSet<u32>, PrimeMsg, DedupTable)>;

/// One voter's in-flight prepared certificates from a
/// `ViewChangeWindow`: (seq, view, prepared matrix) per slot.
type CertWindow = Vec<(u64, u64, Vec<AruRow>)>;

/// Chunked catch-up reassembly state: (exec_seq, chunk count,
/// index → chunk data).
type ChunkReassembly = (u64, u32, BTreeMap<u32, Vec<u8>>);

/// One Prime replica hosting an application.
pub struct Replica<A: Application> {
    id: ReplicaId,
    config: Config,
    registry: KeyRegistry,
    key: KeyPair,
    /// Memoized signature-verification verdicts (bounded, FIFO).
    verify_cache: VerifyCache,
    /// Fault-injection mode.
    pub byz: ByzMode,
    timing: Timing,

    view: u64,
    in_view_change: bool,
    vc_target: u64,
    /// When our view-change vote for `vc_target` last went out, so a
    /// vote lost to a partition is retransmitted instead of deadlocking
    /// the view change (see `tick`).
    last_vc_broadcast_at: SimTime,

    /// Restricted membership epoch, installed by the management plane
    /// after a site loss leaves the survivors without the static quorum
    /// (`None` = the full static configuration; the legacy single-site
    /// path never sets it). See [`Membership`].
    membership: Option<Membership>,

    // Pre-ordering.
    incarnation: u32,
    next_po_seq: u64,
    po_store: BTreeMap<(u32, u64), SignedUpdate>,
    /// Original signed PoRequest envelopes (served on PoFetch).
    po_envelopes: BTreeMap<(u32, u64), SignedMsg>,
    intro_seen: BTreeSet<(u32, u64)>,
    /// Highest incarnation observed per origin.
    origin_inc: Vec<u32>,
    /// Contiguously received counter within each origin's incarnation.
    aru_counter: Vec<u64>,
    my_aru: Vec<u64>,
    latest_rows: BTreeMap<u32, AruRow>,
    last_gossiped_aru: Vec<u64>,
    last_aru_at: SimTime,

    // Ordering.
    last_pp_at: SimTime,
    /// seq → (view, matrix, digest) for the active proposal.
    pre_prepares: BTreeMap<u64, (u64, Vec<AruRow>, Digest)>,
    prepares: BTreeMap<(u64, u64, Digest), BTreeSet<u32>>,
    commits: BTreeMap<(u64, u64, Digest), BTreeSet<u32>>,
    sent_prepare: BTreeSet<(u64, u64)>,
    sent_commit: BTreeSet<(u64, u64)>,
    committed: BTreeMap<u64, Vec<AruRow>>,
    max_committed: u64,
    /// The prepared-but-uncommitted certificate (seq, view, matrix).
    prepared_cert: Option<(u64, u64, Vec<AruRow>)>,

    // Execution.
    planned_through: u64,
    plan_cover: Vec<u64>,
    exec_plan: VecDeque<(u32, u64)>,
    exec_seq: u64,
    executed_clients: BTreeMap<u32, BTreeSet<u64>>,
    stall_since: Option<SimTime>,
    last_fetch_at: SimTime,

    // Suspicion.
    unordered_since: Option<SimTime>,
    suspects: BTreeMap<u64, BTreeSet<u32>>,
    sent_suspect: BTreeSet<u64>,

    // View change.
    view_changes: BTreeMap<u64, ViewChangeVotes>,

    // Checkpoints.
    last_checkpoint_at_exec: u64,
    checkpoint_votes: BTreeMap<(u64, Digest), BTreeSet<u32>>,
    stable_checkpoint: u64,

    // Batched pre-ordering (armed by `Config::batch_max > 0`; empty and
    // inert otherwise so the legacy per-update path is byte-identical).
    /// Locally introduced updates whose dissemination is deferred until
    /// the batch closes, with the po_seq assigned at submit time.
    batch_pending: Vec<(u64, SignedUpdate)>,
    /// When the previous batch closed: the rate-limiter reference point
    /// for the `batch_delay` close trigger.
    last_batch_at: SimTime,
    /// Signed batches originated here or accepted from peers, keyed by
    /// (origin, first_po_seq) — the reconciliation source for
    /// `PoBatchMember` replies to `PoFetch`.
    po_batches: BTreeMap<(u32, u64), crate::messages::PoBatch>,

    // Pipelined sequencing (armed by `Config::pipeline > 1`).
    /// All prepared-but-uncommitted certificates, seq → (view, matrix).
    /// Maintained alongside the legacy single `prepared_cert` so the
    /// pipeline-off wire behavior stays byte-identical.
    prepared_certs: BTreeMap<u64, (u64, Vec<AruRow>)>,
    /// Certificate windows received in `ViewChangeWindow` votes:
    /// new_view → voter → certs.
    vc_windows: BTreeMap<u64, BTreeMap<u32, CertWindow>>,

    // Chunked catch-up (armed by the *sender's* `Config::transfer_chunk`).
    /// Reassembly buffers keyed by sender: (exec_seq, chunk count,
    /// index → data).
    catchup_chunks: BTreeMap<u32, ChunkReassembly>,

    // Catch-up.
    catching_up: bool,
    catchup_started: SimTime,
    catchup_attempts: u32,
    // Keyed by (exec_seq, app digest, dedup-table digest): the f+1
    // matching-offer rule covers the dedup table too, so a lone faulty
    // replica cannot poison the duplicate-suppression state.
    catchup_offers: CatchupOffers,
    // Per-sender dedup tables received via `CatchupDedup`, paired with
    // the `CatchupReply` that follows from the same sender.
    catchup_dedup: BTreeMap<u32, (u64, DedupTable)>,

    app: A,
    /// Counters.
    pub stats: ReplicaStats,

    // Observability: hub for journal records (detached until
    // `attach_obs`) plus cached registry counter handles. `health_ticks`
    // counts protocol ticks for the flight recorder's snapshot cadence.
    obs: obs::ObsHub,
    health_ticks: u64,
    c_view_changes: obs::Counter,
    c_executed: obs::Counter,
    c_suspects_sent: obs::Counter,

    // Causal tracing: the context the host set before `submit`, the
    // pre-ordering ("queue") span per in-flight traced update (keyed
    // like `intro_seen`), and the latest ordering-phase span per
    // global sequence.
    incoming_trace: Option<obs::TraceCtx>,
    trace_queue: BTreeMap<(u32, u64), obs::TraceCtx>,
    trace_phase: BTreeMap<u64, obs::TraceCtx>,
}

fn prime_counters(hub: &obs::ObsHub, id: ReplicaId) -> [obs::Counter; 3] {
    [
        hub.counter(&format!("prime.r{}.view_changes", id.0)),
        hub.counter(&format!("prime.r{}.executed", id.0)),
        hub.counter(&format!("prime.r{}.suspects_sent", id.0)),
    ]
}

impl<A: Application> Replica<A> {
    /// Creates replica `id` with its signing key, the shared registry, and
    /// the hosted application.
    pub fn new(id: ReplicaId, config: Config, key: KeyPair, registry: KeyRegistry, app: A) -> Self {
        let n = config.n() as usize;
        let hub = obs::ObsHub::new();
        let [view_changes, executed, suspects_sent] = prime_counters(&hub, id);
        Replica {
            id,
            config,
            registry,
            key,
            verify_cache: VerifyCache::new(VERIFY_CACHE_CAP),
            byz: ByzMode::Correct,
            timing: Timing::default(),
            view: 0,
            in_view_change: false,
            vc_target: 0,
            last_vc_broadcast_at: SimTime::ZERO,
            membership: None,
            incarnation: 0,
            next_po_seq: 1,
            po_store: BTreeMap::new(),
            po_envelopes: BTreeMap::new(),
            intro_seen: BTreeSet::new(),
            origin_inc: vec![0; n],
            aru_counter: vec![0; n],
            my_aru: vec![0; n],
            latest_rows: BTreeMap::new(),
            last_gossiped_aru: vec![0; n],
            last_aru_at: SimTime::ZERO,
            last_pp_at: SimTime::ZERO,
            pre_prepares: BTreeMap::new(),
            prepares: BTreeMap::new(),
            commits: BTreeMap::new(),
            sent_prepare: BTreeSet::new(),
            sent_commit: BTreeSet::new(),
            committed: BTreeMap::new(),
            max_committed: 0,
            prepared_cert: None,
            planned_through: 0,
            plan_cover: vec![0; n],
            exec_plan: VecDeque::new(),
            exec_seq: 0,
            executed_clients: BTreeMap::new(),
            stall_since: None,
            last_fetch_at: SimTime::ZERO,
            unordered_since: None,
            suspects: BTreeMap::new(),
            sent_suspect: BTreeSet::new(),
            view_changes: BTreeMap::new(),
            last_checkpoint_at_exec: 0,
            checkpoint_votes: BTreeMap::new(),
            stable_checkpoint: 0,
            batch_pending: Vec::new(),
            last_batch_at: SimTime::ZERO,
            po_batches: BTreeMap::new(),
            prepared_certs: BTreeMap::new(),
            vc_windows: BTreeMap::new(),
            catchup_chunks: BTreeMap::new(),
            catching_up: false,
            catchup_started: SimTime::ZERO,
            catchup_attempts: 0,
            catchup_offers: BTreeMap::new(),
            catchup_dedup: BTreeMap::new(),
            app,
            stats: ReplicaStats::default(),
            obs: hub.clone(),
            health_ticks: 0,
            c_view_changes: view_changes,
            c_executed: executed,
            c_suspects_sent: suspects_sent,
            incoming_trace: None,
            trace_queue: BTreeMap::new(),
            trace_phase: BTreeMap::new(),
        }
    }

    /// Sets the causal-trace context for the next [`Replica::submit`]
    /// call — the hosting process's ambient context for the packet
    /// that carried the update. Consumed by `submit`.
    pub fn set_incoming_trace(&mut self, trace: Option<obs::TraceCtx>) {
        self.incoming_trace = trace;
    }

    /// Redirects this replica's metrics and journal records to a shared
    /// deployment hub. Accumulated counts carry over.
    pub fn attach_obs(&mut self, hub: &obs::ObsHub) {
        let [view_changes, executed, suspects_sent] = prime_counters(hub, self.id);
        view_changes.add(self.c_view_changes.get());
        executed.add(self.c_executed.get());
        suspects_sent.add(self.c_suspects_sent.get());
        self.obs = hub.clone();
        self.c_view_changes = view_changes;
        self.c_executed = executed;
        self.c_suspects_sent = suspects_sent;
    }

    /// Overrides protocol timing (tests tighten timeouts).
    pub fn set_timing(&mut self, timing: Timing) {
        self.timing = timing;
    }

    /// This replica's id.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// The current view.
    pub fn view(&self) -> u64 {
        self.view
    }

    /// Whether this replica currently leads.
    pub fn is_leader(&self) -> bool {
        self.active_leader_of(self.view) == self.id
    }

    /// The active membership epoch, if a degraded one is installed.
    pub fn membership(&self) -> Option<&Membership> {
        self.membership.as_ref()
    }

    /// Installs a restricted membership epoch (wide-area site failover).
    ///
    /// Only thresholds, leader rotation, and the peer filter change;
    /// no view is forced and no ordering state is discarded. A committed
    /// sequence is either already committed by a survivor or covered by a
    /// surviving prepared certificate (commit quorum and survivor majority
    /// intersect), so the ordinary suspicion → view-change machinery,
    /// now running under the epoch's thresholds, re-establishes a live
    /// leader without forking history. Vote state from non-members is
    /// pruned so epoch thresholds count only epoch members.
    pub fn set_membership(&mut self, m: Membership, now: SimTime) {
        debug_assert!(m.contains(self.id), "epoch must include this replica");
        for set in self.suspects.values_mut() {
            set.retain(|id| m.contains(ReplicaId(*id)));
        }
        for votes in self.view_changes.values_mut() {
            votes.retain(|id, _| m.contains(ReplicaId(*id)));
        }
        for votes in self.checkpoint_votes.values_mut() {
            votes.retain(|id| m.contains(ReplicaId(*id)));
        }
        self.membership = Some(m);
        // Anything still unordered must now make progress under the
        // epoch; (re)arm the suspicion clock from the failover instant.
        self.unordered_since = None;
        self.note_unordered(now);
    }

    /// Removes the restricted epoch: the full static configuration's
    /// thresholds and leader rotation apply again (site heal / failback).
    pub fn clear_membership(&mut self) {
        self.membership = None;
    }

    /// Leader of `view` under the active membership.
    fn active_leader_of(&self, view: u64) -> ReplicaId {
        match &self.membership {
            Some(m) => m.leader_of(view),
            None => self.config.leader_of(view),
        }
    }

    /// Prepare/commit/install quorum under the active membership.
    fn active_ordering_quorum(&self) -> u32 {
        match &self.membership {
            Some(m) => m.ordering_quorum(),
            None => self.config.ordering_quorum(),
        }
    }

    /// Leader-suspicion threshold under the active membership.
    fn active_suspect_threshold(&self) -> u32 {
        match &self.membership {
            Some(m) => m.suspect_threshold(),
            None => self.config.suspect_threshold(),
        }
    }

    /// Intrusion budget under the active membership (join and catch-up
    /// `f + 1` rules).
    fn active_f(&self) -> u32 {
        match &self.membership {
            Some(m) => m.f,
            None => self.config.f,
        }
    }

    /// Whether a peer participates in the active membership.
    fn is_active_member(&self, id: ReplicaId) -> bool {
        match &self.membership {
            Some(m) => m.contains(id),
            None => true,
        }
    }

    /// Executed update count.
    pub fn exec_seq(&self) -> u64 {
        self.exec_seq
    }

    /// Whether a catch-up (state transfer) is in progress.
    pub fn is_catching_up(&self) -> bool {
        self.catching_up
    }

    /// The hosted application.
    pub fn app(&self) -> &A {
        &self.app
    }

    /// Mutable application access (used by SCADA ground-truth rebuild).
    pub fn app_mut(&mut self) -> &mut A {
        &mut self.app
    }

    fn sign(&mut self, msg: PrimeMsg) -> Envelope {
        obs::prof::charge_crypto(msg.prof_stack(), obs::prof::CryptoOp::Sign, 1);
        Envelope::sign(self.id, msg, &mut self.key)
    }

    fn matrix_digest(matrix: &[AruRow]) -> Digest {
        let mut w = simnet::wire::Writer::new();
        for row in matrix {
            row.encode(&mut w);
        }
        sha256(&w.finish())
    }

    /// Injects a client update received from the external network.
    pub fn submit(&mut self, update: SignedUpdate, now: SimTime) -> Vec<OutEvent> {
        if obs::prof::enabled() {
            // Attribute the real (cache-missing) signature verifications
            // this submission triggers to the pre-ordering intro path.
            let miss0 = self.verify_cache.misses;
            let out = self.submit_inner(update, now);
            obs::prof::charge_crypto(
                "prime;preorder;po_request",
                obs::prof::CryptoOp::Verify,
                self.verify_cache.misses - miss0,
            );
            return out;
        }
        self.submit_inner(update, now)
    }

    fn submit_inner(&mut self, update: SignedUpdate, now: SimTime) -> Vec<OutEvent> {
        let mut out = Vec::new();
        // Always consume the pending context so it cannot leak onto an
        // unrelated later submission.
        let intro_trace = self.incoming_trace.take();
        if self.byz.is_crashed() {
            return out;
        }
        if !update.verify_cached(&self.registry, &mut self.verify_cache) {
            self.stats.bad_sigs += 1;
            return out;
        }
        let ckey = (update.update.client, update.update.client_seq);
        if self.intro_seen.contains(&ckey) || self.already_executed(ckey.0, ckey.1) {
            return out;
        }
        self.intro_seen.insert(ckey);
        // Pre-ordering span: open until this update executes here.
        if let Some(q) = self
            .obs
            .start_span(intro_trace, obs::Stage::PrimeQueue, self.id.0)
        {
            self.trace_queue.insert(ckey, q);
        }
        let po_seq = po_compose(self.incarnation, self.next_po_seq);
        self.next_po_seq += 1;
        self.stats.po_introduced += 1;
        self.po_store.insert((self.id.0, po_seq), update.clone());
        if self.config.batch_max > 0 {
            // Batched dissemination: the slot is pre-ordered (stored and
            // counted in our ARU) immediately — only the broadcast is
            // deferred until the batch closes. Coverage still requires
            // f+k+1 replicas to hold the update, so a batch lost with a
            // crashed origin simply never reaches coverage.
            self.batch_pending.push((po_seq, update));
            if self.batch_pending.len() as u32 >= self.config.batch_max
                || now.since(self.last_batch_at) >= self.config.batch_delay
            {
                self.flush_batch(now, &mut out);
            }
        } else {
            let msg = self.sign(PrimeMsg::PoRequest {
                origin: self.id,
                po_seq,
                update,
            });
            self.po_envelopes
                .insert((self.id.0, po_seq), msg.msg.clone());
            out.push(OutEvent::Broadcast(msg));
        }
        self.advance_my_aru();
        self.note_unordered(now);
        out
    }

    fn already_executed(&self, client: u32, client_seq: u64) -> bool {
        self.executed_clients
            .get(&client)
            .is_some_and(|s| s.contains(&client_seq))
    }

    /// Compact encoding of `executed_clients` for state transfer: per
    /// client, the largest `through` with `1..=through` all executed plus
    /// the sparse executed seqs above it. The table travels with the
    /// snapshot so a recovered replica suppresses exactly the duplicate
    /// orderings its peers suppressed — otherwise its execution numbering
    /// and application digest fork from the quorum's.
    fn dedup_table(&self) -> Vec<(u32, u64, Vec<u64>)> {
        self.executed_clients
            .iter()
            .map(|(client, set)| {
                let mut through = 0u64;
                while set.contains(&(through + 1)) {
                    through += 1;
                }
                let extras: Vec<u64> = set.range(through + 1..).copied().collect();
                (*client, through, extras)
            })
            .collect()
    }

    /// Rebuilds `executed_clients` from a transferred [`Self::dedup_table`].
    fn install_dedup_table(&mut self, table: &[(u32, u64, Vec<u64>)]) {
        self.executed_clients = table
            .iter()
            .map(|(client, through, extras)| {
                let mut set: BTreeSet<u64> = (1..=*through).collect();
                set.extend(extras.iter().copied());
                (*client, set)
            })
            .collect();
    }

    fn advance_my_aru(&mut self) {
        // Our own slot always tracks our current incarnation.
        self.origin_inc[self.id.0 as usize] = self.incarnation;
        for origin in 0..self.config.n() as usize {
            let inc = self.origin_inc[origin];
            if po_incarnation(self.my_aru[origin]) != inc {
                self.aru_counter[origin] = 0;
            }
            let mut counter = self.aru_counter[origin];
            while self
                .po_store
                .contains_key(&(origin as u32, po_compose(inc, counter + 1)))
            {
                counter += 1;
            }
            self.aru_counter[origin] = counter;
            // Composite ordering keeps the vector monotone across
            // incarnation bumps (higher incarnation dominates).
            self.my_aru[origin] = self.my_aru[origin].max(po_compose(inc, counter));
        }
    }

    /// Handles a signed peer message.
    pub fn on_message(&mut self, msg: SignedMsg, now: SimTime) -> Vec<OutEvent> {
        if obs::prof::enabled() {
            // Every real verification this message triggers — its own
            // envelope plus any matrix rows or nested updates checked
            // while handling it — lands on the message's phase stack.
            // Cache hits are free and are deliberately not charged.
            let stack = msg.msg.prof_stack();
            let miss0 = self.verify_cache.misses;
            let out = self.on_message_inner(msg, now);
            obs::prof::charge_crypto(
                stack,
                obs::prof::CryptoOp::Verify,
                self.verify_cache.misses - miss0,
            );
            return out;
        }
        self.on_message_inner(msg, now)
    }

    fn on_message_inner(&mut self, msg: SignedMsg, now: SimTime) -> Vec<OutEvent> {
        let mut out = Vec::new();
        if self.byz.is_crashed() {
            return out;
        }
        if msg.from == self.id || msg.from.0 >= self.config.n() {
            return out;
        }
        // During a restricted epoch, peers outside the membership are on
        // the severed side of the site partition: their (stale) protocol
        // messages must not count toward the epoch's reduced thresholds.
        if !self.is_active_member(msg.from) {
            return out;
        }
        if !msg.verify_cached(&self.registry, &mut self.verify_cache) {
            self.stats.bad_sigs += 1;
            return out;
        }
        let from = msg.from;
        let sig = msg.sig;
        // Dispatch by move: only PoRequest needs the envelope again (it is
        // stored for reconciliation replays), and it is rebuilt from the
        // moved-out fields — no other variant pays a deep clone.
        match msg.msg {
            PrimeMsg::PoRequest {
                origin,
                po_seq,
                update,
            } => {
                let envelope = SignedMsg {
                    from,
                    msg: PrimeMsg::PoRequest {
                        origin,
                        po_seq,
                        update: update.clone(),
                    },
                    sig,
                };
                self.accept_po_request(envelope, from, origin, po_seq, update, now, &mut out);
            }
            PrimeMsg::PoAru { row } => {
                self.on_po_aru(row, &mut out);
            }
            PrimeMsg::PrePrepare { view, seq, matrix } => {
                self.on_pre_prepare(from, view, seq, matrix, now, &mut out);
            }
            PrimeMsg::Prepare { view, seq, digest } => {
                self.on_prepare(from, view, seq, digest, now, &mut out);
            }
            PrimeMsg::Commit { view, seq, digest } => {
                self.on_commit(from, view, seq, digest, now, &mut out);
            }
            PrimeMsg::PoFetch { origin, po_seq } => {
                if let Some(envelope) = self.po_envelopes.get(&(origin.0, po_seq)) {
                    let original = envelope.to_wire().to_vec();
                    let reply = self.sign(PrimeMsg::PoData { original });
                    out.push(OutEvent::Send(from, reply));
                } else if let Some(reply) = self.batch_member_reply(origin, po_seq) {
                    out.push(OutEvent::Send(from, reply));
                }
            }
            PrimeMsg::PoData { original } => {
                self.on_po_data(&original, now, &mut out);
            }
            PrimeMsg::SuspectLeader { view } => {
                self.on_suspect(from, view, now, &mut out);
            }
            PrimeMsg::ViewChange {
                new_view,
                max_committed,
                prepared_seq,
                prepared_view,
                prepared_matrix,
            } => {
                self.on_view_change(
                    from,
                    new_view,
                    max_committed,
                    prepared_seq,
                    prepared_view,
                    prepared_matrix,
                    now,
                    &mut out,
                );
            }
            PrimeMsg::NewView { view, start_seq } => {
                self.on_new_view(from, view, start_seq, now, &mut out);
            }
            PrimeMsg::Checkpoint {
                exec_seq,
                app_digest,
            } => {
                self.on_checkpoint(from, exec_seq, app_digest, now, &mut out);
            }
            PrimeMsg::CatchupRequest { have_exec_seq } => {
                if self.exec_seq > have_exec_seq {
                    // The companion dedup table travels first so the
                    // receiver can pair it with the reply behind it.
                    if self.config.transfer_dedup {
                        let table = self.sign(PrimeMsg::CatchupDedup {
                            exec_seq: self.exec_seq,
                            dedup: self.dedup_table(),
                        });
                        out.push(OutEvent::Send(from, table));
                    }
                    // With chunking armed the snapshot travels as
                    // `CatchupChunk` messages ahead of the reply (whose
                    // own snapshot is left empty as the splice marker),
                    // so one large transfer does not occupy the NIC lane
                    // in a single burst that stalls the ordering pipeline.
                    let full = self.app.snapshot();
                    let chunk = self.config.transfer_chunk as usize;
                    let snapshot = if chunk > 0 && !full.is_empty() {
                        let count = full.len().div_ceil(chunk) as u32;
                        for (index, part) in full.chunks(chunk).enumerate() {
                            let m = self.sign(PrimeMsg::CatchupChunk {
                                exec_seq: self.exec_seq,
                                index: index as u32,
                                count,
                                data: part.to_vec(),
                            });
                            out.push(OutEvent::Send(from, m));
                        }
                        Vec::new()
                    } else {
                        full
                    };
                    let reply = PrimeMsg::CatchupReply {
                        exec_seq: self.exec_seq,
                        app_digest: self.app.digest(),
                        snapshot,
                        next_order_seq: self.planned_through + 1,
                        exec_cover: self.plan_cover.clone(),
                        view: self.view,
                    };
                    let reply = self.sign(reply);
                    out.push(OutEvent::Send(from, reply));
                }
            }
            PrimeMsg::CatchupReply {
                exec_seq,
                app_digest,
                snapshot,
                next_order_seq,
                exec_cover,
                view,
            } => {
                self.on_catchup_reply(
                    from,
                    exec_seq,
                    app_digest,
                    snapshot,
                    next_order_seq,
                    exec_cover,
                    view,
                    &mut out,
                );
            }
            PrimeMsg::CatchupDedup { exec_seq, dedup } => {
                if self.catching_up {
                    self.catchup_dedup.insert(from.0, (exec_seq, dedup));
                }
            }
            PrimeMsg::PoRequestBatch { batch } => {
                self.accept_po_batch(from, batch, now, &mut out);
            }
            PrimeMsg::PoBatchMember {
                origin,
                first_po_seq,
                count,
                index,
                update,
                path,
                root_sig,
            } => {
                self.accept_po_batch_member(
                    origin,
                    first_po_seq,
                    count,
                    index,
                    update,
                    path,
                    &root_sig,
                    now,
                    &mut out,
                );
            }
            PrimeMsg::ViewChangeWindow {
                new_view,
                max_committed,
                certs,
            } => {
                self.on_view_change_window(from, new_view, max_committed, certs, now, &mut out);
            }
            PrimeMsg::CatchupChunk {
                exec_seq,
                index,
                count,
                data,
            } => {
                self.on_catchup_chunk(from, exec_seq, index, count, data);
            }
        }
        out
    }

    /// Periodic driver: gossip PO-ARUs, propose as leader, check timeouts.
    pub fn tick(&mut self, now: SimTime) -> Vec<OutEvent> {
        let mut out = Vec::new();
        if self.byz.is_crashed() {
            return out;
        }
        // Flight recorder: journal a health snapshot every N ticks when
        // the cadence is armed (off by default, so historical digests
        // are untouched; deterministic and pinnable when on).
        let health_every = obs::prof::health_every();
        if health_every > 0 {
            self.health_ticks += 1;
            if self.health_ticks.is_multiple_of(health_every) {
                self.journal_health(now);
            }
        }
        // Close a stale batch: end-of-burst stragglers must not wait for
        // the next submission to trigger the rate-limiter.
        if self.config.batch_max > 0
            && !self.batch_pending.is_empty()
            && now.since(self.last_batch_at) >= self.config.batch_delay
        {
            self.flush_batch(now, &mut out);
        }
        // Gossip PO-ARU when it changed or periodically.
        if (self.my_aru != self.last_gossiped_aru
            || now.since(self.last_aru_at) >= self.timing.aru_interval.saturating_mul(5))
            && now.since(self.last_aru_at) >= self.timing.aru_interval
        {
            self.last_aru_at = now;
            self.last_gossiped_aru = self.my_aru.clone();
            let vector = self.my_aru.clone();
            obs::prof::charge_crypto("prime;preorder;po_aru", obs::prof::CryptoOp::Sign, 1);
            let sig = self.key.sign(&AruRow::signed_bytes(self.id, &vector));
            let row = AruRow {
                replica: self.id,
                vector,
                sig,
            };
            // Install our own row for our own proposals.
            self.latest_rows.insert(self.id.0, row.clone());
            let msg = self.sign(PrimeMsg::PoAru { row });
            out.push(OutEvent::Broadcast(msg));
        }
        // Leader proposal.
        if self.is_leader() && !self.in_view_change && !self.catching_up {
            self.maybe_propose(now, &mut out);
        }
        // Suspicion.
        self.note_unordered(now);
        if let Some(since) = self.unordered_since {
            if now.since(since) >= self.effective_suspect_timeout()
                && !self.sent_suspect.contains(&self.view)
                && !self.in_view_change
            {
                self.sent_suspect.insert(self.view);
                self.stats.suspects_sent += 1;
                self.c_suspects_sent.inc();
                let view = self.view;
                let msg = self.sign(PrimeMsg::SuspectLeader { view });
                out.push(OutEvent::Broadcast(msg));
                // Count ourselves.
                let count = self.suspects.entry(view).or_default().len() as u32 + 1;
                if count >= self.active_suspect_threshold() {
                    self.start_view_change(view + 1, now, &mut out);
                }
            }
        }
        // A view change that cannot complete (votes lost to a partition
        // that has since healed) must not deadlock: retransmit our vote
        // until the view installs or a higher target supersedes it.
        if self.in_view_change
            && now.since(self.last_vc_broadcast_at) >= self.effective_suspect_timeout()
        {
            self.last_vc_broadcast_at = now;
            let target = self.vc_target;
            if let Some((max_committed, prepared_seq, prepared_view, matrix)) = self
                .view_changes
                .get(&target)
                .and_then(|votes| votes.get(&self.id.0))
                .cloned()
            {
                if self.config.pipeline > 1 {
                    let certs = self
                        .vc_windows
                        .get(&target)
                        .and_then(|w| w.get(&self.id.0))
                        .cloned()
                        .unwrap_or_default();
                    let vc = self.sign(PrimeMsg::ViewChangeWindow {
                        new_view: target,
                        max_committed,
                        certs,
                    });
                    out.push(OutEvent::Broadcast(vc));
                } else {
                    let vc = self.sign(PrimeMsg::ViewChange {
                        new_view: target,
                        max_committed,
                        prepared_seq,
                        prepared_view,
                        prepared_matrix: matrix,
                    });
                    out.push(OutEvent::Broadcast(vc));
                }
            }
        }
        // A committed-sequence gap is also a stall (see check_committed).
        if self.max_committed > self.planned_through {
            self.stall_since.get_or_insert(now);
        }
        // Retry catch-up: peers keep executing, so offers keyed on their
        // exact (exec_seq, digest) may never collect f+1 matches in one
        // round — and under message loss a whole request/reply round can
        // vanish. Re-request on an exponential backoff (first retry after
        // one plain timeout, then doubling) until a consistent snapshot
        // group forms or the attempt budget runs out.
        if self.catching_up
            && now.since(self.catchup_started)
                >= catchup_backoff(self.timing.catchup_timeout, self.catchup_attempts)
        {
            self.catchup_attempts += 1;
            if self.catchup_attempts > 10 {
                // Not enough intact peers to form an f+1 snapshot group —
                // an assumption breach. Give up and resume participation;
                // the application layer recovers ground truth from the
                // field devices (§III-A), and a later stall re-triggers
                // catch-up if peers regain consistent state.
                self.catching_up = false;
                self.stall_since = None;
            } else {
                self.stats.catchup_retransmits += 1;
                self.catchup_started = now;
                self.catchup_offers.clear();
                self.catchup_dedup.clear();
                self.catchup_chunks.clear();
                let req = self.sign(PrimeMsg::CatchupRequest {
                    have_exec_seq: self.exec_seq,
                });
                out.push(OutEvent::Broadcast(req));
            }
        }
        // Execution stall → reconciliation retry / catch-up.
        if let Some(stall) = self.stall_since {
            if now.since(stall) >= self.timing.catchup_timeout {
                self.stall_since = Some(now);
                self.request_catchup(now, &mut out);
            } else {
                self.try_execute(now, &mut out);
            }
        }
        out
    }

    /// Computes the flight-recorder health gauges from pure replica
    /// state. Public so a live consumer (the response controller) can
    /// probe the same gauges the journal records, without journal parsing
    /// and regardless of whether periodic snapshots are armed.
    pub fn health_sample(&self, now: SimTime) -> HealthSample {
        // PO-queue depth: the planned backlog plus eligible pre-ordered
        // updates whose delivery is still outstanding. Eligibility uses
        // the composed aru/cover comparison (matching
        // `has_unordered_eligible`), and slots whose update already
        // executed via another origin's pre-ordering are excluded — a
        // lossy window can leave such duplicate slots uncoverable
        // forever, but they are residue, not backlog, and the gauge an
        // operator watches must drain once the system has recovered.
        let mut po_queue = self.exec_plan.len() as u64;
        for (origin, (&a, &c)) in self.my_aru.iter().zip(self.plan_cover.iter()).enumerate() {
            if a <= c {
                continue;
            }
            let inc = po_incarnation(a);
            let start = if inc == po_incarnation(c) {
                po_counter(c) + 1
            } else {
                1
            };
            for counter in start..=po_counter(a) {
                let pending = match self
                    .po_store
                    .get(&(origin as u32, po_compose(inc, counter)))
                {
                    Some(signed) => !self
                        .executed_clients
                        .get(&signed.update.client)
                        .is_some_and(|set| set.contains(&signed.update.client_seq)),
                    // A hole we would have to fetch is outstanding work.
                    None => true,
                };
                if pending {
                    po_queue += 1;
                }
            }
        }
        let in_flight = self.pre_prepares.range(self.max_committed + 1..).count();
        let tat_us = self
            .unordered_since
            .map_or(0, |since| now.since(since).as_micros());
        HealthSample {
            replica: self.id.0,
            view: self.view,
            aru: self.my_aru.iter().map(|&v| po_counter(v)).sum(),
            po_queue: po_queue.min(u32::MAX as u64) as u32,
            in_flight: in_flight.min(u32::MAX as usize) as u32,
            tat_us,
            catching_up: self.catching_up,
        }
    }

    /// Journals one [`obs::Event::ReplicaHealth`] flight-recorder record:
    /// every gauge is pure replica state read at a deterministic tick, so
    /// snapshot-enabled runs digest deterministically per seed.
    fn journal_health(&mut self, now: SimTime) {
        let s = self.health_sample(now);
        self.obs.journal(obs::Event::ReplicaHealth {
            replica: s.replica,
            view: s.view,
            aru: s.aru,
            po_queue: s.po_queue,
            in_flight: s.in_flight,
            tat_us: s.tat_us,
            catching_up: s.catching_up,
        });
    }

    fn effective_suspect_timeout(&self) -> SimDuration {
        self.timing.suspect_timeout
    }

    /// Proactive recovery: wipe all state (the replica restarts from a
    /// clean, rediversified image) and rejoin via state transfer. The
    /// membership epoch, being management-plane configuration rather
    /// than protocol state, survives the wipe.
    pub fn recover(&mut self, now: SimTime) -> Vec<OutEvent> {
        let n = self.config.n() as usize;
        // A fresh incarnation strictly above the previous one: derived
        // from the monotonic clock (milliseconds), so no pre-order slot
        // from the previous life can ever be reused.
        self.incarnation = ((now.as_micros() / 1_000) as u32).max(self.incarnation + 1);
        self.next_po_seq = 1;
        self.po_store.clear();
        self.po_envelopes.clear();
        self.intro_seen.clear();
        self.incoming_trace = None;
        self.trace_queue.clear();
        self.trace_phase.clear();
        self.origin_inc = vec![0; n];
        self.aru_counter = vec![0; n];
        self.my_aru = vec![0; n];
        self.latest_rows.clear();
        self.last_gossiped_aru = vec![0; n];
        self.pre_prepares.clear();
        self.prepares.clear();
        self.commits.clear();
        self.sent_prepare.clear();
        self.sent_commit.clear();
        self.committed.clear();
        self.max_committed = 0;
        self.prepared_cert = None;
        self.batch_pending.clear();
        self.last_batch_at = SimTime::ZERO;
        self.po_batches.clear();
        self.prepared_certs.clear();
        self.vc_windows.clear();
        self.catchup_chunks.clear();
        self.planned_through = 0;
        self.plan_cover = vec![0; n];
        self.exec_plan.clear();
        self.exec_seq = 0;
        self.executed_clients.clear();
        self.stall_since = None;
        self.unordered_since = None;
        self.suspects.clear();
        self.sent_suspect.clear();
        self.view_changes.clear();
        self.view = 0;
        self.in_view_change = false;
        self.last_checkpoint_at_exec = 0;
        self.checkpoint_votes.clear();
        self.stable_checkpoint = 0;
        self.catching_up = false;
        self.catchup_offers.clear();
        self.catchup_dedup.clear();
        self.app.install_snapshot(&[]);
        let mut out = Vec::new();
        self.request_catchup(now, &mut out);
        out
    }
}

impl<A: Application> std::fmt::Debug for Replica<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replica")
            .field("id", &self.id)
            .field("view", &self.view)
            .field("exec_seq", &self.exec_seq)
            .field("max_committed", &self.max_committed)
            .field("stats", &self.stats)
            .finish()
    }
}
