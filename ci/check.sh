#!/usr/bin/env bash
# Repository gate: formatting, lints, and the full test suite.
# Run from the repository root; exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (warnings denied)"
# Gate our own crates only; vendored/* are third-party code.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace \
    --exclude bytes --exclude criterion --exclude proptest --exclude rand

echo "==> cargo test --workspace"
cargo test -q --workspace

echo "==> trace determinism"
cargo test -q --test observability e5_same_seed_yields_identical_span_trees_and_digest

echo "==> bench smoke (one E11 ramp step + golden digest pin)"
# A single-step saturation run proves the bench/e11 CLI path works end
# to end; the golden-digest tests prove hot-path optimizations remain
# observationally invisible (byte-identical journals and reports).
cargo run -q --release --bin spire-sim -- e11 --steps 1 >/dev/null
cargo test -q --release --test golden_digests

echo "All checks passed."
