//! Randomized fault-schedule tests ("chaos"): random update submissions
//! interleaved with crashes and proactive recoveries — always within the
//! tolerance bounds (at most `f` Byzantine plus `k` recovering at once) —
//! must never break agreement or halt execution.

use prime::byzantine::ByzMode;
use prime::harness::Cluster;
use prime::replica::Timing;
use prime::types::{Config, ReplicaId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simnet::time::SimDuration;

fn fast_timing() -> Timing {
    Timing {
        aru_interval: SimDuration::from_millis(10),
        pp_interval: SimDuration::from_millis(10),
        suspect_timeout: SimDuration::from_millis(600),
        checkpoint_interval: 15,
        catchup_timeout: SimDuration::from_millis(250),
    }
}

/// One chaos run: random ops against a plant-config cluster.
fn chaos_run(seed: u64) {
    let config = Config::plant(); // f = 1, k = 1, n = 6
    let mut c = Cluster::new(config, 2);
    c.set_timing(fast_timing());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut crashed: Option<u32> = None;
    let mut submitted = 0u64;

    for _round in 0..40 {
        match rng.gen_range(0..10) {
            // Mostly: submit updates.
            0..=5 => {
                let client = rng.gen_range(0..2);
                submitted += 1;
                c.submit(client, format!("chaos{submitted}=v"));
            }
            // Crash one replica (the single tolerated intrusion).
            6 if crashed.is_none() => {
                let victim = rng.gen_range(0..6u32);
                c.replicas[victim as usize].byz = ByzMode::Crashed;
                crashed = Some(victim);
            }
            // Heal the crash (attacker evicted / machine replaced).
            7 => {
                if let Some(victim) = crashed.take() {
                    c.replicas[victim as usize].byz = ByzMode::Correct;
                    // A healed replica lost its state: recover it.
                    c.recover_replica(ReplicaId(victim));
                }
            }
            // Proactive recovery of a random healthy replica.
            8 => {
                let candidate = rng.gen_range(0..6u32);
                if crashed != Some(candidate) {
                    c.recover_replica(ReplicaId(candidate));
                }
            }
            // Let time pass.
            _ => {}
        }
        c.run_for(SimDuration::from_millis(rng.gen_range(50..300)));
    }
    // Heal everything and quiesce.
    if let Some(victim) = crashed.take() {
        c.replicas[victim as usize].byz = ByzMode::Correct;
        c.recover_replica(ReplicaId(victim));
    }
    c.run_for(SimDuration::from_secs(6));

    // Agreement: identical execution prefixes and state digests.
    let executed = c.assert_consistent();
    assert!(executed > 0, "seed {seed}: nothing executed");
    // Liveness: every submitted update executed at every replica.
    assert_eq!(
        c.min_executed(),
        submitted,
        "seed {seed}: not all updates executed (submitted {submitted})"
    );
}

#[test]
fn chaos_seed_1() {
    chaos_run(1);
}

#[test]
fn chaos_seed_2() {
    chaos_run(2);
}

#[test]
fn chaos_seed_3() {
    chaos_run(3);
}

#[test]
fn chaos_seed_4() {
    chaos_run(4);
}

#[test]
fn chaos_with_delaying_leader() {
    // The Prime-specific attack mixed into chaos: the view-0 leader delays
    // massively; the cluster must depose it and stay consistent.
    let mut c = Cluster::new(Config::plant(), 1);
    c.set_timing(fast_timing());
    c.replicas[0].byz = ByzMode::DelayLeader(SimDuration::from_secs(60));
    let mut rng = StdRng::seed_from_u64(77);
    let mut submitted = 0;
    for _ in 0..20 {
        submitted += 1;
        c.submit(0, format!("d{submitted}=v"));
        c.run_for(SimDuration::from_millis(rng.gen_range(50..200)));
    }
    c.run_for(SimDuration::from_secs(5));
    assert!(c.replicas[1].view() >= 1, "delaying leader deposed");
    assert_eq!(c.min_executed(), submitted);
    c.assert_consistent();
}
