//! The Prime replica state machine.
//!
//! Transport-agnostic and fully deterministic: the owner injects client
//! updates ([`Replica::submit`]), peer messages ([`Replica::on_message`]),
//! and time ([`Replica::tick`]); the replica returns [`OutEvent`]s to act
//! on. In Spire the owner is a SCADA-master process that moves messages
//! over the internal Spines network; in tests it is [`crate::Cluster`].
//!
//! ## Simplifications relative to the C implementation (documented per
//! DESIGN.md)
//!
//! * Ordering is serialized: the leader proposes sequence `s+1` only after
//!   committing `s`. Prime's aggregation makes this cheap — one matrix
//!   orders every update accumulated since the last proposal — and it lets
//!   view changes carry a single prepared certificate instead of a window.
//! * Erasure-coded reconciliation is replaced by direct `PO-Fetch` /
//!   `PO-Data` retransmission.
//! * TAT measurement is simplified to a bound on *unordered eligible
//!   updates*: if this replica knows of pre-ordered updates that remain
//!   unordered past `suspect_timeout`, it suspects the leader. This keeps
//!   the property that matters (a delaying leader is replaced) without the
//!   RTT-estimation machinery.
//!
//! ## Incarnations
//!
//! Pre-order sequence numbers are *incarnation-tagged* composites
//! ([`po_compose`]): the high bits carry the origin's incarnation (bumped
//! on every proactive recovery, derived from the monotonic clock), the low
//! bits a per-incarnation counter. A recovered replica therefore never
//! collides with pre-order slots from its previous life, composite
//! ordering keeps ARU vectors monotone across recoveries, and peers reset
//! their per-origin contiguity tracking when they observe a new
//! incarnation.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use itcrypto::keys::{KeyPair, KeyRegistry};
use itcrypto::sha256::{sha256, Digest};
use simnet::time::{SimDuration, SimTime};
use simnet::wire::Wire;

use crate::application::Application;
use crate::byzantine::ByzMode;
use crate::messages::{AruRow, Envelope, PrimeMsg, SignedMsg};
use crate::types::{Config, Membership, ReplicaId, SignedUpdate, Update};
use itcrypto::verify_cache::VerifyCache;

/// Compact client duplicate-suppression table, one
/// `(client, contiguous_through, extras)` entry per client (see
/// [`PrimeMsg::CatchupDedup`]).
type DedupTable = Vec<(u32, u64, Vec<u64>)>;

/// Deterministic digest of a dedup table, folded into the catch-up offer
/// key so the f+1 matching rule covers the table.
fn dedup_digest(table: &[(u32, u64, Vec<u64>)]) -> Digest {
    let mut bytes = Vec::with_capacity(16 + table.len() * 24);
    bytes.extend_from_slice(&(table.len() as u64).to_be_bytes());
    for (client, through, extras) in table {
        bytes.extend_from_slice(&client.to_be_bytes());
        bytes.extend_from_slice(&through.to_be_bytes());
        bytes.extend_from_slice(&(extras.len() as u64).to_be_bytes());
        for e in extras {
            bytes.extend_from_slice(&e.to_be_bytes());
        }
    }
    sha256(&bytes)
}

/// Bits of a composite pre-order sequence reserved for the counter.
const PO_SEQ_BITS: u32 = 40;

/// Entries held by each replica's verification-verdict cache. Sized to
/// cover the working set of a busy window (rows from every peer across
/// several pre-prepare rounds plus in-flight client updates) while
/// keeping the worst case bounded.
const VERIFY_CACHE_CAP: usize = 4096;

/// Builds an incarnation-tagged pre-order sequence number.
pub fn po_compose(incarnation: u32, seq: u64) -> u64 {
    debug_assert!(seq < (1 << PO_SEQ_BITS));
    ((incarnation as u64) << PO_SEQ_BITS) | seq
}

/// Extracts the incarnation from a composite pre-order sequence.
pub fn po_incarnation(composite: u64) -> u32 {
    (composite >> PO_SEQ_BITS) as u32
}

/// Extracts the counter from a composite pre-order sequence.
pub fn po_counter(composite: u64) -> u64 {
    composite & ((1 << PO_SEQ_BITS) - 1)
}

/// Protocol timing knobs.
#[derive(Clone, Copy, Debug)]
pub struct Timing {
    /// How often PO-ARU vectors are gossiped.
    pub aru_interval: SimDuration,
    /// Leader's minimum spacing between pre-prepares.
    pub pp_interval: SimDuration,
    /// How long eligible updates may sit unordered before suspicion.
    pub suspect_timeout: SimDuration,
    /// Executions between checkpoints.
    pub checkpoint_interval: u64,
    /// How long an execution stall may last before catch-up.
    pub catchup_timeout: SimDuration,
}

impl Default for Timing {
    fn default() -> Self {
        Timing {
            aru_interval: SimDuration::from_millis(20),
            pp_interval: SimDuration::from_millis(30),
            suspect_timeout: SimDuration::from_millis(2_000),
            checkpoint_interval: 50,
            catchup_timeout: SimDuration::from_millis(500),
        }
    }
}

/// Events a replica asks its owner to act on.
#[derive(Clone, Debug)]
pub enum OutEvent {
    /// Send to every other replica. The envelope carries the wire bytes
    /// produced at signing time, so hosts fan out without re-encoding.
    Broadcast(Envelope),
    /// Send to one replica.
    Send(ReplicaId, Envelope),
    /// An update reached its global execution point.
    Execute {
        /// 1-based global execution sequence.
        exec_seq: u64,
        /// The update.
        update: Update,
        /// Causal-trace context of the execution (the instant
        /// `prime.execute` span), for the host to stamp on outgoing
        /// application messages. `None` for untraced updates.
        trace: Option<obs::TraceCtx>,
    },
    /// The replica moved to a new view.
    ViewChanged {
        /// The new view.
        view: u64,
    },
    /// The replication layer determined that application-level state
    /// transfer is required (§III-A signaling).
    StateTransferRequested,
    /// A peer snapshot was installed into the application.
    StateTransferInstalled {
        /// Executed count after installation.
        exec_seq: u64,
    },
    /// A checkpoint became stable (quorum of matching digests).
    CheckpointStable {
        /// Executed count at the checkpoint.
        exec_seq: u64,
    },
}

/// Counters for experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplicaStats {
    /// Updates introduced into pre-ordering by this replica.
    pub po_introduced: u64,
    /// Updates executed.
    pub executed: u64,
    /// Duplicate executions suppressed (same client seq via another origin).
    pub dup_suppressed: u64,
    /// Pre-prepares proposed (as leader).
    pub proposals: u64,
    /// Suspect messages sent.
    pub suspects_sent: u64,
    /// View changes completed.
    pub view_changes: u64,
    /// Catch-ups performed.
    pub catchups: u64,
    /// Catch-up requests retransmitted after an unanswered round.
    pub catchup_retransmits: u64,
    /// Messages rejected for bad signatures.
    pub bad_sigs: u64,
    /// Reconciliation fetches sent.
    pub fetches: u64,
}

/// Per-view votes: sender → (max committed, prepared seq, prepared view,
/// prepared matrix).
type ViewChangeVotes = BTreeMap<u32, (u64, u64, u64, Vec<AruRow>)>;

/// Catch-up offer groups, keyed by (exec_seq, app digest, dedup-table
/// digest): offering senders, the offer, and its dedup table.
type CatchupOffers = BTreeMap<(u64, Digest, Digest), (BTreeSet<u32>, PrimeMsg, DedupTable)>;

/// One Prime replica hosting an application.
pub struct Replica<A: Application> {
    id: ReplicaId,
    config: Config,
    registry: KeyRegistry,
    key: KeyPair,
    /// Memoized signature-verification verdicts (bounded, FIFO).
    verify_cache: VerifyCache,
    /// Fault-injection mode.
    pub byz: ByzMode,
    timing: Timing,

    view: u64,
    in_view_change: bool,
    vc_target: u64,
    /// When our view-change vote for `vc_target` last went out, so a
    /// vote lost to a partition is retransmitted instead of deadlocking
    /// the view change (see `tick`).
    last_vc_broadcast_at: SimTime,

    /// Restricted membership epoch, installed by the management plane
    /// after a site loss leaves the survivors without the static quorum
    /// (`None` = the full static configuration; the legacy single-site
    /// path never sets it). See [`Membership`].
    membership: Option<Membership>,

    // Pre-ordering.
    incarnation: u32,
    next_po_seq: u64,
    po_store: BTreeMap<(u32, u64), SignedUpdate>,
    /// Original signed PoRequest envelopes (served on PoFetch).
    po_envelopes: BTreeMap<(u32, u64), SignedMsg>,
    intro_seen: BTreeSet<(u32, u64)>,
    /// Highest incarnation observed per origin.
    origin_inc: Vec<u32>,
    /// Contiguously received counter within each origin's incarnation.
    aru_counter: Vec<u64>,
    my_aru: Vec<u64>,
    latest_rows: BTreeMap<u32, AruRow>,
    last_gossiped_aru: Vec<u64>,
    last_aru_at: SimTime,

    // Ordering.
    last_pp_at: SimTime,
    /// seq → (view, matrix, digest) for the active proposal.
    pre_prepares: BTreeMap<u64, (u64, Vec<AruRow>, Digest)>,
    prepares: BTreeMap<(u64, u64, Digest), BTreeSet<u32>>,
    commits: BTreeMap<(u64, u64, Digest), BTreeSet<u32>>,
    sent_prepare: BTreeSet<(u64, u64)>,
    sent_commit: BTreeSet<(u64, u64)>,
    committed: BTreeMap<u64, Vec<AruRow>>,
    max_committed: u64,
    /// The prepared-but-uncommitted certificate (seq, view, matrix).
    prepared_cert: Option<(u64, u64, Vec<AruRow>)>,

    // Execution.
    planned_through: u64,
    plan_cover: Vec<u64>,
    exec_plan: VecDeque<(u32, u64)>,
    exec_seq: u64,
    executed_clients: BTreeMap<u32, BTreeSet<u64>>,
    stall_since: Option<SimTime>,
    last_fetch_at: SimTime,

    // Suspicion.
    unordered_since: Option<SimTime>,
    suspects: BTreeMap<u64, BTreeSet<u32>>,
    sent_suspect: BTreeSet<u64>,

    // View change.
    view_changes: BTreeMap<u64, ViewChangeVotes>,

    // Checkpoints.
    last_checkpoint_at_exec: u64,
    checkpoint_votes: BTreeMap<(u64, Digest), BTreeSet<u32>>,
    stable_checkpoint: u64,

    // Catch-up.
    catching_up: bool,
    catchup_started: SimTime,
    catchup_attempts: u32,
    // Keyed by (exec_seq, app digest, dedup-table digest): the f+1
    // matching-offer rule covers the dedup table too, so a lone faulty
    // replica cannot poison the duplicate-suppression state.
    catchup_offers: CatchupOffers,
    // Per-sender dedup tables received via `CatchupDedup`, paired with
    // the `CatchupReply` that follows from the same sender.
    catchup_dedup: BTreeMap<u32, (u64, DedupTable)>,

    app: A,
    /// Counters.
    pub stats: ReplicaStats,

    // Observability: hub for journal records (detached until
    // `attach_obs`) plus cached registry counter handles. `health_ticks`
    // counts protocol ticks for the flight recorder's snapshot cadence.
    obs: obs::ObsHub,
    health_ticks: u64,
    c_view_changes: obs::Counter,
    c_executed: obs::Counter,
    c_suspects_sent: obs::Counter,

    // Causal tracing: the context the host set before `submit`, the
    // pre-ordering ("queue") span per in-flight traced update (keyed
    // like `intro_seen`), and the latest ordering-phase span per
    // global sequence.
    incoming_trace: Option<obs::TraceCtx>,
    trace_queue: BTreeMap<(u32, u64), obs::TraceCtx>,
    trace_phase: BTreeMap<u64, obs::TraceCtx>,
}

fn prime_counters(hub: &obs::ObsHub, id: ReplicaId) -> [obs::Counter; 3] {
    [
        hub.counter(&format!("prime.r{}.view_changes", id.0)),
        hub.counter(&format!("prime.r{}.executed", id.0)),
        hub.counter(&format!("prime.r{}.suspects_sent", id.0)),
    ]
}

impl<A: Application> Replica<A> {
    /// Creates replica `id` with its signing key, the shared registry, and
    /// the hosted application.
    pub fn new(id: ReplicaId, config: Config, key: KeyPair, registry: KeyRegistry, app: A) -> Self {
        let n = config.n() as usize;
        let hub = obs::ObsHub::new();
        let [view_changes, executed, suspects_sent] = prime_counters(&hub, id);
        Replica {
            id,
            config,
            registry,
            key,
            verify_cache: VerifyCache::new(VERIFY_CACHE_CAP),
            byz: ByzMode::Correct,
            timing: Timing::default(),
            view: 0,
            in_view_change: false,
            vc_target: 0,
            last_vc_broadcast_at: SimTime::ZERO,
            membership: None,
            incarnation: 0,
            next_po_seq: 1,
            po_store: BTreeMap::new(),
            po_envelopes: BTreeMap::new(),
            intro_seen: BTreeSet::new(),
            origin_inc: vec![0; n],
            aru_counter: vec![0; n],
            my_aru: vec![0; n],
            latest_rows: BTreeMap::new(),
            last_gossiped_aru: vec![0; n],
            last_aru_at: SimTime::ZERO,
            last_pp_at: SimTime::ZERO,
            pre_prepares: BTreeMap::new(),
            prepares: BTreeMap::new(),
            commits: BTreeMap::new(),
            sent_prepare: BTreeSet::new(),
            sent_commit: BTreeSet::new(),
            committed: BTreeMap::new(),
            max_committed: 0,
            prepared_cert: None,
            planned_through: 0,
            plan_cover: vec![0; n],
            exec_plan: VecDeque::new(),
            exec_seq: 0,
            executed_clients: BTreeMap::new(),
            stall_since: None,
            last_fetch_at: SimTime::ZERO,
            unordered_since: None,
            suspects: BTreeMap::new(),
            sent_suspect: BTreeSet::new(),
            view_changes: BTreeMap::new(),
            last_checkpoint_at_exec: 0,
            checkpoint_votes: BTreeMap::new(),
            stable_checkpoint: 0,
            catching_up: false,
            catchup_started: SimTime::ZERO,
            catchup_attempts: 0,
            catchup_offers: BTreeMap::new(),
            catchup_dedup: BTreeMap::new(),
            app,
            stats: ReplicaStats::default(),
            obs: hub.clone(),
            health_ticks: 0,
            c_view_changes: view_changes,
            c_executed: executed,
            c_suspects_sent: suspects_sent,
            incoming_trace: None,
            trace_queue: BTreeMap::new(),
            trace_phase: BTreeMap::new(),
        }
    }

    /// Sets the causal-trace context for the next [`Replica::submit`]
    /// call — the hosting process's ambient context for the packet
    /// that carried the update. Consumed by `submit`.
    pub fn set_incoming_trace(&mut self, trace: Option<obs::TraceCtx>) {
        self.incoming_trace = trace;
    }

    /// Redirects this replica's metrics and journal records to a shared
    /// deployment hub. Accumulated counts carry over.
    pub fn attach_obs(&mut self, hub: &obs::ObsHub) {
        let [view_changes, executed, suspects_sent] = prime_counters(hub, self.id);
        view_changes.add(self.c_view_changes.get());
        executed.add(self.c_executed.get());
        suspects_sent.add(self.c_suspects_sent.get());
        self.obs = hub.clone();
        self.c_view_changes = view_changes;
        self.c_executed = executed;
        self.c_suspects_sent = suspects_sent;
    }

    /// Overrides protocol timing (tests tighten timeouts).
    pub fn set_timing(&mut self, timing: Timing) {
        self.timing = timing;
    }

    /// This replica's id.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// The current view.
    pub fn view(&self) -> u64 {
        self.view
    }

    /// Whether this replica currently leads.
    pub fn is_leader(&self) -> bool {
        self.active_leader_of(self.view) == self.id
    }

    /// The active membership epoch, if a degraded one is installed.
    pub fn membership(&self) -> Option<&Membership> {
        self.membership.as_ref()
    }

    /// Installs a restricted membership epoch (wide-area site failover).
    ///
    /// Only thresholds, leader rotation, and the peer filter change;
    /// no view is forced and no ordering state is discarded. A committed
    /// sequence is either already committed by a survivor or covered by a
    /// surviving prepared certificate (commit quorum and survivor majority
    /// intersect), so the ordinary suspicion → view-change machinery,
    /// now running under the epoch's thresholds, re-establishes a live
    /// leader without forking history. Vote state from non-members is
    /// pruned so epoch thresholds count only epoch members.
    pub fn set_membership(&mut self, m: Membership, now: SimTime) {
        debug_assert!(m.contains(self.id), "epoch must include this replica");
        for set in self.suspects.values_mut() {
            set.retain(|id| m.contains(ReplicaId(*id)));
        }
        for votes in self.view_changes.values_mut() {
            votes.retain(|id, _| m.contains(ReplicaId(*id)));
        }
        for votes in self.checkpoint_votes.values_mut() {
            votes.retain(|id| m.contains(ReplicaId(*id)));
        }
        self.membership = Some(m);
        // Anything still unordered must now make progress under the
        // epoch; (re)arm the suspicion clock from the failover instant.
        self.unordered_since = None;
        self.note_unordered(now);
    }

    /// Removes the restricted epoch: the full static configuration's
    /// thresholds and leader rotation apply again (site heal / failback).
    pub fn clear_membership(&mut self) {
        self.membership = None;
    }

    /// Leader of `view` under the active membership.
    fn active_leader_of(&self, view: u64) -> ReplicaId {
        match &self.membership {
            Some(m) => m.leader_of(view),
            None => self.config.leader_of(view),
        }
    }

    /// Prepare/commit/install quorum under the active membership.
    fn active_ordering_quorum(&self) -> u32 {
        match &self.membership {
            Some(m) => m.ordering_quorum(),
            None => self.config.ordering_quorum(),
        }
    }

    /// Leader-suspicion threshold under the active membership.
    fn active_suspect_threshold(&self) -> u32 {
        match &self.membership {
            Some(m) => m.suspect_threshold(),
            None => self.config.suspect_threshold(),
        }
    }

    /// Intrusion budget under the active membership (join and catch-up
    /// `f + 1` rules).
    fn active_f(&self) -> u32 {
        match &self.membership {
            Some(m) => m.f,
            None => self.config.f,
        }
    }

    /// Whether a peer participates in the active membership.
    fn is_active_member(&self, id: ReplicaId) -> bool {
        match &self.membership {
            Some(m) => m.contains(id),
            None => true,
        }
    }

    /// Executed update count.
    pub fn exec_seq(&self) -> u64 {
        self.exec_seq
    }

    /// Whether a catch-up (state transfer) is in progress.
    pub fn is_catching_up(&self) -> bool {
        self.catching_up
    }

    /// The hosted application.
    pub fn app(&self) -> &A {
        &self.app
    }

    /// Mutable application access (used by SCADA ground-truth rebuild).
    pub fn app_mut(&mut self) -> &mut A {
        &mut self.app
    }

    fn sign(&mut self, msg: PrimeMsg) -> Envelope {
        obs::prof::charge_crypto(msg.prof_stack(), obs::prof::CryptoOp::Sign, 1);
        Envelope::sign(self.id, msg, &mut self.key)
    }

    fn matrix_digest(matrix: &[AruRow]) -> Digest {
        let mut w = simnet::wire::Writer::new();
        for row in matrix {
            row.encode(&mut w);
        }
        sha256(&w.finish())
    }

    /// Injects a client update received from the external network.
    pub fn submit(&mut self, update: SignedUpdate, now: SimTime) -> Vec<OutEvent> {
        if obs::prof::enabled() {
            // Attribute the real (cache-missing) signature verifications
            // this submission triggers to the pre-ordering intro path.
            let miss0 = self.verify_cache.misses;
            let out = self.submit_inner(update, now);
            obs::prof::charge_crypto(
                "prime;preorder;po_request",
                obs::prof::CryptoOp::Verify,
                self.verify_cache.misses - miss0,
            );
            return out;
        }
        self.submit_inner(update, now)
    }

    fn submit_inner(&mut self, update: SignedUpdate, now: SimTime) -> Vec<OutEvent> {
        let mut out = Vec::new();
        // Always consume the pending context so it cannot leak onto an
        // unrelated later submission.
        let intro_trace = self.incoming_trace.take();
        if self.byz.is_crashed() {
            return out;
        }
        if !update.verify_cached(&self.registry, &mut self.verify_cache) {
            self.stats.bad_sigs += 1;
            return out;
        }
        let ckey = (update.update.client, update.update.client_seq);
        if self.intro_seen.contains(&ckey) || self.already_executed(ckey.0, ckey.1) {
            return out;
        }
        self.intro_seen.insert(ckey);
        // Pre-ordering span: open until this update executes here.
        if let Some(q) = self
            .obs
            .start_span(intro_trace, obs::Stage::PrimeQueue, self.id.0)
        {
            self.trace_queue.insert(ckey, q);
        }
        let po_seq = po_compose(self.incarnation, self.next_po_seq);
        self.next_po_seq += 1;
        self.stats.po_introduced += 1;
        self.po_store.insert((self.id.0, po_seq), update.clone());
        let msg = self.sign(PrimeMsg::PoRequest {
            origin: self.id,
            po_seq,
            update,
        });
        self.po_envelopes
            .insert((self.id.0, po_seq), msg.msg.clone());
        self.advance_my_aru();
        out.push(OutEvent::Broadcast(msg));
        self.note_unordered(now);
        out
    }

    fn already_executed(&self, client: u32, client_seq: u64) -> bool {
        self.executed_clients
            .get(&client)
            .is_some_and(|s| s.contains(&client_seq))
    }

    /// Compact encoding of `executed_clients` for state transfer: per
    /// client, the largest `through` with `1..=through` all executed plus
    /// the sparse executed seqs above it. The table travels with the
    /// snapshot so a recovered replica suppresses exactly the duplicate
    /// orderings its peers suppressed — otherwise its execution numbering
    /// and application digest fork from the quorum's.
    fn dedup_table(&self) -> Vec<(u32, u64, Vec<u64>)> {
        self.executed_clients
            .iter()
            .map(|(client, set)| {
                let mut through = 0u64;
                while set.contains(&(through + 1)) {
                    through += 1;
                }
                let extras: Vec<u64> = set.range(through + 1..).copied().collect();
                (*client, through, extras)
            })
            .collect()
    }

    /// Rebuilds `executed_clients` from a transferred [`Self::dedup_table`].
    fn install_dedup_table(&mut self, table: &[(u32, u64, Vec<u64>)]) {
        self.executed_clients = table
            .iter()
            .map(|(client, through, extras)| {
                let mut set: BTreeSet<u64> = (1..=*through).collect();
                set.extend(extras.iter().copied());
                (*client, set)
            })
            .collect();
    }

    fn advance_my_aru(&mut self) {
        // Our own slot always tracks our current incarnation.
        self.origin_inc[self.id.0 as usize] = self.incarnation;
        for origin in 0..self.config.n() as usize {
            let inc = self.origin_inc[origin];
            if po_incarnation(self.my_aru[origin]) != inc {
                self.aru_counter[origin] = 0;
            }
            let mut counter = self.aru_counter[origin];
            while self
                .po_store
                .contains_key(&(origin as u32, po_compose(inc, counter + 1)))
            {
                counter += 1;
            }
            self.aru_counter[origin] = counter;
            // Composite ordering keeps the vector monotone across
            // incarnation bumps (higher incarnation dominates).
            self.my_aru[origin] = self.my_aru[origin].max(po_compose(inc, counter));
        }
    }

    /// Handles a signed peer message.
    pub fn on_message(&mut self, msg: SignedMsg, now: SimTime) -> Vec<OutEvent> {
        if obs::prof::enabled() {
            // Every real verification this message triggers — its own
            // envelope plus any matrix rows or nested updates checked
            // while handling it — lands on the message's phase stack.
            // Cache hits are free and are deliberately not charged.
            let stack = msg.msg.prof_stack();
            let miss0 = self.verify_cache.misses;
            let out = self.on_message_inner(msg, now);
            obs::prof::charge_crypto(
                stack,
                obs::prof::CryptoOp::Verify,
                self.verify_cache.misses - miss0,
            );
            return out;
        }
        self.on_message_inner(msg, now)
    }

    fn on_message_inner(&mut self, msg: SignedMsg, now: SimTime) -> Vec<OutEvent> {
        let mut out = Vec::new();
        if self.byz.is_crashed() {
            return out;
        }
        if msg.from == self.id || msg.from.0 >= self.config.n() {
            return out;
        }
        // During a restricted epoch, peers outside the membership are on
        // the severed side of the site partition: their (stale) protocol
        // messages must not count toward the epoch's reduced thresholds.
        if !self.is_active_member(msg.from) {
            return out;
        }
        if !msg.verify_cached(&self.registry, &mut self.verify_cache) {
            self.stats.bad_sigs += 1;
            return out;
        }
        let from = msg.from;
        let sig = msg.sig;
        // Dispatch by move: only PoRequest needs the envelope again (it is
        // stored for reconciliation replays), and it is rebuilt from the
        // moved-out fields — no other variant pays a deep clone.
        match msg.msg {
            PrimeMsg::PoRequest {
                origin,
                po_seq,
                update,
            } => {
                let envelope = SignedMsg {
                    from,
                    msg: PrimeMsg::PoRequest {
                        origin,
                        po_seq,
                        update: update.clone(),
                    },
                    sig,
                };
                self.accept_po_request(envelope, from, origin, po_seq, update, now, &mut out);
            }
            PrimeMsg::PoAru { row } => {
                self.on_po_aru(row, &mut out);
            }
            PrimeMsg::PrePrepare { view, seq, matrix } => {
                self.on_pre_prepare(from, view, seq, matrix, now, &mut out);
            }
            PrimeMsg::Prepare { view, seq, digest } => {
                self.on_prepare(from, view, seq, digest, now, &mut out);
            }
            PrimeMsg::Commit { view, seq, digest } => {
                self.on_commit(from, view, seq, digest, now, &mut out);
            }
            PrimeMsg::PoFetch { origin, po_seq } => {
                if let Some(envelope) = self.po_envelopes.get(&(origin.0, po_seq)) {
                    let original = envelope.to_wire().to_vec();
                    let reply = self.sign(PrimeMsg::PoData { original });
                    out.push(OutEvent::Send(from, reply));
                }
            }
            PrimeMsg::PoData { original } => {
                self.on_po_data(&original, now, &mut out);
            }
            PrimeMsg::SuspectLeader { view } => {
                self.on_suspect(from, view, now, &mut out);
            }
            PrimeMsg::ViewChange {
                new_view,
                max_committed,
                prepared_seq,
                prepared_view,
                prepared_matrix,
            } => {
                self.on_view_change(
                    from,
                    new_view,
                    max_committed,
                    prepared_seq,
                    prepared_view,
                    prepared_matrix,
                    now,
                    &mut out,
                );
            }
            PrimeMsg::NewView { view, start_seq } => {
                self.on_new_view(from, view, start_seq, now, &mut out);
            }
            PrimeMsg::Checkpoint {
                exec_seq,
                app_digest,
            } => {
                self.on_checkpoint(from, exec_seq, app_digest, now, &mut out);
            }
            PrimeMsg::CatchupRequest { have_exec_seq } => {
                if self.exec_seq > have_exec_seq {
                    // The companion dedup table travels first so the
                    // receiver can pair it with the reply behind it.
                    if self.config.transfer_dedup {
                        let table = self.sign(PrimeMsg::CatchupDedup {
                            exec_seq: self.exec_seq,
                            dedup: self.dedup_table(),
                        });
                        out.push(OutEvent::Send(from, table));
                    }
                    let reply = PrimeMsg::CatchupReply {
                        exec_seq: self.exec_seq,
                        app_digest: self.app.digest(),
                        snapshot: self.app.snapshot(),
                        next_order_seq: self.planned_through + 1,
                        exec_cover: self.plan_cover.clone(),
                        view: self.view,
                    };
                    let reply = self.sign(reply);
                    out.push(OutEvent::Send(from, reply));
                }
            }
            PrimeMsg::CatchupReply {
                exec_seq,
                app_digest,
                snapshot,
                next_order_seq,
                exec_cover,
                view,
            } => {
                self.on_catchup_reply(
                    from,
                    exec_seq,
                    app_digest,
                    snapshot,
                    next_order_seq,
                    exec_cover,
                    view,
                    &mut out,
                );
            }
            PrimeMsg::CatchupDedup { exec_seq, dedup } => {
                if self.catching_up {
                    self.catchup_dedup.insert(from.0, (exec_seq, dedup));
                }
            }
        }
        out
    }

    /// Accepts a PO-Request whose signed envelope came from its origin —
    /// directly or replayed inside a `PoData` reconciliation reply.
    #[allow(clippy::too_many_arguments)]
    fn accept_po_request(
        &mut self,
        envelope: SignedMsg,
        from: ReplicaId,
        origin: ReplicaId,
        po_seq: u64,
        update: SignedUpdate,
        now: SimTime,
        out: &mut Vec<OutEvent>,
    ) {
        // Only the origin may bind (origin, po_seq) → update: a faulty
        // relayer must not be able to fill foreign slots.
        if from != origin || origin.0 >= self.config.n() || po_counter(po_seq) == 0 {
            return;
        }
        if !update.verify_cached(&self.registry, &mut self.verify_cache) {
            self.stats.bad_sigs += 1;
            return;
        }
        // Incarnation tracking: a higher incarnation from the origin means
        // it recovered; contiguity restarts in the new incarnation.
        let inc = po_incarnation(po_seq);
        let o = origin.0 as usize;
        if origin != self.id && inc > self.origin_inc[o] {
            self.origin_inc[o] = inc;
            self.aru_counter[o] = 0;
        }
        self.po_store.entry((origin.0, po_seq)).or_insert(update);
        self.po_envelopes
            .entry((origin.0, po_seq))
            .or_insert(envelope);
        self.advance_my_aru();
        self.note_unordered(now);
        self.try_execute(now, out);
    }

    fn on_po_aru(&mut self, row: AruRow, _out: &mut [OutEvent]) {
        if row.replica.0 >= self.config.n() || row.vector.len() != self.config.n() as usize {
            return;
        }
        if !row.verify_cached(&self.registry, &mut self.verify_cache) {
            self.stats.bad_sigs += 1;
            return;
        }
        let entry = self.latest_rows.entry(row.replica.0);
        match entry {
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(row);
            }
            std::collections::btree_map::Entry::Occupied(mut o) => {
                // Keep the row with the largest total coverage (monotone).
                let old_sum: u64 = o.get().vector.iter().sum();
                let new_sum: u64 = row.vector.iter().sum();
                if new_sum > old_sum {
                    o.insert(row);
                }
            }
        }
    }

    fn on_pre_prepare(
        &mut self,
        from: ReplicaId,
        view: u64,
        seq: u64,
        matrix: Vec<AruRow>,
        now: SimTime,
        out: &mut Vec<OutEvent>,
    ) {
        if view != self.view || self.in_view_change {
            return;
        }
        if from != self.active_leader_of(view) {
            return;
        }
        if seq <= self.max_committed || seq == 0 {
            return;
        }
        // Validate the matrix: enough distinct, signed rows.
        let mut seen = BTreeSet::new();
        for row in &matrix {
            if row.vector.len() != self.config.n() as usize
                || !row.verify_cached(&self.registry, &mut self.verify_cache)
            {
                return;
            }
            seen.insert(row.replica.0);
        }
        if (seen.len() as u32) < self.active_ordering_quorum() {
            return;
        }
        let digest = Self::matrix_digest(&matrix);
        // A proposal from a newer view supersedes an uncommitted entry a
        // dead view left behind (a partition can cut a pre-prepare off
        // from its prepare quorum; any value that might have committed is
        // protected by the prepared-certificate carryover in
        // `install_view`). Without the replacement the stale entry blocks
        // this sequence in every later view and ordering wedges.
        let replace = match self.pre_prepares.get(&seq) {
            Some((stored_view, _, _)) => *stored_view < view,
            None => true,
        };
        if replace {
            self.pre_prepares.insert(seq, (view, matrix, digest));
        }
        let stored = &self.pre_prepares[&seq];
        if stored.0 != view || stored.2 != digest {
            return; // conflicting proposal for this seq; ignore.
        }
        // Leader's proposal advanced things: reset the suspicion clock.
        self.unordered_since = Some(now);
        if self.sent_prepare.insert((view, seq)) {
            if !self.trace_phase.contains_key(&seq) {
                self.trace_ordering_phase(seq, obs::Stage::PrimePrePrepare);
            }
            let prep = self.sign(PrimeMsg::Prepare { view, seq, digest });
            self.prepares
                .entry((view, seq, digest))
                .or_default()
                .insert(self.id.0);
            out.push(OutEvent::Broadcast(prep));
        }
        self.check_prepared(view, seq, digest, now, out);
    }

    fn on_prepare(
        &mut self,
        from: ReplicaId,
        view: u64,
        seq: u64,
        digest: Digest,
        now: SimTime,
        out: &mut Vec<OutEvent>,
    ) {
        if view != self.view {
            return;
        }
        self.prepares
            .entry((view, seq, digest))
            .or_default()
            .insert(from.0);
        self.check_prepared(view, seq, digest, now, out);
    }

    /// Opens the next ordering-phase span for `seq`, ending the
    /// previous one. The first phase (pre-prepare) parents on the
    /// oldest traced in-flight update — exact when a single traced
    /// update is in flight (the E5 measurement), approximate under
    /// concurrent traced load.
    fn trace_ordering_phase(&mut self, seq: u64, stage: obs::Stage) {
        let parent = match self.trace_phase.get(&seq) {
            Some(prev) => Some(*prev),
            None => self.trace_queue.values().next().copied(),
        };
        if let Some(span) = self.obs.start_span(parent, stage, self.id.0) {
            if let Some(prev) = self.trace_phase.insert(seq, span) {
                self.obs.end_span(Some(prev));
            }
        }
    }

    fn check_prepared(
        &mut self,
        view: u64,
        seq: u64,
        digest: Digest,
        now: SimTime,
        out: &mut Vec<OutEvent>,
    ) {
        let Some((pp_view, matrix, pp_digest)) = self.pre_prepares.get(&seq) else {
            return;
        };
        if *pp_view != view || *pp_digest != digest {
            return;
        }
        let prepare_count = self
            .prepares
            .get(&(view, seq, digest))
            .map_or(0, |s| s.len() as u32);
        // The leader does not send Prepare; its pre-prepare counts.
        let have = prepare_count + 1;
        if have >= self.active_ordering_quorum() && self.sent_commit.insert((view, seq)) {
            self.prepared_cert = Some((seq, view, matrix.clone()));
            let commit = self.sign(PrimeMsg::Commit { view, seq, digest });
            self.commits
                .entry((view, seq, digest))
                .or_default()
                .insert(self.id.0);
            out.push(OutEvent::Broadcast(commit));
            self.trace_ordering_phase(seq, obs::Stage::PrimePrepare);
            self.check_committed(view, seq, digest, now, out);
        }
    }

    fn on_commit(
        &mut self,
        from: ReplicaId,
        view: u64,
        seq: u64,
        digest: Digest,
        now: SimTime,
        out: &mut Vec<OutEvent>,
    ) {
        self.commits
            .entry((view, seq, digest))
            .or_default()
            .insert(from.0);
        self.check_committed(view, seq, digest, now, out);
    }

    fn check_committed(
        &mut self,
        view: u64,
        seq: u64,
        digest: Digest,
        now: SimTime,
        out: &mut Vec<OutEvent>,
    ) {
        if self.committed.contains_key(&seq) {
            return;
        }
        let Some((pp_view, matrix, pp_digest)) = self.pre_prepares.get(&seq) else {
            return;
        };
        if *pp_view != view || *pp_digest != digest {
            return;
        }
        let count = self
            .commits
            .get(&(view, seq, digest))
            .map_or(0, |s| s.len() as u32);
        if count >= self.active_ordering_quorum() {
            self.committed.insert(seq, matrix.clone());
            self.trace_ordering_phase(seq, obs::Stage::PrimeCommit);
            self.max_committed = self.max_committed.max(seq);
            if self
                .prepared_cert
                .as_ref()
                .is_some_and(|(s, _, _)| *s == seq)
            {
                self.prepared_cert = None;
            }
            self.extend_plan();
            // A committed sequence beyond our contiguous plan means we
            // missed earlier commits (partition): treat as a stall so the
            // tick driver escalates to catch-up.
            if self.max_committed > self.planned_through {
                self.stall_since.get_or_insert(now);
            } else if self.exec_plan.is_empty() {
                self.stall_since = None;
            }
            self.try_execute(now, out);
            // Ordering-phase spans for sequences at or below this one
            // have served their purpose; drop them, ending any still
            // open so the journal stays balanced.
            let keep = self.trace_phase.split_off(&(seq + 1));
            for (_, span) in std::mem::replace(&mut self.trace_phase, keep) {
                self.obs.end_span(Some(span));
            }
        }
    }

    /// Extends the execution plan with newly covered updates from
    /// contiguous committed sequences.
    fn extend_plan(&mut self) {
        while let Some(matrix) = self.committed.get(&(self.planned_through + 1)) {
            let n = self.config.n() as usize;
            // Deliberately the *static* coverage threshold even inside a
            // restricted epoch: a commit processed by one survivor before
            // the epoch switch and by another after it must yield the
            // same execution plan, so the plan function cannot depend on
            // epoch state.
            let threshold = self.config.coverage_threshold() as usize;
            let mut target = self.plan_cover.clone();
            for (origin, cover) in target.iter_mut().enumerate().take(n) {
                let mut column: Vec<u64> = matrix.iter().map(|row| row.vector[origin]).collect();
                column.sort_unstable_by(|a, b| b.cmp(a));
                if column.len() >= threshold {
                    *cover = (*cover).max(column[threshold - 1]);
                }
            }
            for (origin, (&from_cover, &to_cover)) in self
                .plan_cover
                .clone()
                .iter()
                .zip(target.iter())
                .enumerate()
            {
                if to_cover <= from_cover {
                    continue;
                }
                if po_incarnation(from_cover) == po_incarnation(to_cover) {
                    for s in from_cover + 1..=to_cover {
                        self.exec_plan.push_back((origin as u32, s));
                    }
                } else {
                    // Incarnation jump: the tail of the old incarnation is
                    // abandoned deterministically (all replicas process the
                    // same committed matrices in order, so all abandon the
                    // same slots); the new incarnation executes from 1.
                    let inc = po_incarnation(to_cover);
                    for c in 1..=po_counter(to_cover) {
                        self.exec_plan
                            .push_back((origin as u32, po_compose(inc, c)));
                    }
                }
            }
            self.plan_cover = target;
            self.planned_through += 1;
        }
    }

    /// Drains the execution plan while updates are available.
    fn try_execute(&mut self, now: SimTime, out: &mut Vec<OutEvent>) {
        while let Some(&(origin, po_seq)) = self.exec_plan.front() {
            let Some(signed) = self.po_store.get(&(origin, po_seq)) else {
                // Missing: reconciliation.
                self.stall_since.get_or_insert(now);
                if now.since(self.last_fetch_at) >= SimDuration::from_millis(50) {
                    self.last_fetch_at = now;
                    self.stats.fetches += 1;
                    let fetch = self.sign(PrimeMsg::PoFetch {
                        origin: ReplicaId(origin),
                        po_seq,
                    });
                    out.push(OutEvent::Broadcast(fetch));
                }
                return;
            };
            let update = signed.update.clone();
            self.exec_plan.pop_front();
            self.stall_since = None;
            let client_set = self.executed_clients.entry(update.client).or_default();
            if !client_set.insert(update.client_seq) {
                self.stats.dup_suppressed += 1;
                continue;
            }
            self.exec_seq += 1;
            self.stats.executed += 1;
            self.c_executed.inc();
            self.app.execute(&update, self.exec_seq);
            // Close the update's pre-ordering span and stamp the
            // execution instant, parented on the latest ordering phase
            // (falling back to the queue span under catch-up paths
            // that bypass the three-phase rounds).
            let queue = self.trace_queue.remove(&(update.client, update.client_seq));
            let trace = if queue.is_some() {
                let parent = self
                    .trace_phase
                    .iter()
                    .next_back()
                    .map(|(_, ctx)| *ctx)
                    .or(queue);
                let span = self
                    .obs
                    .instant_span(parent, obs::Stage::PrimeExecute, self.id.0);
                self.obs.end_span(queue);
                span
            } else {
                None
            };
            obs::prof::charge_msg("prime;execute", 1, 0);
            out.push(OutEvent::Execute {
                exec_seq: self.exec_seq,
                update,
                trace,
            });
            // Checkpoint when due.
            if self.exec_seq - self.last_checkpoint_at_exec >= self.timing.checkpoint_interval {
                self.last_checkpoint_at_exec = self.exec_seq;
                let cp = self.sign(PrimeMsg::Checkpoint {
                    exec_seq: self.exec_seq,
                    app_digest: self.app.digest(),
                });
                // Vote for our own checkpoint too.
                self.checkpoint_votes
                    .entry((self.exec_seq, self.app.digest()))
                    .or_default()
                    .insert(self.id.0);
                out.push(OutEvent::Broadcast(cp));
            }
        }
        // Plan drained: if nothing eligible remains, clear suspicion clock.
        if !self.has_unordered_eligible() {
            self.unordered_since = None;
        }
    }

    fn has_unordered_eligible(&self) -> bool {
        self.my_aru
            .iter()
            .zip(self.plan_cover.iter())
            .any(|(a, c)| a > c)
            || !self.exec_plan.is_empty()
    }

    fn note_unordered(&mut self, now: SimTime) {
        if self.has_unordered_eligible() && self.unordered_since.is_none() {
            self.unordered_since = Some(now);
        }
    }

    fn on_po_data(&mut self, original: &[u8], now: SimTime, out: &mut Vec<OutEvent>) {
        // The payload must be the origin's own signed PoRequest envelope.
        let Ok(envelope) = SignedMsg::from_wire(original) else {
            return;
        };
        if !envelope.verify_cached(&self.registry, &mut self.verify_cache) {
            self.stats.bad_sigs += 1;
            return;
        }
        let PrimeMsg::PoRequest {
            origin,
            po_seq,
            update,
        } = envelope.msg.clone()
        else {
            return;
        };
        let from = envelope.from;
        self.accept_po_request(envelope, from, origin, po_seq, update, now, out);
    }

    fn on_suspect(&mut self, from: ReplicaId, view: u64, now: SimTime, out: &mut Vec<OutEvent>) {
        if view < self.view {
            return;
        }
        self.suspects.entry(view).or_default().insert(from.0);
        let count =
            self.suspects[&view].len() as u32 + u32::from(self.sent_suspect.contains(&view));
        if view == self.view && count >= self.active_suspect_threshold() {
            self.start_view_change(view + 1, now, out);
        }
    }

    fn start_view_change(&mut self, target: u64, now: SimTime, out: &mut Vec<OutEvent>) {
        if self.in_view_change && self.vc_target >= target {
            return;
        }
        self.in_view_change = true;
        self.vc_target = target;
        self.last_vc_broadcast_at = now;
        let (prepared_seq, prepared_view, prepared_matrix) = match &self.prepared_cert {
            Some((s, v, m)) if *s > self.max_committed => (*s, *v, m.clone()),
            _ => (0, 0, Vec::new()),
        };
        let vc = PrimeMsg::ViewChange {
            new_view: target,
            max_committed: self.max_committed,
            prepared_seq,
            prepared_view,
            prepared_matrix: prepared_matrix.clone(),
        };
        // Record our own vote.
        self.view_changes.entry(target).or_default().insert(
            self.id.0,
            (
                self.max_committed,
                prepared_seq,
                prepared_view,
                prepared_matrix,
            ),
        );
        let vc = self.sign(vc);
        out.push(OutEvent::Broadcast(vc));
    }

    #[allow(clippy::too_many_arguments)]
    fn on_view_change(
        &mut self,
        from: ReplicaId,
        new_view: u64,
        max_committed: u64,
        prepared_seq: u64,
        prepared_view: u64,
        prepared_matrix: Vec<AruRow>,
        now: SimTime,
        out: &mut Vec<OutEvent>,
    ) {
        if new_view <= self.view {
            return;
        }
        self.view_changes.entry(new_view).or_default().insert(
            from.0,
            (max_committed, prepared_seq, prepared_view, prepared_matrix),
        );
        let votes = self.view_changes[&new_view].len() as u32;
        // Join a view change once f+1 replicas are moving (can't all be faulty).
        if votes > self.active_f() && (!self.in_view_change || self.vc_target < new_view) {
            self.start_view_change(new_view, now, out);
        }
        // As the new leader, install the view once a quorum has voted.
        if votes >= self.active_ordering_quorum()
            && self.active_leader_of(new_view) == self.id
            && self.view < new_view
        {
            self.install_view(new_view, now, out);
        }
    }

    fn install_view(&mut self, new_view: u64, now: SimTime, out: &mut Vec<OutEvent>) {
        let votes = self
            .view_changes
            .get(&new_view)
            .cloned()
            .unwrap_or_default();
        let max_committed_any = votes
            .values()
            .map(|(mc, _, _, _)| *mc)
            .max()
            .unwrap_or(0)
            .max(self.max_committed);
        // Highest prepared certificate above the committed watermark, by
        // (prepared_view, seq).
        let best_prepared = votes
            .values()
            .filter(|(_, ps, _, _)| *ps > max_committed_any)
            .max_by_key(|(_, ps, pv, _)| (*pv, *ps))
            .cloned();
        let start_seq = match &best_prepared {
            Some((_, ps, _, _)) => *ps + 1,
            None => max_committed_any + 1,
        };
        self.view = new_view;
        self.in_view_change = false;
        self.unordered_since = None;
        self.stats.view_changes += 1;
        self.c_view_changes.inc();
        self.obs.journal(obs::Event::ViewChange {
            replica: self.id.0,
            view: new_view,
        });
        out.push(OutEvent::ViewChanged { view: new_view });
        let nv = self.sign(PrimeMsg::NewView {
            view: new_view,
            start_seq,
        });
        out.push(OutEvent::Broadcast(nv));
        // Re-propose the surviving prepared matrix under the new view.
        if let Some((_, ps, _, matrix)) = best_prepared {
            if !matrix.is_empty() {
                self.propose_matrix(ps, matrix, now, out);
            }
        }
    }

    fn on_new_view(
        &mut self,
        from: ReplicaId,
        view: u64,
        _start_seq: u64,
        now: SimTime,
        out: &mut Vec<OutEvent>,
    ) {
        if view <= self.view || from != self.active_leader_of(view) {
            return;
        }
        // Accept if we participated (sent or observed the view change).
        let votes = self.view_changes.get(&view).map_or(0, |m| m.len() as u32);
        if votes == 0 {
            return;
        }
        self.view = view;
        self.in_view_change = false;
        self.unordered_since = Some(now);
        self.stats.view_changes += 1;
        self.c_view_changes.inc();
        self.obs.journal(obs::Event::ViewChange {
            replica: self.id.0,
            view,
        });
        out.push(OutEvent::ViewChanged { view });
    }

    fn on_checkpoint(
        &mut self,
        from: ReplicaId,
        exec_seq: u64,
        app_digest: Digest,
        now: SimTime,
        out: &mut Vec<OutEvent>,
    ) {
        self.checkpoint_votes
            .entry((exec_seq, app_digest))
            .or_default()
            .insert(from.0);
        let votes = self.checkpoint_votes[&(exec_seq, app_digest)].len() as u32;
        if votes >= self.active_ordering_quorum() && exec_seq > self.stable_checkpoint {
            self.stable_checkpoint = exec_seq;
            out.push(OutEvent::CheckpointStable { exec_seq });
            // Garbage-collect old vote state.
            self.checkpoint_votes.retain(|(s, _), _| *s >= exec_seq);
            // If we are far behind a stable checkpoint, catch up.
            if self.exec_seq + self.timing.checkpoint_interval < exec_seq {
                self.request_catchup(now, out);
            }
        }
    }

    /// Requests replication + application state transfer from peers.
    pub fn request_catchup(&mut self, now: SimTime, out: &mut Vec<OutEvent>) {
        if self.catching_up {
            return;
        }
        self.catching_up = true;
        self.catchup_started = now;
        self.catchup_attempts = 0;
        self.catchup_offers.clear();
        self.catchup_dedup.clear();
        out.push(OutEvent::StateTransferRequested);
        let req = self.sign(PrimeMsg::CatchupRequest {
            have_exec_seq: self.exec_seq,
        });
        out.push(OutEvent::Broadcast(req));
    }

    #[allow(clippy::too_many_arguments)]
    fn on_catchup_reply(
        &mut self,
        from: ReplicaId,
        exec_seq: u64,
        app_digest: Digest,
        snapshot: Vec<u8>,
        next_order_seq: u64,
        exec_cover: Vec<u64>,
        view: u64,
        out: &mut Vec<OutEvent>,
    ) {
        if !self.catching_up || exec_seq <= self.exec_seq {
            return;
        }
        if exec_cover.len() != self.config.n() as usize {
            return;
        }
        // Pair the reply with the sender's `CatchupDedup` companion (sent
        // just ahead of it); absent or mismatched means no table.
        let dedup: DedupTable = match self.catchup_dedup.get(&from.0) {
            Some((e, table)) if *e == exec_seq => table.clone(),
            _ => Vec::new(),
        };
        let key = (exec_seq, app_digest, dedup_digest(&dedup));
        let offer = PrimeMsg::CatchupReply {
            exec_seq,
            app_digest,
            snapshot,
            next_order_seq,
            exec_cover,
            view,
        };
        let active_f = self.active_f();
        let entry = self
            .catchup_offers
            .entry(key)
            .or_insert_with(|| (BTreeSet::new(), offer, dedup));
        entry.0.insert(from.0);
        if entry.0.len() as u32 > active_f {
            // f+1 matching offers: at least one from a correct replica.
            let dedup = entry.2.clone();
            let PrimeMsg::CatchupReply {
                exec_seq,
                app_digest,
                snapshot,
                next_order_seq,
                exec_cover,
                view,
            } = entry.1.clone()
            else {
                return;
            };
            self.app.install_snapshot(&snapshot);
            if self.app.digest() != app_digest {
                // Corrupt snapshot from a faulty replica; discard the group.
                self.catchup_offers.remove(&key);
                return;
            }
            self.exec_seq = exec_seq;
            if !dedup.is_empty() {
                // Empty means the senders do not transfer their dedup
                // tables (`Config::transfer_dedup` off); keep ours rather
                // than wiping it.
                self.install_dedup_table(&dedup);
            }
            self.plan_cover = exec_cover;
            self.planned_through = next_order_seq.saturating_sub(1);
            self.max_committed = self.max_committed.max(self.planned_through);
            self.exec_plan.clear();
            self.view = self.view.max(view);
            self.in_view_change = false;
            self.catching_up = false;
            self.stall_since = None;
            self.last_checkpoint_at_exec = exec_seq;
            self.stats.catchups += 1;
            out.push(OutEvent::StateTransferInstalled { exec_seq });
        }
    }

    /// Periodic driver: gossip PO-ARUs, propose as leader, check timeouts.
    pub fn tick(&mut self, now: SimTime) -> Vec<OutEvent> {
        let mut out = Vec::new();
        if self.byz.is_crashed() {
            return out;
        }
        // Flight recorder: journal a health snapshot every N ticks when
        // the cadence is armed (off by default, so historical digests
        // are untouched; deterministic and pinnable when on).
        let health_every = obs::prof::health_every();
        if health_every > 0 {
            self.health_ticks += 1;
            if self.health_ticks.is_multiple_of(health_every) {
                self.journal_health(now);
            }
        }
        // Gossip PO-ARU when it changed or periodically.
        if (self.my_aru != self.last_gossiped_aru
            || now.since(self.last_aru_at) >= self.timing.aru_interval.saturating_mul(5))
            && now.since(self.last_aru_at) >= self.timing.aru_interval
        {
            self.last_aru_at = now;
            self.last_gossiped_aru = self.my_aru.clone();
            let vector = self.my_aru.clone();
            obs::prof::charge_crypto("prime;preorder;po_aru", obs::prof::CryptoOp::Sign, 1);
            let sig = self.key.sign(&AruRow::signed_bytes(self.id, &vector));
            let row = AruRow {
                replica: self.id,
                vector,
                sig,
            };
            // Install our own row for our own proposals.
            self.latest_rows.insert(self.id.0, row.clone());
            let msg = self.sign(PrimeMsg::PoAru { row });
            out.push(OutEvent::Broadcast(msg));
        }
        // Leader proposal.
        if self.is_leader() && !self.in_view_change && !self.catching_up {
            self.maybe_propose(now, &mut out);
        }
        // Suspicion.
        self.note_unordered(now);
        if let Some(since) = self.unordered_since {
            if now.since(since) >= self.effective_suspect_timeout()
                && !self.sent_suspect.contains(&self.view)
                && !self.in_view_change
            {
                self.sent_suspect.insert(self.view);
                self.stats.suspects_sent += 1;
                self.c_suspects_sent.inc();
                let view = self.view;
                let msg = self.sign(PrimeMsg::SuspectLeader { view });
                out.push(OutEvent::Broadcast(msg));
                // Count ourselves.
                let count = self.suspects.entry(view).or_default().len() as u32 + 1;
                if count >= self.active_suspect_threshold() {
                    self.start_view_change(view + 1, now, &mut out);
                }
            }
        }
        // A view change that cannot complete (votes lost to a partition
        // that has since healed) must not deadlock: retransmit our vote
        // until the view installs or a higher target supersedes it.
        if self.in_view_change
            && now.since(self.last_vc_broadcast_at) >= self.effective_suspect_timeout()
        {
            self.last_vc_broadcast_at = now;
            let target = self.vc_target;
            if let Some((max_committed, prepared_seq, prepared_view, matrix)) = self
                .view_changes
                .get(&target)
                .and_then(|votes| votes.get(&self.id.0))
                .cloned()
            {
                let vc = self.sign(PrimeMsg::ViewChange {
                    new_view: target,
                    max_committed,
                    prepared_seq,
                    prepared_view,
                    prepared_matrix: matrix,
                });
                out.push(OutEvent::Broadcast(vc));
            }
        }
        // A committed-sequence gap is also a stall (see check_committed).
        if self.max_committed > self.planned_through {
            self.stall_since.get_or_insert(now);
        }
        // Retry catch-up: peers keep executing, so offers keyed on their
        // exact (exec_seq, digest) may never collect f+1 matches in one
        // round — and under message loss a whole request/reply round can
        // vanish. Re-request on an exponential backoff (first retry after
        // one plain timeout, then doubling) until a consistent snapshot
        // group forms or the attempt budget runs out.
        if self.catching_up
            && now.since(self.catchup_started)
                >= catchup_backoff(self.timing.catchup_timeout, self.catchup_attempts)
        {
            self.catchup_attempts += 1;
            if self.catchup_attempts > 10 {
                // Not enough intact peers to form an f+1 snapshot group —
                // an assumption breach. Give up and resume participation;
                // the application layer recovers ground truth from the
                // field devices (§III-A), and a later stall re-triggers
                // catch-up if peers regain consistent state.
                self.catching_up = false;
                self.stall_since = None;
            } else {
                self.stats.catchup_retransmits += 1;
                self.catchup_started = now;
                self.catchup_offers.clear();
                self.catchup_dedup.clear();
                let req = self.sign(PrimeMsg::CatchupRequest {
                    have_exec_seq: self.exec_seq,
                });
                out.push(OutEvent::Broadcast(req));
            }
        }
        // Execution stall → reconciliation retry / catch-up.
        if let Some(stall) = self.stall_since {
            if now.since(stall) >= self.timing.catchup_timeout {
                self.stall_since = Some(now);
                self.request_catchup(now, &mut out);
            } else {
                self.try_execute(now, &mut out);
            }
        }
        out
    }

    /// Journals one [`obs::Event::ReplicaHealth`] flight-recorder record:
    /// every gauge is pure replica state read at a deterministic tick, so
    /// snapshot-enabled runs digest deterministically per seed.
    fn journal_health(&mut self, now: SimTime) {
        // PO-queue depth: the planned backlog plus eligible pre-ordered
        // updates whose delivery is still outstanding. Eligibility uses
        // the composed aru/cover comparison (matching
        // `has_unordered_eligible`), and slots whose update already
        // executed via another origin's pre-ordering are excluded — a
        // lossy window can leave such duplicate slots uncoverable
        // forever, but they are residue, not backlog, and the gauge an
        // operator watches must drain once the system has recovered.
        let mut po_queue = self.exec_plan.len() as u64;
        for (origin, (&a, &c)) in self.my_aru.iter().zip(self.plan_cover.iter()).enumerate() {
            if a <= c {
                continue;
            }
            let inc = po_incarnation(a);
            let start = if inc == po_incarnation(c) {
                po_counter(c) + 1
            } else {
                1
            };
            for counter in start..=po_counter(a) {
                let pending = match self
                    .po_store
                    .get(&(origin as u32, po_compose(inc, counter)))
                {
                    Some(signed) => !self
                        .executed_clients
                        .get(&signed.update.client)
                        .is_some_and(|set| set.contains(&signed.update.client_seq)),
                    // A hole we would have to fetch is outstanding work.
                    None => true,
                };
                if pending {
                    po_queue += 1;
                }
            }
        }
        let in_flight = self.pre_prepares.range(self.max_committed + 1..).count();
        let tat_us = self
            .unordered_since
            .map_or(0, |since| now.since(since).as_micros());
        self.obs.journal(obs::Event::ReplicaHealth {
            replica: self.id.0,
            view: self.view,
            aru: self.my_aru.iter().map(|&v| po_counter(v)).sum(),
            po_queue: po_queue.min(u32::MAX as u64) as u32,
            in_flight: in_flight.min(u32::MAX as usize) as u32,
            tat_us,
            catching_up: self.catching_up,
        });
    }

    fn effective_suspect_timeout(&self) -> SimDuration {
        self.timing.suspect_timeout
    }

    fn maybe_propose(&mut self, now: SimTime, out: &mut Vec<OutEvent>) {
        if let ByzMode::DelayLeader(extra) = self.byz {
            if now.since(self.last_pp_at) < self.timing.pp_interval + extra {
                return;
            }
        } else if now.since(self.last_pp_at) < self.timing.pp_interval {
            return;
        }
        if self.byz.is_mute_leader() {
            return;
        }
        // Only one outstanding proposal at a time — but an entry left by
        // a dead view does not count: it can never gather prepares in
        // this view, so the new leader must re-propose the sequence.
        let next_seq = self.max_committed + 1;
        if self
            .pre_prepares
            .get(&next_seq)
            .is_some_and(|(v, _, _)| *v == self.view)
        {
            return;
        }
        // Collect rows; require a quorum of distinct replicas.
        let rows: Vec<AruRow> = self.latest_rows.values().cloned().collect();
        if (rows.len() as u32) < self.active_ordering_quorum() {
            return;
        }
        // Only propose if coverage advances.
        let n = self.config.n() as usize;
        let threshold = self.config.coverage_threshold() as usize;
        let mut cover = vec![0u64; n];
        for (origin, c) in cover.iter_mut().enumerate() {
            let mut column: Vec<u64> = rows.iter().map(|r| r.vector[origin]).collect();
            column.sort_unstable_by(|a, b| b.cmp(a));
            if column.len() >= threshold {
                *c = column[threshold - 1];
            }
        }
        if cover
            .iter()
            .zip(self.plan_cover.iter())
            .all(|(c, p)| c <= p)
        {
            return;
        }
        self.last_pp_at = now;
        self.propose_matrix(next_seq, rows, now, out);
    }

    fn propose_matrix(
        &mut self,
        seq: u64,
        matrix: Vec<AruRow>,
        now: SimTime,
        out: &mut Vec<OutEvent>,
    ) {
        let digest = Self::matrix_digest(&matrix);
        let view = self.view;
        self.stats.proposals += 1;
        self.pre_prepares
            .insert(seq, (view, matrix.clone(), digest));
        if !self.trace_phase.contains_key(&seq) {
            self.trace_ordering_phase(seq, obs::Stage::PrimePrePrepare);
        }
        // The leader counts as prepared implicitly; it still must collect
        // the quorum of Prepares from followers.
        let msg = self.sign(PrimeMsg::PrePrepare { view, seq, matrix });
        out.push(OutEvent::Broadcast(msg));
        let _ = now;
    }

    /// Proactive recovery: wipe all state (the replica restarts from a
    /// clean, rediversified image) and rejoin via state transfer. The
    /// membership epoch, being management-plane configuration rather
    /// than protocol state, survives the wipe.
    pub fn recover(&mut self, now: SimTime) -> Vec<OutEvent> {
        let n = self.config.n() as usize;
        // A fresh incarnation strictly above the previous one: derived
        // from the monotonic clock (milliseconds), so no pre-order slot
        // from the previous life can ever be reused.
        self.incarnation = ((now.as_micros() / 1_000) as u32).max(self.incarnation + 1);
        self.next_po_seq = 1;
        self.po_store.clear();
        self.po_envelopes.clear();
        self.intro_seen.clear();
        self.incoming_trace = None;
        self.trace_queue.clear();
        self.trace_phase.clear();
        self.origin_inc = vec![0; n];
        self.aru_counter = vec![0; n];
        self.my_aru = vec![0; n];
        self.latest_rows.clear();
        self.last_gossiped_aru = vec![0; n];
        self.pre_prepares.clear();
        self.prepares.clear();
        self.commits.clear();
        self.sent_prepare.clear();
        self.sent_commit.clear();
        self.committed.clear();
        self.max_committed = 0;
        self.prepared_cert = None;
        self.planned_through = 0;
        self.plan_cover = vec![0; n];
        self.exec_plan.clear();
        self.exec_seq = 0;
        self.executed_clients.clear();
        self.stall_since = None;
        self.unordered_since = None;
        self.suspects.clear();
        self.sent_suspect.clear();
        self.view_changes.clear();
        self.view = 0;
        self.in_view_change = false;
        self.last_checkpoint_at_exec = 0;
        self.checkpoint_votes.clear();
        self.stable_checkpoint = 0;
        self.catching_up = false;
        self.catchup_offers.clear();
        self.catchup_dedup.clear();
        self.app.install_snapshot(&[]);
        let mut out = Vec::new();
        self.request_catchup(now, &mut out);
        out
    }
}

/// The wait before catch-up retransmission number `attempt + 1`: one plain
/// `base` timeout for the first retry (identical to a non-backoff retry),
/// then doubling per unanswered round, capped at `16 × base` so a long
/// partition cannot push the next retry arbitrarily far past its heal.
pub fn catchup_backoff(base: SimDuration, attempt: u32) -> SimDuration {
    base.saturating_mul(1u64 << attempt.min(4))
}

impl<A: Application> std::fmt::Debug for Replica<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replica")
            .field("id", &self.id)
            .field("view", &self.view)
            .field("exec_seq", &self.exec_seq)
            .field("max_committed", &self.max_committed)
            .field("stats", &self.stats)
            .finish()
    }
}
