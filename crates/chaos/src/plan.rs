//! Declarative, seed-deterministic fault schedules.
//!
//! A [`ChaosPlan`] is a timeline of [`ScheduledFault`]s: each names a
//! concrete fault, when (relative to the driver's start) it is injected,
//! and how long it stays active before the driver heals it. Plans are
//! pure data — generating one touches no simulation state — so the same
//! seed always yields byte-identical schedules and the whole soak stays
//! replayable.
//!
//! Two generator families matter:
//!
//! * [`ChaosPlan::within_budget`] — randomized-but-seeded plans that are
//!   *provably within the deployment's fault budget* by construction:
//!   disruptive faults (crash, recovery, Byzantine flip, partition) are
//!   serialized into slots so at most one is active at a time, partitions
//!   only ever isolate a minority, and every window heals. Under such a
//!   plan the continuous invariant checker must stay green.
//! * [`ChaosPlan::beyond_budget_crashes`] / [`beyond_budget_partition`] —
//!   adversarial plans that deliberately exceed the `f`/`k` budget (more
//!   simultaneous crashes than any quorum survives, an even split that
//!   leaves no side a quorum). These exist so tests can prove the
//!   invariant checker actually *trips* — a checker that cannot fail
//!   verifies nothing.
//!
//! [`beyond_budget_partition`]: ChaosPlan::beyond_budget_partition

use prime::byzantine::ByzMode;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simnet::time::SimDuration;

/// The fault families the chaos driver can inject.
///
/// The `u8` tag is stable and is what lands in the observability journal
/// (`Event::ChaosInject { kind, .. }`), so it participates in run digests.
///
/// [`FaultKind::SiteSever`] is special: it is never dealt by the
/// randomized [`ChaosPlan::within_budget`] deck ([`FaultKind::ALL`] stays
/// the original eight so existing soak digests are unchanged) — site
/// failover is always scheduled explicitly via
/// [`ChaosPlan::site_failover`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// Internal-network switch partition isolating a minority of replicas.
    Partition,
    /// Loss burst on one replica's internal link.
    LinkLoss,
    /// Latency spike on one replica's external link.
    LatencySpike,
    /// Brief hard outage (link down/up) on one replica's internal link.
    LinkFlap,
    /// Fail-stop crash of a replica host, later restarted from a clean image.
    NodeCrash,
    /// A replica turns Byzantine (mute or delaying leader) for a window.
    ByzFlip,
    /// The observability clock is told time ran backwards (skew injection).
    ClockSkew,
    /// An unscheduled proactive recovery (take down, re-diversify, rejoin).
    Recovery,
    /// An entire site drops off the WAN (multi-site deployments; the E13
    /// failover fault). Healing reconnects the site and fails back.
    SiteSever,
}

impl FaultKind {
    /// The kinds the randomized within-budget deck rotates through, in
    /// tag order. Deliberately excludes [`FaultKind::SiteSever`]: a site
    /// loss is not a within-budget fault for single-site deployments, and
    /// keeping the deck fixed preserves historical soak digests.
    pub const ALL: [FaultKind; 8] = [
        FaultKind::Partition,
        FaultKind::LinkLoss,
        FaultKind::LatencySpike,
        FaultKind::LinkFlap,
        FaultKind::NodeCrash,
        FaultKind::ByzFlip,
        FaultKind::ClockSkew,
        FaultKind::Recovery,
    ];

    /// Stable journal tag.
    pub fn tag(self) -> u8 {
        match self {
            FaultKind::Partition => 0,
            FaultKind::LinkLoss => 1,
            FaultKind::LatencySpike => 2,
            FaultKind::LinkFlap => 3,
            FaultKind::NodeCrash => 4,
            FaultKind::ByzFlip => 5,
            FaultKind::ClockSkew => 6,
            FaultKind::Recovery => 7,
            FaultKind::SiteSever => 8,
        }
    }

    /// Human-readable name (reports, rendered plans).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Partition => "partition",
            FaultKind::LinkLoss => "link-loss",
            FaultKind::LatencySpike => "latency-spike",
            FaultKind::LinkFlap => "link-flap",
            FaultKind::NodeCrash => "node-crash",
            FaultKind::ByzFlip => "byz-flip",
            FaultKind::ClockSkew => "clock-skew",
            FaultKind::Recovery => "recovery",
            FaultKind::SiteSever => "site-sever",
        }
    }
}

/// A concrete fault with its parameters.
#[derive(Clone, Debug, PartialEq)]
pub enum Fault {
    /// Partition the internal switch so `isolated` replicas sit alone.
    Partition { isolated: Vec<u32> },
    /// Raise the loss probability on `replica`'s internal link.
    LinkLoss { replica: u32, loss: f64 },
    /// Raise the one-way latency on `replica`'s external link.
    LatencySpike { replica: u32, latency: SimDuration },
    /// Take `replica`'s internal link hard down (in-flight frames drop).
    LinkFlap { replica: u32 },
    /// Crash `replica`; the heal restarts it from a clean image.
    NodeCrash { replica: u32 },
    /// Flip `replica` into the given Byzantine mode; the heal flips it back.
    ByzFlip { replica: u32, mode: ByzMode },
    /// Tell the observability clock time went `behind` backwards.
    ClockSkew { behind: SimDuration },
    /// Proactively recover `replica` (down, clean image, rejoin).
    Recovery { replica: u32 },
    /// Sever `site` from the WAN; the heal reconnects it and fails back
    /// to the full membership.
    SiteSever { site: u32 },
}

impl Fault {
    /// The family this fault belongs to.
    pub fn kind(&self) -> FaultKind {
        match self {
            Fault::Partition { .. } => FaultKind::Partition,
            Fault::LinkLoss { .. } => FaultKind::LinkLoss,
            Fault::LatencySpike { .. } => FaultKind::LatencySpike,
            Fault::LinkFlap { .. } => FaultKind::LinkFlap,
            Fault::NodeCrash { .. } => FaultKind::NodeCrash,
            Fault::ByzFlip { .. } => FaultKind::ByzFlip,
            Fault::ClockSkew { .. } => FaultKind::ClockSkew,
            Fault::Recovery { .. } => FaultKind::Recovery,
            Fault::SiteSever { .. } => FaultKind::SiteSever,
        }
    }

    /// The journal `target` field: the replica acted on, or the first
    /// isolated replica for partitions, or the skew in microseconds.
    pub fn target(&self) -> u32 {
        match self {
            Fault::Partition { isolated } => isolated.first().copied().unwrap_or(0),
            Fault::LinkLoss { replica, .. }
            | Fault::LatencySpike { replica, .. }
            | Fault::LinkFlap { replica }
            | Fault::NodeCrash { replica }
            | Fault::ByzFlip { replica, .. }
            | Fault::Recovery { replica } => *replica,
            Fault::ClockSkew { behind } => behind.as_micros() as u32,
            Fault::SiteSever { site } => *site,
        }
    }
}

/// A fault scheduled at an offset from the soak's start.
#[derive(Clone, Debug, PartialEq)]
pub struct ScheduledFault {
    /// Injection time, relative to when the driver starts.
    pub at: SimDuration,
    /// Active window; the driver heals the fault at `at + duration`.
    /// Zero for instantaneous faults (clock skew).
    pub duration: SimDuration,
    /// What to inject.
    pub fault: Fault,
}

/// An ordered fault timeline.
#[derive(Clone, Debug, Default)]
pub struct ChaosPlan {
    /// Faults sorted by injection time.
    pub faults: Vec<ScheduledFault>,
}

/// Disruptive slots repeat on this period; at most one disruptive fault
/// is active per slot, so serialized windows never overlap.
const SLOT: SimDuration = SimDuration::from_millis(1_500);
/// No fault window may extend into the last `TAIL` of the horizon, so a
/// within-budget run always ends with every fault healed and time to
/// settle before quiescence checks.
const TAIL: SimDuration = SimDuration::from_millis(500);

impl ChaosPlan {
    /// A randomized-but-seeded plan that stays within the deployment's
    /// fault budget by construction (see module docs). `n` is the replica
    /// count and `quorum` the ordering quorum; partitions isolate at most
    /// `n - quorum` replicas so the majority side always keeps a quorum.
    ///
    /// Fault kinds rotate through a per-cycle shuffled deck, so any
    /// horizon of at least `8 * SLOT` (12 s) exercises every family.
    /// Benign windows (loss, latency, skew) may stretch across slot
    /// boundaries and overlap the next disruptive window — including
    /// overlapping a proactive recovery — which is exactly the messy
    /// concurrency the invariant checker must tolerate.
    pub fn within_budget(seed: u64, n: u32, quorum: u32, horizon: SimDuration) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xc4a0_5eed);
        let mut faults = Vec::new();
        let slots = horizon.as_micros() / SLOT.as_micros();
        let mut deck: Vec<FaultKind> = Vec::new();
        for s in 0..slots {
            if deck.is_empty() {
                deck = FaultKind::ALL.to_vec();
                // Fisher-Yates so each 8-slot cycle covers all kinds in a
                // seed-determined order.
                for i in (1..deck.len()).rev() {
                    let j = rng.gen_range(0..i + 1);
                    deck.swap(i, j);
                }
            }
            let kind = deck.pop().expect("deck refilled above");
            let at = SimDuration::from_micros(SLOT.as_micros() * s + rng.gen_range(0..300_000u64));
            let replica = rng.gen_range(0..n);
            let (duration, fault) = match kind {
                FaultKind::Partition => {
                    let max_isolated = (n - quorum).max(1);
                    let count = rng.gen_range(1..max_isolated + 1);
                    let mut isolated = Vec::new();
                    while (isolated.len() as u32) < count {
                        let r = rng.gen_range(0..n);
                        if !isolated.contains(&r) {
                            isolated.push(r);
                        }
                    }
                    isolated.sort_unstable();
                    (
                        SimDuration::from_millis(rng.gen_range(400..900)),
                        Fault::Partition { isolated },
                    )
                }
                FaultKind::LinkLoss => (
                    SimDuration::from_millis(rng.gen_range(800..2_200)),
                    Fault::LinkLoss {
                        replica,
                        loss: rng.gen_range(0.15..0.35),
                    },
                ),
                FaultKind::LatencySpike => (
                    SimDuration::from_millis(rng.gen_range(800..2_200)),
                    Fault::LatencySpike {
                        replica,
                        latency: SimDuration::from_millis(rng.gen_range(2..8)),
                    },
                ),
                FaultKind::LinkFlap => (
                    SimDuration::from_millis(rng.gen_range(150..400)),
                    Fault::LinkFlap { replica },
                ),
                FaultKind::NodeCrash => (
                    SimDuration::from_millis(rng.gen_range(500..1_000)),
                    Fault::NodeCrash { replica },
                ),
                FaultKind::ByzFlip => {
                    let mode = if rng.gen_bool(0.5) {
                        ByzMode::MuteLeader
                    } else {
                        ByzMode::DelayLeader(SimDuration::from_millis(100))
                    };
                    (
                        SimDuration::from_millis(rng.gen_range(400..900)),
                        Fault::ByzFlip { replica, mode },
                    )
                }
                FaultKind::ClockSkew => (
                    SimDuration::ZERO,
                    Fault::ClockSkew {
                        behind: SimDuration::from_micros(rng.gen_range(500..5_000)),
                    },
                ),
                FaultKind::Recovery => (
                    SimDuration::from_millis(rng.gen_range(500..1_000)),
                    Fault::Recovery { replica },
                ),
                // Never dealt: the deck is `FaultKind::ALL`, which
                // excludes site severs by design.
                FaultKind::SiteSever => unreachable!("site severs are scheduled explicitly"),
            };
            // Quiet tail: clamp windows so everything heals before the
            // horizon, dropping the fault if no meaningful window fits.
            let latest_heal = horizon.as_micros().saturating_sub(TAIL.as_micros());
            if at.as_micros() >= latest_heal {
                continue;
            }
            let duration =
                SimDuration::from_micros(duration.as_micros().min(latest_heal - at.as_micros()));
            faults.push(ScheduledFault {
                at,
                duration,
                fault,
            });
        }
        ChaosPlan { faults }
    }

    /// A deliberately over-budget plan: `f + 2` replicas crash at once and
    /// stay down for the whole horizon, leaving fewer than a quorum alive.
    /// The bounded-delay invariant must trip under this plan.
    pub fn beyond_budget_crashes(f: u32, horizon: SimDuration) -> Self {
        let faults = (0..f + 2)
            .map(|r| ScheduledFault {
                at: SimDuration::from_millis(200),
                duration: horizon,
                fault: Fault::NodeCrash { replica: r },
            })
            .collect();
        ChaosPlan { faults }
    }

    /// A deliberately over-budget plan: an even split of the internal
    /// network that never heals within the horizon, so neither side holds
    /// an ordering quorum. The bounded-delay invariant must trip.
    pub fn beyond_budget_partition(n: u32, horizon: SimDuration) -> Self {
        let isolated: Vec<u32> = (0..n / 2).collect();
        ChaosPlan {
            faults: vec![ScheduledFault {
                at: SimDuration::from_millis(200),
                duration: horizon,
                fault: Fault::Partition { isolated },
            }],
        }
    }

    /// The E13 schedule: sever `site` at `at`, heal (reconnect + fail
    /// back) after `duration`. Pure data, like every plan.
    pub fn site_failover(site: u32, at: SimDuration, duration: SimDuration) -> Self {
        ChaosPlan {
            faults: vec![ScheduledFault {
                at,
                duration,
                fault: Fault::SiteSever { site },
            }],
        }
    }

    /// Number of distinct fault kinds the plan schedules.
    pub fn distinct_kinds(&self) -> usize {
        let mut kinds: Vec<u8> = self.faults.iter().map(|f| f.fault.kind().tag()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        kinds.len()
    }

    /// Renders the timeline as one line per fault (reports, debugging).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.faults {
            out.push_str(&format!(
                "  t=+{:>8.3}s  {:>13}  for {:.3}s  {:?}\n",
                f.at.as_secs_f64(),
                f.fault.kind().name(),
                f.duration.as_secs_f64(),
                f.fault,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_seed_deterministic() {
        let h = SimDuration::from_secs(20);
        let a = ChaosPlan::within_budget(42, 6, 4, h);
        let b = ChaosPlan::within_budget(42, 6, 4, h);
        assert_eq!(a.faults, b.faults);
        let c = ChaosPlan::within_budget(43, 6, 4, h);
        assert_ne!(a.faults, c.faults, "different seeds give different plans");
    }

    #[test]
    fn twelve_second_horizon_covers_at_least_five_kinds() {
        for seed in [1u64, 7, 42, 1111] {
            let plan = ChaosPlan::within_budget(seed, 6, 4, SimDuration::from_secs(12));
            assert!(
                plan.distinct_kinds() >= 5,
                "seed {seed}: only {} kinds",
                plan.distinct_kinds()
            );
        }
    }

    #[test]
    fn within_budget_serializes_disruptive_faults_and_heals_everything() {
        let horizon = SimDuration::from_secs(30);
        let plan = ChaosPlan::within_budget(42, 6, 4, horizon);
        let disruptive: Vec<&ScheduledFault> = plan
            .faults
            .iter()
            .filter(|f| {
                matches!(
                    f.fault.kind(),
                    FaultKind::Partition
                        | FaultKind::NodeCrash
                        | FaultKind::ByzFlip
                        | FaultKind::Recovery
                        | FaultKind::LinkFlap
                )
            })
            .collect();
        for pair in disruptive.windows(2) {
            let end = pair[0].at + pair[0].duration;
            assert!(
                end.as_micros() <= pair[1].at.as_micros(),
                "disruptive windows overlap: {:?} vs {:?}",
                pair[0],
                pair[1]
            );
        }
        for f in &plan.faults {
            assert!(
                (f.at + f.duration).as_micros() <= horizon.as_micros(),
                "window extends past horizon: {f:?}"
            );
        }
    }

    #[test]
    fn partitions_only_isolate_minorities() {
        let plan = ChaosPlan::within_budget(7, 6, 4, SimDuration::from_secs(60));
        for f in &plan.faults {
            if let Fault::Partition { isolated } = &f.fault {
                assert!(
                    isolated.len() as u32 <= 6 - 4,
                    "majority isolated: {isolated:?}"
                );
            }
        }
    }

    #[test]
    fn site_sever_is_tagged_but_never_dealt_by_the_deck() {
        assert_eq!(FaultKind::SiteSever.tag(), 8);
        assert_eq!(FaultKind::SiteSever.name(), "site-sever");
        assert!(
            !FaultKind::ALL.contains(&FaultKind::SiteSever),
            "the within-budget deck must stay the original eight kinds"
        );
        let plan =
            ChaosPlan::site_failover(1, SimDuration::from_millis(200), SimDuration::from_secs(9));
        assert_eq!(plan.faults.len(), 1);
        assert_eq!(plan.faults[0].fault, Fault::SiteSever { site: 1 });
        assert_eq!(plan.faults[0].fault.kind().tag(), 8);
        assert_eq!(plan.faults[0].fault.target(), 1);
    }

    #[test]
    fn beyond_budget_plans_exceed_the_budget() {
        let crashes = ChaosPlan::beyond_budget_crashes(1, SimDuration::from_secs(10));
        assert_eq!(crashes.faults.len(), 3, "f+2 simultaneous crashes");
        let split = ChaosPlan::beyond_budget_partition(6, SimDuration::from_secs(10));
        match &split.faults[0].fault {
            Fault::Partition { isolated } => assert_eq!(isolated.len(), 3, "even 3/3 split"),
            other => panic!("expected partition, got {other:?}"),
        }
    }
}
