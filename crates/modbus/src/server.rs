//! The server-side data model and request executor every emulated PLC uses.

use obs::trace::{Stage, TraceCtx};
use obs::ObsHub;

use crate::pdu::{ExceptionCode, Request, Response};

/// Maximum bits readable in one request (per spec).
const MAX_BITS: u16 = 2000;
/// Maximum registers readable in one request (per spec).
const MAX_REGS: u16 = 125;

/// A Modbus server's addressable data: coils (read/write bits), discrete
/// inputs (read-only bits), holding registers (read/write words), input
/// registers (read-only words), plus the vendor "configuration image" that
/// function codes 0x5A/0x5B dump and replace.
#[derive(Clone, Debug)]
pub struct DataStore {
    coils: Vec<bool>,
    discrete_inputs: Vec<bool>,
    holding: Vec<u16>,
    input: Vec<u16>,
    /// Device identification text returned by 0x2B.
    pub device_id: String,
    /// The configuration image 0x5A reads and 0x5B replaces. For the
    /// emulated breaker PLCs this encodes the ladder-logic parameters, so
    /// replacing it *changes device behaviour* — the red team's attack.
    pub config_image: Vec<u8>,
    /// Number of times the configuration was replaced (forensics).
    pub config_uploads: u64,
}

impl DataStore {
    /// Creates a store with `bits` coils/discrete-inputs and `words`
    /// holding/input registers, all zeroed.
    pub fn new(bits: usize, words: usize) -> Self {
        DataStore {
            coils: vec![false; bits],
            discrete_inputs: vec![false; bits],
            holding: vec![0; words],
            input: vec![0; words],
            device_id: "OpenPLC-emu v3 (spire-repro)".to_string(),
            config_image: Vec::new(),
            config_uploads: 0,
        }
    }

    /// Reads a coil.
    pub fn coil(&self, address: u16) -> Option<bool> {
        self.coils.get(address as usize).copied()
    }

    /// Writes a coil directly (device-side, not via protocol).
    pub fn set_coil(&mut self, address: u16, value: bool) -> bool {
        if let Some(c) = self.coils.get_mut(address as usize) {
            *c = value;
            true
        } else {
            false
        }
    }

    /// Reads a discrete input.
    pub fn discrete_input(&self, address: u16) -> Option<bool> {
        self.discrete_inputs.get(address as usize).copied()
    }

    /// Sets a discrete input (device-side: sensors update these).
    pub fn set_discrete_input(&mut self, address: u16, value: bool) -> bool {
        if let Some(c) = self.discrete_inputs.get_mut(address as usize) {
            *c = value;
            true
        } else {
            false
        }
    }

    /// Reads a holding register.
    pub fn holding(&self, address: u16) -> Option<u16> {
        self.holding.get(address as usize).copied()
    }

    /// Writes a holding register directly.
    pub fn set_holding(&mut self, address: u16, value: u16) -> bool {
        if let Some(r) = self.holding.get_mut(address as usize) {
            *r = value;
            true
        } else {
            false
        }
    }

    /// Reads an input register.
    pub fn input(&self, address: u16) -> Option<u16> {
        self.input.get(address as usize).copied()
    }

    /// Sets an input register (device-side).
    pub fn set_input(&mut self, address: u16, value: u16) -> bool {
        if let Some(r) = self.input.get_mut(address as usize) {
            *r = value;
            true
        } else {
            false
        }
    }

    /// Number of coils.
    pub fn coil_count(&self) -> usize {
        self.coils.len()
    }

    /// Number of holding registers.
    pub fn holding_count(&self) -> usize {
        self.holding.len()
    }
}

fn range_ok(address: u16, count: u16, len: usize, max: u16) -> bool {
    count >= 1 && count <= max && (address as usize + count as usize) <= len
}

/// Executes a request against a data store, producing the response a
/// compliant server would send.
pub fn execute(req: &Request, store: &mut DataStore) -> Response {
    let exception = |code| Response::Exception {
        function: req.function_code(),
        code,
    };
    match req {
        Request::ReadCoils { address, count } => {
            if !range_ok(*address, *count, store.coils.len(), MAX_BITS) {
                return exception(ExceptionCode::IllegalDataAddress);
            }
            let values = store.coils[*address as usize..(*address + *count) as usize].to_vec();
            Response::Bits {
                function: 0x01,
                values,
            }
        }
        Request::ReadDiscreteInputs { address, count } => {
            if !range_ok(*address, *count, store.discrete_inputs.len(), MAX_BITS) {
                return exception(ExceptionCode::IllegalDataAddress);
            }
            let values =
                store.discrete_inputs[*address as usize..(*address + *count) as usize].to_vec();
            Response::Bits {
                function: 0x02,
                values,
            }
        }
        Request::ReadHoldingRegisters { address, count } => {
            if !range_ok(*address, *count, store.holding.len(), MAX_REGS) {
                return exception(ExceptionCode::IllegalDataAddress);
            }
            let values = store.holding[*address as usize..(*address + *count) as usize].to_vec();
            Response::Registers {
                function: 0x03,
                values,
            }
        }
        Request::ReadInputRegisters { address, count } => {
            if !range_ok(*address, *count, store.input.len(), MAX_REGS) {
                return exception(ExceptionCode::IllegalDataAddress);
            }
            let values = store.input[*address as usize..(*address + *count) as usize].to_vec();
            Response::Registers {
                function: 0x04,
                values,
            }
        }
        Request::WriteSingleCoil { address, value } => {
            if !store.set_coil(*address, *value) {
                return exception(ExceptionCode::IllegalDataAddress);
            }
            Response::WriteSingleCoil {
                address: *address,
                value: *value,
            }
        }
        Request::WriteSingleRegister { address, value } => {
            if !store.set_holding(*address, *value) {
                return exception(ExceptionCode::IllegalDataAddress);
            }
            Response::WriteSingleRegister {
                address: *address,
                value: *value,
            }
        }
        Request::WriteMultipleCoils { address, values } => {
            if values.is_empty()
                || !range_ok(*address, values.len() as u16, store.coils.len(), MAX_BITS)
            {
                return exception(ExceptionCode::IllegalDataAddress);
            }
            for (i, v) in values.iter().enumerate() {
                store.coils[*address as usize + i] = *v;
            }
            Response::WriteMultipleCoils {
                address: *address,
                count: values.len() as u16,
            }
        }
        Request::WriteMultipleRegisters { address, values } => {
            if values.is_empty()
                || !range_ok(*address, values.len() as u16, store.holding.len(), MAX_REGS)
            {
                return exception(ExceptionCode::IllegalDataAddress);
            }
            for (i, v) in values.iter().enumerate() {
                store.holding[*address as usize + i] = *v;
            }
            Response::WriteMultipleRegisters {
                address: *address,
                count: values.len() as u16,
            }
        }
        Request::ReadDeviceId => Response::DeviceId {
            text: store.device_id.clone(),
        },
        Request::ConfigDownload => Response::ConfigImage {
            image: store.config_image.clone(),
        },
        Request::ConfigUpload { image } => {
            store.config_image = image.clone();
            store.config_uploads += 1;
            Response::ConfigAccepted
        }
    }
}

/// Whether a request mutates server state (coil/register writes and
/// configuration uploads).
pub fn is_write(req: &Request) -> bool {
    matches!(
        req,
        Request::WriteSingleCoil { .. }
            | Request::WriteSingleRegister { .. }
            | Request::WriteMultipleCoils { .. }
            | Request::WriteMultipleRegisters { .. }
            | Request::ConfigUpload { .. }
    )
}

/// [`execute`] plus causal tracing: successful write requests stamp an
/// instant [`Stage::ModbusWrite`] span under `parent` (the delivering
/// proxy's context carried on the request packet), returning the span
/// so the device can parent the eventual mechanical actuation on it.
/// Reads and failed writes stamp nothing; with tracing disabled this
/// is exactly [`execute`].
pub fn execute_traced(
    req: &Request,
    store: &mut DataStore,
    hub: &ObsHub,
    parent: Option<TraceCtx>,
    node: u32,
) -> (Response, Option<TraceCtx>) {
    let resp = execute(req, store);
    let write_ok = is_write(req) && !matches!(resp, Response::Exception { .. });
    let span = if write_ok {
        hub.instant_span(parent, Stage::ModbusWrite, node)
    } else {
        None
    };
    (resp, span)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_coils() {
        let mut s = DataStore::new(8, 4);
        assert_eq!(
            execute(
                &Request::WriteSingleCoil {
                    address: 2,
                    value: true
                },
                &mut s
            ),
            Response::WriteSingleCoil {
                address: 2,
                value: true
            }
        );
        assert_eq!(
            execute(
                &Request::ReadCoils {
                    address: 0,
                    count: 4
                },
                &mut s
            ),
            Response::Bits {
                function: 0x01,
                values: vec![false, false, true, false]
            }
        );
    }

    #[test]
    fn read_write_registers() {
        let mut s = DataStore::new(4, 8);
        execute(
            &Request::WriteMultipleRegisters {
                address: 1,
                values: vec![10, 20, 30],
            },
            &mut s,
        );
        assert_eq!(
            execute(
                &Request::ReadHoldingRegisters {
                    address: 0,
                    count: 5
                },
                &mut s
            ),
            Response::Registers {
                function: 0x03,
                values: vec![0, 10, 20, 30, 0]
            }
        );
    }

    #[test]
    fn out_of_range_gives_exception() {
        let mut s = DataStore::new(4, 4);
        assert_eq!(
            execute(
                &Request::ReadCoils {
                    address: 2,
                    count: 5
                },
                &mut s
            ),
            Response::Exception {
                function: 0x01,
                code: ExceptionCode::IllegalDataAddress
            }
        );
        assert_eq!(
            execute(
                &Request::WriteSingleRegister {
                    address: 9,
                    value: 1
                },
                &mut s
            ),
            Response::Exception {
                function: 0x06,
                code: ExceptionCode::IllegalDataAddress
            }
        );
        assert_eq!(
            execute(
                &Request::ReadHoldingRegisters {
                    address: 0,
                    count: 0
                },
                &mut s
            ),
            Response::Exception {
                function: 0x03,
                code: ExceptionCode::IllegalDataAddress
            }
        );
    }

    #[test]
    fn discrete_inputs_and_input_registers_are_device_fed() {
        let mut s = DataStore::new(4, 4);
        s.set_discrete_input(1, true);
        s.set_input(2, 555);
        assert_eq!(
            execute(
                &Request::ReadDiscreteInputs {
                    address: 0,
                    count: 2
                },
                &mut s
            ),
            Response::Bits {
                function: 0x02,
                values: vec![false, true]
            }
        );
        assert_eq!(
            execute(
                &Request::ReadInputRegisters {
                    address: 2,
                    count: 1
                },
                &mut s
            ),
            Response::Registers {
                function: 0x04,
                values: vec![555]
            }
        );
    }

    #[test]
    fn config_dump_and_upload_unauthenticated() {
        // This is the red team's commercial-PLC attack in miniature: anyone
        // who can reach the device can read and replace its configuration.
        let mut s = DataStore::new(4, 4);
        s.config_image = vec![1, 2, 3];
        let dump = execute(&Request::ConfigDownload, &mut s);
        assert_eq!(
            dump,
            Response::ConfigImage {
                image: vec![1, 2, 3]
            }
        );
        let upload = execute(
            &Request::ConfigUpload {
                image: vec![66, 66],
            },
            &mut s,
        );
        assert_eq!(upload, Response::ConfigAccepted);
        assert_eq!(s.config_image, vec![66, 66]);
        assert_eq!(s.config_uploads, 1);
    }

    #[test]
    fn execute_traced_stamps_only_successful_writes() {
        let hub = ObsHub::new();
        hub.set_tracing(true);
        let root = hub.start_root(Stage::Command, 0);
        let mut s = DataStore::new(4, 4);
        let write = Request::WriteSingleCoil {
            address: 1,
            value: true,
        };
        let read = Request::ReadCoils {
            address: 0,
            count: 2,
        };
        let bad = Request::WriteSingleCoil {
            address: 99,
            value: true,
        };
        assert!(is_write(&write) && is_write(&bad) && !is_write(&read));
        let (resp, span) = execute_traced(&write, &mut s, &hub, root, 3);
        assert_eq!(resp, execute(&write.clone(), &mut DataStore::new(4, 4)));
        assert!(span.is_some(), "successful write stamped");
        let (_, span) = execute_traced(&read, &mut s, &hub, root, 3);
        assert!(span.is_none(), "reads never stamp");
        let (resp, span) = execute_traced(&bad, &mut s, &hub, root, 3);
        assert!(matches!(resp, Response::Exception { .. }));
        assert!(span.is_none(), "failed writes never stamp");
        // Tracing off: identical to `execute`, no journal growth.
        let before = hub.journal_len();
        hub.set_tracing(false);
        let (_, span) = execute_traced(&write, &mut s, &hub, None, 3);
        assert!(span.is_none());
        assert_eq!(hub.journal_len(), before);
    }

    #[test]
    fn device_id_readable() {
        let mut s = DataStore::new(1, 1);
        s.device_id = "ACME 9000".into();
        assert_eq!(
            execute(&Request::ReadDeviceId, &mut s),
            Response::DeviceId {
                text: "ACME 9000".into()
            }
        );
    }

    #[test]
    fn direct_accessors_bounds_checked() {
        let mut s = DataStore::new(2, 2);
        assert!(s.set_coil(1, true));
        assert!(!s.set_coil(2, true));
        assert_eq!(s.coil(1), Some(true));
        assert_eq!(s.coil(5), None);
        assert!(s.set_holding(0, 7));
        assert!(!s.set_holding(9, 7));
        assert_eq!(s.holding(0), Some(7));
        assert_eq!(s.input(0), Some(0));
        assert_eq!(s.coil_count(), 2);
        assert_eq!(s.holding_count(), 2);
    }
}
