#!/usr/bin/env bash
# Repository gate: formatting, lints, and the full test suite.
# Run from the repository root; exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (warnings denied)"
# Gate our own crates only; vendored/* are third-party code.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace \
    --exclude bytes --exclude criterion --exclude proptest --exclude rand

echo "==> cargo test --workspace"
cargo test -q --workspace

echo "==> trace determinism"
cargo test -q --test observability e5_same_seed_yields_identical_span_trees_and_digest

echo "All checks passed."
