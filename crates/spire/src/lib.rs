//! **Spire** — the intrusion-tolerant SCADA system of the DSN'19 paper,
//! assembled from its subsystems and deployable onto the [`simnet`]
//! simulator in the paper's two configurations:
//!
//! * the **red-team configuration** (§IV): four SCADA-master replicas
//!   (f = 1, k = 0), one physical PLC behind a proxy on a direct cable,
//!   ten emulated distribution PLCs, one HMI — replicas joined by an
//!   *isolated* internal Spines network and an external Spines network
//!   (Figure 2/3);
//! * the **power-plant configuration** (§V): six replicas (f = 1, k = 1)
//!   supporting one intrusion plus one proactive recovery, the plant's
//!   three-breaker topology, sixteen emulated PLCs, HMIs in three
//!   locations.
//!
//! The crate provides:
//!
//! * [`config`] — deployment configuration: replica/proxy/HMI identities,
//!   keys, Spines overlays, scenario assignments.
//! * [`vote`] — the `f+1` matching-message voting proxies and HMIs apply
//!   to replica output, so no single compromised master can actuate a
//!   breaker or forge a display.
//! * [`messages`] — the external-network message vocabulary.
//! * [`replica_host`] — the process hosting a Prime replica + SCADA
//!   master + two Spines daemons on one node.
//! * [`proxy`] — the PLC proxy: Modbus master on a direct cable to its
//!   device, Spines client toward the masters, vote-gated actuation.
//! * [`hmi_host`] — the HMI process (vote-gated display) and the
//!   breaker-cycle update generator from the red-team exercise.
//! * [`hardening`] — the §III-B low-level hardening profile as explicit,
//!   individually-toggleable switches (the E10 ablation flips them).
//! * [`site`] — multi-site (wide-area) placements of the plant replicas
//!   and the site-loss survival math the E13 failover experiment tests.
//! * [`deploy`] — builds the whole system on a [`simnet::Simulation`].
//! * [`latency`] — the §V end-to-end reaction-time harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod deploy;
pub mod hardening;
pub mod hmi_host;
pub mod latency;
pub mod messages;
pub mod proxy;
pub mod replica_host;
pub mod site;
pub mod vote;

pub use config::SpireConfig;
pub use deploy::Deployment;
pub use hardening::HardeningProfile;
pub use hmi_host::HmiHost;
pub use proxy::PlcProxy;
pub use replica_host::ReplicaHost;
pub use site::{Site, SiteKind, SiteTopology, SurvivalMode};
