//! The SCADA master application layer — both the replicated Spire master
//! and the commercial primary-backup baseline the red team broke.
//!
//! §III-A of the paper separates Spire's master from "the basic databases
//! normally used to evaluate BFT protocols": the application state
//! reflects *physical* state, the replication layer must signal the
//! application when application-level state transfer is needed, and the
//! field devices themselves are the ground truth from which state can be
//! rebuilt after an assumption breach. This crate implements all of that:
//!
//! * [`updates`] — the SCADA update vocabulary (RTU/PLC status, HMI
//!   supervisory commands) carried as Prime update payloads.
//! * [`state`] — the master's state: per-scenario breaker positions and
//!   currents, with deterministic digests and snapshots.
//! * [`master`] — [`master::ScadaApp`], the [`prime::Application`] the
//!   replicas host; executing an ordered HMI command emits a PLC command
//!   action, executing an RTU status emits an HMI display frame.
//! * [`hmi`] — the operator display: Figure 4 rendered as text, update
//!   timestamps for the §V reaction-time measurement, and the black/white
//!   sensor box.
//! * [`historian`] — the PI-server-style append-only log; per §III-A it
//!   *cannot* recover history after an assumption breach.
//! * [`ground_truth`] — rebuilding master state by polling field devices,
//!   the recovery path generic BFT systems do not have.
//! * [`commercial`] — the NIST-best-practices baseline: primary/backup
//!   masters, unauthenticated master↔HMI and master↔PLC traffic, PLC
//!   directly on the operations network.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commercial;
pub mod ground_truth;
pub mod historian;
pub mod hmi;
pub mod master;
pub mod state;
pub mod updates;

pub use hmi::Hmi;
pub use master::{MasterAction, ScadaApp};
pub use state::ScadaState;
pub use updates::ScadaUpdate;
